//! The paper's running example, end to end: GNOME bug 576111 (Figure 1).
//!
//! ```text
//! cargo run --example gnome_callback
//! ```
//!
//! `Callback.bind` registers an event callback, storing its `receiver`
//! class — a *local* reference — in a C heap structure. When the event
//! loop later fires, `CallStaticVoidMethodA` uses the dead reference.
//! A Java-gnome developer confirmed the paper's diagnosis of exactly this
//! pattern.

use jinn::jni::RunOutcome;
use jinn::workloads::javagnome;

fn main() {
    println!("GNOME bug 576111 (paper Figure 1 / Section 6.4.2)\n");

    println!("1. production run (no checker):");
    let outcome = javagnome::callback_bug_is_latent_without_jinn();
    match outcome {
        RunOutcome::Completed(_) => {
            println!("   the callback fired without visible failure — the bug is latent;")
        }
        other => println!("   this run the time bomb went off: {other:?}"),
    }
    println!("   either way there is no diagnosis pointing at the cause.\n");

    println!("2. the same program under Jinn:");
    let findings = javagnome::audit();
    for v in &findings {
        println!("   [{}/{}] in {}", v.machine, v.error_state, v.function);
        for line in v.message.lines() {
            println!("       {line}");
        }
        for frame in &v.backtrace {
            println!("       at {frame}");
        }
        println!();
    }
    println!(
        "Jinn identifies the Use transition of the Released local reference at the \
         exact JNI call, with the calling context a developer needs."
    );
}
