//! Quickstart: catch your first JNI bug with Jinn.
//!
//! ```text
//! cargo run --example quickstart
//! ```
//!
//! The program builds a tiny simulated JVM, registers a native method
//! whose "C code" forgets that local references die when the method
//! returns, and runs it twice — once on the raw VM (where the bug is a
//! silent time bomb) and once under Jinn (which throws a
//! `jinn.JNIAssertionFailure` at the exact faulty call).

use std::cell::RefCell;
use std::rc::Rc;

use jinn::jni::{typed, RunOutcome, Session, Vm};
use jinn::jvm::{JRef, JValue};

/// Builds the buggy program: `stash` plays the role of a C global that
/// outlives the native frame.
fn build(vm: &mut Vm, stash: Rc<RefCell<Option<JRef>>>) -> (minijvm::MethodId, minijvm::MethodId) {
    let (_c, remember) = {
        let stash = Rc::clone(&stash);
        vm.define_native_class(
            "demo/Cache",
            "remember",
            "(Ljava/lang/Object;)V",
            true,
            Rc::new(move |_env, args| {
                // BUG: storing a local reference in a C global.
                *stash.borrow_mut() = args[0].as_ref();
                Ok(JValue::Void)
            }),
        )
    };
    let (_c, recall) = {
        let stash = Rc::clone(&stash);
        vm.define_native_class(
            "demo/Cache2",
            "recall",
            "()V",
            true,
            Rc::new(move |env, _args| {
                let dead = stash.borrow().expect("remember ran first");
                // The reference died when `remember` returned; this use is
                // undefined behaviour on a real JVM.
                let class = typed::get_object_class(env, dead)?;
                let _ = typed::is_same_object(env, dead, class)?;
                Ok(JValue::Void)
            }),
        )
    };
    (remember, recall)
}

fn run(with_jinn: bool) -> RunOutcome {
    let mut vm = Vm::permissive();
    let stash = Rc::default();
    let (remember, recall) = build(&mut vm, Rc::clone(&stash));
    // An object to cache, created as a local reference on the main thread.
    let class = vm
        .jvm()
        .find_class("java/lang/Object")
        .expect("bootstrapped");
    let oop = vm.jvm_mut().alloc_object(class);
    let thread = vm.jvm().main_thread();
    let obj = vm.jvm_mut().new_local(thread, oop);

    let mut session = Session::new(vm);
    if with_jinn {
        jinn::core::install(&mut session);
    }
    let bound = session.run_native(thread, remember, &[JValue::Ref(obj)]);
    assert!(
        matches!(bound, RunOutcome::Completed(_)),
        "remember itself is legal"
    );
    session.run_native(thread, recall, &[])
}

fn main() {
    println!("== without Jinn ==");
    match run(false) {
        RunOutcome::Completed(_) => {
            println!("the program 'worked' — the dangling use went unnoticed (a time bomb)\n")
        }
        other => println!("the raw VM reacted with: {other:?}\n"),
    }

    println!("== with Jinn (-agentlib:jinn) ==");
    match run(true) {
        RunOutcome::CheckerException(v) => {
            println!("jinn.JNIAssertionFailure thrown at the point of failure:");
            println!("  machine:     {}", v.machine);
            println!("  error state: {}", v.error_state);
            println!("  function:    {}", v.function);
            println!(
                "  message:     {}",
                v.message.lines().next().unwrap_or_default()
            );
            for frame in &v.backtrace {
                println!("      at {frame}");
            }
        }
        other => println!("unexpected outcome: {other:?}"),
    }
}
