//! Record a buggy program once, then re-judge the trace under every
//! standard checker configuration — Table 1 columns from a recording,
//! with no live re-execution (the `jinn-replay` differential harness).
//!
//! ```text
//! cargo run --example replay_diff [program]
//! ```
//!
//! Pass a microbenchmark or case-study name (default `ExceptionState`);
//! run with `--list` to see all twenty.

use jinn::replay::{diff_standard, program_by_name, program_names, record_program, Trace};

fn main() {
    let arg = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "ExceptionState".to_string());
    if arg == "--list" {
        for name in program_names() {
            println!("{name}");
        }
        return;
    }
    let Some(program) = program_by_name(&arg) else {
        eprintln!("no recordable program named `{arg}`; try --list");
        std::process::exit(1);
    };

    // Record once, on a maximally-permissive vendor with no checkers:
    // the trace captures the program's boundary behaviour past its bug.
    let bytes = record_program(&program);
    let trace = Trace::parse(&bytes).expect("a fresh recording parses");
    println!("{}", trace.summary(bytes.len()));
    println!();

    // Re-judge the same trace under the five standard configurations.
    let report = diff_standard(&bytes).expect("a fresh recording replays");
    println!("{}", report.render());
    if report.agree() {
        println!("every configuration agrees on this trace");
    } else {
        println!(
            "{} distinct behaviors from one {}-byte recording",
            report.distinct_behaviors(),
            bytes.len()
        );
    }
}
