//! Render the paper's state-machine specifications — the Figures 2, 6, 7
//! and 8 content — as tables and Graphviz diagrams.
//!
//! ```text
//! cargo run --example state_machines            # ASCII tables
//! cargo run --example state_machines -- --dot   # Graphviz dot to stdout
//! ```

use jinn::fsm::{ascii_table, dot, ConstraintClass};

fn main() {
    let want_dot = std::env::args().any(|a| a == "--dot");
    let jni_machines = jinn::spec::machines();
    let py_machines = jinn::py::machines();

    if want_dot {
        for m in jni_machines.iter().chain(py_machines.iter()) {
            println!("{}", dot(m));
        }
        return;
    }

    println!("The eleven JNI state machines (paper Figures 2, 6, 7, 8)\n");
    for class in [
        ConstraintClass::RuntimeState,
        ConstraintClass::Type,
        ConstraintClass::Resource,
    ] {
        let label = match class {
            ConstraintClass::RuntimeState => "JVM state constraints",
            ConstraintClass::Type => "Type constraints",
            ConstraintClass::Resource => "Resource constraints",
        };
        println!("==== {label} ====\n");
        for m in jni_machines.iter().filter(|m| m.class() == class) {
            println!("{}", ascii_table(m));
        }
    }

    println!("==== Python/C machines (Section 7) ====\n");
    for m in &py_machines {
        println!("{}", ascii_table(m));
    }

    let points = jinn::spec::instrumentation();
    println!(
        "Resolved against the 229-function registry these machines expand into {} \
         synthesized checks (Algorithm 1's cross product).",
        points.len()
    );
}
