//! One bug, five tools: how HotSpot, J9, their `-Xcheck:jni` modes, and
//! Jinn each react to the same JNI misuse (paper Table 1 / Figure 9).
//!
//! ```text
//! cargo run --example vendor_comparison [scenario]
//! ```
//!
//! Pass a microbenchmark name (default `ExceptionState`); run with
//! `--list` to see all sixteen.

use jinn::microbench::{run_scenario, scenarios, Config};
use jinn::vendors::Vendor;

fn main() {
    let arg = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "ExceptionState".to_string());
    if arg == "--list" {
        for s in scenarios() {
            println!("{:28} ({} / {})", s.name, s.machine, s.error_state);
        }
        return;
    }
    let Some(scenario) = scenarios().into_iter().find(|s| s.name == arg) else {
        eprintln!("no microbenchmark named `{arg}`; try --list");
        std::process::exit(1);
    };

    println!(
        "microbenchmark: {} (pitfall {:?})",
        scenario.name, scenario.pitfall
    );
    println!(
        "violates: {} -> {}\n",
        scenario.machine, scenario.error_state
    );

    let configs = [
        Config::Default(Vendor::HotSpot),
        Config::Default(Vendor::J9),
        Config::Xcheck(Vendor::HotSpot),
        Config::Xcheck(Vendor::J9),
        Config::Jinn(Vendor::HotSpot),
        Config::Jinn(Vendor::J9),
    ];
    for config in configs {
        let scenario = scenarios()
            .into_iter()
            .find(|s| s.name == scenario.name)
            .expect("still there");
        let o = run_scenario(&scenario, config);
        println!("{:22} -> {}", config.label(), o.behavior);
        if let Some(msg) = &o.message {
            println!("{:22}    {}", "", msg.lines().next().unwrap_or_default());
        }
    }
    println!();
    println!(
        "Jinn's verdict is identical on both vendor models — it interposes through \
         the tools interface and needs nothing vendor-specific."
    );
}
