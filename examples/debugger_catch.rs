//! Catching Jinn's exception in "Java" code — the paper's debugging story
//! (Sections 2.3 and 6.3): `jinn.JNIAssertionFailure` is an ordinary Java
//! exception, so a GUI program can report it in a dialog, and jdb/Eclipse
//! JDT can break on it with full program state.
//!
//! ```text
//! cargo run --example debugger_catch
//! ```

use std::rc::Rc;

use jinn::jni::{typed, JniError, Session, Vm};
use jinn::jvm::JValue;

fn main() {
    let mut vm = Vm::permissive();

    // The buggy native method (a dangling local reference).
    let (_c, buggy) = vm.define_native_class(
        "app/Renderer",
        "render",
        "(Ljava/lang/Object;)V",
        true,
        Rc::new(|env, args| {
            let obj = args[0].as_ref().expect("scene object");
            let r = typed::new_local_ref(env, obj)?;
            typed::delete_local_ref(env, r)?;
            typed::get_object_class(env, r)?; // Jinn throws here
            Ok(JValue::Void)
        }),
    );

    // The "Java" GUI layer: calls the native renderer inside a try/catch
    // and turns failures into a user-visible dialog instead of a crash.
    let (_c2, gui) = vm.define_managed_class(
        "app/Gui",
        "onPaint",
        "(Ljava/lang/Object;)Ljava/lang/String;",
        true,
        Rc::new(move |env, args| {
            let scene = &args[0];
            match env.call_native_method(buggy, std::slice::from_ref(scene)) {
                Ok(_) => {
                    let ok = env.jvm_mut().alloc_string("painted");
                    let thread = env.thread();
                    let r = env.jvm_mut().new_local(thread, ok);
                    Ok(JValue::Ref(r))
                }
                Err(JniError::Exception | JniError::Detected(_)) => {
                    // catch (JNIAssertionFailure e) { showDialog(e); }
                    let pending = env
                        .jvm()
                        .thread(env.thread())
                        .pending_exception()
                        .expect("an exception is pending");
                    let dialog = format!("DIALOG: {}", env.jvm().describe_exception(pending));
                    let thread = env.thread();
                    env.jvm_mut().thread_mut(thread).set_pending_exception(None);
                    let s = env.jvm_mut().alloc_string(&dialog);
                    let thread = env.thread();
                    let r = env.jvm_mut().new_local(thread, s);
                    Ok(JValue::Ref(r))
                }
                Err(other) => Err(other),
            }
        }),
    );

    // A scene object.
    let class = vm
        .jvm()
        .find_class("java/lang/Object")
        .expect("bootstrapped");
    let oop = vm.jvm_mut().alloc_object(class);
    let thread = vm.jvm().main_thread();
    let scene = JValue::Ref(vm.jvm_mut().new_local(thread, oop));

    let mut session = Session::new(vm);
    jinn::core::install(&mut session);

    // Drive the GUI entry point from "main".
    let result = {
        let mut env = session.env(thread);
        env.call_managed_method(gui, &[scene])
    };
    match result {
        Ok(JValue::Ref(r)) => {
            let oop = session.vm().jvm().resolve(thread, r).unwrap().unwrap();
            let text = session.vm().jvm().string_value(oop).unwrap();
            println!("GUI thread survived; the user saw:\n");
            println!("  ┌──────────────────────────────────────────────┐");
            for line in text.lines().take(3) {
                println!("  │ {:44.44} │", line);
            }
            println!("  └──────────────────────────────────────────────┘");
            println!();
            println!(
                "Compare: without a catchable exception the same bug is a crash with no \
                 diagnosis, or silent corruption. \"Exceptions provide a principled and \
                 language supported approach to software quality.\""
            );
        }
        other => println!("unexpected: {other:?}"),
    }
}
