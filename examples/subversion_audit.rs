//! Auditing the Subversion JavaHL binding model with Jinn
//! (paper Section 6.4.1 and Figure 10).
//!
//! ```text
//! cargo run --example subversion_audit
//! ```

use jinn::workloads::subversion;

fn main() {
    println!("Subversion case study: regression suite under Jinn\n");

    let findings = subversion::audit();
    println!("findings ({}):", findings.len());
    for (i, v) in findings.iter().enumerate() {
        println!(
            "  {}. [{}/{}] at {}",
            i + 1,
            v.machine,
            v.error_state,
            v.function
        );
        println!("     {}", v.message.lines().next().unwrap_or_default());
    }
    println!();

    // The Figure 10 evidence that drove the fix.
    let original = subversion::local_ref_timeseries(false);
    let fixed = subversion::local_ref_timeseries(true);
    println!("live local references per makeJString call (Figure 10):");
    println!("  original: {original:?}");
    println!("  fixed:    {fixed:?}");
    println!();
    println!(
        "after inserting DeleteLocalRef, the program passes the regression test even \
         under Jinn: {}",
        subversion::fixed_program_is_clean()
    );
    println!();
    println!(
        "the overflow never crashed HotSpot or J9 — \"a highly optimized JVM may crash \
         if it assumes that JNI code is well-behaved\" — which is why only a dynamic \
         checker at the boundary sees it."
    );
}
