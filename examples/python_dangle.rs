//! The Python/C borrowed-reference dangle of the paper's Figure 11, and
//! the synthesized checker that catches it (Section 7).
//!
//! ```text
//! cargo run --example python_dangle
//! ```

use jinn::py::{dangle_bug, dangle_bug_fixed, BuildArg, PyRunOutcome, PySession};

fn main() {
    println!("Figure 11: dangling borrowed reference in a Python extension\n");

    // The buggy extension runs "fine" on the plain interpreter: the
    // borrowed `first` still points at freed-but-unrecycled memory.
    let mut plain = PySession::new();
    let out = plain.run(|env| {
        let names = ["Eric", "Graham", "John", "Michael", "Terry", "Terry"];
        let args: Vec<BuildArg> = names
            .iter()
            .map(|n| BuildArg::Str((*n).to_string()))
            .collect();
        let pythons = env.py_build_value("[ssssss]", &args)?;
        let first = env.py_list_get_item(pythons, 0)?; // borrowed
        println!("1. first = {}.", env.py_string_as_string(first)?);
        env.py_decref(pythons)?; // first is now dangling
        println!("2. first = {}.", env.py_string_as_string(first)?); // BUG
        Ok(())
    });
    println!("plain interpreter outcome: {out:?}");
    println!("(\"in practice, the behavior depends on whether the interpreter reuses");
    println!("  the memory between the implicit release and the explicit use\")\n");

    // The synthesized checker tracks co-owners and borrowers and signals
    // the use of the invalidated borrow.
    let mut checked = PySession::with_checker();
    match checked.run(|env| dangle_bug(env).map(|_| ())) {
        PyRunOutcome::CheckerError(v) => {
            println!("checker: {v}");
        }
        other => println!("unexpected: {other:?}"),
    }

    // And stays silent on the correct variant.
    let mut fixed = PySession::with_checker();
    let out = fixed.run(|env| dangle_bug_fixed(env).map(|_| ()));
    println!("\nfixed variant outcome: {out:?} (no false positives)");
    assert!(fixed.shutdown().is_empty());
}
