//! The observability quickstart from README: enable the recorder, run a
//! buggy workload, and dump the forensics report, metrics snapshot, and
//! Chrome trace — the paper's Figure 9 debugger experience as data.
//!
//! ```text
//! cargo run --example obs_forensics
//! ```

use std::rc::Rc;

use jinn::jni::{typed, RunOutcome, Session, Vm};
use jinn::jvm::JValue;
use jinn::obs::Recorder;

fn main() {
    let mut vm = Vm::permissive();

    // A native method with a seeded use-after-release bug.
    let (_c, buggy) = vm.define_native_class(
        "app/Renderer",
        "draw",
        "(Ljava/lang/Object;)V",
        true,
        Rc::new(|env, args| {
            let obj = args[0].as_ref().expect("ref arg");
            let icon = typed::new_local_ref(env, obj)?;
            typed::delete_local_ref(env, icon)?;
            // BUG: `icon` is dangling from here on.
            let _ = typed::is_same_object(env, obj, icon)?;
            Ok(JValue::Void)
        }),
    );
    let class = vm.jvm().find_class("java/lang/Object").expect("bootstrap");
    let oop = vm.jvm_mut().alloc_object(class);
    let thread = vm.jvm().main_thread();
    let arg = JValue::Ref(vm.jvm_mut().new_local(thread, oop));

    let mut session = Session::new(vm);
    session.set_recorder(Recorder::enabled(4096)); // before install/attach
    jinn::core::install(&mut session);

    match session.run_native(thread, buggy, &[arg]) {
        RunOutcome::CheckerException(v) => {
            println!("checker verdict: [{}] {}\n", v.machine, v.message)
        }
        other => println!("unexpected outcome: {other:?}\n"),
    }

    if let Some(report) = session.take_bug_report() {
        println!("=== forensics report ===");
        println!("{}", report.render());
    }
    if let Some(snapshot) = session.recorder().snapshot() {
        println!("=== metrics snapshot ===");
        println!("{}", snapshot.render());
    }
    let chrome = session.recorder().chrome_trace().expect("enabled");
    println!(
        "=== chrome trace: {} bytes (load at chrome://tracing) ===",
        chrome.len()
    );
}
