//! `jinn-microbench` — the sixteen error-triggering JNI microbenchmarks.
//!
//! The paper's evaluation (Section 6.1) uses "a collection of 16 small JNI
//! programs, which are designed to trigger one each of the error states in
//! the eleven state machines" — covering every Table 1 pitfall except
//! pitfall 8, which cannot be detected at the language boundary. This
//! crate reproduces all sixteen, each runnable under any of the five
//! configurations of the evaluation: two vendor defaults, two
//! `-Xcheck:jni` baselines, and Jinn.
//!
//! # Example
//!
//! ```
//! use jinn_microbench::{run_scenario, scenarios, Behavior, Config};
//! use jinn_vendors::Vendor;
//!
//! let dangling = scenarios()
//!     .into_iter()
//!     .find(|s| s.name == "LocalRefDangling")
//!     .expect("Figure 1 microbenchmark exists");
//! // HotSpot silently crashes...
//! let observed = run_scenario(&dangling, Config::Default(Vendor::HotSpot));
//! assert_eq!(observed.behavior, Behavior::Crash);
//! // ...Jinn pinpoints the bug.
//! let observed = run_scenario(&dangling, Config::Jinn(Vendor::HotSpot));
//! assert_eq!(observed.behavior, Behavior::JinnException);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod scenarios;

use jinn_vendors::Vendor;
use minijni::{ReportAction, RunOutcome, Session};
use minijvm::{JValue, MethodId};

pub use scenarios::scenarios;

/// One microbenchmark: a small JNI program that violates exactly one
/// constraint.
pub struct Scenario {
    /// CamelCase name, e.g. `"ExceptionState"`.
    pub name: &'static str,
    /// Table 1 pitfall number, if the scenario corresponds to a row.
    pub pitfall: Option<u8>,
    /// The state machine whose error state it triggers.
    pub machine: &'static str,
    /// The error state triggered.
    pub error_state: &'static str,
    /// Whether the buggy behaviour is a silent resource leak by default.
    pub leaks: bool,
    /// Builds the program into a VM; returns the native entry points (run
    /// in order) and the arguments for the first.
    pub build: fn(&mut minijni::Vm) -> Setup,
}

impl std::fmt::Debug for Scenario {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Scenario")
            .field("name", &self.name)
            .field("pitfall", &self.pitfall)
            .field("machine", &self.machine)
            .finish_non_exhaustive()
    }
}

/// The built program: native entry methods to invoke in order, plus the
/// arguments of the first entry.
#[derive(Debug)]
pub struct Setup {
    /// Entry methods, invoked in order.
    pub entries: Vec<MethodId>,
    /// Arguments for the first entry (subsequent entries take none).
    pub first_args: Vec<JValue>,
}

/// A run configuration of the evaluation: which JVM, which checker.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Config {
    /// Production run, no dynamic checking.
    Default(Vendor),
    /// `-Xcheck:jni`.
    Xcheck(Vendor),
    /// `-agentlib:jinn` (vendor-independent: works on either VM).
    Jinn(Vendor),
}

impl Config {
    /// The underlying vendor.
    pub fn vendor(self) -> Vendor {
        match self {
            Config::Default(v) | Config::Xcheck(v) | Config::Jinn(v) => v,
        }
    }

    /// Column label as in Table 1.
    pub fn label(self) -> String {
        match self {
            Config::Default(v) => format!("{v}"),
            Config::Xcheck(v) => format!("{v} -Xcheck:jni"),
            Config::Jinn(v) => format!("Jinn on {v}"),
        }
    }
}

/// The externally observable behaviour of a run, with the Table 1 legend's
/// vocabulary.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Behavior {
    /// Jinn threw a `JNIAssertionFailure` (or reported at shutdown).
    JinnException,
    /// A checker printed a diagnosis and aborted the VM.
    Error,
    /// A checker printed a diagnosis and kept running.
    Warning,
    /// A `NullPointerException` was raised.
    Npe,
    /// The process hung.
    Deadlock,
    /// The process aborted without diagnosis.
    Crash,
    /// The program kept running and silently leaked a resource.
    Leak,
    /// The program kept running in spite of undefined JVM state.
    Running,
}

impl std::fmt::Display for Behavior {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            Behavior::JinnException => "exception",
            Behavior::Error => "error",
            Behavior::Warning => "warning",
            Behavior::Npe => "NPE",
            Behavior::Deadlock => "deadlock",
            Behavior::Crash => "crash",
            Behavior::Leak => "leak",
            Behavior::Running => "running",
        };
        f.write_str(s)
    }
}

impl Behavior {
    /// A behaviour counts as a *valid bug report* (Section 6.3) if the
    /// tool produced a diagnosis: exception, warning, or error.
    pub fn is_detection(self) -> bool {
        matches!(
            self,
            Behavior::JinnException | Behavior::Error | Behavior::Warning
        )
    }
}

/// What a run produced: the classified behaviour plus diagnostics.
#[derive(Debug, Clone)]
pub struct Observed {
    /// The classified behaviour.
    pub behavior: Behavior,
    /// The primary diagnosis message, if any tool produced one.
    pub message: Option<String>,
    /// The full session log (vendor warnings, exception descriptions).
    pub log: Vec<String>,
}

/// Runs one scenario under one configuration and classifies the outcome.
pub fn run_scenario(scenario: &Scenario, config: Config) -> Observed {
    let mut vm = config.vendor().vm();
    let setup = (scenario.build)(&mut vm);
    let thread = vm.jvm().main_thread();
    let mut session = Session::new(vm);
    match config {
        Config::Default(_) => {}
        Config::Xcheck(v) => session.attach(v.xcheck()),
        Config::Jinn(_) => {
            jinn_core::install(&mut session);
        }
    }

    let mut outcomes = Vec::new();
    for (i, &entry) in setup.entries.iter().enumerate() {
        {
            let mut env = session.env(thread);
            env.enter_java_frame(format!("{}.main({}.java:5)", scenario.name, scenario.name));
        }
        let args = if i == 0 {
            setup.first_args.clone()
        } else {
            Vec::new()
        };
        let outcome = session.run_native(thread, entry, &args);
        {
            let mut env = session.env(thread);
            env.exit_java_frame();
        }
        // Clear any pending exception between phases, as a Java driver
        // with a try/catch around each call would.
        let fatal = !matches!(outcome, RunOutcome::Completed(_));
        outcomes.push(outcome);
        if fatal {
            break;
        }
    }
    let shutdown_reports = session.shutdown();
    let log = session.take_log();

    // Classification, in Table 1 vocabulary.
    let mut behavior = Behavior::Running;
    let mut message = None;

    let final_outcome = outcomes.last().expect("at least one entry ran");
    let jinn_shutdown = shutdown_reports
        .iter()
        .find(|r| r.action == ReportAction::ThrowException);
    let warn_shutdown = shutdown_reports
        .iter()
        .find(|r| r.action == ReportAction::Warn);
    let has_warnings = log.iter().any(|l| l.contains("WARNING")) || warn_shutdown.is_some();

    match final_outcome {
        RunOutcome::CheckerException(v) => {
            behavior = Behavior::JinnException;
            message = Some(v.message.clone());
        }
        RunOutcome::UncaughtException(desc) if desc.contains("JNIAssertionFailure") => {
            behavior = Behavior::JinnException;
            message = Some(desc.clone());
        }
        RunOutcome::Died(d) if d.kind == minijvm::DeathKind::FatalError => {
            behavior = Behavior::Error;
            message = Some(d.message.clone());
        }
        _ => {}
    }
    if behavior == Behavior::Running {
        if let Some(r) = jinn_shutdown {
            behavior = Behavior::JinnException;
            message = Some(r.violation.message.clone());
        } else if has_warnings {
            behavior = Behavior::Warning;
            message = log
                .iter()
                .find(|l| l.contains("WARNING"))
                .cloned()
                .or_else(|| warn_shutdown.map(|r| r.violation.message.clone()));
        } else {
            match final_outcome {
                RunOutcome::UncaughtException(desc) if desc.contains("NullPointerException") => {
                    behavior = Behavior::Npe;
                    message = Some(desc.clone());
                }
                RunOutcome::Died(d) if d.kind == minijvm::DeathKind::Deadlock => {
                    behavior = Behavior::Deadlock;
                    message = Some(d.message.clone());
                }
                RunOutcome::Died(d) if d.kind == minijvm::DeathKind::Crash => {
                    behavior = Behavior::Crash;
                    message = Some(d.message.clone());
                }
                _ => {
                    behavior = if scenario.leaks && matches!(config, Config::Default(_)) {
                        Behavior::Leak
                    } else {
                        Behavior::Running
                    };
                }
            }
        }
    }

    Observed {
        behavior,
        message,
        log,
    }
}

/// Runs all sixteen scenarios under a configuration.
pub fn run_all(config: Config) -> Vec<(&'static str, Observed)> {
    scenarios()
        .into_iter()
        .map(|s| (s.name, run_scenario(&s, config)))
        .collect()
}

/// Detection coverage (Section 6.3): fraction of the sixteen
/// microbenchmarks on which the configuration produced a valid bug report.
pub fn coverage(config: Config) -> (usize, usize) {
    let results = run_all(config);
    let detected = results
        .iter()
        .filter(|(_, o)| o.behavior.is_detection())
        .count();
    (detected, results.len())
}
