//! The sixteen microbenchmark programs.
//!
//! Each builds a tiny multilingual program whose native half (Rust
//! closures standing in for C) violates exactly one JNI constraint —
//! one error state of the eleven machines, covering every Table 1 pitfall
//! except pitfall 8 (whose bug lives in C memory accesses the boundary
//! cannot see).

use std::cell::RefCell;
use std::rc::Rc;

use minijni::{typed, Vm};
use minijvm::class::names;
use minijvm::{JRef, JValue, MemberFlags, MethodId};

use crate::{Scenario, Setup};

fn object_arg(vm: &mut Vm) -> JValue {
    let class = vm.jvm().find_class(names::OBJECT).expect("bootstrapped");
    let oop = vm.jvm_mut().alloc_object(class);
    let thread = vm.jvm().main_thread();
    JValue::Ref(vm.jvm_mut().new_local(thread, oop))
}

fn string_arg(vm: &mut Vm, text: &str) -> JValue {
    let oop = vm.jvm_mut().alloc_string(text);
    let thread = vm.jvm().main_thread();
    JValue::Ref(vm.jvm_mut().new_local(thread, oop))
}

fn single(vm: &mut Vm, entry: MethodId, first_args: Vec<JValue>) -> Setup {
    let _ = vm;
    Setup {
        entries: vec![entry],
        first_args,
    }
}

// --- 1. JNIEnv* used across threads (pitfall 14) -----------------------

fn build_env_mismatch(vm: &mut Vm) -> Setup {
    let other = vm.jvm_mut().spawn_thread();
    let cached_env = vm.jvm().thread(other).env();
    let (_, entry) = vm.define_native_class(
        "EnvMismatch",
        "call",
        "()V",
        true,
        Rc::new(move |env, _| {
            // C code cached another thread's JNIEnv* and uses it here.
            env.set_presented_env(cached_env);
            typed::get_version(env)?;
            Ok(JValue::Void)
        }),
    );
    single(vm, entry, vec![])
}

// --- 2. Exception state (pitfall 1; the Figure 9 benchmark) -------------

fn build_exception_state(vm: &mut Vm) -> Setup {
    let (_class, _foo) = vm.define_managed_class(
        "ExceptionState",
        "raise",
        "()V",
        true,
        Rc::new(|env, _| Err(env.java_throw(names::RUNTIME_EXCEPTION, "checked by native code"))),
    );
    let (_, entry) = vm.define_native_class(
        "ExceptionStateNative",
        "call",
        "()V",
        true,
        Rc::new(|env, _| {
            let clazz = typed::find_class(env, "ExceptionState")?;
            let raise = typed::get_static_method_id(env, clazz, "raise", "()V")?;
            // Java throws; the C code ignores the pending exception...
            let _ = typed::call_static_void_method_a(env, clazz, raise, &[]);
            // ...and keeps calling exception-sensitive JNI functions.
            let _ = typed::get_static_method_id(env, clazz, "raise", "()V");
            let _ = typed::call_static_void_method_a(env, clazz, raise, &[]);
            Ok(JValue::Void)
        }),
    );
    single(vm, entry, vec![])
}

// --- 3. JNI call inside a critical section (pitfall 16) -----------------

fn build_critical_call(vm: &mut Vm) -> Setup {
    let (_, entry) = vm.define_native_class(
        "CriticalState",
        "call",
        "()V",
        true,
        Rc::new(|env, _| {
            let s = typed::new_string_utf(env, "pinned data")?;
            let pin = typed::get_string_critical(env, s)?;
            // Any other JNI call is forbidden until the release.
            let _ = typed::get_version(env)?;
            typed::release_string_critical(env, s, pin)?;
            Ok(JValue::Void)
        }),
    );
    single(vm, entry, vec![])
}

// --- 4. Unmatched critical release --------------------------------------

fn build_critical_unmatched_release(vm: &mut Vm) -> Setup {
    let (_, entry) = vm.define_native_class(
        "CriticalRelease",
        "call",
        "()V",
        true,
        Rc::new(|env, _| {
            let s = typed::new_string_utf(env, "not critical")?;
            // Acquired through the non-critical getter...
            let pin = typed::get_string_chars(env, s)?;
            // ...but released through the critical one: unmatched.
            let _ = typed::release_string_critical(env, s, pin);
            Ok(JValue::Void)
        }),
    );
    single(vm, entry, vec![])
}

// --- 5. jclass confused with jobject (pitfall 3) -------------------------

fn build_jclass_confusion(vm: &mut Vm) -> Setup {
    let (_c, _m) = vm.define_managed_class(
        "ConfusionTarget",
        "run",
        "()V",
        true,
        Rc::new(|_env, _| Ok(JValue::Void)),
    );
    let (_, entry) = vm.define_native_class(
        "JclassConfusion",
        "call",
        "(Ljava/lang/Object;)V",
        true,
        Rc::new(|env, args| {
            let plain_object = args[0].as_ref().expect("object argument");
            let clazz = typed::find_class(env, "ConfusionTarget")?;
            let mid = typed::get_static_method_id(env, clazz, "run", "()V")?;
            // A jobject where a jclass belongs.
            typed::call_static_void_method_a(env, plain_object, mid, &[])?;
            Ok(JValue::Void)
        }),
    );
    let arg = object_arg(vm);
    single(vm, entry, vec![arg])
}

// --- 6. Method ID confused with a reference (pitfall 6) ------------------

fn build_id_confusion(vm: &mut Vm) -> Setup {
    let (_, entry) = vm.define_native_class(
        "IdConfusion",
        "call",
        "(Ljava/lang/Object;)V",
        true,
        Rc::new(|env, args| {
            let obj = args[0].as_ref().expect("object argument");
            // C code cast a pointer-sized garbage value to jmethodID.
            let forged = minijvm::MethodId::forged(0xFFFF_FFF0);
            typed::call_void_method_a(env, obj, forged, &[])?;
            Ok(JValue::Void)
        }),
    );
    let arg = object_arg(vm);
    single(vm, entry, vec![arg])
}

// --- 7. Write to a final field (pitfall 9) -------------------------------

fn build_final_field_write(vm: &mut Vm) -> Setup {
    let class = vm
        .jvm_mut()
        .registry_mut()
        .define("ConfigHolder")
        .field("LIMIT", "I", MemberFlags::public().with_final(true))
        .build()
        .expect("fresh class");
    let oop = vm.jvm_mut().alloc_object(class);
    let thread = vm.jvm().main_thread();
    let arg = JValue::Ref(vm.jvm_mut().new_local(thread, oop));
    let (_, entry) = vm.define_native_class(
        "FinalFieldWrite",
        "call",
        "(LConfigHolder;)V",
        true,
        Rc::new(|env, args| {
            let obj = args[0].as_ref().expect("holder argument");
            let clazz = typed::get_object_class(env, obj)?;
            let fid = typed::get_field_id(env, clazz, "LIMIT", "I")?;
            typed::set_int_field(env, obj, fid, 42)?;
            Ok(JValue::Void)
        }),
    );
    single(vm, entry, vec![arg])
}

// --- 8. Null argument to a JNI function (pitfall 2) ----------------------

fn build_null_argument(vm: &mut Vm) -> Setup {
    let (_c, _m) = vm.define_managed_class(
        "NullTarget",
        "ping",
        "()V",
        true,
        Rc::new(|_env, _| Ok(JValue::Void)),
    );
    let (_, entry) = vm.define_native_class(
        "NullArgument",
        "call",
        "()V",
        true,
        Rc::new(|env, _| {
            let clazz = typed::find_class(env, "NullTarget")?;
            let mid = typed::get_static_method_id(env, clazz, "ping", "()V")?;
            // NULL where a non-null class is required.
            typed::call_static_void_method_a(env, JRef::NULL, mid, &[])?;
            Ok(JValue::Void)
        }),
    );
    single(vm, entry, vec![])
}

// --- 9. Pinned buffer never released (pitfall 11) ------------------------

fn build_pin_leak(vm: &mut Vm) -> Setup {
    let arg = string_arg(vm, "The quick brown fox");
    let (_, entry) = vm.define_native_class(
        "PinLeak",
        "call",
        "(Ljava/lang/String;)V",
        true,
        Rc::new(|env, args| {
            let s = args[0].as_ref().expect("string argument");
            let pin = typed::get_string_utf_chars(env, s)?;
            let _contents = typed::read_utf_buffer(env, pin);
            // Missing ReleaseStringUTFChars: the buffer leaks.
            Ok(JValue::Void)
        }),
    );
    single(vm, entry, vec![arg])
}

// --- 10. Pinned buffer released twice -------------------------------------

fn build_pin_double_free(vm: &mut Vm) -> Setup {
    let (_, entry) = vm.define_native_class(
        "PinDoubleFree",
        "call",
        "()V",
        true,
        Rc::new(|env, _| {
            let arr = typed::new_int_array(env, 8)?;
            let pin = typed::get_int_array_elements(env, arr)?;
            typed::release_int_array_elements(env, arr, pin, 0)?;
            // Double free.
            let _ = typed::release_int_array_elements(env, arr, pin, 0);
            Ok(JValue::Void)
        }),
    );
    single(vm, entry, vec![])
}

// --- 11. Monitor never released -------------------------------------------

fn build_monitor_leak(vm: &mut Vm) -> Setup {
    let arg = object_arg(vm);
    let (_, entry) = vm.define_native_class(
        "MonitorLeak",
        "call",
        "(Ljava/lang/Object;)V",
        true,
        Rc::new(|env, args| {
            let obj = args[0].as_ref().expect("object argument");
            typed::monitor_enter(env, obj)?;
            // Missing MonitorExit: deadlock risk for the next contender.
            Ok(JValue::Void)
        }),
    );
    single(vm, entry, vec![arg])
}

// --- 12. Global reference never deleted (pitfall 11) -----------------------

fn build_global_leak(vm: &mut Vm) -> Setup {
    let arg = object_arg(vm);
    let (_, entry) = vm.define_native_class(
        "GlobalLeak",
        "call",
        "(Ljava/lang/Object;)V",
        true,
        Rc::new(|env, args| {
            let obj = args[0].as_ref().expect("object argument");
            let _g = typed::new_global_ref(env, obj)?;
            // Missing DeleteGlobalRef.
            Ok(JValue::Void)
        }),
    );
    single(vm, entry, vec![arg])
}

// --- 13. Use of a deleted global reference ---------------------------------

fn build_global_dangling(vm: &mut Vm) -> Setup {
    let arg = object_arg(vm);
    let (_, entry) = vm.define_native_class(
        "GlobalDangling",
        "call",
        "(Ljava/lang/Object;)V",
        true,
        Rc::new(|env, args| {
            let obj = args[0].as_ref().expect("object argument");
            let g = typed::new_global_ref(env, obj)?;
            typed::delete_global_ref(env, g)?;
            // Dangling use.
            typed::get_object_class(env, g)?;
            Ok(JValue::Void)
        }),
    );
    single(vm, entry, vec![arg])
}

// --- 14. Local reference overflow (pitfall 12) ------------------------------

fn build_local_overflow(vm: &mut Vm) -> Setup {
    let arg = object_arg(vm);
    let (_, entry) = vm.define_native_class(
        "LocalOverflow",
        "call",
        "(Ljava/lang/Object;)V",
        true,
        Rc::new(|env, args| {
            let obj = args[0].as_ref().expect("object argument");
            // 20 acquisitions without EnsureLocalCapacity/PushLocalFrame:
            // the JNI only guarantees 16.
            for _ in 0..20 {
                typed::new_local_ref(env, obj)?;
            }
            Ok(JValue::Void)
        }),
    );
    single(vm, entry, vec![arg])
}

// --- 15. Use of a dead local reference (pitfall 13; Figure 1 / GNOME) --------

fn build_local_dangling(vm: &mut Vm) -> Setup {
    let stash: Rc<RefCell<Option<JRef>>> = Rc::default();
    let arg = object_arg(vm);
    let (_, bind) = {
        let stash = Rc::clone(&stash);
        vm.define_native_class(
            "Callback",
            "bind",
            "(Ljava/lang/Object;)V",
            true,
            Rc::new(move |_env, args| {
                // cb->receiver = receiver: the local reference escapes
                // into a C heap structure (Figure 1, line 6).
                *stash.borrow_mut() = args[0].as_ref();
                Ok(JValue::Void)
            }),
        )
    };
    let (_, fire) = {
        let stash = Rc::clone(&stash);
        vm.define_native_class(
            "CallbackDispatch",
            "fire",
            "()V",
            true,
            Rc::new(move |env, _| {
                let receiver = stash.borrow().expect("bind ran first");
                // (*env)->CallStaticVoidMethodA(env, cb->receiver, ...):
                // cb->receiver is a dead local reference (Figure 1, line 15).
                typed::get_object_class(env, receiver)?;
                Ok(JValue::Void)
            }),
        )
    };
    Setup {
        entries: vec![bind, fire],
        first_args: vec![arg],
    }
}

// --- 16. Local reference deleted twice ---------------------------------------

fn build_local_double_free(vm: &mut Vm) -> Setup {
    let arg = object_arg(vm);
    let (_, entry) = vm.define_native_class(
        "LocalDoubleFree",
        "call",
        "(Ljava/lang/Object;)V",
        true,
        Rc::new(|env, args| {
            let obj = args[0].as_ref().expect("object argument");
            let r = typed::new_local_ref(env, obj)?;
            typed::delete_local_ref(env, r)?;
            let _ = typed::delete_local_ref(env, r);
            Ok(JValue::Void)
        }),
    );
    single(vm, entry, vec![arg])
}

/// All sixteen microbenchmarks, in machine order.
pub fn scenarios() -> Vec<Scenario> {
    vec![
        Scenario {
            name: "EnvMismatch",
            pitfall: Some(14),
            machine: "jnienv-state",
            error_state: "Error:EnvMismatch",
            leaks: false,
            build: build_env_mismatch,
        },
        Scenario {
            name: "ExceptionState",
            pitfall: Some(1),
            machine: "exception-state",
            error_state: "Error:SensitiveCallWithPending",
            leaks: false,
            build: build_exception_state,
        },
        Scenario {
            name: "CriticalCall",
            pitfall: Some(16),
            machine: "critical-section",
            error_state: "Error:SensitiveCallInCritical",
            leaks: false,
            build: build_critical_call,
        },
        Scenario {
            name: "CriticalUnmatchedRelease",
            pitfall: None,
            machine: "critical-section",
            error_state: "Error:UnmatchedRelease",
            leaks: false,
            build: build_critical_unmatched_release,
        },
        Scenario {
            name: "JclassConfusion",
            pitfall: Some(3),
            machine: "fixed-typing",
            error_state: "Error:FixedTypeMismatch",
            leaks: false,
            build: build_jclass_confusion,
        },
        Scenario {
            name: "IdConfusion",
            pitfall: Some(6),
            machine: "entity-typing",
            error_state: "Error:EntityTypeMismatch",
            leaks: false,
            build: build_id_confusion,
        },
        Scenario {
            name: "FinalFieldWrite",
            pitfall: Some(9),
            machine: "access-control",
            error_state: "Error:FinalFieldWrite",
            leaks: false,
            build: build_final_field_write,
        },
        Scenario {
            name: "NullArgument",
            pitfall: Some(2),
            machine: "nullness",
            error_state: "Error:Null",
            leaks: false,
            build: build_null_argument,
        },
        Scenario {
            name: "PinLeak",
            pitfall: Some(11),
            machine: "pinned-buffer",
            error_state: "Error:Leak",
            leaks: true,
            build: build_pin_leak,
        },
        Scenario {
            name: "PinDoubleFree",
            pitfall: None,
            machine: "pinned-buffer",
            error_state: "Error:DoubleFree",
            leaks: false,
            build: build_pin_double_free,
        },
        Scenario {
            name: "MonitorLeak",
            pitfall: None,
            machine: "monitor",
            error_state: "Error:Leak",
            leaks: true,
            build: build_monitor_leak,
        },
        Scenario {
            name: "GlobalLeak",
            pitfall: None,
            machine: "global-reference",
            error_state: "Error:Leak",
            leaks: true,
            build: build_global_leak,
        },
        Scenario {
            name: "GlobalDangling",
            pitfall: None,
            machine: "global-reference",
            error_state: "Error:Dangling",
            leaks: false,
            build: build_global_dangling,
        },
        Scenario {
            name: "LocalOverflow",
            pitfall: Some(12),
            machine: "local-reference",
            error_state: "Error:Overflow",
            leaks: true,
            build: build_local_overflow,
        },
        Scenario {
            name: "LocalRefDangling",
            pitfall: Some(13),
            machine: "local-reference",
            error_state: "Error:Dangling",
            leaks: false,
            build: build_local_dangling,
        },
        Scenario {
            name: "LocalDoubleFree",
            pitfall: None,
            machine: "local-reference",
            error_state: "Error:DoubleFree",
            leaks: false,
            build: build_local_double_free,
        },
    ]
}

#[cfg(test)]
mod tests {
    use crate::{run_scenario, scenarios, Behavior, Config};
    use jinn_vendors::Vendor;

    fn observe(name: &str, config: Config) -> Behavior {
        let s = scenarios()
            .into_iter()
            .find(|s| s.name == name)
            .expect("scenario exists");
        run_scenario(&s, config).behavior
    }

    #[test]
    fn sixteen_scenarios() {
        assert_eq!(scenarios().len(), 16);
    }

    #[test]
    fn jinn_detects_every_scenario_on_both_vendors() {
        for vendor in Vendor::ALL {
            for s in scenarios() {
                let o = run_scenario(&s, Config::Jinn(vendor));
                assert_eq!(
                    o.behavior,
                    Behavior::JinnException,
                    "{} on {vendor}: {:?} (log: {:?})",
                    s.name,
                    o.behavior,
                    o.log
                );
            }
        }
    }

    #[test]
    fn table1_row1_exception_state() {
        assert_eq!(
            observe("ExceptionState", Config::Default(Vendor::HotSpot)),
            Behavior::Running
        );
        assert_eq!(
            observe("ExceptionState", Config::Default(Vendor::J9)),
            Behavior::Crash
        );
        assert_eq!(
            observe("ExceptionState", Config::Xcheck(Vendor::HotSpot)),
            Behavior::Warning
        );
        assert_eq!(
            observe("ExceptionState", Config::Xcheck(Vendor::J9)),
            Behavior::Error
        );
    }

    #[test]
    fn table1_row2_null_argument() {
        assert_eq!(
            observe("NullArgument", Config::Default(Vendor::HotSpot)),
            Behavior::Running
        );
        assert_eq!(
            observe("NullArgument", Config::Default(Vendor::J9)),
            Behavior::Crash
        );
        assert_eq!(
            observe("NullArgument", Config::Xcheck(Vendor::HotSpot)),
            Behavior::Running
        );
        assert_eq!(
            observe("NullArgument", Config::Xcheck(Vendor::J9)),
            Behavior::Crash
        );
    }

    #[test]
    fn table1_row3_jclass_confusion() {
        assert_eq!(
            observe("JclassConfusion", Config::Default(Vendor::HotSpot)),
            Behavior::Crash
        );
        assert_eq!(
            observe("JclassConfusion", Config::Default(Vendor::J9)),
            Behavior::Crash
        );
        assert_eq!(
            observe("JclassConfusion", Config::Xcheck(Vendor::HotSpot)),
            Behavior::Error
        );
        assert_eq!(
            observe("JclassConfusion", Config::Xcheck(Vendor::J9)),
            Behavior::Error
        );
    }

    #[test]
    fn table1_row9_final_field() {
        for vendor in Vendor::ALL {
            assert_eq!(
                observe("FinalFieldWrite", Config::Default(vendor)),
                Behavior::Npe
            );
            assert_eq!(
                observe("FinalFieldWrite", Config::Xcheck(vendor)),
                Behavior::Npe
            );
        }
    }

    #[test]
    fn table1_row12_local_overflow() {
        assert_eq!(
            observe("LocalOverflow", Config::Default(Vendor::HotSpot)),
            Behavior::Leak
        );
        assert_eq!(
            observe("LocalOverflow", Config::Xcheck(Vendor::HotSpot)),
            Behavior::Running
        );
        assert_eq!(
            observe("LocalOverflow", Config::Xcheck(Vendor::J9)),
            Behavior::Warning
        );
    }

    #[test]
    fn table1_row13_local_dangling() {
        assert_eq!(
            observe("LocalRefDangling", Config::Default(Vendor::HotSpot)),
            Behavior::Crash
        );
        assert_eq!(
            observe("LocalRefDangling", Config::Default(Vendor::J9)),
            Behavior::Crash
        );
        assert_eq!(
            observe("LocalRefDangling", Config::Xcheck(Vendor::HotSpot)),
            Behavior::Error
        );
        assert_eq!(
            observe("LocalRefDangling", Config::Xcheck(Vendor::J9)),
            Behavior::Error
        );
    }

    #[test]
    fn table1_row14_env_mismatch() {
        assert_eq!(
            observe("EnvMismatch", Config::Default(Vendor::HotSpot)),
            Behavior::Running
        );
        assert_eq!(
            observe("EnvMismatch", Config::Default(Vendor::J9)),
            Behavior::Crash
        );
        assert_eq!(
            observe("EnvMismatch", Config::Xcheck(Vendor::HotSpot)),
            Behavior::Error
        );
        assert_eq!(
            observe("EnvMismatch", Config::Xcheck(Vendor::J9)),
            Behavior::Crash
        );
    }

    #[test]
    fn table1_row16_critical() {
        assert_eq!(
            observe("CriticalCall", Config::Default(Vendor::HotSpot)),
            Behavior::Deadlock
        );
        assert_eq!(
            observe("CriticalCall", Config::Default(Vendor::J9)),
            Behavior::Deadlock
        );
        assert_eq!(
            observe("CriticalCall", Config::Xcheck(Vendor::HotSpot)),
            Behavior::Warning
        );
        assert_eq!(
            observe("CriticalCall", Config::Xcheck(Vendor::J9)),
            Behavior::Error
        );
    }

    #[test]
    fn section_6_3_coverage() {
        // Paper: Jinn 100%, HotSpot -Xcheck 56% (9/16), J9 -Xcheck 50% (8/16).
        let (jinn, total) = crate::coverage(Config::Jinn(Vendor::HotSpot));
        assert_eq!((jinn, total), (16, 16));
        let (hs, _) = crate::coverage(Config::Xcheck(Vendor::HotSpot));
        assert_eq!(hs, 9, "HotSpot -Xcheck should detect 9 of 16");
        let (j9, _) = crate::coverage(Config::Xcheck(Vendor::J9));
        assert_eq!(j9, 8, "J9 -Xcheck should detect 8 of 16");
    }

    #[test]
    fn vendors_disagree_on_many_benchmarks() {
        // "The dynamic checkers built into the HotSpot and J9 JVMs behave
        // inconsistently in more than half of our microbenchmarks."
        let mut disagreements = 0;
        for s in scenarios() {
            let hs = run_scenario(&s, Config::Xcheck(Vendor::HotSpot)).behavior;
            let j9 = run_scenario(&s, Config::Xcheck(Vendor::J9)).behavior;
            if hs != j9 {
                disagreements += 1;
            }
        }
        assert!(disagreements >= 8, "only {disagreements} disagreements");
    }
}
