//! Python/C sessions and the Section 7 example programs.

use jinn_obs::{forensics, BugReport, ForensicsConfig, Recorder, VerdictAction};

use crate::api::{BuildArg, PyEnv, PyError, PyInterpose, PyObsLabels, PyViolation};
use crate::interp::{PyThread, Python};
use crate::object::PyPtr;

/// One embedded-interpreter run: the interpreter plus its attached
/// checkers (the statically-linked analysis of Section 7.2).
#[derive(Default)]
pub struct PySession {
    py: Python,
    checkers: Vec<Box<dyn PyInterpose>>,
    recorder: Recorder,
    forensics_config: ForensicsConfig,
    last_forensics: Option<BugReport>,
    labels: PyObsLabels,
}

impl std::fmt::Debug for PySession {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PySession")
            .field(
                "checkers",
                &self
                    .checkers
                    .iter()
                    .map(|c| c.name().to_string())
                    .collect::<Vec<_>>(),
            )
            .finish_non_exhaustive()
    }
}

/// How a native extension routine ended.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PyRunOutcome {
    /// Completed normally.
    Completed,
    /// Ended with a Python exception pending (type and message).
    Raised(String, String),
    /// The interpreter crashed or deadlocked.
    Crashed(String),
    /// A checker detected a violation.
    CheckerError(PyViolation),
}

impl PySession {
    /// A fresh interpreter with no checkers.
    pub fn new() -> PySession {
        PySession {
            py: Python::new(),
            checkers: Vec::new(),
            recorder: Recorder::disabled(),
            forensics_config: ForensicsConfig::default(),
            last_forensics: None,
            labels: PyObsLabels::default(),
        }
    }

    /// Attaches an observability recorder: every Python/C call records a
    /// boundary-crossing trace event and per-function metrics, and checker
    /// verdicts capture forensics reports.
    pub fn set_recorder(&mut self, recorder: Recorder) {
        self.recorder = recorder;
    }

    /// The session's recorder (disabled unless [`PySession::set_recorder`]
    /// was called).
    pub fn recorder(&self) -> &Recorder {
        &self.recorder
    }

    /// Sets how many trace events forensics reports keep.
    pub fn set_forensics_config(&mut self, config: ForensicsConfig) {
        self.forensics_config = config;
    }

    /// The forensics report captured at the most recent checker verdict,
    /// if any.
    pub fn last_bug_report(&self) -> Option<&BugReport> {
        self.last_forensics.as_ref()
    }

    /// Takes ownership of the most recent forensics report.
    pub fn take_bug_report(&mut self) -> Option<BugReport> {
        self.last_forensics.take()
    }

    /// A fresh interpreter with the synthesized checker attached.
    pub fn with_checker() -> PySession {
        let mut s = PySession::new();
        s.attach(Box::new(crate::checker::PyChecker::new()));
        s
    }

    /// Attaches a checker.
    pub fn attach(&mut self, checker: Box<dyn PyInterpose>) {
        self.checkers.push(checker);
    }

    /// The interpreter (assertions).
    pub fn python(&self) -> &Python {
        &self.py
    }

    /// An environment for the main thread.
    pub fn env(&mut self) -> PyEnv<'_> {
        PyEnv::new(
            &mut self.py,
            &mut self.checkers,
            Python::MAIN,
            self.recorder.clone(),
            &mut self.labels,
        )
    }

    /// An environment for an arbitrary thread.
    pub fn env_on(&mut self, thread: PyThread) -> PyEnv<'_> {
        PyEnv::new(
            &mut self.py,
            &mut self.checkers,
            thread,
            self.recorder.clone(),
            &mut self.labels,
        )
    }

    /// Runs a native extension routine and classifies how it ended.
    pub fn run(
        &mut self,
        body: impl FnOnce(&mut PyEnv<'_>) -> Result<(), PyError>,
    ) -> PyRunOutcome {
        let result = {
            let mut env = self.env();
            body(&mut env)
        };
        let outcome = match result {
            Err(PyError::Detected(v)) => PyRunOutcome::CheckerError(v),
            Err(PyError::Crash(m)) => PyRunOutcome::Crashed(m),
            Err(PyError::Raised) | Ok(()) => {
                if let Some(d) = self.py.death() {
                    PyRunOutcome::Crashed(d.to_string())
                } else {
                    match self.py.exception() {
                        Some(e) if e.kind == "JinnPyCheckError" => {
                            PyRunOutcome::CheckerError(PyViolation {
                                machine: "borrowed-reference",
                                function: "<pending>".to_string(),
                                message: e.message.clone(),
                                entity: None,
                            })
                        }
                        Some(e) => PyRunOutcome::Raised(e.kind.clone(), e.message.clone()),
                        None => PyRunOutcome::Completed,
                    }
                }
            }
        };
        if let PyRunOutcome::CheckerError(v) = &outcome {
            if self.recorder.is_enabled() {
                self.last_forensics = Some(forensics::capture(
                    &self.recorder,
                    self.forensics_config,
                    v.machine,
                    error_state_of(v),
                    &v.function,
                    &v.message,
                    Python::MAIN.0,
                    Vec::new(),
                ));
            }
        }
        outcome
    }

    /// Interpreter shutdown: runs the checkers' leak sweeps.
    pub fn shutdown(&mut self) -> Vec<PyViolation> {
        let mut out = Vec::new();
        for c in &mut self.checkers {
            out.extend(c.shutdown(&self.py));
        }
        if self.recorder.is_enabled() {
            for v in &out {
                // Shutdown sweeps are cold: intern per verdict.
                let machine = self.recorder.intern(v.machine);
                let function = self.recorder.intern(&v.function);
                self.recorder
                    .verdict_id(Python::MAIN.0, machine, function, VerdictAction::Warn);
            }
            self.recorder.count("checks.violations", out.len() as u64);
        }
        out
    }
}

/// Maps a violation back to its machine's error-state name (the machines
/// in [`crate::checker`] declare these) for forensics headers.
fn error_state_of(v: &PyViolation) -> &'static str {
    match v.machine {
        "gil" => "Error:CallWithoutGil",
        "py-exception" => "Error:SensitiveCallWithPending",
        "borrowed-reference" => {
            if v.message.contains("never released") {
                "Error:Leak"
            } else if v.message.contains("Py_DECREF") {
                "Error:OverRelease"
            } else {
                "Error:DanglingBorrow"
            }
        }
        _ => "Error",
    }
}

/// The `dangle_bug` extension function of Figure 11, line for line.
///
/// Returns what `first` read on line 10 (the buggy use) so callers can
/// observe the silent-corruption behaviour; under the checker the function
/// aborts at that line instead.
pub fn dangle_bug(env: &mut PyEnv<'_>) -> Result<String, PyError> {
    // 4. pythons = Py_BuildValue("[ssssss]", "Eric", "Graham", ...);
    let pythons = env.py_build_value(
        "[ssssss]",
        &[
            BuildArg::Str("Eric".into()),
            BuildArg::Str("Graham".into()),
            BuildArg::Str("John".into()),
            BuildArg::Str("Michael".into()),
            BuildArg::Str("Terry".into()),
            BuildArg::Str("Terry".into()),
        ],
    )?;
    // 6. first = PyList_GetItem(pythons, 0);   (borrowed)
    let first = env.py_list_get_item(pythons, 0)?;
    // 7. printf("1. first = %s.\n", PyString_AsString(first));
    let _ok_read = env.py_string_as_string(first)?;
    // 8. Py_DECREF(pythons);                   (first is now dangling)
    env.py_decref(pythons)?;
    // 10. printf("2. first = %s.\n", PyString_AsString(first));   BUG
    let second_read = env.py_string_as_string(first)?;
    // 12-13. return Py_None (ownership via INCREF).
    let none = env.py_none()?;
    env.py_incref(none)?;
    Ok(second_read)
}

/// A correct variant of [`dangle_bug`] — `first` is INCREF'd before the
/// list dies — used by the no-false-positive tests.
pub fn dangle_bug_fixed(env: &mut PyEnv<'_>) -> Result<String, PyError> {
    let pythons = env.py_build_value(
        "[ss]",
        &[BuildArg::Str("Eric".into()), BuildArg::Str("Graham".into())],
    )?;
    let first = env.py_list_get_item(pythons, 0)?;
    env.py_incref(first)?; // co-own before the list dies
    env.py_decref(pythons)?;
    let read = env.py_string_as_string(first)?;
    env.py_decref(first)?;
    Ok(read)
}

/// Re-exported convenience: returns a fresh `PyPtr` list built from
/// strings (used by examples/benches).
pub fn build_string_list(env: &mut PyEnv<'_>, items: &[&str]) -> Result<PyPtr, PyError> {
    let format: String = std::iter::once('[')
        .chain(items.iter().map(|_| 's'))
        .chain(std::iter::once(']'))
        .collect();
    let args: Vec<BuildArg> = items
        .iter()
        .map(|s| BuildArg::Str((*s).to_string()))
        .collect();
    env.py_build_value(&format, &args)
}
