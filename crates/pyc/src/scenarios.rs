//! Python/C microbenchmarks: one small extension routine per error state
//! of the Section 7 machines, runnable with and without the synthesized
//! checker (the Python/C analogue of the JNI microbenchmark suite).

use crate::api::{BuildArg, PyEnv, PyError};
use crate::session::{dangle_bug, PyRunOutcome, PySession};

/// One Python/C microbenchmark.
pub struct PyScenario {
    /// Name, e.g. `"DanglingBorrow"`.
    pub name: &'static str,
    /// The machine whose error state it triggers.
    pub machine: &'static str,
    /// Whether the bug is a silent leak (reported only at shutdown).
    pub leaks: bool,
    /// The extension routine.
    pub body: fn(&mut PyEnv<'_>) -> Result<(), PyError>,
}

impl std::fmt::Debug for PyScenario {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PyScenario")
            .field("name", &self.name)
            .field("machine", &self.machine)
            .finish_non_exhaustive()
    }
}

fn dangling_borrow(env: &mut PyEnv<'_>) -> Result<(), PyError> {
    dangle_bug(env).map(|_| ())
}

fn decref_borrowed(env: &mut PyEnv<'_>) -> Result<(), PyError> {
    let list = env.py_build_value("[s]", &[BuildArg::Str("only".into())])?;
    let item = env.py_list_get_item(list, 0)?;
    env.py_decref(item)?; // not co-owned!
    env.py_decref(list)?;
    Ok(())
}

fn double_decref(env: &mut PyEnv<'_>) -> Result<(), PyError> {
    let obj = env.py_int_from_long(1)?;
    env.py_decref(obj)?;
    env.py_decref(obj)?;
    Ok(())
}

fn missing_decref(env: &mut PyEnv<'_>) -> Result<(), PyError> {
    let _leak = env.py_string_from_string("never released")?;
    Ok(())
}

fn call_without_gil(env: &mut PyEnv<'_>) -> Result<(), PyError> {
    env.py_eval_save_thread()?;
    let _ = env.py_list_new()?;
    Ok(())
}

fn call_with_exception_pending(env: &mut PyEnv<'_>) -> Result<(), PyError> {
    env.py_err_set_string("ValueError", "unhandled")?;
    let _ = env.py_list_new()?;
    Ok(())
}

/// The Python/C microbenchmarks (one per checked error state).
pub fn py_scenarios() -> Vec<PyScenario> {
    vec![
        PyScenario {
            name: "DanglingBorrow",
            machine: "borrowed-reference",
            leaks: false,
            body: dangling_borrow,
        },
        PyScenario {
            name: "DecrefBorrowed",
            machine: "borrowed-reference",
            leaks: false,
            body: decref_borrowed,
        },
        PyScenario {
            name: "DoubleDecref",
            machine: "borrowed-reference",
            leaks: false,
            body: double_decref,
        },
        PyScenario {
            name: "MissingDecref",
            machine: "borrowed-reference",
            leaks: true,
            body: missing_decref,
        },
        PyScenario {
            name: "CallWithoutGil",
            machine: "gil",
            leaks: false,
            body: call_without_gil,
        },
        PyScenario {
            name: "ExceptionIgnored",
            machine: "py-exception",
            leaks: false,
            body: call_with_exception_pending,
        },
    ]
}

/// How a scenario run is classified.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PyBehavior {
    /// The checker reported the violation (inline or at shutdown).
    Detected,
    /// The interpreter crashed or deadlocked without a diagnosis.
    Crashed,
    /// The program kept running (possibly leaking) with no diagnosis.
    Silent,
}

impl std::fmt::Display for PyBehavior {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            PyBehavior::Detected => "detected",
            PyBehavior::Crashed => "crash",
            PyBehavior::Silent => "silent",
        };
        f.write_str(s)
    }
}

/// Runs one scenario with or without the checker and classifies the
/// observable behaviour.
pub fn run_py_scenario(scenario: &PyScenario, with_checker: bool) -> PyBehavior {
    let mut session = if with_checker {
        PySession::with_checker()
    } else {
        PySession::new()
    };
    let outcome = session.run(scenario.body);
    let shutdown = session.shutdown();
    match outcome {
        PyRunOutcome::CheckerError(_) => PyBehavior::Detected,
        PyRunOutcome::Crashed(_) => PyBehavior::Crashed,
        PyRunOutcome::Completed | PyRunOutcome::Raised(..) => {
            if !shutdown.is_empty() {
                PyBehavior::Detected
            } else {
                PyBehavior::Silent
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn the_checker_detects_every_scenario() {
        for s in py_scenarios() {
            assert_eq!(
                run_py_scenario(&s, true),
                PyBehavior::Detected,
                "{} must be detected",
                s.name
            );
        }
    }

    #[test]
    fn the_plain_interpreter_never_diagnoses() {
        for s in py_scenarios() {
            let behaviour = run_py_scenario(&s, false);
            assert_ne!(
                behaviour,
                PyBehavior::Detected,
                "{} has no diagnosis without the checker",
                s.name
            );
            // Most bugs are silent; DoubleDecref corrupts the allocator
            // and crashes — either way, no diagnosis.
            if s.name == "DoubleDecref" {
                assert_eq!(behaviour, PyBehavior::Crashed);
            } else {
                assert_eq!(behaviour, PyBehavior::Silent, "{}", s.name);
            }
        }
    }
}
