//! The synthesized Python/C dynamic checker (paper Section 7.2).
//!
//! "Our synthesizer takes a specification file that lists which functions
//! return new or borrowed references. The generated checker detects memory
//! management errors by tracking co-owned references and their borrowers.
//! […] When a co-owner relinquishes a reference by decrementing its count,
//! all its borrowed references become invalid. If the program uses an
//! invalid borrowed reference, the checker signals an error."
//!
//! The same three constraint classes as the JNI appear here: interpreter
//! state (GIL + exceptions), types (handled dynamically by the
//! interpreter), and resources (reference counts); [`machines`] declares
//! them in the shared `jinn-fsm` formalism.

use std::collections::HashMap;

use jinn_fsm::{ConstraintClass, Direction, EntityKind, MachineSpec};

use crate::api::{PyCall, PyInterpose, PyViolation, RefReturn};
use crate::interp::Python;
use crate::object::PyPtr;

/// The Python/C state machines, in the paper's three constraint classes.
pub fn machines() -> Vec<MachineSpec> {
    vec![
        gil_machine(),
        py_exception_machine(),
        borrowed_ref_machine(),
    ]
}

/// Interpreter-state machine: the GIL must be held around API calls.
pub fn gil_machine() -> MachineSpec {
    MachineSpec::builder("gil", ConstraintClass::RuntimeState)
        .entity(EntityKind::Thread)
        .state("Held")
        .state("Released")
        .error_state(
            "Error:CallWithoutGil",
            "Python/C call without holding the GIL in {function}",
        )
        .transition("Release", "Held", "Released", |t| {
            t.on(
                Direction::ReturnJavaToC,
                "PyEval_SaveThread or PyGILState_Release",
            )
        })
        .transition("Acquire", "Released", "Held", |t| {
            t.on(
                Direction::ReturnJavaToC,
                "PyEval_RestoreThread or PyGILState_Ensure",
            )
        })
        .transition("UnlockedCall", "Released", "Error:CallWithoutGil", |t| {
            t.on(
                Direction::CallCToJava,
                "any GIL-requiring Python/C function",
            )
        })
        .build()
        .expect("gil machine is well-formed")
}

/// Interpreter-state machine: pending exceptions must be handled before
/// further API calls (mirrors the JNI exception machine).
pub fn py_exception_machine() -> MachineSpec {
    MachineSpec::builder("py-exception", ConstraintClass::RuntimeState)
        .entity(EntityKind::Thread)
        .state("NoException")
        .state("ExceptionPending")
        .error_state(
            "Error:SensitiveCallWithPending",
            "Python/C call with an exception pending in {function}",
        )
        .transition("Raise", "NoException", "ExceptionPending", |t| {
            t.on(
                Direction::ReturnJavaToC,
                "PyErr_SetString or any raising call",
            )
        })
        .transition("Handle", "ExceptionPending", "NoException", |t| {
            t.on(
                Direction::ReturnJavaToC,
                "PyErr_Clear or propagation to Python",
            )
        })
        .transition(
            "SensitiveCall",
            "ExceptionPending",
            "Error:SensitiveCallWithPending",
            |t| t.on(Direction::CallCToJava, "any non-PyErr_* function"),
        )
        .build()
        .expect("py-exception machine is well-formed")
}

/// Resource machine: co-owned and borrowed references (Figure 11's bug is
/// the `UseAfterOwnerDied` transition).
pub fn borrowed_ref_machine() -> MachineSpec {
    MachineSpec::builder("borrowed-reference", ConstraintClass::Resource)
        .entity(EntityKind::Reference)
        .state("BeforeAcquire")
        .state("CoOwned")
        .state("Borrowed")
        .state("OwnerDied")
        .error_state(
            "Error:DanglingBorrow",
            "use of a borrowed reference whose co-owner released it, in {function}",
        )
        .error_state(
            "Error:OverRelease",
            "Py_DECREF without matching ownership in {function}",
        )
        .error_state(
            "Error:Leak",
            "co-owned reference never released (interpreter shutdown)",
        )
        .transition("AcquireNew", "BeforeAcquire", "CoOwned", |t| {
            t.on(
                Direction::ReturnJavaToC,
                "function returning a new reference, e.g. Py_BuildValue",
            )
        })
        .transition("Borrow", "BeforeAcquire", "Borrowed", |t| {
            t.on(
                Direction::ReturnJavaToC,
                "function returning a borrowed reference, e.g. PyList_GetItem",
            )
        })
        .transition("OwnerRelease", "Borrowed", "OwnerDied", |t| {
            t.on(Direction::CallCToJava, "Py_DECREF of the co-owner")
        })
        .transition(
            "UseAfterOwnerDied",
            "OwnerDied",
            "Error:DanglingBorrow",
            |t| {
                t.on(
                    Direction::CallCToJava,
                    "any function taking the borrowed reference",
                )
            },
        )
        .transition(
            "ReleaseWithoutOwnership",
            "Borrowed",
            "Error:OverRelease",
            |t| t.on(Direction::CallCToJava, "Py_DECREF of a borrowed reference"),
        )
        .transition("LeakAtExit", "CoOwned", "Error:Leak", |t| {
            t.on(Direction::ReturnCToJava, "interpreter shutdown")
        })
        .build()
        .expect("borrowed-reference machine is well-formed")
}

/// The generated use-after-release checker for Python/C reference
/// counting, plus the GIL and exception-state checks.
#[derive(Debug, Default)]
pub struct PyChecker {
    /// Ownership counts the checker has *observed* per pointer.
    owned: HashMap<PyPtr, u32>,
    /// borrowed pointer → the owner it borrows from.
    borrows: HashMap<PyPtr, PyPtr>,
    /// Violations found (also returned through the hook results).
    violations: u64,
}

impl PyChecker {
    /// A fresh checker.
    pub fn new() -> PyChecker {
        PyChecker::default()
    }

    /// Number of violations reported so far.
    pub fn violations(&self) -> u64 {
        self.violations
    }

    fn is_valid(&self, py: &Python, p: PyPtr) -> bool {
        if p == py.none() {
            return true;
        }
        let mut cur = p;
        for _ in 0..64 {
            if self.owned.get(&cur).copied().unwrap_or(0) > 0 {
                return true;
            }
            match self.borrows.get(&cur) {
                Some(&src) => cur = src,
                None => return false,
            }
        }
        false
    }

    fn violation(
        &mut self,
        machine: &'static str,
        function: &str,
        message: String,
        entity: Option<String>,
    ) -> PyViolation {
        self.violations += 1;
        PyViolation {
            machine,
            function: function.to_string(),
            message,
            entity,
        }
    }
}

impl PyInterpose for PyChecker {
    fn name(&self) -> &str {
        "jinn-pyc"
    }

    fn pre(&mut self, py: &Python, call: &PyCall<'_>) -> Option<PyViolation> {
        let spec = call.spec;
        // Interpreter-state machines.
        if spec.requires_gil && !py.gil().held_by(call.thread) {
            return Some(self.violation(
                "gil",
                spec.name,
                format!("{} called without holding the GIL", spec.name),
                Some(call.thread.to_string()),
            ));
        }
        if !spec.err_oblivious && py.exception().is_some() {
            let kind = py.exception().map(|e| e.kind.clone()).unwrap_or_default();
            return Some(self.violation(
                "py-exception",
                spec.name,
                format!("{} called with a {} pending", spec.name, kind),
                Some(call.thread.to_string()),
            ));
        }
        // Resource machine: uses and releases.
        for (i, &p) in call.ptr_args.iter().enumerate() {
            if p.is_placeholder() {
                continue;
            }
            if spec.name == "Py_DecRef" {
                // A release must consume an *owned* reference.
                if self.owned.get(&p).copied().unwrap_or(0) > 0 {
                    continue; // consumed in post
                }
                let message = if self.borrows.contains_key(&p) {
                    format!("Py_DECREF of a borrowed reference {p} (the caller does not co-own it)")
                } else {
                    format!("Py_DECREF of {p} without matching ownership (double release?)")
                };
                return Some(self.violation(
                    "borrowed-reference",
                    spec.name,
                    message,
                    Some(p.to_string()),
                ));
            }
            if !self.is_valid(py, p) {
                let why = if self.borrows.contains_key(&p) {
                    "its co-owner released it"
                } else {
                    "it was never acquired or already released"
                };
                return Some(self.violation(
                    "borrowed-reference",
                    spec.name,
                    format!("argument {i} ({p}) is an invalid reference: {why}"),
                    Some(p.to_string()),
                ));
            }
        }
        None
    }

    fn post(&mut self, py: &Python, call: &PyCall<'_>, ret: Option<PyPtr>) -> Option<PyViolation> {
        let spec = call.spec;
        match spec.name {
            "Py_IncRef" => {
                if let Some(&p) = call.ptr_args.first() {
                    *self.owned.entry(p).or_insert(0) += 1;
                }
                return None;
            }
            "Py_DecRef" => {
                if let Some(&p) = call.ptr_args.first() {
                    if let Some(c) = self.owned.get_mut(&p) {
                        *c = c.saturating_sub(1);
                    }
                }
                return None;
            }
            _ => {}
        }
        if let Some(idx) = spec.steals_arg {
            if let Some(&p) = call.ptr_args.get(idx) {
                // Ownership moved into the container: the caller's token is
                // consumed, and the pointer now effectively borrows from it.
                if let Some(c) = self.owned.get_mut(&p) {
                    *c = c.saturating_sub(1);
                }
                if let Some(&container) = call.ptr_args.first() {
                    self.borrows.entry(p).or_insert(container);
                }
            }
        }
        match (spec.returns, ret) {
            (RefReturn::New, Some(r)) => {
                *self.owned.entry(r).or_insert(0) += 1;
            }
            (RefReturn::Borrowed, Some(r))
                if r != py.none() && self.owned.get(&r).copied().unwrap_or(0) == 0 =>
            {
                if let Some(src) = spec
                    .borrow_source
                    .and_then(|i| call.ptr_args.get(i))
                    .copied()
                {
                    self.borrows.entry(r).or_insert(src);
                }
            }
            _ => {}
        }
        None
    }

    fn shutdown(&mut self, py: &Python) -> Vec<PyViolation> {
        let mut out = Vec::new();
        let mut leaked: Vec<&PyPtr> = self
            .owned
            .iter()
            .filter(|(_, c)| **c > 0)
            .map(|(p, _)| p)
            .collect();
        leaked.sort();
        for p in leaked {
            out.push(PyViolation {
                machine: "borrowed-reference",
                function: "Py_Finalize".to_string(),
                message: format!("co-owned reference {p} was never released (leak)"),
                entity: Some(p.to_string()),
            });
        }
        self.violations += out.len() as u64;
        let _ = py;
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn three_machines_in_three_classes() {
        let ms = machines();
        assert_eq!(ms.len(), 3);
        assert!(ms
            .iter()
            .any(|m| m.class() == ConstraintClass::RuntimeState));
        assert!(ms.iter().any(|m| m.class() == ConstraintClass::Resource));
        for m in &ms {
            assert!(m.error_states().count() >= 1);
            assert_eq!(m.reachable_states().len(), m.states().len(), "{}", m.name());
        }
    }
}
