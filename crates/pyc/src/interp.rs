//! The mini Python interpreter state: arena, GIL, exception state.

use std::fmt;

use crate::object::{Arena, PyPtr, PyValue};

/// A thread interacting with the interpreter.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PyThread(pub u16);

impl fmt::Display for PyThread {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "pythread-{}", self.0)
    }
}

/// The Global Interpreter Lock.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct GilState {
    holder: Option<PyThread>,
    count: u32,
}

impl GilState {
    /// The current holder, if any.
    pub fn holder(&self) -> Option<PyThread> {
        self.holder
    }

    /// Returns `true` if `t` currently holds the GIL.
    pub fn held_by(&self, t: PyThread) -> bool {
        self.holder == Some(t)
    }

    /// Reentrant acquire (`PyGILState_Ensure`). Returns `false` when
    /// another thread holds the lock — the caller would block.
    pub fn ensure(&mut self, t: PyThread) -> bool {
        match self.holder {
            None => {
                self.holder = Some(t);
                self.count = 1;
                true
            }
            Some(h) if h == t => {
                self.count += 1;
                true
            }
            Some(_) => false,
        }
    }

    /// Non-reentrant acquire (`PyEval_RestoreThread`). A second acquire by
    /// the *same* thread self-deadlocks — the classic embedding bug the
    /// paper mentions ("the programmer may accidentally acquire the GIL
    /// twice").
    pub fn acquire_nonreentrant(&mut self, t: PyThread) -> Result<(), GilError> {
        match self.holder {
            None => {
                self.holder = Some(t);
                self.count = 1;
                Ok(())
            }
            Some(h) if h == t => Err(GilError::SelfDeadlock),
            Some(_) => Err(GilError::WouldBlock),
        }
    }

    /// Release one acquisition. Returns `false` if `t` does not hold it.
    pub fn release(&mut self, t: PyThread) -> bool {
        if self.holder != Some(t) {
            return false;
        }
        self.count -= 1;
        if self.count == 0 {
            self.holder = None;
        }
        true
    }
}

/// GIL acquisition failure.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GilError {
    /// The same thread already holds the non-reentrant lock.
    SelfDeadlock,
    /// Another thread holds the lock.
    WouldBlock,
}

/// A pending Python exception.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PyErrState {
    /// Exception type name, e.g. `"TypeError"`.
    pub kind: String,
    /// Message.
    pub message: String,
}

/// One embedded Python interpreter.
#[derive(Debug)]
pub struct Python {
    arena: Arena,
    none: PyPtr,
    gil: GilState,
    exception: Option<PyErrState>,
    dead: Option<String>,
    api_calls: u64,
}

impl Python {
    /// Initializes an interpreter; the main thread holds the GIL, as after
    /// `Py_Initialize`.
    pub fn new() -> Python {
        let mut arena = Arena::new();
        let none = arena.alloc(PyValue::None);
        // None is immortal: give it an effectively infinite count.
        for _ in 0..1_000 {
            arena.incref(none);
        }
        let mut gil = GilState::default();
        gil.ensure(Python::MAIN);
        Python {
            arena,
            none,
            gil,
            exception: None,
            dead: None,
            api_calls: 0,
        }
    }

    /// The main thread.
    pub const MAIN: PyThread = PyThread(0);

    /// The arena.
    pub fn arena(&self) -> &Arena {
        &self.arena
    }

    /// Mutable arena access (API layer and tests).
    pub fn arena_mut(&mut self) -> &mut Arena {
        &mut self.arena
    }

    /// The immortal `None` object.
    pub fn none(&self) -> PyPtr {
        self.none
    }

    /// GIL state.
    pub fn gil(&self) -> &GilState {
        &self.gil
    }

    /// Mutable GIL state.
    pub fn gil_mut(&mut self) -> &mut GilState {
        &mut self.gil
    }

    /// The pending exception, if any.
    pub fn exception(&self) -> Option<&PyErrState> {
        self.exception.as_ref()
    }

    /// Sets or clears the pending exception.
    pub fn set_exception(&mut self, e: Option<PyErrState>) {
        self.exception = e;
    }

    /// Records an interpreter crash (stays dead).
    pub fn kill(&mut self, reason: impl Into<String>) {
        if self.dead.is_none() {
            self.dead = Some(reason.into());
        }
    }

    /// The crash reason, if the interpreter died.
    pub fn death(&self) -> Option<&str> {
        self.dead.as_deref()
    }

    /// Count of Python/C API calls made (transition counting).
    pub fn api_calls(&self) -> u64 {
        self.api_calls
    }

    pub(crate) fn count_api_call(&mut self) {
        self.api_calls += 1;
    }

    /// Live objects excluding the immortal `None`.
    pub fn live_objects(&self) -> usize {
        self.arena.live().saturating_sub(1)
    }
}

impl Default for Python {
    fn default() -> Self {
        Python::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gil_reentrancy() {
        let mut g = GilState::default();
        let (a, b) = (PyThread(0), PyThread(1));
        assert!(g.ensure(a));
        assert!(g.ensure(a), "PyGILState_Ensure is reentrant");
        assert!(!g.ensure(b), "other thread blocks");
        assert!(g.release(a));
        assert!(g.held_by(a));
        assert!(g.release(a));
        assert!(!g.held_by(a));
        assert!(g.ensure(b));
        let _ = b;
    }

    #[test]
    fn gil_self_deadlock() {
        let mut g = GilState::default();
        let t = PyThread(0);
        g.acquire_nonreentrant(t).unwrap();
        assert_eq!(g.acquire_nonreentrant(t), Err(GilError::SelfDeadlock));
    }

    #[test]
    fn release_without_holding_fails() {
        let mut g = GilState::default();
        assert!(!g.release(PyThread(3)));
    }

    #[test]
    fn interpreter_boots_with_gil_and_none() {
        let py = Python::new();
        assert!(py.gil().held_by(Python::MAIN));
        assert!(py.arena().is_alive(py.none()));
        assert_eq!(py.live_objects(), 0);
        assert!(py.exception().is_none());
        assert!(py.death().is_none());
    }

    #[test]
    fn kill_latches() {
        let mut py = Python::new();
        py.kill("segfault");
        py.kill("other");
        assert_eq!(py.death(), Some("segfault"));
    }
}
