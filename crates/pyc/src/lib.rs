//! `minipy` — a reference-counted mini Python interpreter, its Python/C
//! API, and the synthesized use-after-release checker of the paper's
//! Section 7.
//!
//! The paper demonstrates that its FFI-specification approach generalizes
//! beyond the JNI: Python/C exhibits the same three constraint classes
//! (interpreter state, types, resources), and the same
//! machine-specification + synthesis recipe yields a checker for
//! reference-count co-ownership and borrowing. This crate reproduces that
//! demonstration:
//!
//! * [`Arena`]/[`PyPtr`]: a refcounted object heap where dangling C
//!   pointers really dangle (stale reads "work" until the slot is reused);
//! * [`PyEnv`]: the Python/C API with an interposition seam — including
//!   the macro-replacing functions (`Py_IncRef`/`Py_DecRef`) the paper
//!   introduces because C macros cannot be interposed on (Section 7.2);
//! * [`registry`]: the specification file of new-vs-borrowed reference
//!   returns from which the checker is synthesized;
//! * [`PyChecker`]: the generated checker — co-owner/borrow tracking, GIL
//!   and exception state;
//! * [`dangle_bug`]: Figure 11, line for line.
//!
//! # Example: Figure 11 under the checker
//!
//! ```
//! use minipy::{dangle_bug, PyRunOutcome, PySession};
//!
//! // Without the checker the bug reads stale memory and "works":
//! let mut plain = PySession::new();
//! let out = plain.run(|env| dangle_bug(env).map(|_| ()));
//! assert_eq!(out, PyRunOutcome::Completed);
//!
//! // With the synthesized checker, line 10's use of `first` is caught:
//! let mut checked = PySession::with_checker();
//! let out = checked.run(|env| dangle_bug(env).map(|_| ()));
//! match out {
//!     PyRunOutcome::CheckerError(v) => {
//!         assert_eq!(v.machine, "borrowed-reference");
//!         assert_eq!(v.function, "PyString_AsString");
//!     }
//!     other => panic!("expected a checker error, got {other:?}"),
//! }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod api;
mod checker;
mod interp;
mod object;
mod scenarios;
mod session;

pub use api::{
    registry, spec, BuildArg, PyCall, PyEnv, PyError, PyFuncSpec, PyInterpose, PyViolation,
    RefReturn,
};
pub use checker::{borrowed_ref_machine, gil_machine, machines, py_exception_machine, PyChecker};
pub use interp::{GilError, GilState, PyErrState, PyThread, Python};
pub use object::{Arena, DanglingPointer, Deref, PyPtr, PyValue};
pub use scenarios::{py_scenarios, run_py_scenario, PyBehavior, PyScenario};
pub use session::{build_string_list, dangle_bug, dangle_bug_fixed, PyRunOutcome, PySession};
