//! The reference-counted Python object arena.
//!
//! Objects live in an arena indexed by [`PyPtr`] — the simulated
//! `PyObject*`. Like a real C pointer, a `PyPtr`'s *address* stays
//! unchanged after the object dies, and the slot may be reused for a new
//! object; a dangling pointer then aliases unrelated data, which is
//! exactly the failure mode of the paper's Figure 11. The `PyPtr`
//! additionally carries a hidden generation tag — invisible to the
//! simulated C code and to checkers' *reports*, but letting the simulation
//! itself classify what a stale read really hit.

use std::fmt;

/// A simulated `PyObject*`: an arena address plus the simulation's hidden
/// provenance tag. Two pointers with the same [`PyPtr::addr`] are the same
/// C pointer value even when their generations differ.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PyPtr {
    index: u32,
    generation: u32,
}

impl PyPtr {
    /// The simulated address (collides on slot reuse, like real `malloc`).
    pub fn addr(self) -> u64 {
        0x6000_0000u64 + u64::from(self.index) * 0x40
    }

    /// The arena slot index.
    pub fn index(self) -> u32 {
        self.index
    }

    /// A placeholder for non-pointer positions in hook argument lists;
    /// never dereferenceable.
    pub(crate) fn placeholder() -> PyPtr {
        PyPtr {
            index: u32::MAX,
            generation: 0,
        }
    }

    /// Returns `true` for the placeholder.
    pub(crate) fn is_placeholder(self) -> bool {
        self.index == u32::MAX
    }
}

impl fmt::Display for PyPtr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "0x{:08x}", self.addr())
    }
}

/// The value of a Python object.
#[derive(Debug, Clone, PartialEq)]
pub enum PyValue {
    /// `None`
    None,
    /// `int`
    Int(i64),
    /// `str`
    Str(String),
    /// `list`
    List(Vec<PyPtr>),
    /// `tuple`
    Tuple(Vec<PyPtr>),
}

impl PyValue {
    /// The Python type name.
    pub fn type_name(&self) -> &'static str {
        match self {
            PyValue::None => "NoneType",
            PyValue::Int(_) => "int",
            PyValue::Str(_) => "str",
            PyValue::List(_) => "list",
            PyValue::Tuple(_) => "tuple",
        }
    }
}

#[derive(Debug, Clone)]
struct PySlot {
    generation: u32,
    refcnt: i64,
    alive: bool,
    value: PyValue,
}

/// A `Py_DECREF`/`Py_INCREF` through a dangling pointer (freed or
/// slot-recycled): C just scribbled on memory it does not own.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DanglingPointer;

impl fmt::Display for DanglingPointer {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("refcount operation through a dangling pointer")
    }
}

impl std::error::Error for DanglingPointer {}

/// What reading through a pointer produced.
#[derive(Debug, Clone, PartialEq)]
pub enum Deref<'a> {
    /// The object is alive.
    Alive(&'a PyValue),
    /// The object was freed and its slot not yet reused: the stale data is
    /// still there, so buggy reads "work".
    Stale(&'a PyValue),
    /// The slot was reused for an unrelated object: reads return that
    /// unrelated value (silent corruption).
    Aliased(&'a PyValue),
    /// The pointer never pointed at an object.
    Wild,
}

/// The arena of all Python objects.
#[derive(Debug, Default)]
pub struct Arena {
    slots: Vec<PySlot>,
    free: Vec<u32>,
    live: usize,
    allocated_total: u64,
}

impl Arena {
    /// Creates an empty arena.
    pub fn new() -> Arena {
        Arena::default()
    }

    /// Number of live objects.
    pub fn live(&self) -> usize {
        self.live
    }

    /// Total allocations ever.
    pub fn allocated_total(&self) -> u64 {
        self.allocated_total
    }

    /// Allocates a new object with refcount 1.
    pub fn alloc(&mut self, value: PyValue) -> PyPtr {
        self.live += 1;
        self.allocated_total += 1;
        match self.free.pop() {
            Some(i) => {
                let s = &mut self.slots[i as usize];
                s.generation += 1;
                s.refcnt = 1;
                s.alive = true;
                s.value = value;
                PyPtr {
                    index: i,
                    generation: s.generation,
                }
            }
            None => {
                self.slots.push(PySlot {
                    generation: 0,
                    refcnt: 1,
                    alive: true,
                    value,
                });
                PyPtr {
                    index: self.slots.len() as u32 - 1,
                    generation: 0,
                }
            }
        }
    }

    /// Reads through a pointer, classifying staleness.
    pub fn deref(&self, p: PyPtr) -> Deref<'_> {
        match self.slots.get(p.index as usize) {
            None => Deref::Wild,
            Some(s) if s.generation == p.generation && s.alive => Deref::Alive(&s.value),
            Some(s) if s.generation == p.generation => Deref::Stale(&s.value),
            // The slot moved on to a different object (alive or not): the
            // pointer aliases whatever is there now.
            Some(s) => Deref::Aliased(&s.value),
        }
    }

    /// The object's current refcount (`Py_REFCNT`), or `None` if this
    /// pointer's object is dead.
    pub fn refcnt(&self, p: PyPtr) -> Option<i64> {
        self.slots
            .get(p.index as usize)
            .filter(|s| s.alive && s.generation == p.generation)
            .map(|s| s.refcnt)
    }

    /// Returns `true` if this pointer's object is alive.
    pub fn is_alive(&self, p: PyPtr) -> bool {
        matches!(self.deref(p), Deref::Alive(_))
    }

    /// Mutable access to a live object's value.
    pub fn value_mut(&mut self, p: PyPtr) -> Option<&mut PyValue> {
        self.slots
            .get_mut(p.index as usize)
            .filter(|s| s.alive && s.generation == p.generation)
            .map(|s| &mut s.value)
    }

    /// `Py_INCREF` mechanics. Returns `false` — while still "scribbling",
    /// as real C would — when the pointer is dangling.
    pub fn incref(&mut self, p: PyPtr) -> bool {
        match self.slots.get_mut(p.index as usize) {
            Some(s) if s.alive && s.generation == p.generation => {
                s.refcnt += 1;
                true
            }
            Some(s) => {
                s.refcnt += 1; // scribble on freed/unrelated memory
                false
            }
            None => false,
        }
    }

    /// `Py_DECREF` mechanics: decrements and frees at zero (recursively
    /// releasing container children). Returns the pointers freed.
    ///
    /// # Errors
    ///
    /// [`DanglingPointer`] for a decref through a dead or recycled pointer
    /// (the refcount scribble still happens, as in C).
    pub fn decref(&mut self, p: PyPtr) -> Result<Vec<PyPtr>, DanglingPointer> {
        let Some(s) = self.slots.get_mut(p.index as usize) else {
            return Err(DanglingPointer);
        };
        if !(s.alive && s.generation == p.generation) {
            s.refcnt -= 1; // scribble
            return Err(DanglingPointer);
        }
        s.refcnt -= 1;
        if s.refcnt > 0 {
            return Ok(Vec::new());
        }
        // Deallocate, then cascade to children (the interpreter-internal
        // path that bypasses the checked API — Section 7.2).
        let mut freed = vec![p];
        let mut worklist = vec![p];
        while let Some(q) = worklist.pop() {
            let children = {
                let s = &mut self.slots[q.index as usize];
                s.alive = false;
                self.free.push(q.index);
                self.live -= 1;
                match &s.value {
                    PyValue::List(items) | PyValue::Tuple(items) => items.clone(),
                    _ => Vec::new(),
                }
            };
            for c in children {
                let cs = &mut self.slots[c.index as usize];
                if cs.alive && cs.generation == c.generation {
                    cs.refcnt -= 1;
                    if cs.refcnt <= 0 {
                        freed.push(c);
                        worklist.push(c);
                    }
                }
            }
        }
        Ok(freed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_and_deref() {
        let mut a = Arena::new();
        let p = a.alloc(PyValue::Int(7));
        assert_eq!(a.refcnt(p), Some(1));
        assert!(matches!(a.deref(p), Deref::Alive(PyValue::Int(7))));
        assert_eq!(a.live(), 1);
    }

    #[test]
    fn decref_frees_and_reads_become_stale() {
        let mut a = Arena::new();
        let p = a.alloc(PyValue::Str("monty".into()));
        let freed = a.decref(p).unwrap();
        assert_eq!(freed, vec![p]);
        assert!(!a.is_alive(p));
        // The stale data is still readable — the bug "works".
        assert!(matches!(a.deref(p), Deref::Stale(PyValue::Str(s)) if s == "monty"));
    }

    #[test]
    fn slot_reuse_aliases_the_old_pointer_only() {
        let mut a = Arena::new();
        let p = a.alloc(PyValue::Int(1));
        a.decref(p).unwrap();
        let q = a.alloc(PyValue::Str("other".into()));
        assert_eq!(p.addr(), q.addr(), "same C pointer value after reuse");
        assert!(matches!(a.deref(p), Deref::Aliased(PyValue::Str(_))));
        assert!(matches!(a.deref(q), Deref::Alive(PyValue::Str(_))));
    }

    #[test]
    fn container_children_cascade() {
        let mut a = Arena::new();
        let s = a.alloc(PyValue::Str("Eric".into()));
        let list = a.alloc(PyValue::List(vec![s]));
        let freed = a.decref(list).unwrap();
        assert!(freed.contains(&list));
        assert!(freed.contains(&s), "child freed with the container");
        assert_eq!(a.live(), 0);
    }

    #[test]
    fn incref_keeps_children_alive() {
        let mut a = Arena::new();
        let s = a.alloc(PyValue::Str("Graham".into()));
        a.incref(s);
        let list = a.alloc(PyValue::List(vec![s]));
        a.decref(list).unwrap();
        assert!(a.is_alive(s), "second owner keeps the string alive");
        assert_eq!(a.refcnt(s), Some(1));
    }

    #[test]
    fn double_decref_is_an_error() {
        let mut a = Arena::new();
        let p = a.alloc(PyValue::Int(3));
        a.decref(p).unwrap();
        assert!(a.decref(p).is_err());
        assert!(!a.incref(p));
    }

    #[test]
    fn wild_pointer() {
        let a = Arena::new();
        assert!(matches!(
            a.deref(PyPtr {
                index: 99,
                generation: 0
            }),
            Deref::Wild
        ));
    }
}
