//! The Python/C API surface, its reference-ownership specification, and
//! the checked environment driver.
//!
//! The paper's Python/C synthesizer "takes a specification file that lists
//! which functions return new or borrowed references" (Section 7.2); here
//! that file is [`registry`] — one [`PyFuncSpec`] per API function with
//! its reference-return kind, stolen arguments, GIL requirement and
//! exception obliviousness. [`PyEnv`] is the analogue of the JNI side's
//! `JniEnv`: every API call runs through interposition hooks
//! ([`PyInterpose`]) before and after its raw semantics.

use std::fmt;
use std::sync::OnceLock;
use std::time::Instant;

use jinn_obs::{FsmOutcome, LabelId, Recorder, VerdictAction};

use crate::interp::{GilError, PyErrState, PyThread, Python};
use crate::object::{Deref, PyPtr, PyValue};

/// What kind of reference an API function returns.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RefReturn {
    /// A new reference the caller co-owns (must `Py_DECREF`).
    New,
    /// A borrowed reference, valid only while its source owns the object.
    Borrowed,
    /// The function does not return a reference.
    NoRef,
}

/// The ownership specification of one Python/C function.
#[derive(Debug, Clone)]
pub struct PyFuncSpec {
    /// Function name, e.g. `"PyList_GetItem"`.
    pub name: &'static str,
    /// What the return value is.
    pub returns: RefReturn,
    /// For [`RefReturn::Borrowed`]: which pointer argument the borrow
    /// derives from.
    pub borrow_source: Option<usize>,
    /// Which pointer argument the function *steals* (takes ownership of
    /// without incref), e.g. `PyList_SetItem`'s item.
    pub steals_arg: Option<usize>,
    /// Whether the caller must hold the GIL.
    pub requires_gil: bool,
    /// May be called with a Python exception pending.
    pub err_oblivious: bool,
}

/// The specification file: all modelled Python/C functions.
pub fn registry() -> &'static [PyFuncSpec] {
    static REG: OnceLock<Vec<PyFuncSpec>> = OnceLock::new();
    REG.get_or_init(|| {
        let f = |name,
                 returns,
                 borrow_source: Option<usize>,
                 steals_arg: Option<usize>,
                 requires_gil,
                 err_oblivious| PyFuncSpec {
            name,
            returns,
            borrow_source,
            steals_arg,
            requires_gil,
            err_oblivious,
        };
        vec![
            f("Py_BuildValue", RefReturn::New, None, None, true, false),
            f("PyList_New", RefReturn::New, None, None, true, false),
            f("PyList_Append", RefReturn::NoRef, None, None, true, false),
            f(
                "PyList_GetItem",
                RefReturn::Borrowed,
                Some(0),
                None,
                true,
                false,
            ),
            f(
                "PyList_SetItem",
                RefReturn::NoRef,
                None,
                Some(2),
                true,
                false,
            ),
            f("PyList_Size", RefReturn::NoRef, None, None, true, false),
            f(
                "PyTuple_GetItem",
                RefReturn::Borrowed,
                Some(0),
                None,
                true,
                false,
            ),
            f("PyTuple_Size", RefReturn::NoRef, None, None, true, false),
            f(
                "PyString_FromString",
                RefReturn::New,
                None,
                None,
                true,
                false,
            ),
            f(
                "PyString_AsString",
                RefReturn::NoRef,
                None,
                None,
                true,
                false,
            ),
            f("PyInt_FromLong", RefReturn::New, None, None, true, false),
            f("PyInt_AsLong", RefReturn::NoRef, None, None, true, false),
            // The macro-equivalent functions of Section 7.2 (Py_INCREF and
            // Py_DECREF are C macros; the paper wraps them as functions so
            // the checker can interpose).
            f("Py_IncRef", RefReturn::NoRef, None, None, true, true),
            f("Py_DecRef", RefReturn::NoRef, None, None, true, true),
            f("PyErr_SetString", RefReturn::NoRef, None, None, true, true),
            f(
                "PyErr_Occurred",
                RefReturn::Borrowed,
                None,
                None,
                true,
                true,
            ),
            f("PyErr_Clear", RefReturn::NoRef, None, None, true, true),
            f(
                "PyGILState_Ensure",
                RefReturn::NoRef,
                None,
                None,
                false,
                true,
            ),
            f(
                "PyGILState_Release",
                RefReturn::NoRef,
                None,
                None,
                false,
                true,
            ),
            f(
                "PyEval_SaveThread",
                RefReturn::NoRef,
                None,
                None,
                true,
                true,
            ),
            f(
                "PyEval_RestoreThread",
                RefReturn::NoRef,
                None,
                None,
                false,
                true,
            ),
            f("Py_None", RefReturn::Borrowed, None, None, false, true),
        ]
    })
}

/// Looks up a function spec by name.
///
/// # Panics
///
/// Panics on an unknown function name (a checker/test typo).
pub fn spec(name: &str) -> &'static PyFuncSpec {
    registry()
        .iter()
        .find(|s| s.name == name)
        .unwrap_or_else(|| panic!("no Python/C function named `{name}`"))
}

/// A detected Python/C constraint violation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PyViolation {
    /// The state machine that detected it.
    pub machine: &'static str,
    /// The function at which it was detected.
    pub function: String,
    /// Diagnosis.
    pub message: String,
    /// The failing entity (the offending `PyPtr`, rendered), when the
    /// violation concerns one; used by forensics reports.
    pub entity: Option<String>,
}

impl fmt::Display for PyViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "[{}] {} in {}",
            self.machine, self.message, self.function
        )
    }
}

/// Why a Python/C call failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PyError {
    /// A Python exception is pending (the normal error path).
    Raised,
    /// The interpreter crashed or deadlocked.
    Crash(String),
    /// A checker detected a violation.
    Detected(PyViolation),
}

impl fmt::Display for PyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PyError::Raised => f.write_str("python exception pending"),
            PyError::Crash(m) => write!(f, "interpreter crash: {m}"),
            PyError::Detected(v) => write!(f, "checker: {v}"),
        }
    }
}

impl std::error::Error for PyError {}

/// One API call as hooks observe it.
#[derive(Debug)]
pub struct PyCall<'a> {
    /// The function's ownership spec.
    pub spec: &'static PyFuncSpec,
    /// Calling thread.
    pub thread: PyThread,
    /// Pointer arguments in position order.
    pub ptr_args: &'a [PyPtr],
}

/// A dynamic checker interposed on Python/C transitions.
pub trait PyInterpose {
    /// Checker name.
    fn name(&self) -> &str;

    /// Before the call; a returned violation aborts it.
    fn pre(&mut self, py: &Python, call: &PyCall<'_>) -> Option<PyViolation> {
        let _ = (py, call);
        None
    }

    /// After the call, with the returned reference if any.
    fn post(&mut self, py: &Python, call: &PyCall<'_>, ret: Option<PyPtr>) -> Option<PyViolation> {
        let _ = (py, call, ret);
        None
    }

    /// Interpreter shutdown: leak sweeps.
    fn shutdown(&mut self, py: &Python) -> Vec<PyViolation> {
        let _ = py;
        Vec::new()
    }
}

/// An argument to `Py_BuildValue`.
#[derive(Debug, Clone, PartialEq)]
pub enum BuildArg {
    /// `i` — a C long.
    Int(i64),
    /// `s` — a C string.
    Str(String),
}

/// Pre-interned labels for the Python/C instrumentation fast path,
/// owned by the session so they persist across the short-lived
/// [`PyEnv`] values.
#[derive(Debug, Default)]
pub(crate) struct PyObsLabels {
    funcs: std::collections::HashMap<&'static str, LabelId>,
}

impl PyObsLabels {
    fn func(&mut self, name: &'static str, recorder: &Recorder) -> LabelId {
        *self
            .funcs
            .entry(name)
            .or_insert_with(|| recorder.intern(name))
    }
}

/// The checked Python/C environment: interpreter + interposition stack.
pub struct PyEnv<'a> {
    py: &'a mut Python,
    checkers: &'a mut Vec<Box<dyn PyInterpose>>,
    thread: PyThread,
    recorder: Recorder,
    labels: &'a mut PyObsLabels,
    /// The Python/C call currently between `begin` and `end`, with its
    /// start time; closed as failed if the call aborts before `end`.
    pending: Option<(LabelId, Option<Instant>)>,
}

impl fmt::Debug for PyEnv<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("PyEnv")
            .field("thread", &self.thread)
            .finish_non_exhaustive()
    }
}

impl<'a> PyEnv<'a> {
    pub(crate) fn new(
        py: &'a mut Python,
        checkers: &'a mut Vec<Box<dyn PyInterpose>>,
        thread: PyThread,
        recorder: Recorder,
        labels: &'a mut PyObsLabels,
    ) -> PyEnv<'a> {
        PyEnv {
            py,
            checkers,
            thread,
            recorder,
            labels,
            pending: None,
        }
    }

    /// The calling thread.
    pub fn thread(&self) -> PyThread {
        self.thread
    }

    /// The interpreter (assertions).
    pub fn python(&self) -> &Python {
        self.py
    }

    // ---- driver ---------------------------------------------------------

    fn begin(&mut self, name: &'static str, ptr_args: &[PyPtr]) -> Result<(), PyError> {
        if let Some(d) = self.py.death() {
            return Err(PyError::Crash(d.to_string()));
        }
        self.py.count_api_call();
        if self.recorder.is_enabled() {
            // A previous call that aborted before its `end` is closed as
            // failed here so the trace stays balanced.
            self.close_pending(true);
            let label = self.labels.func(name, &self.recorder);
            self.recorder.jni_enter_id(self.thread.0, label);
            self.pending = Some((label, self.recorder.timer()));
        }
        let call = PyCall {
            spec: spec(name),
            thread: self.thread,
            ptr_args,
        };
        for i in 0..self.checkers.len() {
            if let Some(v) = self.checkers[i].pre(self.py, &call) {
                self.record_violation(&v);
                self.close_pending(true);
                self.py.set_exception(Some(PyErrState {
                    kind: "JinnPyCheckError".to_string(),
                    message: v.message.clone(),
                }));
                return Err(PyError::Detected(v));
            }
        }
        Ok(())
    }

    fn end(&mut self, name: &'static str, ptr_args: &[PyPtr], ret: Option<PyPtr>) {
        let call = PyCall {
            spec: spec(name),
            thread: self.thread,
            ptr_args,
        };
        for i in 0..self.checkers.len() {
            let _ = self.checkers[i].post(self.py, &call, ret);
        }
        self.close_pending(false);
    }

    /// Emits the exit event and per-function metrics for the call opened
    /// by the last `begin`, if any.
    fn close_pending(&mut self, failed: bool) {
        if let Some((func, started)) = self.pending.take() {
            let nanos = started.map(|t| t.elapsed().as_nanos() as u64);
            self.recorder
                .jni_exit_id(self.thread.0, func, nanos, failed);
        }
    }

    /// Records a checker verdict in the trace ring: the error transition
    /// (tagged with the failing entity, so forensics can recover it) and
    /// the verdict itself. The Python/C checker reports by raising
    /// `JinnPyCheckError`, hence [`VerdictAction::ThrowException`].
    fn record_violation(&mut self, v: &PyViolation) {
        if !self.recorder.is_enabled() {
            return;
        }
        // Violations are rare: interning here (rather than caching ids)
        // keeps this cold path simple.
        let machine = self.recorder.intern(v.machine);
        let transition = self.recorder.intern("Violation");
        let entity = v.entity.as_deref().map(|e| self.recorder.intern(e));
        self.recorder.fsm_transition_id(
            self.thread.0,
            machine,
            transition,
            FsmOutcome::Error,
            entity,
        );
        let function = self.recorder.intern(&v.function);
        self.recorder.verdict_id(
            self.thread.0,
            machine,
            function,
            VerdictAction::ThrowException,
        );
        self.recorder.count("checks.violations", 1);
    }

    fn crash(&mut self, reason: &str) -> PyError {
        self.py.kill(reason);
        PyError::Crash(reason.to_string())
    }

    fn type_error(&mut self, message: impl Into<String>) -> PyError {
        self.py.set_exception(Some(PyErrState {
            kind: "TypeError".into(),
            message: message.into(),
        }));
        PyError::Raised
    }

    /// Reads the value behind a pointer with real-C staleness semantics:
    /// stale reads "work", aliased reads return the wrong object, wild
    /// reads crash.
    fn read_value(&mut self, p: PyPtr, func: &str) -> Result<PyValue, PyError> {
        match self.py.arena().deref(p) {
            Deref::Alive(v) | Deref::Stale(v) | Deref::Aliased(v) => Ok(v.clone()),
            Deref::Wild => Err(self.crash(&format!("segmentation fault in {func}"))),
        }
    }

    // ---- the API ----------------------------------------------------------

    /// `Py_BuildValue`: builds a value from a format string (`i`, `s`,
    /// `[...]`, `(...)`).
    ///
    /// # Errors
    ///
    /// Raises `SystemError` for malformed formats or argument shortfalls.
    pub fn py_build_value(&mut self, format: &str, args: &[BuildArg]) -> Result<PyPtr, PyError> {
        self.begin("Py_BuildValue", &[])?;
        let result = {
            let mut parser = BuildParser {
                chars: format.chars().peekable(),
                args,
                next: 0,
            };
            parser.parse_all(self.py)
        };
        match result {
            Ok(p) => {
                self.end("Py_BuildValue", &[], Some(p));
                Ok(p)
            }
            Err(msg) => {
                self.py.set_exception(Some(PyErrState {
                    kind: "SystemError".into(),
                    message: msg,
                }));
                Err(PyError::Raised)
            }
        }
    }

    /// `PyList_New` (only empty lists, as in the common `PyList_New(0)`
    /// idiom; slots-then-`SetItem` initialisation uses `py_list_append`).
    pub fn py_list_new(&mut self) -> Result<PyPtr, PyError> {
        self.begin("PyList_New", &[])?;
        let p = self.py.arena_mut().alloc(PyValue::List(Vec::new()));
        self.end("PyList_New", &[], Some(p));
        Ok(p)
    }

    /// `PyList_Append`: increfs `item` and appends.
    pub fn py_list_append(&mut self, list: PyPtr, item: PyPtr) -> Result<(), PyError> {
        let args = [list, item];
        self.begin("PyList_Append", &args)?;
        let lv = self.read_value(list, "PyList_Append")?;
        match lv {
            PyValue::List(_) => {
                self.py.arena_mut().incref(item);
                if let Deref::Alive(_) = self.py.arena().deref(list) {
                    // Re-borrow mutably to push.
                    if let Some(PyValue::List(items)) = arena_value_mut(self.py, list) {
                        items.push(item);
                    }
                }
                self.end("PyList_Append", &args, None);
                Ok(())
            }
            other => Err(self.type_error(format!(
                "descriptor 'append' requires a 'list' object but received a '{}'",
                other.type_name()
            ))),
        }
    }

    /// `PyList_GetItem`: returns a **borrowed** reference.
    pub fn py_list_get_item(&mut self, list: PyPtr, index: i64) -> Result<PyPtr, PyError> {
        let args = [list];
        self.begin("PyList_GetItem", &args)?;
        let lv = self.read_value(list, "PyList_GetItem")?;
        match lv {
            PyValue::List(items) => {
                if index < 0 || index as usize >= items.len() {
                    self.py.set_exception(Some(PyErrState {
                        kind: "IndexError".into(),
                        message: "list index out of range".into(),
                    }));
                    return Err(PyError::Raised);
                }
                let item = items[index as usize];
                self.end("PyList_GetItem", &args, Some(item));
                Ok(item)
            }
            other => Err(self.type_error(format!("expected list, got {}", other.type_name()))),
        }
    }

    /// `PyList_SetItem`: **steals** the reference to `item` and releases
    /// the displaced element.
    pub fn py_list_set_item(
        &mut self,
        list: PyPtr,
        index: i64,
        item: PyPtr,
    ) -> Result<(), PyError> {
        let args = [list, PyPtr::placeholder(), item];
        self.begin("PyList_SetItem", &args)?;
        let lv = self.read_value(list, "PyList_SetItem")?;
        match lv {
            PyValue::List(items) => {
                if index < 0 || index as usize >= items.len() {
                    self.py.set_exception(Some(PyErrState {
                        kind: "IndexError".into(),
                        message: "list assignment index out of range".into(),
                    }));
                    return Err(PyError::Raised);
                }
                let old = items[index as usize];
                if let Some(PyValue::List(items)) = arena_value_mut(self.py, list) {
                    items[index as usize] = item;
                }
                let _ = self.py.arena_mut().decref(old);
                self.end("PyList_SetItem", &args, None);
                Ok(())
            }
            other => Err(self.type_error(format!("expected list, got {}", other.type_name()))),
        }
    }

    /// `PyList_Size`.
    pub fn py_list_size(&mut self, list: PyPtr) -> Result<i64, PyError> {
        let args = [list];
        self.begin("PyList_Size", &args)?;
        let lv = self.read_value(list, "PyList_Size")?;
        let out = match lv {
            PyValue::List(items) => Ok(items.len() as i64),
            other => Err(self.type_error(format!("expected list, got {}", other.type_name()))),
        };
        self.end("PyList_Size", &args, None);
        out
    }

    /// `PyTuple_GetItem`: returns a **borrowed** reference.
    pub fn py_tuple_get_item(&mut self, tuple: PyPtr, index: i64) -> Result<PyPtr, PyError> {
        let args = [tuple];
        self.begin("PyTuple_GetItem", &args)?;
        let tv = self.read_value(tuple, "PyTuple_GetItem")?;
        match tv {
            PyValue::Tuple(items) => {
                if index < 0 || index as usize >= items.len() {
                    self.py.set_exception(Some(PyErrState {
                        kind: "IndexError".into(),
                        message: "tuple index out of range".into(),
                    }));
                    return Err(PyError::Raised);
                }
                let item = items[index as usize];
                self.end("PyTuple_GetItem", &args, Some(item));
                Ok(item)
            }
            other => Err(self.type_error(format!("expected tuple, got {}", other.type_name()))),
        }
    }

    /// `PyString_FromString`: a new string reference.
    pub fn py_string_from_string(&mut self, s: &str) -> Result<PyPtr, PyError> {
        self.begin("PyString_FromString", &[])?;
        let p = self.py.arena_mut().alloc(PyValue::Str(s.to_string()));
        self.end("PyString_FromString", &[], Some(p));
        Ok(p)
    }

    /// `PyString_AsString`: reads the C string out of a `str` object.
    /// Through a dangling pointer this "works" until the slot is reused —
    /// the Figure 11 behaviour.
    pub fn py_string_as_string(&mut self, p: PyPtr) -> Result<String, PyError> {
        let args = [p];
        self.begin("PyString_AsString", &args)?;
        let v = self.read_value(p, "PyString_AsString")?;
        let out = match v {
            PyValue::Str(s) => Ok(s),
            other => Err(self.type_error(format!("expected string, got {}", other.type_name()))),
        };
        self.end("PyString_AsString", &args, None);
        out
    }

    /// `PyInt_FromLong`.
    pub fn py_int_from_long(&mut self, v: i64) -> Result<PyPtr, PyError> {
        self.begin("PyInt_FromLong", &[])?;
        let p = self.py.arena_mut().alloc(PyValue::Int(v));
        self.end("PyInt_FromLong", &[], Some(p));
        Ok(p)
    }

    /// `PyInt_AsLong`.
    pub fn py_int_as_long(&mut self, p: PyPtr) -> Result<i64, PyError> {
        let args = [p];
        self.begin("PyInt_AsLong", &args)?;
        let v = self.read_value(p, "PyInt_AsLong")?;
        let out = match v {
            PyValue::Int(i) => Ok(i),
            other => Err(self.type_error(format!("expected int, got {}", other.type_name()))),
        };
        self.end("PyInt_AsLong", &args, None);
        out
    }

    /// `Py_INCREF` (as the macro-replacing function of Section 7.2).
    pub fn py_incref(&mut self, p: PyPtr) -> Result<(), PyError> {
        let args = [p];
        self.begin("Py_IncRef", &args)?;
        let _ = self.py.arena_mut().incref(p);
        self.end("Py_IncRef", &args, None);
        Ok(())
    }

    /// `Py_DECREF` (macro-replacing function). A decref through a dangling
    /// pointer corrupts the heap — the raw interpreter crashes.
    pub fn py_decref(&mut self, p: PyPtr) -> Result<(), PyError> {
        let args = [p];
        self.begin("Py_DecRef", &args)?;
        match self.py.arena_mut().decref(p) {
            Ok(_freed) => {
                self.end("Py_DecRef", &args, None);
                Ok(())
            }
            Err(_) => Err(self.crash("double free or corruption in Py_DECREF")),
        }
    }

    /// `PyErr_SetString`.
    pub fn py_err_set_string(&mut self, kind: &str, message: &str) -> Result<(), PyError> {
        self.begin("PyErr_SetString", &[])?;
        self.py.set_exception(Some(PyErrState {
            kind: kind.to_string(),
            message: message.to_string(),
        }));
        self.end("PyErr_SetString", &[], None);
        Ok(())
    }

    /// `PyErr_Occurred` (truthiness only).
    pub fn py_err_occurred(&mut self) -> Result<bool, PyError> {
        self.begin("PyErr_Occurred", &[])?;
        let pending = self.py.exception().is_some();
        self.end("PyErr_Occurred", &[], None);
        Ok(pending)
    }

    /// `PyErr_Clear`.
    pub fn py_err_clear(&mut self) -> Result<(), PyError> {
        self.begin("PyErr_Clear", &[])?;
        self.py.set_exception(None);
        self.end("PyErr_Clear", &[], None);
        Ok(())
    }

    /// `PyGILState_Ensure` (reentrant acquire).
    pub fn py_gil_ensure(&mut self) -> Result<(), PyError> {
        self.begin("PyGILState_Ensure", &[])?;
        let t = self.thread;
        if !self.py.gil_mut().ensure(t) {
            return Err(self.crash("deadlock: GIL held by another thread"));
        }
        self.end("PyGILState_Ensure", &[], None);
        Ok(())
    }

    /// `PyGILState_Release`.
    pub fn py_gil_release(&mut self) -> Result<(), PyError> {
        self.begin("PyGILState_Release", &[])?;
        let t = self.thread;
        let _ = self.py.gil_mut().release(t);
        self.end("PyGILState_Release", &[], None);
        Ok(())
    }

    /// `PyEval_SaveThread`: releases the GIL around blocking I/O.
    pub fn py_eval_save_thread(&mut self) -> Result<(), PyError> {
        self.begin("PyEval_SaveThread", &[])?;
        let t = self.thread;
        let _ = self.py.gil_mut().release(t);
        self.end("PyEval_SaveThread", &[], None);
        Ok(())
    }

    /// `PyEval_RestoreThread`: non-reentrant re-acquire; double acquire by
    /// the same thread self-deadlocks.
    pub fn py_eval_restore_thread(&mut self) -> Result<(), PyError> {
        self.begin("PyEval_RestoreThread", &[])?;
        let t = self.thread;
        match self.py.gil_mut().acquire_nonreentrant(t) {
            Ok(()) => {
                self.end("PyEval_RestoreThread", &[], None);
                Ok(())
            }
            Err(GilError::SelfDeadlock) => {
                Err(self.crash("deadlock: thread re-acquired the GIL it already holds"))
            }
            Err(GilError::WouldBlock) => Err(self.crash("deadlock: GIL held by another thread")),
        }
    }

    /// `Py_None` (a borrowed reference to the immortal singleton).
    pub fn py_none(&mut self) -> Result<PyPtr, PyError> {
        self.begin("Py_None", &[])?;
        let none = self.py.none();
        self.end("Py_None", &[], Some(none));
        Ok(none)
    }
}

impl Drop for PyEnv<'_> {
    fn drop(&mut self) {
        // A call that crashed or raised mid-way never reached `end`; close
        // its trace span as failed so exports stay balanced.
        self.close_pending(true);
    }
}

fn arena_value_mut(py: &mut Python, p: PyPtr) -> Option<&mut PyValue> {
    if py.arena().is_alive(p) {
        py.arena_mut().value_mut(p)
    } else {
        None
    }
}

struct BuildParser<'a> {
    chars: std::iter::Peekable<std::str::Chars<'a>>,
    args: &'a [BuildArg],
    next: usize,
}

impl BuildParser<'_> {
    fn take_arg(&mut self) -> Result<&BuildArg, String> {
        let a = self
            .args
            .get(self.next)
            .ok_or("not enough arguments for format string")?;
        self.next += 1;
        Ok(a)
    }

    fn parse_all(&mut self, py: &mut Python) -> Result<PyPtr, String> {
        let first = self.parse_one(py)?;
        if self.chars.peek().is_some() {
            // Multiple top-level items form a tuple, as in CPython.
            let mut items = vec![first];
            while self.chars.peek().is_some() {
                items.push(self.parse_one(py)?);
            }
            return Ok(py.arena_mut().alloc(PyValue::Tuple(items)));
        }
        Ok(first)
    }

    fn parse_one(&mut self, py: &mut Python) -> Result<PyPtr, String> {
        match self.chars.next() {
            Some('i') => {
                let BuildArg::Int(v) = self.take_arg()? else {
                    return Err("format `i` expects an integer argument".into());
                };
                Ok(py.arena_mut().alloc(PyValue::Int(*v)))
            }
            Some('s') => {
                let BuildArg::Str(s) = self.take_arg()? else {
                    return Err("format `s` expects a string argument".into());
                };
                let s = s.clone();
                Ok(py.arena_mut().alloc(PyValue::Str(s)))
            }
            Some(open @ ('[' | '(')) => {
                let close = if open == '[' { ']' } else { ')' };
                let mut items = Vec::new();
                loop {
                    match self.chars.peek() {
                        None => return Err(format!("unterminated `{open}` in format")),
                        Some(&c) if c == close => {
                            self.chars.next();
                            break;
                        }
                        Some(_) => items.push(self.parse_one(py)?),
                    }
                }
                let value = if open == '[' {
                    PyValue::List(items)
                } else {
                    PyValue::Tuple(items)
                };
                Ok(py.arena_mut().alloc(value))
            }
            Some(c) => Err(format!("bad format char `{c}`")),
            None => Err("empty format string".into()),
        }
    }
}
