//! Scenario tests for the Python/C checker (paper Section 7): each
//! constraint class, positive and negative.

use minipy::{
    build_string_list, dangle_bug, dangle_bug_fixed, registry, spec, BuildArg, PyRunOutcome,
    PySession, PyThread, RefReturn,
};

fn checker_error(outcome: PyRunOutcome) -> minipy::PyViolation {
    match outcome {
        PyRunOutcome::CheckerError(v) => v,
        other => panic!("expected a checker error, got {other:?}"),
    }
}

#[test]
fn figure_11_detected_at_the_buggy_line() {
    let mut s = PySession::with_checker();
    let v = checker_error(s.run(|env| dangle_bug(env).map(|_| ())));
    assert_eq!(v.machine, "borrowed-reference");
    assert_eq!(v.function, "PyString_AsString");
    assert!(v.message.contains("co-owner released it"), "{}", v.message);
}

#[test]
fn figure_11_works_by_accident_without_the_checker() {
    let mut s = PySession::new();
    match s.run(|env| {
        let read = dangle_bug(env)?;
        assert_eq!(read, "Eric", "stale memory still holds the old value");
        Ok(())
    }) {
        PyRunOutcome::Completed => {}
        other => panic!("the raw bug should be silent: {other:?}"),
    }
}

#[test]
fn fixed_variant_is_clean_and_leak_free() {
    let mut s = PySession::with_checker();
    match s.run(|env| dangle_bug_fixed(env).map(|_| ())) {
        PyRunOutcome::Completed => {}
        other => panic!("fixed variant flagged: {other:?}"),
    }
    assert!(s.shutdown().is_empty());
    assert_eq!(s.python().live_objects(), 0, "everything released");
}

#[test]
fn decref_of_borrowed_reference_detected() {
    let mut s = PySession::with_checker();
    let v = checker_error(s.run(|env| {
        let list = build_string_list(env, &["a", "b"])?;
        let item = env.py_list_get_item(list, 1)?; // borrowed
        env.py_decref(item)?; // the caller does not co-own it!
        env.py_decref(list)?;
        Ok(())
    }));
    assert_eq!(v.machine, "borrowed-reference");
    assert_eq!(v.function, "Py_DecRef");
    assert!(v.message.contains("borrowed"), "{}", v.message);
}

#[test]
fn double_decref_detected() {
    let mut s = PySession::with_checker();
    let v = checker_error(s.run(|env| {
        let obj = env.py_int_from_long(7)?;
        env.py_decref(obj)?;
        env.py_decref(obj)?;
        Ok(())
    }));
    assert_eq!(v.machine, "borrowed-reference");
    assert!(
        v.message.contains("without matching ownership"),
        "{}",
        v.message
    );
}

#[test]
fn missing_decref_reported_at_shutdown() {
    let mut s = PySession::with_checker();
    match s.run(|env| {
        let _leak = env.py_string_from_string("kept forever")?;
        Ok(())
    }) {
        PyRunOutcome::Completed => {}
        other => panic!("{other:?}"),
    }
    let reports = s.shutdown();
    assert_eq!(reports.len(), 1, "{reports:?}");
    assert!(reports[0].message.contains("never released"));
}

#[test]
fn incref_makes_a_borrow_a_co_owner() {
    let mut s = PySession::with_checker();
    match s.run(|env| {
        let list = build_string_list(env, &["x"])?;
        let item = env.py_list_get_item(list, 0)?;
        env.py_incref(item)?; // promote the borrow
        env.py_decref(list)?;
        // Still valid: we co-own it now.
        assert_eq!(env.py_string_as_string(item)?, "x");
        env.py_decref(item)?;
        Ok(())
    }) {
        PyRunOutcome::Completed => {}
        other => panic!("{other:?}"),
    }
    assert!(s.shutdown().is_empty());
}

#[test]
fn gil_violation_detected_and_reacquire_is_clean() {
    let mut s = PySession::with_checker();
    let v = checker_error(s.run(|env| {
        env.py_eval_save_thread()?;
        let _ = env.py_list_new()?;
        Ok(())
    }));
    assert_eq!(v.machine, "gil");

    let mut s = PySession::with_checker();
    match s.run(|env| {
        env.py_eval_save_thread()?;
        // ...blocking I/O happens here...
        env.py_eval_restore_thread()?;
        let _l = env.py_list_new()?;
        env.py_decref(_l)?;
        Ok(())
    }) {
        PyRunOutcome::Completed => {}
        other => panic!("{other:?}"),
    }
}

#[test]
fn gil_self_deadlock_is_an_interpreter_death() {
    let mut s = PySession::new();
    match s.run(|env| {
        // PyEval_RestoreThread while already holding: classic embed bug.
        env.py_eval_restore_thread()?;
        Ok(())
    }) {
        PyRunOutcome::Crashed(msg) => assert!(msg.contains("deadlock"), "{msg}"),
        other => panic!("{other:?}"),
    }
}

#[test]
fn exception_state_violation_detected_and_clearing_helps() {
    let mut s = PySession::with_checker();
    let v = checker_error(s.run(|env| {
        env.py_err_set_string("ValueError", "nope")?;
        let _ = env.py_int_from_long(1)?;
        Ok(())
    }));
    assert_eq!(v.machine, "py-exception");

    let mut s = PySession::with_checker();
    match s.run(|env| {
        env.py_err_set_string("ValueError", "nope")?;
        assert!(env.py_err_occurred()?);
        env.py_err_clear()?;
        let i = env.py_int_from_long(1)?;
        env.py_decref(i)?;
        Ok(())
    }) {
        PyRunOutcome::Completed => {}
        other => panic!("{other:?}"),
    }
}

#[test]
fn set_item_steals_ownership() {
    let mut s = PySession::with_checker();
    match s.run(|env| {
        let list = build_string_list(env, &["old"])?;
        let new_item = env.py_string_from_string("new")?;
        // PyList_SetItem steals `new_item`: no decref needed (and none
        // allowed) afterwards.
        env.py_list_set_item(list, 0, new_item)?;
        let got = env.py_list_get_item(list, 0)?;
        assert_eq!(env.py_string_as_string(got)?, "new");
        env.py_decref(list)?;
        Ok(())
    }) {
        PyRunOutcome::Completed => {}
        other => panic!("{other:?}"),
    }
    assert!(
        s.shutdown().is_empty(),
        "the stolen reference is not a leak"
    );
}

#[test]
fn interpreter_type_errors_are_python_exceptions_not_checker_reports() {
    let mut s = PySession::with_checker();
    match s.run(|env| {
        let i = env.py_int_from_long(3)?;
        // Dynamically ill-typed, but a *Python*-level error: the
        // interpreter raises TypeError; the FFI checker stays silent.
        match env.py_string_as_string(i) {
            Err(minipy::PyError::Raised) => {}
            other => panic!("expected TypeError, got {other:?}"),
        }
        Ok(())
    }) {
        PyRunOutcome::Raised(kind, _) => assert_eq!(kind, "TypeError"),
        other => panic!("{other:?}"),
    }
}

#[test]
fn tuples_and_nested_build_values() {
    let mut s = PySession::with_checker();
    match s.run(|env| {
        let v = env.py_build_value(
            "(i[ss]i)",
            &[
                BuildArg::Int(1),
                BuildArg::Str("a".into()),
                BuildArg::Str("b".into()),
                BuildArg::Int(2),
            ],
        )?;
        let first = env.py_tuple_get_item(v, 0)?;
        assert_eq!(env.py_int_as_long(first)?, 1);
        let inner = env.py_tuple_get_item(v, 1)?;
        assert_eq!(env.py_list_size(inner)?, 2);
        env.py_decref(v)?;
        Ok(())
    }) {
        PyRunOutcome::Completed => {}
        other => panic!("{other:?}"),
    }
    assert!(s.shutdown().is_empty());
}

#[test]
fn build_value_errors_raise_system_error() {
    let mut s = PySession::new();
    match s.run(
        |env| match env.py_build_value("[s", &[BuildArg::Str("unterminated".into())]) {
            Err(minipy::PyError::Raised) => Ok(()),
            other => panic!("{other:?}"),
        },
    ) {
        PyRunOutcome::Raised(kind, msg) => {
            assert_eq!(kind, "SystemError");
            assert!(msg.contains("unterminated"), "{msg}");
        }
        other => panic!("{other:?}"),
    }
}

#[test]
fn specification_file_lists_borrow_and_new_returns() {
    // The "specification file" the Python/C synthesizer consumes.
    assert!(registry().len() >= 20);
    assert_eq!(spec("Py_BuildValue").returns, RefReturn::New);
    assert_eq!(spec("PyList_GetItem").returns, RefReturn::Borrowed);
    assert_eq!(spec("PyList_GetItem").borrow_source, Some(0));
    assert_eq!(spec("PyList_SetItem").steals_arg, Some(2));
    assert!(spec("PyErr_Clear").err_oblivious);
    assert!(!spec("PyList_New").err_oblivious);
    assert!(!spec("PyGILState_Ensure").requires_gil);
}

#[test]
fn other_threads_block_on_the_gil() {
    let mut s = PySession::new();
    let mut env = s.env_on(PyThread(7));
    match env.py_gil_ensure() {
        Err(minipy::PyError::Crash(msg)) => assert!(msg.contains("deadlock"), "{msg}"),
        other => panic!("main holds the GIL; thread 7 must block: {other:?}"),
    }
}
