//! The `-Xcheck:jni` built-in checkers of HotSpot and J9.
//!
//! These are the *baselines* the paper compares Jinn against
//! (Table 1 columns 6–7 and the Section 6.3 coverage study). Both are
//! deliberately incomplete and mutually inconsistent, calibrated row by
//! row against the table:
//!
//! | pitfall | HotSpot `-Xcheck` | J9 `-Xcheck` |
//! |---|---|---|
//! | 1 exception state      | warning | error |
//! | 2 invalid arguments    | —       | —     |
//! | 3 jclass confusion     | error   | error |
//! | 6 IDs vs references    | error   | error |
//! | 9 access control       | —       | —     |
//! | 11 retained resources  | —       | warning (at exit) |
//! | 12 local-ref overflow  | —       | warning |
//! | 13 invalid local refs  | error   | error |
//! | 14 env across threads  | error   | —     |
//! | 16 bad critical region | warning | error |
//!
//! Unlike Jinn, these run *inside* the JVM, so they may consult VM ground
//! truth (handle tables, critical-section state) directly; also unlike
//! Jinn they report by printing — a warning keeps running, an error aborts
//! the process (J9 offers `-Xcheck:jni:nonfatal` to downgrade errors).

use minijni::registry::Op;
use minijni::{CallCx, Interpose, JniArg, JniRet, Report, ReportAction, Violation};
use minijvm::{JRef, Jvm, MethodId, RefFault, RefKind, ThreadId};

fn report(
    machine: &'static str,
    error_state: &'static str,
    function: &str,
    message: String,
    stack: &[String],
    action: ReportAction,
) -> Report {
    Report::new(
        Violation {
            machine,
            error_state,
            function: function.to_string(),
            message,
            // Innermost frame first, as printed by the real checkers.
            backtrace: stack.iter().rev().cloned().collect(),
        },
        action,
    )
}

fn stale_ref_fault(jvm: &Jvm, thread: ThreadId, r: JRef) -> Option<RefFault> {
    if r.is_null() {
        return None;
    }
    jvm.resolve(thread, r).err()
}

/// HotSpot's `-Xcheck:jni` checker.
#[derive(Debug, Clone, Default)]
pub struct HotSpotXcheck;

impl Interpose for HotSpotXcheck {
    fn name(&self) -> &str {
        "hotspot-xcheck"
    }

    fn pre_jni(&mut self, jvm: &Jvm, cx: &CallCx<'_>) -> Vec<Report> {
        let spec = cx.spec();
        let fname = &spec.name;
        let mut out = Vec::new();

        // Pitfall 1 (warning; Figure 9a wording).
        if !spec.exception_oblivious && jvm.thread(cx.thread).pending_exception().is_some() {
            out.push(report(
                "exception-state",
                "Error:SensitiveCallWithPending",
                fname,
                "WARNING in native method: JNI call made with exception pending".to_string(),
                cx.stack,
                ReportAction::Warn,
            ));
        }
        // Pitfall 16 (warning).
        if !spec.critical_ok && jvm.thread(cx.thread).in_critical_section() {
            out.push(report(
                "critical-section",
                "Error:SensitiveCallInCritical",
                fname,
                "WARNING in native method: JNI call made within critical region".to_string(),
                cx.stack,
                ReportAction::Warn,
            ));
        }
        // Pitfall 14 (error).
        if cx.presented_env != jvm.thread(cx.thread).env() {
            out.push(report(
                "jnienv-state",
                "Error:EnvMismatch",
                fname,
                "FATAL ERROR in native method: Using JNIEnv in the wrong thread".to_string(),
                cx.stack,
                ReportAction::AbortVm,
            ));
            return out;
        }
        // Pitfall 3 (error): jclass confusion on fixed-Class parameters.
        for (i, p) in spec.params.iter().enumerate() {
            if p.fixed_types == ["java/lang/Class"] {
                if let Some(JniArg::Ref(r)) = cx.args.get(i) {
                    if !r.is_null() {
                        if let Ok(Some(oop)) = jvm.resolve(cx.thread, *r) {
                            if jvm.class_of_mirror(oop).is_none() {
                                out.push(report(
                                    "fixed-typing",
                                    "Error:FixedTypeMismatch",
                                    fname,
                                    format!(
                                        "FATAL ERROR in native method: Expected jclass for `{}`",
                                        p.name
                                    ),
                                    cx.stack,
                                    ReportAction::AbortVm,
                                ));
                                return out;
                            }
                        }
                    }
                }
            }
        }
        // Pitfall 6 (error): forged method/field IDs.
        for a in cx.args {
            let bad = match a {
                JniArg::Method(m) => jvm.registry().method(*m).is_none(),
                JniArg::Field(f) => jvm.registry().field(*f).is_none(),
                _ => false,
            };
            if bad {
                out.push(report(
                    "entity-typing",
                    "Error:EntityTypeMismatch",
                    fname,
                    "FATAL ERROR in native method: Invalid method or field ID".to_string(),
                    cx.stack,
                    ReportAction::AbortVm,
                ));
                return out;
            }
        }
        // Pitfalls 13/14 (error): invalid references, including deletes
        // (double frees) — HotSpot validates every handle it is passed.
        for a in cx.args {
            if let JniArg::Ref(r) = a {
                if stale_ref_fault(jvm, cx.thread, *r).is_some() {
                    out.push(report(
                        if r.kind() == RefKind::Local {
                            "local-reference"
                        } else {
                            "global-reference"
                        },
                        "Error:Dangling",
                        fname,
                        "FATAL ERROR in native method: Bad global or local ref passed to JNI"
                            .to_string(),
                        cx.stack,
                        ReportAction::AbortVm,
                    ));
                    return out;
                }
            }
        }
        // Pinned-buffer double free (error).
        if matches!(
            spec.op,
            Op::ReleaseStringChars
                | Op::ReleaseStringUtfChars
                | Op::ReleaseArrayElements(_)
                | Op::ReleaseStringCritical
                | Op::ReleasePrimitiveArrayCritical
        ) {
            if let Some(JniArg::Buf(pin)) = cx.args.get(1) {
                if !jvm.pins().is_live(*pin) {
                    out.push(report(
                        "pinned-buffer",
                        "Error:DoubleFree",
                        fname,
                        "FATAL ERROR in native method: Releasing unpinned buffer".to_string(),
                        cx.stack,
                        ReportAction::AbortVm,
                    ));
                }
            }
        }
        out
    }
}

/// J9's `-Xcheck:jni` checker.
#[derive(Debug, Clone, Default)]
pub struct J9Xcheck {
    /// `-Xcheck:jni:nonfatal`: downgrade errors to warnings and continue.
    pub nonfatal: bool,
}

impl J9Xcheck {
    /// Standard fatal configuration.
    pub fn new() -> J9Xcheck {
        J9Xcheck { nonfatal: false }
    }

    /// The `-Xcheck:jni:nonfatal` configuration mentioned in Figure 9(b).
    pub fn nonfatal() -> J9Xcheck {
        J9Xcheck { nonfatal: true }
    }

    fn error_action(&self) -> ReportAction {
        if self.nonfatal {
            ReportAction::Warn
        } else {
            ReportAction::AbortVm
        }
    }
}

impl Interpose for J9Xcheck {
    fn name(&self) -> &str {
        "j9-xcheck"
    }

    fn pre_jni(&mut self, jvm: &Jvm, cx: &CallCx<'_>) -> Vec<Report> {
        let spec = cx.spec();
        let fname = &spec.name;
        let mut out = Vec::new();

        // Pitfall 1 (error; Figure 9b wording).
        if !spec.exception_oblivious && jvm.thread(cx.thread).pending_exception().is_some() {
            out.push(report(
                "exception-state",
                "Error:SensitiveCallWithPending",
                fname,
                format!(
                    "JVMJNCK028E JNI error in {fname}: This function cannot be called when an exception is pending"
                ),
                cx.stack,
                self.error_action(),
            ));
            return out;
        }
        // Pitfall 16 (error).
        if !spec.critical_ok && jvm.thread(cx.thread).in_critical_section() {
            out.push(report(
                "critical-section",
                "Error:SensitiveCallInCritical",
                fname,
                format!("JVMJNCK074E JNI error in {fname}: call made within critical region"),
                cx.stack,
                self.error_action(),
            ));
            return out;
        }
        // Unmatched critical release (error) — J9 validates the pairing.
        if matches!(
            spec.op,
            Op::ReleaseStringCritical | Op::ReleasePrimitiveArrayCritical
        ) {
            let held = cx
                .args
                .get(1)
                .and_then(|a| match a {
                    JniArg::Buf(p) => jvm.pins().object(*p),
                    _ => None,
                })
                .map(|obj| {
                    jvm.thread(cx.thread)
                        .criticals()
                        .iter()
                        .any(|h| h.object == obj)
                })
                .unwrap_or(false);
            if !held {
                out.push(report(
                    "critical-section",
                    "Error:UnmatchedRelease",
                    fname,
                    format!("JVMJNCK075E JNI error in {fname}: unmatched critical release"),
                    cx.stack,
                    self.error_action(),
                ));
                return out;
            }
        }
        // Pitfall 3 (error).
        for (i, p) in spec.params.iter().enumerate() {
            if p.fixed_types == ["java/lang/Class"] {
                if let Some(JniArg::Ref(r)) = cx.args.get(i) {
                    if !r.is_null() {
                        if let Ok(Some(oop)) = jvm.resolve(cx.thread, *r) {
                            if jvm.class_of_mirror(oop).is_none() {
                                out.push(report(
                                    "fixed-typing",
                                    "Error:FixedTypeMismatch",
                                    fname,
                                    format!(
                                        "JVMJNCK023E JNI error in {fname}: invalid jclass argument `{}`",
                                        p.name
                                    ),
                                    cx.stack,
                                    self.error_action(),
                                ));
                                return out;
                            }
                        }
                    }
                }
            }
        }
        // Pitfall 6 (error).
        for a in cx.args {
            let bad = match a {
                JniArg::Method(m) => jvm.registry().method(*m).is_none(),
                JniArg::Field(f) => jvm.registry().field(*f).is_none(),
                _ => false,
            };
            if bad {
                out.push(report(
                    "entity-typing",
                    "Error:EntityTypeMismatch",
                    fname,
                    format!("JVMJNCK065E JNI error in {fname}: invalid method or field ID"),
                    cx.stack,
                    self.error_action(),
                ));
                return out;
            }
        }
        // Pitfall 13 (error): stale *local* references on use sites only —
        // J9 neither validates the argument of Delete{Local,Global}Ref
        // (double frees slip through) nor global-reference liveness; this
        // asymmetry is part of the inconsistency the paper measures.
        let is_delete = matches!(
            spec.op,
            Op::DeleteLocalRef | Op::DeleteGlobalRef | Op::DeleteWeakGlobalRef
        );
        if !is_delete {
            for a in cx.args {
                if let JniArg::Ref(r) = a {
                    if r.kind() != RefKind::Local {
                        continue;
                    }
                    match stale_ref_fault(jvm, cx.thread, *r) {
                        Some(RefFault::Stale { .. }) | Some(RefFault::OutOfRange { .. }) => {
                            out.push(report(
                                "local-reference",
                                "Error:Dangling",
                                fname,
                                format!("JVMJNCK035E JNI error in {fname}: invalid reference"),
                                cx.stack,
                                self.error_action(),
                            ));
                            return out;
                        }
                        _ => {}
                    }
                }
            }
        }
        out
    }

    fn post_jni(&mut self, jvm: &Jvm, cx: &CallCx<'_>, ret: Option<&JniRet>) -> Vec<Report> {
        // Pitfall 12 (warning): local-reference frame overflow, observed
        // against the VM's own frame state.
        if let Some(JniRet::Ref(r)) = ret {
            if !r.is_null() && r.kind() == RefKind::Local {
                let t = jvm.thread(cx.thread);
                let frame = t.current_frame();
                if frame.len() > frame.capacity() {
                    return vec![report(
                        "local-reference",
                        "Error:Overflow",
                        cx.func.name(),
                        format!(
                            "JVMJNCK080W JNI warning in {}: local reference count ({}) exceeds capacity ({})",
                            cx.func.name(),
                            frame.len(),
                            frame.capacity()
                        ),
                        cx.stack,
                        ReportAction::Warn,
                    )];
                }
            }
        }
        Vec::new()
    }

    fn vm_death(&mut self, jvm: &Jvm) -> Vec<Report> {
        // Pitfall 11 (warning): unreleased pinned buffers at exit.
        let leaked = jvm.pins().live_count();
        if leaked > 0 {
            vec![report(
                "pinned-buffer",
                "Error:Leak",
                "VMDeath",
                format!(
                    "JVMJNCK085W JNI warning: {leaked} unreleased pinned buffer(s) at shutdown"
                ),
                &[],
                ReportAction::Warn,
            )]
        } else {
            Vec::new()
        }
    }
}

#[allow(unused)]
fn _assert_interpose_object_safe(_: &dyn Interpose, _: MethodId) {}
