//! `jinn-vendors` — behavioural models of production JVMs and their
//! built-in `-Xcheck:jni` dynamic checkers.
//!
//! The paper's Table 1 and Section 6.3 compare Jinn against two production
//! JVMs, Sun HotSpot Client 1.6 and IBM J9 1.6, in two configurations
//! each: *default* (undefined behaviour on JNI misuse — crashes, silent
//! corruption, NPEs, deadlocks) and *`-Xcheck:jni`* (ad-hoc, incomplete,
//! mutually inconsistent built-in checking). This crate reproduces all
//! four as plug-ins for `minijni`:
//!
//! * [`HotSpotModel`] / [`J9Model`] implement
//!   [`minijni::VendorModel`] — the default-behaviour columns;
//! * [`HotSpotXcheck`] / [`J9Xcheck`] implement
//!   [`minijni::Interpose`] — the `-Xcheck:jni` columns.
//!
//! # Example
//!
//! ```
//! use jinn_vendors::{hotspot_vm, j9_vm, Vendor};
//!
//! let hs = hotspot_vm();
//! assert_eq!(hs.vendor().name(), "HotSpot");
//! let j9 = j9_vm();
//! assert_eq!(j9.vendor().name(), "J9");
//! assert_eq!(Vendor::HotSpot.to_string(), "HotSpot");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod models;
mod xcheck;

use minijni::{Interpose, Vm};

pub use models::{HotSpotModel, J9Model};
pub use xcheck::{HotSpotXcheck, J9Xcheck};

/// The two production JVMs of the evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Vendor {
    /// Sun HotSpot Client 1.6.
    HotSpot,
    /// IBM J9 1.6.
    J9,
}

impl std::fmt::Display for Vendor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Vendor::HotSpot => f.write_str("HotSpot"),
            Vendor::J9 => f.write_str("J9"),
        }
    }
}

impl Vendor {
    /// Both vendors, in the paper's column order.
    pub const ALL: [Vendor; 2] = [Vendor::HotSpot, Vendor::J9];

    /// A fresh VM with this vendor's default-behaviour model.
    pub fn vm(self) -> Vm {
        match self {
            Vendor::HotSpot => Vm::new(Box::new(HotSpotModel)),
            Vendor::J9 => Vm::new(Box::new(J9Model)),
        }
    }

    /// This vendor's `-Xcheck:jni` checker.
    pub fn xcheck(self) -> Box<dyn Interpose> {
        match self {
            Vendor::HotSpot => Box::new(HotSpotXcheck),
            Vendor::J9 => Box::new(J9Xcheck::new()),
        }
    }
}

/// A VM behaving like Sun HotSpot Client 1.6.
pub fn hotspot_vm() -> Vm {
    Vendor::HotSpot.vm()
}

/// A VM behaving like IBM J9 1.6.
pub fn j9_vm() -> Vm {
    Vendor::J9.vm()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vendor_constructors() {
        for v in Vendor::ALL {
            let vm = v.vm();
            assert_eq!(vm.vendor().name(), v.to_string());
            let checker = v.xcheck();
            assert!(checker.name().contains("xcheck"));
        }
    }
}
