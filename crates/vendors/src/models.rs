//! Behavioural models of the HotSpot and J9 production JVMs.
//!
//! These reproduce the **Default Behavior** columns of the paper's
//! Table 1: what each JVM does, *without* `-Xcheck:jni`, when native code
//! violates a JNI constraint. The calibration below follows the table row
//! by row; where the table is silent (situations outside its twelve
//! pitfalls) the models use the more defensive of the two behaviours
//! observed in the paper's neighbouring rows.

use minijni::{UbOutcome, UbSituation, VendorModel};
use minijvm::RefFault;

/// Sun/Oracle HotSpot 1.6 default-behaviour model.
///
/// HotSpot is the permissive one of the pair: it "keeps on running in
/// spite of undefined JVM state" for exception-state misuse, invalid
/// arguments, and cross-thread env use, and crashes only when an operation
/// is mechanically impossible (dangling references, type confusion on
/// `jclass`, forged IDs).
#[derive(Debug, Clone, Default)]
pub struct HotSpotModel;

impl VendorModel for HotSpotModel {
    fn name(&self) -> &str {
        "HotSpot"
    }

    fn on_violation(&self, situation: &UbSituation<'_>) -> UbOutcome {
        match situation {
            // Pitfall 1: running.
            UbSituation::ExceptionPending { .. } => UbOutcome::Proceed,
            // Pitfall 2: running (garbage results).
            UbSituation::NullArgument { .. } => UbOutcome::Proceed,
            // Pitfall 3: crash.
            UbSituation::TypeConfusion { expected, .. } if *expected == "java.lang.Class" => {
                UbOutcome::Crash("SIGSEGV in interpreter (jclass confusion)")
            }
            // Other type confusions behave like invalid arguments: running.
            UbSituation::TypeConfusion { .. } => UbOutcome::Proceed,
            // Pitfall 6: crash.
            UbSituation::BadEntityId { .. } => {
                UbOutcome::Crash("SIGSEGV dereferencing invalid method/field ID")
            }
            // Pitfall 9: NPE.
            UbSituation::FinalFieldWrite { .. } => UbOutcome::Npe,
            // Pitfall 13: crash on dangling references; null refs NPE;
            // pitfall 14's cross-thread use keeps running.
            UbSituation::RefFault { fault, .. } => match fault {
                RefFault::Null => UbOutcome::Npe,
                RefFault::WrongThread { .. } => UbOutcome::Proceed,
                _ => UbOutcome::Crash("SIGSEGV dereferencing invalid reference"),
            },
            // Pitfall 14: running.
            UbSituation::EnvMismatch { .. } => UbOutcome::Proceed,
            // Pitfall 16: deadlock (GC vs abandoned critical section).
            UbSituation::CriticalViolation { .. } => {
                UbOutcome::Deadlock("GC disabled by critical section")
            }
            // Double-free of pinned buffers corrupts the C heap silently.
            UbSituation::PinFault { .. } => UbOutcome::Proceed,
        }
    }
}

/// IBM J9 1.6 default-behaviour model.
///
/// J9 is the brittle one: misuse that HotSpot shrugs off (pending
/// exceptions, invalid arguments, cross-thread env use) crashes J9.
#[derive(Debug, Clone, Default)]
pub struct J9Model;

impl VendorModel for J9Model {
    fn name(&self) -> &str {
        "J9"
    }

    fn on_violation(&self, situation: &UbSituation<'_>) -> UbOutcome {
        match situation {
            // Pitfall 1: crash.
            UbSituation::ExceptionPending { .. } => {
                UbOutcome::Crash("GPF while dispatching with pending exception")
            }
            // Pitfall 2: crash.
            UbSituation::NullArgument { .. } => UbOutcome::Crash("GPF dereferencing null argument"),
            // Pitfall 3: crash.
            UbSituation::TypeConfusion { expected, .. } if *expected == "java.lang.Class" => {
                UbOutcome::Crash("GPF in method lookup (jclass confusion)")
            }
            UbSituation::TypeConfusion { .. } => UbOutcome::Crash("GPF on mistyped JNI argument"),
            // Pitfall 6: crash.
            UbSituation::BadEntityId { .. } => {
                UbOutcome::Crash("GPF dereferencing invalid method/field ID")
            }
            // Pitfall 9: NPE.
            UbSituation::FinalFieldWrite { .. } => UbOutcome::Npe,
            // Pitfalls 13/14: crash (J9 trusts nothing).
            UbSituation::RefFault { fault, .. } => match fault {
                RefFault::Null => UbOutcome::Npe,
                _ => UbOutcome::Crash("GPF dereferencing invalid reference"),
            },
            UbSituation::EnvMismatch { .. } => {
                UbOutcome::Crash("GPF using JNIEnv* of another thread")
            }
            // Pitfall 16: deadlock.
            UbSituation::CriticalViolation { .. } => {
                UbOutcome::Deadlock("VM access blocked by critical section")
            }
            UbSituation::PinFault { .. } => UbOutcome::Proceed,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use minijni::FuncId;
    use minijvm::RefKind;

    fn func() -> &'static minijni::FuncSpec {
        FuncId::of("CallVoidMethodA").spec()
    }

    #[test]
    fn table1_row1_exception_pending() {
        // running vs crash
        assert_eq!(
            HotSpotModel.on_violation(&UbSituation::ExceptionPending { func: func() }),
            UbOutcome::Proceed
        );
        assert!(matches!(
            J9Model.on_violation(&UbSituation::ExceptionPending { func: func() }),
            UbOutcome::Crash(_)
        ));
    }

    #[test]
    fn table1_row2_invalid_arguments() {
        // running vs crash
        assert_eq!(
            HotSpotModel.on_violation(&UbSituation::NullArgument {
                func: func(),
                param: "obj"
            }),
            UbOutcome::Proceed
        );
        assert!(matches!(
            J9Model.on_violation(&UbSituation::NullArgument {
                func: func(),
                param: "obj"
            }),
            UbOutcome::Crash(_)
        ));
    }

    #[test]
    fn table1_row3_jclass_confusion_crashes_both() {
        let s = UbSituation::TypeConfusion {
            func: func(),
            expected: "java.lang.Class",
        };
        assert!(matches!(HotSpotModel.on_violation(&s), UbOutcome::Crash(_)));
        assert!(matches!(J9Model.on_violation(&s), UbOutcome::Crash(_)));
    }

    #[test]
    fn table1_row9_final_field_is_npe_both() {
        let s = UbSituation::FinalFieldWrite { func: func() };
        assert_eq!(HotSpotModel.on_violation(&s), UbOutcome::Npe);
        assert_eq!(J9Model.on_violation(&s), UbOutcome::Npe);
    }

    #[test]
    fn table1_row13_dangling_local_crashes_both() {
        let s = UbSituation::RefFault {
            fault: RefFault::Stale {
                kind: RefKind::Local,
                reused: false,
            },
            func: func(),
        };
        assert!(matches!(HotSpotModel.on_violation(&s), UbOutcome::Crash(_)));
        assert!(matches!(J9Model.on_violation(&s), UbOutcome::Crash(_)));
    }

    #[test]
    fn table1_row14_env_mismatch() {
        // running vs crash
        let s = UbSituation::EnvMismatch { func: func() };
        assert_eq!(HotSpotModel.on_violation(&s), UbOutcome::Proceed);
        assert!(matches!(J9Model.on_violation(&s), UbOutcome::Crash(_)));
    }

    #[test]
    fn table1_row16_critical_deadlocks_both() {
        let s = UbSituation::CriticalViolation { func: func() };
        assert!(matches!(
            HotSpotModel.on_violation(&s),
            UbOutcome::Deadlock(_)
        ));
        assert!(matches!(J9Model.on_violation(&s), UbOutcome::Deadlock(_)));
    }
}
