//! `-Xcheck:jni:nonfatal` (mentioned in the paper's Figure 9b): J9's
//! checker downgraded from aborting to warning-and-continuing.

use std::rc::Rc;

use jinn_vendors::{J9Xcheck, Vendor};
use minijni::{typed, RunOutcome, Session};
use minijvm::JValue;

fn exception_state_program(vm: &mut minijni::Vm) -> minijvm::MethodId {
    vm.define_managed_class(
        "nf/Thrower",
        "boom",
        "()V",
        true,
        Rc::new(|env, _| Err(env.java_throw("java/lang/RuntimeException", "pending"))),
    );
    let (_c, entry) = vm.define_native_class(
        "nf/Caller",
        "call",
        "()V",
        true,
        Rc::new(|env, _| {
            let clazz = typed::find_class(env, "nf/Thrower")?;
            let mid = typed::get_static_method_id(env, clazz, "boom", "()V")?;
            let _ = typed::call_static_void_method_a(env, clazz, mid, &[]);
            // Sensitive call with the exception still pending.
            let _ = typed::get_static_method_id(env, clazz, "boom", "()V");
            typed::exception_clear(env)?;
            Ok(JValue::Void)
        }),
    );
    entry
}

#[test]
fn fatal_mode_aborts_nonfatal_mode_warns_and_continues() {
    // Standard -Xcheck:jni: the first error aborts the VM.
    let mut vm = Vendor::J9.vm();
    let entry = exception_state_program(&mut vm);
    let thread = vm.jvm().main_thread();
    let mut session = Session::new(vm);
    session.attach(Box::new(J9Xcheck::new()));
    match session.run_native(thread, entry, &[]) {
        RunOutcome::Died(d) => {
            assert_eq!(d.kind, minijvm::DeathKind::FatalError);
            assert!(d.message.contains("JVMJNCK028E"), "{d}");
        }
        other => panic!("fatal mode should abort: {other:?}"),
    }

    // -Xcheck:jni:nonfatal: the checker no longer aborts — it warns and
    // lets execution continue into the (undefined) call. On our J9 model
    // that call still crashes, but unlike the unchecked run the user now
    // has the JVMJNCK diagnosis pointing at the cause.
    let mut vm = Vendor::J9.vm();
    let entry = exception_state_program(&mut vm);
    let thread = vm.jvm().main_thread();
    let mut session = Session::new(vm);
    session.attach(Box::new(J9Xcheck::nonfatal()));
    let outcome = session.run_native(thread, entry, &[]);
    match outcome {
        RunOutcome::Died(d) => assert_eq!(d.kind, minijvm::DeathKind::Crash, "{d}"),
        other => panic!("the underlying J9 crash still happens: {other:?}"),
    }
    assert!(
        session.log().iter().any(|l| l.contains("JVMJNCK028E")),
        "the diagnosis was printed before the crash: {:?}",
        session.log()
    );
}
