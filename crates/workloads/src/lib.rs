//! `jinn-workloads` — the evaluation workloads of the paper's Section 6.
//!
//! * [`table3`]: the 19 SPECjvm98/DaCapo benchmark stand-ins that replay
//!   the paper's measured language-transition counts under the four
//!   measured configurations (baseline, `-Xcheck:jni`, Jinn interposing,
//!   Jinn checking);
//! * [`subversion`]: the Section 6.4.1 case study (two local-reference
//!   overflows, one dangling destructor reference, and the Figure 10
//!   time series);
//! * [`javagnome`]: the Section 6.4.2 case study (GNOME bug 576111 and
//!   the Blink nullness bug);
//! * [`eclipse`]: the Section 6.4.3 case study (the SWT entity-specific
//!   typing violation).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod eclipse;
pub mod javagnome;
pub mod subversion;
pub mod table3;

pub use table3::{
    benchmark, build_workload, geomean, run_benchmark, table3_row, BenchmarkSpec, Measurement,
    Suite, Table3Row, Treatment, XorShift, BENCHMARKS,
};
