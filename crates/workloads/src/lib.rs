//! `jinn-workloads` — the evaluation workloads of the paper's Section 6.
//!
//! * [`table3`]: the 19 SPECjvm98/DaCapo benchmark stand-ins that replay
//!   the paper's measured language-transition counts under the four
//!   measured configurations (baseline, `-Xcheck:jni`, Jinn interposing,
//!   Jinn checking);
//! * [`subversion`]: the Section 6.4.1 case study (two local-reference
//!   overflows, one dangling destructor reference, and the Figure 10
//!   time series);
//! * [`javagnome`]: the Section 6.4.2 case study (GNOME bug 576111 and
//!   the Blink nullness bug);
//! * [`eclipse`]: the Section 6.4.3 case study (the SWT entity-specific
//!   typing violation).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod eclipse;
pub mod javagnome;
pub mod subversion;
pub mod table3;

pub use table3::{
    benchmark, build_workload, geomean, run_benchmark, table3_row, BenchmarkSpec, Measurement,
    Suite, Table3Row, Treatment, XorShift, BENCHMARKS,
};

/// Every JNI function the Table 3 workload mix ([`build_workload`]) can
/// call at runtime — the call-site manifest consumed by the static
/// discharge pass (`jinn_core::discharge`). A function absent from this
/// list is provably never invoked by the benchmark natives, so machine
/// transitions triggered only by absent functions can be compiled out.
/// Kept in sync with `table3.rs` by the `manifest_covers_workload` test.
pub const TABLE3_CALLED_FUNCTIONS: &[&str] = &[
    "CallIntMethodA",
    "DeleteGlobalRef",
    "DeleteLocalRef",
    "GetFieldID",
    "GetIntArrayRegion",
    "GetIntField",
    "GetMethodID",
    "GetObjectClass",
    "GetStringUTFChars",
    "GetStringUTFLength",
    "IsSameObject",
    "NewGlobalRef",
    "NewIntArray",
    "NewLocalRef",
    "NewStringUTF",
    "ReleaseStringUTFChars",
    "SetIntArrayRegion",
    "SetIntField",
];

#[cfg(test)]
mod manifest_tests {
    #[test]
    fn every_manifest_function_exists_in_the_registry() {
        for name in super::TABLE3_CALLED_FUNCTIONS {
            assert!(
                minijni::registry().iter().any(|(_, s)| s.name == *name),
                "manifest names unknown JNI function {name:?}",
            );
        }
    }

    #[test]
    fn manifest_covers_workload() {
        // Run the workload once with a recorder and check that every JNI
        // function it actually crossed the boundary with is listed. (The
        // converse — listed but unused — would only make discharge less
        // aggressive, never unsound.)
        use jinn_vendors::Vendor;
        use minijni::{RunOutcome, Session};
        let mut vm = Vendor::HotSpot.vm();
        let (entry, args) = super::build_workload(&mut vm, 7);
        let thread = vm.jvm().main_thread();
        let recorder = jinn_obs::Recorder::enabled(1 << 14);
        let mut session = Session::new(vm);
        session.set_recorder(recorder.clone());
        for _ in 0..8 {
            let out = session.run_native(thread, entry, &args);
            assert!(matches!(out, RunOutcome::Completed(_)), "{out:?}");
        }
        let mut crossed: std::collections::BTreeSet<String> = std::collections::BTreeSet::new();
        for ev in recorder.events() {
            if let jinn_obs::EventKind::JniEnter { func } = &ev.kind {
                crossed.insert(func.to_string());
            }
        }
        assert!(!crossed.is_empty(), "workload must cross the boundary");
        for name in &crossed {
            assert!(
                super::TABLE3_CALLED_FUNCTIONS.contains(&name.as_str()),
                "workload called {name:?} but the manifest does not list it",
            );
        }
    }
}
