//! The Subversion case study (paper Section 6.4.1).
//!
//! Running Subversion's JavaHL binding under Jinn found three bugs:
//! two local-reference overflows (`Outputer.cpp:99`,
//! `InfoCallback.cpp:144`) and one dangling local reference used by a
//! C++ destructor (`CopySources.cpp`). These scenarios reproduce the same
//! API-usage patterns; Figure 10's time series of acquired local
//! references comes from [`local_ref_timeseries`].

use std::cell::RefCell;
use std::rc::Rc;

use jinn_vendors::hotspot_vm;
use minijni::{typed, RunOutcome, Session, Violation, Vm};
use minijvm::{JValue, MethodId};

/// Number of per-entry JString allocations in the info-callback loop —
/// more than the 16-reference JNI guarantee, as in the real bug.
pub const INFO_FIELDS: usize = 24;

/// Builds the `InfoCallback.singleInfo` analogue: for each repository info
/// record, `makeJString` is called per field. The original forgets
/// `DeleteLocalRef`; the fixed variant (paper's patch) releases each
/// reference after use, so "the number of active local references never
/// exceeds 8".
pub fn build_info_callback(vm: &mut Vm, fixed: bool, samples: Rc<RefCell<Vec<usize>>>) -> MethodId {
    let (_c, entry) = vm.define_native_class(
        "org/tigris/subversion/InfoCallback",
        "singleInfo",
        "()V",
        true,
        Rc::new(move |env, _args| {
            for i in 0..INFO_FIELDS {
                // jstring jreportUUID = JNIUtil::makeJString(info->repos_UUID);
                let js = typed::new_string_utf(env, &format!("8f4b2e6a-uuid-field-{i}"))?;
                let _len = typed::get_string_utf_length(env, js)?;
                samples
                    .borrow_mut()
                    .push(env.jvm().thread(env.thread()).current_frame().len());
                if fixed {
                    // env->DeleteLocalRef(jreportUUID);  (the patch)
                    typed::delete_local_ref(env, js)?;
                }
            }
            Ok(JValue::Void)
        }),
    );
    entry
}

/// Builds the `JNIStringHolder` destructor analogue: the holder caches the
/// `jstring` and its pinned UTF buffer; user code deletes the local
/// reference early, and the destructor then calls
/// `ReleaseStringUTFChars(m_jtext, m_str)` through the dead reference.
/// Returns the entry method and its (string) argument.
pub fn build_copy_sources(vm: &mut Vm) -> (MethodId, Vec<JValue>) {
    let path = vm
        .jvm_mut()
        .alloc_string("branches/1.6.x/subversion/libsvn_client");
    let thread = vm.jvm().main_thread();
    let jpath = vm.jvm_mut().new_local(thread, path);
    let (_c, entry) = vm.define_native_class(
        "org/tigris/subversion/CopySources",
        "pathsToArray",
        "(Ljava/lang/String;)V",
        true,
        Rc::new(|env, args| {
            let jpath = args[0].as_ref().expect("path argument");
            // JNIStringHolder path(jpath): pins the UTF-8 contents.
            let m_str = typed::get_string_utf_chars(env, jpath)?;
            // env->DeleteLocalRef(jpath): kills the cached reference...
            typed::delete_local_ref(env, jpath)?;
            // }  // ~JNIStringHolder(): ReleaseStringUTFChars(m_jtext, m_str)
            // ...which this release then uses, dangling.
            typed::release_string_utf_chars(env, jpath, m_str)?;
            Ok(JValue::Void)
        }),
    );
    (entry, vec![JValue::Ref(jpath)])
}

/// Figure 10: live local references after each `makeJString`, for the
/// original and the fixed program (one call of the info callback).
pub fn local_ref_timeseries(fixed: bool) -> Vec<usize> {
    let samples = Rc::new(RefCell::new(Vec::new()));
    let mut vm = hotspot_vm();
    let entry = build_info_callback(&mut vm, fixed, Rc::clone(&samples));
    let thread = vm.jvm().main_thread();
    let mut session = Session::new(vm);
    let outcome = session.run_native(thread, entry, &[]);
    assert!(
        matches!(outcome, RunOutcome::Completed(_)),
        "raw run keeps running in spite of the overflow: {outcome:?}"
    );
    let out = samples.borrow().clone();
    out
}

/// Runs the regression suite under Jinn and returns the findings —
/// the overflow and the dangling destructor reference.
pub fn audit() -> Vec<Violation> {
    let mut findings = Vec::new();

    // Overflow of local references (Outputer.cpp / InfoCallback.cpp).
    {
        let samples = Rc::new(RefCell::new(Vec::new()));
        let mut vm = hotspot_vm();
        let entry = build_info_callback(&mut vm, false, samples);
        let thread = vm.jvm().main_thread();
        let mut session = Session::new(vm);
        jinn_core::install(&mut session);
        if let RunOutcome::CheckerException(v) = session.run_native(thread, entry, &[]) {
            findings.push(v);
        }
    }

    // Use of a dangling local reference in the C++ destructor.
    {
        let mut vm = hotspot_vm();
        let (entry, args) = build_copy_sources(&mut vm);
        let thread = vm.jvm().main_thread();
        let mut session = Session::new(vm);
        jinn_core::install(&mut session);
        if let RunOutcome::CheckerException(v) = session.run_native(thread, entry, &args) {
            findings.push(v);
        }
    }

    findings
}

/// The fixed program passes its regression run even under Jinn.
pub fn fixed_program_is_clean() -> bool {
    let samples = Rc::new(RefCell::new(Vec::new()));
    let mut vm = hotspot_vm();
    let entry = build_info_callback(&mut vm, true, samples);
    let thread = vm.jvm().main_thread();
    let mut session = Session::new(vm);
    jinn_core::install(&mut session);
    let ok = matches!(
        session.run_native(thread, entry, &[]),
        RunOutcome::Completed(_)
    );
    ok && session.shutdown().is_empty()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn original_overflows_past_16_fixed_stays_low() {
        let original = local_ref_timeseries(false);
        let fixed = local_ref_timeseries(true);
        assert_eq!(original.len(), INFO_FIELDS);
        assert!(
            original.iter().copied().max().unwrap() > 16,
            "original exceeds the 16-reference pool"
        );
        assert!(
            fixed.iter().copied().max().unwrap() <= 8,
            "paper: never exceeds 8 after the fix"
        );
    }

    #[test]
    fn jinn_finds_both_bugs() {
        let findings = audit();
        assert_eq!(findings.len(), 2, "{findings:?}");
        assert_eq!(findings[0].error_state, "Error:Overflow");
        assert_eq!(findings[0].machine, "local-reference");
        assert_eq!(findings[1].error_state, "Error:Dangling");
        assert!(findings[1].function.contains("ReleaseStringUTFChars"));
    }

    #[test]
    fn fix_passes_under_jinn() {
        assert!(fixed_program_is_clean());
    }
}
