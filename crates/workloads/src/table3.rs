//! Table 3 workloads: SPECjvm98 and DaCapo stand-ins.
//!
//! The paper measures Jinn's overhead on 19 benchmarks whose relevant
//! property is their *language-transition density* — how often control
//! crosses between Java and C (Table 3, column 2). These generators
//! replay exactly that: for each benchmark, a deterministic program that
//! performs the paper's measured number of transitions (divided by a
//! scale factor so a laptop run finishes in seconds) with a realistic mix
//! of JNI work — the string, array, field and call traffic a system
//! library produces — interleaved with Java-side "application work".

use std::cell::Cell;
use std::rc::Rc;
use std::time::{Duration, Instant};

use jinn_vendors::Vendor;
use minijni::{typed, JniEnv, JniError, Session, Vm};
use minijvm::{JValue, MemberFlags, MethodId, PrimArray};

/// The benchmark suite a workload belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Suite {
    /// DaCapo (2006).
    DaCapo,
    /// SPECjvm98.
    SpecJvm98,
}

/// One Table 3 row: a benchmark and its measured transition count.
#[derive(Debug, Clone, Copy)]
pub struct BenchmarkSpec {
    /// Benchmark name.
    pub name: &'static str,
    /// Suite.
    pub suite: Suite,
    /// Language transitions between Java and C in the system libraries,
    /// as the paper measured with HotSpot (Table 3 column 2).
    pub transitions: u64,
}

/// All 19 benchmarks of Table 3, with the paper's transition counts.
pub const BENCHMARKS: [BenchmarkSpec; 19] = [
    BenchmarkSpec {
        name: "antlr",
        suite: Suite::DaCapo,
        transitions: 441_789,
    },
    BenchmarkSpec {
        name: "bloat",
        suite: Suite::DaCapo,
        transitions: 839_930,
    },
    BenchmarkSpec {
        name: "chart",
        suite: Suite::DaCapo,
        transitions: 1_006_933,
    },
    BenchmarkSpec {
        name: "eclipse",
        suite: Suite::DaCapo,
        transitions: 8_456_840,
    },
    BenchmarkSpec {
        name: "fop",
        suite: Suite::DaCapo,
        transitions: 1_976_384,
    },
    BenchmarkSpec {
        name: "hsqldb",
        suite: Suite::DaCapo,
        transitions: 206_829,
    },
    BenchmarkSpec {
        name: "jython",
        suite: Suite::DaCapo,
        transitions: 56_318_101,
    },
    BenchmarkSpec {
        name: "luindex",
        suite: Suite::DaCapo,
        transitions: 1_339_059,
    },
    BenchmarkSpec {
        name: "lusearch",
        suite: Suite::DaCapo,
        transitions: 4_080_540,
    },
    BenchmarkSpec {
        name: "pmd",
        suite: Suite::DaCapo,
        transitions: 967_430,
    },
    BenchmarkSpec {
        name: "xalan",
        suite: Suite::DaCapo,
        transitions: 1_114_000,
    },
    BenchmarkSpec {
        name: "compress",
        suite: Suite::SpecJvm98,
        transitions: 14_878,
    },
    BenchmarkSpec {
        name: "jess",
        suite: Suite::SpecJvm98,
        transitions: 153_118,
    },
    BenchmarkSpec {
        name: "raytrace",
        suite: Suite::SpecJvm98,
        transitions: 29_977,
    },
    BenchmarkSpec {
        name: "db",
        suite: Suite::SpecJvm98,
        transitions: 133_112,
    },
    BenchmarkSpec {
        name: "javac",
        suite: Suite::SpecJvm98,
        transitions: 258_553,
    },
    BenchmarkSpec {
        name: "mpegaudio",
        suite: Suite::SpecJvm98,
        transitions: 46_208,
    },
    BenchmarkSpec {
        name: "mtrt",
        suite: Suite::SpecJvm98,
        transitions: 32_231,
    },
    BenchmarkSpec {
        name: "jack",
        suite: Suite::SpecJvm98,
        transitions: 1_332_678,
    },
];

/// Looks a benchmark up by name.
pub fn benchmark(name: &str) -> Option<&'static BenchmarkSpec> {
    BENCHMARKS.iter().find(|b| b.name == name)
}

/// The four measured configurations of Table 3.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Treatment {
    /// Production run, nothing attached (the normalization baseline).
    Baseline,
    /// The vendor's `-Xcheck:jni` ("Runtime checking" column).
    VendorCheck,
    /// Jinn's wrappers without analysis ("Jinn Interposing" column).
    JinnInterposing,
    /// Full Jinn ("Jinn Checking" column).
    JinnChecking,
}

impl Treatment {
    /// All treatments in Table 3 column order.
    pub const ALL: [Treatment; 4] = [
        Treatment::Baseline,
        Treatment::VendorCheck,
        Treatment::JinnInterposing,
        Treatment::JinnChecking,
    ];
}

impl std::fmt::Display for Treatment {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            Treatment::Baseline => "baseline",
            Treatment::VendorCheck => "runtime checking",
            Treatment::JinnInterposing => "jinn interposing",
            Treatment::JinnChecking => "jinn checking",
        };
        f.write_str(s)
    }
}

/// One measured run.
#[derive(Debug, Clone, Copy)]
pub struct Measurement {
    /// Wall-clock time of the workload.
    pub elapsed: Duration,
    /// Language transitions executed (calls + returns).
    pub transitions: u64,
}

/// A tiny deterministic RNG (xorshift64*), so workloads are reproducible
/// without threading a `rand` generator through native closures.
#[derive(Debug, Clone)]
pub struct XorShift(Cell<u64>);

impl XorShift {
    /// Seeded constructor (seed must be non-zero).
    pub fn new(seed: u64) -> XorShift {
        XorShift(Cell::new(seed.max(1)))
    }

    /// Next value.
    pub fn next(&self) -> u64 {
        let mut x = self.0.get();
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0.set(x);
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// Uniform value below `n`.
    pub fn below(&self, n: u64) -> u64 {
        self.next() % n.max(1)
    }
}

/// Simulated Java-side application work: the arithmetic a benchmark does
/// between its JNI excursions. Tuned so that interposition overhead lands
/// in the paper's 10–20% band rather than dominating.
fn application_work(units: u64) -> u64 {
    let mut acc = 0x9E37_79B9u64;
    for i in 0..units {
        acc = acc.wrapping_mul(6364136223846793005).wrapping_add(i);
        acc ^= acc >> 33;
    }
    std::hint::black_box(acc)
}

/// The per-call JNI traffic mix of the workload's native method. Each
/// invocation performs a handful of JNI calls typical of system-library
/// native code: string shuffling, array copies, field reads, upcalls.
fn native_work(env: &mut JniEnv<'_>, args: &[JValue], rng: &XorShift) -> Result<JValue, JniError> {
    let holder = args[0].as_ref().expect("holder argument");
    application_work(1200);
    match rng.below(5) {
        0 => {
            // String excursion: create, measure, pin, release.
            let s = typed::new_string_utf(env, "workload-string-payload")?;
            let n = typed::get_string_utf_length(env, s)?;
            let pin = typed::get_string_utf_chars(env, s)?;
            application_work(300 + (n as u64 & 7));
            typed::release_string_utf_chars(env, s, pin)?;
            typed::delete_local_ref(env, s)?;
        }
        1 => {
            // Array excursion: allocate, fill a region, read it back.
            let arr = typed::new_int_array(env, 16)?;
            typed::set_int_array_region(
                env,
                arr,
                0,
                PrimArray::Int((0..8).map(|i| i * 3).collect()),
            )?;
            let region = typed::get_int_array_region(env, arr, 2, 4)?;
            application_work(250 + region.len() as u64);
            typed::delete_local_ref(env, arr)?;
        }
        2 => {
            // Field traffic on the shared holder object.
            let clazz = typed::get_object_class(env, holder)?;
            let fid = typed::get_field_id(env, clazz, "counter", "I")?;
            let v = typed::get_int_field(env, holder, fid)?;
            typed::set_int_field(env, holder, fid, v.wrapping_add(1))?;
            typed::delete_local_ref(env, clazz)?;
        }
        3 => {
            // Upcall into Java.
            let clazz = typed::get_object_class(env, holder)?;
            let mid = typed::get_method_id(env, clazz, "tick", "()I")?;
            let _ = typed::call_int_method_a(env, holder, mid, &[])?;
            typed::delete_local_ref(env, clazz)?;
        }
        _ => {
            // Reference churn within capacity.
            let r = typed::new_local_ref(env, holder)?;
            let g = typed::new_global_ref(env, r)?;
            let _same = typed::is_same_object(env, r, g)?;
            typed::delete_global_ref(env, g)?;
            typed::delete_local_ref(env, r)?;
        }
    }
    application_work(900);
    Ok(JValue::Int(0))
}

/// Builds the workload program into a VM; returns the native entry and
/// its argument.
pub fn build_workload(vm: &mut Vm, seed: u64) -> (MethodId, Vec<JValue>) {
    let tick_idx = vm.add_managed_code(Rc::new(|_env, _args| Ok(JValue::Int(1))));
    let holder_class = vm
        .jvm_mut()
        .registry_mut()
        .define("workload/Holder")
        .field("counter", "I", MemberFlags::public())
        .method(
            "tick",
            "()I",
            MemberFlags::public(),
            minijvm::MethodBody::Managed(tick_idx),
        )
        .build()
        .expect("fresh VM");
    let rng = XorShift::new(seed);
    let (_cls, entry) = vm.define_native_class(
        "workload/Kernel",
        "work",
        "(Lworkload/Holder;)I",
        true,
        Rc::new(move |env, args| native_work(env, args, &rng)),
    );
    let oop = vm.jvm_mut().alloc_object(holder_class);
    let thread = vm.jvm().main_thread();
    let holder = vm.jvm_mut().new_local(thread, oop);
    (entry, vec![JValue::Ref(holder)])
}

/// Runs one benchmark workload under a treatment and measures it.
///
/// `scale` divides the paper's transition count (e.g. 100 ⇒ 1/100th of
/// the transitions); the workload performs roughly
/// `spec.transitions / scale` boundary crossings.
pub fn run_benchmark(
    spec: &BenchmarkSpec,
    treatment: Treatment,
    vendor: Vendor,
    scale: u64,
) -> Measurement {
    let mut vm = vendor.vm();
    // Workloads exercise the GC continuously, as real benchmarks do.
    vm.jvm_mut().set_auto_gc_period(Some(4096));
    let (entry, args) = build_workload(&mut vm, 0x1234_5678 ^ spec.transitions);
    let thread = vm.jvm().main_thread();
    let mut session = Session::new(vm);
    match treatment {
        Treatment::Baseline => {}
        Treatment::VendorCheck => session.attach(vendor.xcheck()),
        Treatment::JinnInterposing => {
            session.vm_mut().jvm_mut(); // ensure exception class can register
            let jinn = jinn_core::Jinn::interpose_only();
            session.attach(Box::new(jinn));
        }
        Treatment::JinnChecking => {
            jinn_core::install(&mut session);
        }
    }

    // Each native call produces ~14 transitions (1 native call + ~6 JNI
    // calls, each counting a call and a return).
    let target = (spec.transitions / scale.max(1)).max(100);
    let start = Instant::now();
    loop {
        let outcome = session.run_native(thread, entry, &args);
        debug_assert!(
            matches!(outcome, minijni::RunOutcome::Completed(_)),
            "workload must be bug-free: {outcome:?}"
        );
        if session.vm().stats().total() >= target {
            break;
        }
    }
    let elapsed = start.elapsed();
    Measurement {
        elapsed,
        transitions: session.vm().stats().total(),
    }
}

/// A full Table 3 row: normalized execution times for the three checked
/// configurations (median of `trials` runs each).
#[derive(Debug, Clone)]
pub struct Table3Row {
    /// Benchmark name.
    pub name: &'static str,
    /// Paper-measured transition count (column 2).
    pub transitions: u64,
    /// Runtime checking (vendor `-Xcheck:jni`) normalized time.
    pub runtime_checking: f64,
    /// Jinn interposing-only normalized time.
    pub interposing: f64,
    /// Full Jinn normalized time.
    pub checking: f64,
}

fn median(mut xs: Vec<f64>) -> f64 {
    xs.sort_by(|a, b| a.partial_cmp(b).expect("no NaNs"));
    xs[xs.len() / 2]
}

/// Measures one benchmark across all four treatments.
pub fn table3_row(spec: &BenchmarkSpec, vendor: Vendor, scale: u64, trials: usize) -> Table3Row {
    let time = |treatment| {
        let runs: Vec<f64> = (0..trials.max(1))
            .map(|_| {
                run_benchmark(spec, treatment, vendor, scale)
                    .elapsed
                    .as_secs_f64()
            })
            .collect();
        median(runs)
    };
    let base = time(Treatment::Baseline).max(f64::EPSILON);
    Table3Row {
        name: spec.name,
        transitions: spec.transitions,
        runtime_checking: time(Treatment::VendorCheck) / base,
        interposing: time(Treatment::JinnInterposing) / base,
        checking: time(Treatment::JinnChecking) / base,
    }
}

/// Geometric mean of a series.
pub fn geomean(xs: impl IntoIterator<Item = f64>) -> f64 {
    let (mut log_sum, mut n) = (0.0, 0u32);
    for x in xs {
        log_sum += x.max(f64::EPSILON).ln();
        n += 1;
    }
    if n == 0 {
        1.0
    } else {
        (log_sum / f64::from(n)).exp()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nineteen_benchmarks_with_paper_counts() {
        assert_eq!(BENCHMARKS.len(), 19);
        assert_eq!(benchmark("jython").unwrap().transitions, 56_318_101);
        assert_eq!(benchmark("compress").unwrap().transitions, 14_878);
        assert!(benchmark("nosuch").is_none());
    }

    #[test]
    fn workload_runs_clean_under_jinn() {
        // The workload must be bug-free: Jinn on it is the paper's
        // no-false-positives property under production traffic.
        let spec = benchmark("compress").unwrap();
        let m = run_benchmark(spec, Treatment::JinnChecking, Vendor::HotSpot, 10);
        assert!(m.transitions >= 1_400, "ran {} transitions", m.transitions);
    }

    #[test]
    fn all_treatments_execute_same_workload() {
        let spec = benchmark("raytrace").unwrap();
        for t in Treatment::ALL {
            let m = run_benchmark(spec, t, Vendor::HotSpot, 10);
            assert!(m.transitions >= 2_000, "{t}: {}", m.transitions);
        }
    }

    #[test]
    fn xorshift_is_deterministic() {
        let a = XorShift::new(7);
        let b = XorShift::new(7);
        for _ in 0..10 {
            assert_eq!(a.next(), b.next());
        }
        assert!(a.below(10) < 10);
    }

    #[test]
    fn geomean_basics() {
        assert!((geomean([1.0, 1.0, 1.0]) - 1.0).abs() < 1e-9);
        assert!((geomean([2.0, 8.0]) - 4.0).abs() < 1e-9);
        assert_eq!(geomean(std::iter::empty::<f64>()), 1.0);
    }
}
