//! The Eclipse 3.4 / SWT case study (paper Section 6.4.3).
//!
//! `callback.c:698` invokes `CallStaticSWT_PTRMethodV(env, object, mid,
//! vl)` where `object` "must point to a Java class which has a static Java
//! method identified by mid. The actual class did not have the static
//! method, but its superclass declares the method." Production JVMs don't
//! use the class operand for static dispatch, so the bug survived multiple
//! revisions; Jinn's entity-specific typing machine catches it.

use std::rc::Rc;

use jinn_vendors::hotspot_vm;
use minijni::{typed, RunOutcome, Session, Violation, Vm};
use minijvm::{JValue, MethodId};

/// Builds the SWT `Callback.callback` analogue: the static callback is
/// declared on `Widget` but looked up (and invoked) against the `Display`
/// subclass mirror — an entity-typing confusion.
pub fn build_swt_callback(vm: &mut Vm) -> MethodId {
    // Widget declares the static callback; Display inherits but does NOT
    // declare it.
    let (_widget, _cb) = vm.define_managed_class(
        "org/eclipse/swt/widgets/Widget",
        "SWT_PTR_callback",
        "()I",
        true,
        Rc::new(|_env, _args| Ok(JValue::Int(0))),
    );
    vm.jvm_mut()
        .registry_mut()
        .define("org/eclipse/swt/widgets/Display")
        .superclass("org/eclipse/swt/widgets/Widget")
        .build()
        .expect("fresh VM");

    let (_c, entry) = vm.define_native_class(
        "org/eclipse/swt/internal/Callback",
        "callback",
        "()I",
        true,
        Rc::new(|env, _args| {
            let widget = typed::find_class(env, "org/eclipse/swt/widgets/Widget")?;
            let mid = typed::get_static_method_id(env, widget, "SWT_PTR_callback", "()I")?;
            // The dynamic callback control and inner class confusion end
            // with `object` holding the *subclass*:
            let display = typed::find_class(env, "org/eclipse/swt/widgets/Display")?;
            // result = (*env)->CallStaticSWT_PTRMethodV(env, object, mid, vl);
            let result = typed::call_static_int_method_a(env, display, mid, &[])?;
            Ok(JValue::Int(result))
        }),
    );
    entry
}

/// Runs the SWT callback path under Jinn; the finding is the
/// entity-specific typing violation.
pub fn audit() -> Vec<Violation> {
    let mut vm = hotspot_vm();
    let entry = build_swt_callback(&mut vm);
    let thread = vm.jvm().main_thread();
    let mut session = Session::new(vm);
    jinn_core::install(&mut session);
    match session.run_native(thread, entry, &[]) {
        RunOutcome::CheckerException(v) => vec![v],
        _ => Vec::new(),
    }
}

/// Without Jinn, "because the production JVM may not use the object
/// value, this bug has survived multiple revisions" — the call completes.
pub fn bug_survives_without_jinn() -> bool {
    let mut vm = hotspot_vm();
    let entry = build_swt_callback(&mut vm);
    let thread = vm.jvm().main_thread();
    let mut session = Session::new(vm);
    matches!(
        session.run_native(thread, entry, &[]),
        RunOutcome::Completed(_)
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn jinn_catches_the_swt_subtyping_violation() {
        let findings = audit();
        assert_eq!(findings.len(), 1, "{findings:?}");
        assert_eq!(findings[0].machine, "entity-typing");
        assert_eq!(findings[0].error_state, "Error:EntityTypeMismatch");
        assert!(findings[0].message.contains("does not declare"));
    }

    #[test]
    fn the_bug_is_invisible_in_production() {
        assert!(bug_survives_without_jinn());
    }
}
