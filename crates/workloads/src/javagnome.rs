//! The Java-gnome case study (paper Section 6.4.2 and Figure 1).
//!
//! GNOME bug 576111: `bindings_java_signal.c` caches the `receiver` class
//! reference of a signal connection in a C heap structure; when the GTK
//! event loop later fires the callback, `CallStaticVoidMethodA` uses the
//! now-dead local reference. Jinn also re-finds the nullness bug first
//! reported by the Blink debugger paper.

use std::cell::RefCell;
use std::rc::Rc;

use jinn_vendors::hotspot_vm;
use minijni::{typed, RunOutcome, Session, Violation, Vm};
use minijvm::{JRef, JValue, MethodId};

struct EventCallBack {
    receiver: JRef,
    mid: MethodId,
}

/// Builds the signal-connect / signal-emit pair of Figure 1. Returns
/// `(bind, dispatch, bind_args)`: run `bind` with `bind_args`, then
/// `dispatch` with no arguments, to reproduce the dangling-callback bug.
pub fn build_signal_machinery(vm: &mut Vm) -> (MethodId, MethodId, Vec<JValue>) {
    // The Java side: a listener class with the handler method.
    let (_handler_class, _handler) = vm.define_managed_class(
        "org/gnome/gtk/ClickedHandler",
        "onClicked",
        "()V",
        true,
        Rc::new(|_env, _args| Ok(JValue::Void)),
    );
    let cb: Rc<RefCell<Option<EventCallBack>>> = Rc::default();

    // JNIEXPORT void JNICALL Java_Callback_bind(env, clazz, receiver, ...)
    let bind = {
        let cb = Rc::clone(&cb);
        let (_c, m) = vm.define_native_class(
            "org/gnome/gtk/Callback",
            "bind",
            "(Ljava/lang/Class;Ljava/lang/String;Ljava/lang/String;)V",
            true,
            Rc::new(move |env, args| {
                let receiver = args[0].as_ref().expect("receiver class");
                // cb->mid = find_java_method(env, receiver, name, desc);
                let mid = typed::get_static_method_id(env, receiver, "onClicked", "()V")?;
                // cb->receiver = receiver;  /* local reference escapes! */
                *cb.borrow_mut() = Some(EventCallBack { receiver, mid });
                Ok(JValue::Void)
            }),
        );
        m
    };

    // static void callback(EventCallBack* cb, Event* event)
    let fire = {
        let cb = Rc::clone(&cb);
        let (_c, m) = vm.define_native_class(
            "org/gnome/gtk/EventLoop",
            "dispatch",
            "()V",
            true,
            Rc::new(move |env, _args| {
                let cb = cb.borrow();
                let cb = cb.as_ref().expect("bind ran first");
                // (*env)->CallStaticVoidMethodA(env, cb->receiver, cb->mid, jargs);
                typed::call_static_void_method_a(env, cb.receiver, cb.mid, &[])?;
                Ok(JValue::Void)
            }),
        );
        m
    };

    // The receiver argument Java passes to bind: the handler's class.
    let handler_class = vm
        .jvm()
        .find_class("org/gnome/gtk/ClickedHandler")
        .expect("defined");
    let mirror = vm.jvm_mut().mirror_oop(handler_class);
    let thread = vm.jvm().main_thread();
    let receiver = vm.jvm_mut().new_local(thread, mirror);
    let name = vm.jvm_mut().alloc_string("onClicked");
    let name = vm.jvm_mut().new_local(thread, name);
    let desc = vm.jvm_mut().alloc_string("()V");
    let desc = vm.jvm_mut().new_local(thread, desc);
    (
        bind,
        fire,
        vec![JValue::Ref(receiver), JValue::Ref(name), JValue::Ref(desc)],
    )
}

/// Builds the nullness bug the Blink paper reported: a dispatch path that
/// passes `NULL` where the JNI requires a non-null reference.
fn build_nullness_bug(vm: &mut Vm) -> MethodId {
    let (_c, entry) = vm.define_native_class(
        "org/gnome/gdk/Pixbuf",
        "render",
        "()V",
        true,
        Rc::new(|env, _args| {
            // The buggy path forgets to look the object up and passes the
            // zero-initialised field straight to the JNI.
            typed::get_object_class(env, JRef::NULL)?;
            Ok(JValue::Void)
        }),
    );
    entry
}

/// Runs the Java-gnome regression suite under Jinn and returns the
/// findings (the dangling callback receiver and the nullness bug).
pub fn audit() -> Vec<Violation> {
    let mut findings = Vec::new();

    // Bug 576111: dangling local reference in the signal callback.
    {
        let mut vm = hotspot_vm();
        let (bind, fire, args) = build_signal_machinery(&mut vm);
        let thread = vm.jvm().main_thread();
        let mut session = Session::new(vm);
        jinn_core::install(&mut session);
        let bound = session.run_native(thread, bind, &args);
        assert!(
            matches!(bound, RunOutcome::Completed(_)),
            "bind itself is legal: {bound:?}"
        );
        if let RunOutcome::CheckerException(v) = session.run_native(thread, fire, &[]) {
            findings.push(v);
        }
    }

    // The Blink nullness bug.
    {
        let mut vm = hotspot_vm();
        let entry = build_nullness_bug(&mut vm);
        let thread = vm.jvm().main_thread();
        let mut session = Session::new(vm);
        jinn_core::install(&mut session);
        if let RunOutcome::CheckerException(v) = session.run_native(thread, entry, &[]) {
            findings.push(v);
        }
    }

    findings
}

/// Without Jinn the callback bug is a "time bomb": the production JVM may
/// run it without visible failure (Jikes RVM ignores the parameter;
/// permissive HotSpot resolution can get lucky), and the paper reports it
/// "did not crash HotSpot and J9".
pub fn callback_bug_is_latent_without_jinn() -> RunOutcome {
    let mut vm = hotspot_vm();
    let (bind, fire, args) = build_signal_machinery(&mut vm);
    let thread = vm.jvm().main_thread();
    let mut session = Session::new(vm);
    let bound = session.run_native(thread, bind, &args);
    assert!(matches!(bound, RunOutcome::Completed(_)));
    session.run_native(thread, fire, &[])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn jinn_diagnoses_bug_576111_and_the_nullness_bug() {
        let findings = audit();
        assert_eq!(findings.len(), 2, "{findings:?}");
        assert_eq!(findings[0].machine, "local-reference");
        assert_eq!(findings[0].error_state, "Error:Dangling");
        assert!(findings[0].function.contains("CallStaticVoidMethodA"));
        assert_eq!(findings[1].machine, "nullness");
        assert_eq!(findings[1].error_state, "Error:Null");
    }
}
