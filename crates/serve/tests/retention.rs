//! Retention coverage: the global history byte budget, oldest-first
//! purge, purge determinism, and the live-session invariant.

use jinn_replay::format::fnv1a;
use jinn_replay::{program_by_name, record_program};
use jinn_serve::{Daemon, Query, ServeConfig, SessionState};

fn trace_bytes() -> Vec<u8> {
    record_program(&program_by_name("LocalRefDangling").expect("corpus program"))
}

fn tiny_config(retention_bytes: usize) -> ServeConfig {
    ServeConfig {
        workers: 1,
        retention_bytes,
        max_events_per_session: 16,
        ..ServeConfig::default()
    }
}

/// Ingests one whole trace as session `id` and waits for its verdict.
fn ingest(handle: &jinn_serve::DaemonHandle, id: u64, bytes: &[u8]) -> jinn_serve::SessionStats {
    handle.open(id, "tenant", "jinn").expect("open");
    handle.append(id, bytes).expect("append");
    handle
        .seal(id, bytes.len() as u64, fnv1a(bytes))
        .expect("seal");
    handle.wait_session(id).expect("known session")
}

/// The purged-session ids after sequentially judging `n` sessions under
/// `retention_bytes`.
fn purged_after(n: u64, retention_bytes: usize) -> Vec<u64> {
    let daemon = Daemon::start(tiny_config(retention_bytes));
    let handle = daemon.handle();
    let bytes = trace_bytes();
    for id in 0..n {
        let stats = ingest(&handle, id, &bytes);
        assert_eq!(stats.state, SessionState::Judged);
    }
    let purged: Vec<u64> = (0..n)
        .filter(|id| handle.session_stats(*id).expect("stats").history_purged)
        .collect();
    let fleet = handle.fleet();
    assert!(
        fleet.history_bytes <= retention_bytes as u64,
        "budget enforced: {} > {retention_bytes}",
        fleet.history_bytes
    );
    assert_eq!(fleet.purged_sessions, purged.len() as u64);
    daemon.shutdown();
    purged
}

#[test]
fn filling_past_the_budget_purges_oldest_first() {
    // Find a budget that holds roughly two sessions' history: judge one
    // session unbounded to measure it.
    let daemon = Daemon::start(tiny_config(usize::MAX >> 1));
    let handle = daemon.handle();
    let bytes = trace_bytes();
    ingest(&handle, 0, &bytes);
    let per_session = handle.fleet().history_bytes as usize;
    daemon.shutdown();
    assert!(per_session > 0, "a judged session holds history");

    let budget = per_session * 2 + per_session / 2; // fits 2, not 3
    let purged = purged_after(6, budget);
    // Six judged sessions, room for two: the four oldest are purged, in
    // open order, and the newest two survive.
    assert_eq!(purged, vec![0, 1, 2, 3], "oldest-first purge");

    // Purged sessions still answer stats, but their rows are gone.
    let daemon = Daemon::start(tiny_config(budget));
    let handle = daemon.handle();
    for id in 0..6 {
        ingest(&handle, id, &bytes);
    }
    let gone = handle.query(&Query {
        session: Some(0),
        ..Query::default()
    });
    assert!(gone.items.is_empty(), "purged history is not queryable");
    let kept = handle.query(&Query {
        session: Some(5),
        ..Query::default()
    });
    assert!(!kept.items.is_empty(), "retained history is queryable");
    let stats = handle.session_stats(0).expect("stats survive purge");
    assert!(stats.history_purged);
    assert_eq!(stats.state, SessionState::Judged);
    daemon.shutdown();
}

#[test]
fn purge_is_deterministic() {
    let bytes = trace_bytes();
    // Measure one session's history, then pick an awkward budget.
    let daemon = Daemon::start(tiny_config(usize::MAX >> 1));
    let handle = daemon.handle();
    ingest(&handle, 0, &bytes);
    let per_session = handle.fleet().history_bytes as usize;
    daemon.shutdown();

    let budget = per_session * 3 + 7;
    let first = purged_after(8, budget);
    let second = purged_after(8, budget);
    assert_eq!(first, second, "same ingest order, same purge set");
    assert!(!first.is_empty(), "the budget actually forced purges");
    // Purged ids are a prefix of the open order.
    let expect: Vec<u64> = (0..first.len() as u64).collect();
    assert_eq!(first, expect);
}

#[test]
fn live_sessions_are_never_evicted() {
    let bytes = trace_bytes();
    let daemon = Daemon::start(tiny_config(usize::MAX >> 1));
    let handle = daemon.handle();
    ingest(&handle, 0, &bytes);
    let per_session = handle.fleet().history_bytes as usize;
    daemon.shutdown();

    let daemon = Daemon::start(tiny_config(per_session + per_session / 2));
    let handle = daemon.handle();

    // An unsealed session with buffered bytes, opened FIRST (oldest).
    handle.open(100, "tenant", "jinn").expect("open");
    handle.append(100, &bytes).expect("append");

    // Now blow through the budget with judged sessions.
    for id in 0..5 {
        ingest(&handle, id, &bytes);
    }
    let live = handle.session_stats(100).expect("live session");
    assert_eq!(live.state, SessionState::Open, "still open");
    assert!(!live.history_purged, "live session untouched by retention");
    assert_eq!(live.bytes, bytes.len() as u64, "buffer intact");

    // It can still seal and judge normally afterwards.
    handle
        .seal(100, bytes.len() as u64, fnv1a(&bytes))
        .expect("seal");
    let judged = handle.wait_session(100).expect("session");
    assert_eq!(judged.state, SessionState::Judged);
    // Once judged it becomes evictable like anyone else (and as the
    // oldest session it may be purged at once), but the replay itself
    // completed: the counters survive retention.
    assert!(judged.events_replayed > 0, "judged after the purge storm");
    daemon.shutdown();
}
