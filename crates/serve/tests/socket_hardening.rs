//! Socket-boundary hardening: duplicate-open ownership containment,
//! query filter validation, the request-line length cap, and the
//! manifest-frame surface (acks, oversized declarations, unknown
//! function names).

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;

use jinn_replay::format::fnv1a;
use jinn_replay::{
    encode_frame, program_by_name, record_program, stream_preamble, Frame, Trace,
    MAX_MANIFEST_FUNCTIONS,
};
use jinn_serve::{Daemon, ServeConfig, ServeError, SessionState, SocketServer};

fn read_line(reader: &mut impl BufRead) -> String {
    let mut line = String::new();
    reader.read_line(&mut line).expect("read line");
    line
}

/// A duplicate `Open` on one connection must not hand that connection
/// ownership of a session opened elsewhere: when the duplicate's stream
/// later corrupts, the original session stays healthy.
#[test]
fn duplicate_open_does_not_transfer_session_ownership() {
    let daemon = Daemon::start(ServeConfig::default());
    let server = SocketServer::bind(daemon.handle(), "127.0.0.1:0").expect("bind");
    let addr = server.addr();
    let handle = daemon.handle();
    let bytes = record_program(&program_by_name("LocalRefDangling").expect("corpus program"));

    // Connection A opens session 1 and streams its trace, unsealed.
    let mut a = TcpStream::connect(addr).expect("connect A");
    a.write_all(&stream_preamble()).expect("preamble");
    a.write_all(&encode_frame(&Frame::Open {
        session: 1,
        tenant: "owner".to_string(),
        config: "jinn".to_string(),
    }))
    .expect("open");
    a.write_all(&encode_frame(&Frame::Append {
        session: 1,
        chunk: bytes.clone(),
    }))
    .expect("append");
    a.flush().expect("flush A");

    // Connection B claims the same id (rejected) and then corrupts.
    let mut b = TcpStream::connect(addr).expect("connect B");
    b.write_all(&stream_preamble()).expect("preamble");
    b.write_all(&encode_frame(&Frame::Open {
        session: 1,
        tenant: "thief".to_string(),
        config: "jinn".to_string(),
    }))
    .expect("duplicate open");
    b.write_all(&[0xFF; 16]).expect("garbage");
    b.flush().expect("flush B");
    let mut b_reader = BufReader::new(b.try_clone().expect("clone B"));
    let dup = read_line(&mut b_reader);
    assert!(dup.contains("already open"), "duplicate rejected: {dup}");
    let corrupt = read_line(&mut b_reader);
    assert!(
        corrupt.contains("corrupt frame stream"),
        "stream poisoned: {corrupt}"
    );

    // B's corruption quarantined nothing of A's.
    let stats = handle.session_stats(1).expect("session 1");
    assert_eq!(
        stats.state,
        SessionState::Open,
        "connection B must not poison connection A's session: {:?}",
        stats.reason
    );

    // A finishes normally.
    a.write_all(&encode_frame(&Frame::Seal {
        session: 1,
        total_len: bytes.len() as u64,
        checksum: fnv1a(&bytes),
    }))
    .expect("seal");
    a.flush().expect("flush seal");
    let mut a_reader = BufReader::new(a.try_clone().expect("clone A"));
    let ack = read_line(&mut a_reader);
    assert!(ack.contains("judged"), "healthy session judged: {ack}");

    server.shutdown();
    daemon.shutdown();
}

#[test]
fn query_thread_filter_rejects_out_of_range_values() {
    let daemon = Daemon::start(ServeConfig::default());
    let server = SocketServer::bind(daemon.handle(), "127.0.0.1:0").expect("bind");
    let mut c = TcpStream::connect(server.addr()).expect("connect");
    // 65537 would alias thread 1 under a silent `as u16` truncation.
    c.write_all(b"{\"op\": \"query\", \"kind\": \"events\", \"thread\": 65537}\n")
        .expect("write");
    c.flush().expect("flush");
    let mut reader = BufReader::new(c);
    let line = read_line(&mut reader);
    assert!(
        line.contains("out of range"),
        "oversized thread filter rejected: {line}"
    );
    server.shutdown();
    daemon.shutdown();
}

/// The full manifest round trip over one ingest connection: a
/// declaration with a misspelled function is acked (not failed) with
/// the unknown name surfaced, a re-declaration reports `replaced`, and
/// a manifest-covered session's seal ack carries `specialized`.
#[test]
fn manifest_frames_ack_with_discharge_summaries() {
    let daemon = Daemon::start(ServeConfig::default());
    let server = SocketServer::bind(daemon.handle(), "127.0.0.1:0").expect("bind");
    let bytes = record_program(&program_by_name("LocalRefDangling").expect("corpus program"));
    let called: Vec<String> = Trace::parse(&bytes)
        .expect("parse trace")
        .called_functions()
        .into_iter()
        .collect();

    let mut c = TcpStream::connect(server.addr()).expect("connect");
    c.write_all(&stream_preamble()).expect("preamble");
    let mut with_typo = called.clone();
    with_typo.push("NotARealJniFn".to_string());
    c.write_all(&encode_frame(&Frame::Manifest {
        tenant: "acme".to_string(),
        functions: with_typo,
    }))
    .expect("manifest");
    c.flush().expect("flush");
    let mut reader = BufReader::new(c.try_clone().expect("clone"));
    let ack = read_line(&mut reader);
    assert!(ack.contains("\"ok\":true"), "declaration acked: {ack}");
    assert!(
        ack.contains("\"unknown_functions\":[\"NotARealJniFn\"]"),
        "misspelled name surfaced, not fatal: {ack}"
    );
    assert!(
        ack.contains("\"replaced\":false"),
        "first declaration: {ack}"
    );

    // Re-declaring (now without the typo) replaces, on the same stream.
    c.write_all(&encode_frame(&Frame::Manifest {
        tenant: "acme".to_string(),
        functions: called,
    }))
    .expect("re-declare");
    c.flush().expect("flush");
    let ack2 = read_line(&mut reader);
    assert!(
        ack2.contains("\"replaced\":true"),
        "replacement flagged: {ack2}"
    );
    assert!(ack2.contains("\"unknown_functions\":[]"), "{ack2}");

    // A covered session for the tenant is judged on the specialized
    // pool — visible in the seal ack's stats.
    c.write_all(&encode_frame(&Frame::Open {
        session: 3,
        tenant: "acme".to_string(),
        config: "jinn".to_string(),
    }))
    .expect("open");
    c.write_all(&encode_frame(&Frame::Append {
        session: 3,
        chunk: bytes.clone(),
    }))
    .expect("append");
    c.write_all(&encode_frame(&Frame::Seal {
        session: 3,
        total_len: bytes.len() as u64,
        checksum: fnv1a(&bytes),
    }))
    .expect("seal");
    c.flush().expect("flush");
    let sealed = read_line(&mut reader);
    assert!(sealed.contains("\"state\":\"judged\""), "{sealed}");
    assert!(sealed.contains("\"specialized\":true"), "{sealed}");
    assert!(sealed.contains("\"discharge_fallback\":false"), "{sealed}");

    server.shutdown();
    daemon.shutdown();
}

/// A forged manifest declaring more functions than the wire cap is
/// stream-level corruption: the connection gets one error line and its
/// open sessions are quarantined — but only its own.
#[test]
fn oversized_manifest_poisons_only_its_connection() {
    let daemon = Daemon::start(ServeConfig::default());
    let server = SocketServer::bind(daemon.handle(), "127.0.0.1:0").expect("bind");
    let handle = daemon.handle();

    // The in-process API rejects it with the typed error first.
    let huge: Vec<String> = (0..=MAX_MANIFEST_FUNCTIONS)
        .map(|i| format!("Fn{i}"))
        .collect();
    assert_eq!(
        handle.declare_manifest("big", &huge).unwrap_err(),
        ServeError::ManifestTooLarge {
            count: MAX_MANIFEST_FUNCTIONS + 1,
            cap: MAX_MANIFEST_FUNCTIONS,
        }
    );

    // On the wire, the decoder refuses the frame outright.
    let mut c = TcpStream::connect(server.addr()).expect("connect");
    c.write_all(&stream_preamble()).expect("preamble");
    c.write_all(&encode_frame(&Frame::Open {
        session: 11,
        tenant: "big".to_string(),
        config: "jinn".to_string(),
    }))
    .expect("open");
    c.write_all(&encode_frame(&Frame::Manifest {
        tenant: "big".to_string(),
        functions: huge,
    }))
    .expect("oversized manifest");
    c.flush().expect("flush");
    let mut reader = BufReader::new(c.try_clone().expect("clone"));
    let line = read_line(&mut reader);
    assert!(
        line.contains("corrupt frame stream") && line.contains("exceeds cap"),
        "oversized manifest rejected at the decoder: {line}"
    );
    let stats = handle.session_stats(11).expect("session 11");
    assert_eq!(stats.state, SessionState::Quarantined);

    server.shutdown();
    daemon.shutdown();
}

#[test]
fn query_request_line_length_is_capped() {
    let daemon = Daemon::start(ServeConfig::default());
    let server = SocketServer::bind(daemon.handle(), "127.0.0.1:0").expect("bind");
    let mut c = TcpStream::connect(server.addr()).expect("connect");
    // Just over the 1 MiB cap, never a newline: the server must answer
    // an error instead of buffering forever.
    let junk = vec![b'x'; 1024 * 1024 + 2];
    c.write_all(&junk).expect("write junk");
    c.flush().expect("flush");
    let mut reader = BufReader::new(c);
    let line = read_line(&mut reader);
    assert!(
        line.contains("request line too long"),
        "endless line rejected: {line}"
    );
    server.shutdown();
    daemon.shutdown();
}
