//! Admission-control coverage: the late-finish/quarantine race, the
//! live-session cap, the fleet-wide buffered-bytes cap, and
//! oldest-first eviction of terminal session records.

use jinn_replay::format::fnv1a;
use jinn_replay::{program_by_name, record_program};
use jinn_serve::{
    Daemon, DischargeStats, JudgeOutput, ObsCounters, ServeConfig, ServeError, SessionState,
    SessionTable, StoreLimits,
};

fn roomy_limits() -> StoreLimits {
    StoreLimits {
        retention_bytes: usize::MAX >> 1,
        max_buffered: 1 << 30,
        max_live_sessions: 1024,
        max_session_records: 4096,
        max_total_buffered: 1 << 30,
    }
}

fn dummy_output() -> JudgeOutput {
    JudgeOutput {
        program: "p".to_string(),
        outcomes: Vec::new(),
        verdicts: Vec::new(),
        events: Vec::new(),
        events_dropped: 0,
        rollups: Vec::new(),
        obs: ObsCounters::default(),
        discharge: DischargeStats::default(),
        events_replayed: 1,
        divergences: 0,
        called_functions: Default::default(),
        specialized: false,
        discharge_fallback: false,
    }
}

/// The REVIEW.md high-severity race: a session quarantined *while* a
/// worker judges it must stay quarantined when the worker comes back —
/// no state resurrection, no double `active` decrement (which would
/// underflow and wedge `wait_idle` forever).
#[test]
fn late_finish_after_quarantine_is_discarded() {
    let table = SessionTable::new(roomy_limits());
    let bytes = b"pretend trace";
    table.open(1, "t", Vec::new()).expect("open");
    table.append(1, bytes).expect("append");
    table
        .seal(1, bytes.len() as u64, fnv1a(bytes))
        .expect("seal");
    let (taken, _, _) = table.begin_judging(1).expect("queued session");
    assert_eq!(taken, bytes);

    // The session's connection goes bad mid-judging.
    table.quarantine(1, "corrupt frame stream");
    // The worker returns late; its output must be discarded.
    table.finish(1, dummy_output());

    let stats = table.stats(1).expect("stats");
    assert_eq!(stats.state, SessionState::Quarantined);
    let fleet = table.fleet();
    assert_eq!(fleet.judged, 0, "discarded output must not count");
    assert_eq!(fleet.quarantined, 1);
    assert_eq!(fleet.live, 0);
    assert_eq!(fleet.total_verdicts, 0);
    // An `active` underflow would make this block forever.
    table.wait_idle();
}

#[test]
fn live_session_cap_rejects_open() {
    let daemon = Daemon::start(ServeConfig {
        max_live_sessions: 2,
        ..ServeConfig::default()
    });
    let handle = daemon.handle();
    handle.open(1, "t", "jinn").expect("first open");
    handle.open(2, "t", "jinn").expect("second open");
    let err = handle.open(3, "t", "jinn").expect_err("cap reached");
    assert_eq!(err, ServeError::FleetSaturated { live: 2, cap: 2 });
    // A terminal session frees its slot.
    handle.abort(1, "done").expect("abort");
    handle.open(3, "t", "jinn").expect("slot freed");
    daemon.shutdown();
}

#[test]
fn fleet_buffered_cap_backpressures_append() {
    // Buffered-path accounting: a streaming session would release
    // decoded (or poisoned) bytes immediately and never hold the cap.
    let daemon = Daemon::start(ServeConfig {
        max_total_buffered_bytes: 10,
        streaming_sessions: 0,
        ..ServeConfig::default()
    });
    let handle = daemon.handle();
    handle.open(1, "t", "jinn").expect("open 1");
    handle.open(2, "t", "jinn").expect("open 2");
    handle.append(1, &[0u8; 6]).expect("within fleet cap");
    let err = handle.append(2, &[0u8; 6]).expect_err("fleet cap");
    assert_eq!(
        err,
        ServeError::FleetBackpressure {
            buffered: 6,
            cap: 10
        }
    );
    // Dropping session 1's buffer readmits the bytes.
    handle.abort(1, "drop").expect("abort");
    handle.append(2, &[0u8; 6]).expect("bytes freed");
    daemon.shutdown();
}

#[test]
fn terminal_records_evict_oldest_first() {
    let daemon = Daemon::start(ServeConfig {
        max_session_records: 4,
        ..ServeConfig::default()
    });
    let handle = daemon.handle();
    for id in 0..8 {
        handle.open(id, "t", "jinn").expect("open");
        handle.abort(id, "done").expect("abort");
    }
    assert_eq!(handle.session_ids(), vec![4, 5, 6, 7]);
    assert!(
        handle.session_stats(0).is_none(),
        "evicted record answers nothing"
    );
    assert_eq!(handle.fleet().evicted_sessions, 4);
    // An evicted id may be reopened.
    handle.open(0, "t", "jinn").expect("reopen evicted id");
    daemon.shutdown();
}

#[test]
fn live_sessions_survive_the_record_cap() {
    let daemon = Daemon::start(ServeConfig {
        max_session_records: 2,
        ..ServeConfig::default()
    });
    let handle = daemon.handle();
    for id in 0..3 {
        handle.open(id, "t", "jinn").expect("open");
    }
    // Three live sessions exceed the record cap, but eviction only ever
    // takes terminal records: all three survive.
    assert_eq!(handle.session_ids(), vec![0, 1, 2]);
    handle.abort(0, "done").expect("abort");
    // The one terminal record is now the only candidate, and the table
    // is over cap, so it goes; the live pair stays.
    assert_eq!(handle.session_ids(), vec![1, 2]);
    assert_eq!(handle.fleet().evicted_sessions, 1);
    daemon.shutdown();
}

/// Evicting a judged session must release its history bytes from the
/// retention ledger.
#[test]
fn evicting_judged_records_releases_history_bytes() {
    let bytes = record_program(&program_by_name("LocalRefDangling").expect("corpus program"));
    let ingest_n = |daemon: &Daemon, n: u64| {
        let handle = daemon.handle();
        for id in 0..n {
            handle.open(id, "t", "jinn").expect("open");
            handle.append(id, &bytes).expect("append");
            handle
                .seal(id, bytes.len() as u64, fnv1a(&bytes))
                .expect("seal");
            handle.wait_session(id).expect("judged");
        }
    };

    // Measure one judged session's history footprint, uncapped.
    let daemon = Daemon::start(ServeConfig {
        workers: 1,
        ..ServeConfig::default()
    });
    ingest_n(&daemon, 1);
    let per_session = daemon.handle().fleet().history_bytes;
    assert!(per_session > 0, "a judged session holds history");
    daemon.shutdown();

    // Judge four identical sessions under a two-record cap: exactly two
    // sessions' bytes may remain charged.
    let daemon = Daemon::start(ServeConfig {
        workers: 1,
        max_session_records: 2,
        ..ServeConfig::default()
    });
    ingest_n(&daemon, 4);
    let handle = daemon.handle();
    let fleet = handle.fleet();
    assert_eq!(fleet.judged, 4);
    assert_eq!(fleet.evicted_sessions, 2);
    assert_eq!(handle.session_ids(), vec![2, 3]);
    assert_eq!(
        fleet.history_bytes,
        2 * per_session,
        "evicted sessions' history released"
    );
    daemon.shutdown();
}
