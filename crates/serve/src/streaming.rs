//! The streaming judge: overlap ingest with checking.
//!
//! A buffered session pays for its trace twice — once to receive it,
//! once (after `Seal`) to parse and replay it — so its seal-to-verdict
//! latency is O(trace) and its buffered footprint is the whole trace.
//! A streaming session instead runs a [`StreamingSession`] from `Open`:
//! a resumable record-granularity scanner ([`StreamDecoder`]) consumes
//! each `Append` chunk as it arrives, releases the bytes as soon as
//! they decode (only the undecoded tail stays resident), and pipes the
//! decoded event records into a live replay executor thread
//! ([`run_live_replay`]) via an [`EventFeed`]. By the time `Seal`
//! arrives the replay has (usually) kept pace, so seal-to-verdict work
//! collapses to: verify the declared length/checksum against the
//! scanner's running totals, drain whatever tail is left, and roll up
//! the recorder's final ring — O(1) in the trace length.
//!
//! ## Soundness
//!
//! Everything the executor computes before seal verification passes is
//! *speculative* and externally invisible: verdicts only become
//! observable through `SessionTable::finish`, which a worker calls
//! strictly after `Seal` succeeded. Three valves discard speculation:
//!
//! - **Seal mismatch** — the declared length/checksum disagrees with
//!   the running totals: the session is poisoned with byte-identical
//!   reasons to the buffered path and nothing is published.
//! - **Decode error** — the scanner is sticky-poisoned mid-stream
//!   (exact error parity with batch decoding); the worker fails the
//!   session with the same `unreadable trace: …` reason the buffered
//!   judge would produce.
//! - **Anomaly** — the trace's activation structure makes live order
//!   provably unable to match the buffered fold (same-method
//!   overlapping activations, activations still open at end of trace,
//!   setup records mid-stream), or the executor itself failed: the
//!   speculative outcome is discarded and the retained records are
//!   re-judged buffered ([`judge_trace`]) — producing exactly what the
//!   buffered daemon would have.
//!
//! The manifest interplay is decided at seal, like the buffered path:
//! a tenant's specialized pool serves the rollup only if it covers the
//! (now complete) call-site set; otherwise the full-pool lease held
//! since `Open` serves it and the session is flagged
//! `discharge_fallback` — preserving verdict-multiset equality because
//! the pool choice never affects verdicts.

use std::collections::BTreeSet;
use std::sync::{Arc, Mutex, MutexGuard};
use std::thread::JoinHandle;

use jinn_fsm::{AtomicEnginePool, AtomicStore, EngineLease};
use jinn_obs::Recorder;
use jinn_replay::{
    run_live_replay, verify_seal_declaration, EventFeed, LiveFeeder, ReplayConfig, ReplayOutcome,
    StreamDecoder, Trace, TraceError, TraceRecord,
};

use crate::judge::{
    discharge_stats, judge_trace, obs_counters, rollup_events_on_lease, summarize, JudgeOutput,
};
use crate::manifest::SpecializedPool;
use crate::session::{OutcomeRec, SessionId, VerdictRec};

/// One live-judged session: the scanner fed by the ingest connection
/// and the executor thread replaying what it decodes.
pub(crate) struct StreamingSession {
    session: SessionId,
    config: ReplayConfig,
    feed: Arc<EventFeed>,
    recorder: Recorder,
    inner: Mutex<StreamInner>,
}

struct StreamInner {
    decoder: StreamDecoder,
    feeder: LiveFeeder,
    /// Every decoded record, retained in [`Trace::parse`] shape (setup
    /// hoisted, events in order) so the anomaly valve can re-judge
    /// buffered without re-decoding.
    trace: Trace,
    saw_event: bool,
    /// The call-site set, accumulated record-by-record during ingest so
    /// seal-time pool selection and the discharge audit never walk the
    /// retained events (always equal to `trace.called_functions()`).
    called: BTreeSet<String>,
    executor: Option<JoinHandle<Result<ReplayOutcome, TraceError>>>,
    anomaly: Option<String>,
    decode_error: Option<TraceError>,
    /// Full-pool engine lease held `Open`→`Seal`. Reserves rollup
    /// capacity for the live session (the pool's `lease_high_water`
    /// tracks streaming concurrency) and serves the seal-time rollup
    /// unless a covering specialized pool takes over.
    lease: Option<EngineLease<u64, AtomicStore<u64>>>,
}

impl StreamingSession {
    /// Starts the scanner and takes the session's engine lease. The
    /// executor thread is spawned lazily at the first *event* record —
    /// only then is the setup section known complete (a later setup
    /// record is an anomaly, exactly the condition under which the
    /// buffered fold could disagree).
    pub(crate) fn start(
        session: SessionId,
        config: ReplayConfig,
        pool: &Arc<AtomicEnginePool<u64>>,
        recorder_ring: usize,
    ) -> StreamingSession {
        let feed = Arc::new(EventFeed::new());
        StreamingSession {
            session,
            config,
            feed: Arc::clone(&feed),
            recorder: Recorder::enabled(recorder_ring),
            inner: Mutex::new(StreamInner {
                decoder: StreamDecoder::new(),
                feeder: LiveFeeder::new(feed),
                trace: Trace {
                    meta: Vec::new(),
                    classes: Vec::new(),
                    threads: Vec::new(),
                    seeds: Vec::new(),
                    events: Vec::new(),
                    version: 0,
                },
                saw_event: false,
                called: BTreeSet::new(),
                executor: None,
                anomaly: None,
                decode_error: None,
                lease: Some(pool.lease()),
            }),
        }
    }

    fn lock(&self) -> MutexGuard<'_, StreamInner> {
        self.inner.lock().expect("streaming session poisoned")
    }

    /// Feeds one `Append` chunk: decodes whatever records it completes,
    /// routes them (retained trace + live feed), and returns the
    /// undecoded tail — the only bytes still resident.
    pub(crate) fn ingest(&self, chunk: &[u8]) -> u64 {
        let mut g = self.lock();
        g.decoder.feed(chunk);
        self.drain(&mut g);
        g.trace.version = g.decoder.version();
        g.decoder.pending()
    }

    fn drain(&self, g: &mut StreamInner) {
        loop {
            match g.decoder.next_record() {
                Ok(Some(rec)) => self.route(g, rec),
                Ok(None) => break,
                Err(e) => {
                    if g.decode_error.is_none() {
                        g.decode_error = Some(e);
                        // Nothing past a poisoned decoder can be judged
                        // live; unblock the executor now.
                        self.feed.finish();
                    }
                    break;
                }
            }
        }
    }

    fn route(&self, g: &mut StreamInner, rec: TraceRecord) {
        match rec {
            // Setup records land in the retained trace's setup section
            // regardless of position — exactly `Trace::parse`'s hoist —
            // but one arriving after events began breaks live/buffered
            // parity, so it also trips the anomaly valve.
            TraceRecord::Meta { key, value } => {
                self.note_setup(g);
                g.trace.meta.push((key, value));
            }
            TraceRecord::DefClass(c) => {
                self.note_setup(g);
                g.trace.classes.push(c);
            }
            TraceRecord::SpawnThread { thread } => {
                self.note_setup(g);
                g.trace.threads.push(thread);
            }
            TraceRecord::Seed(s) => {
                self.note_setup(g);
                g.trace.seeds.push(s);
            }
            event => {
                if !g.saw_event {
                    g.saw_event = true;
                    self.spawn_executor(g);
                }
                if let TraceRecord::JniEnter { func, .. } = &event {
                    let name = minijni::FuncId(*func).name();
                    if !g.called.contains(name) {
                        g.called.insert(name.to_string());
                    }
                }
                if g.anomaly.is_none() {
                    if let Err(why) = g.feeder.push(&event) {
                        self.note_anomaly(g, why);
                    }
                }
                g.trace.events.push(event);
            }
        }
    }

    fn note_setup(&self, g: &mut StreamInner) {
        if g.saw_event && g.anomaly.is_none() {
            self.note_anomaly(g, "setup record in event stream".to_string());
        }
    }

    fn note_anomaly(&self, g: &mut StreamInner, why: String) {
        if g.anomaly.is_none() {
            g.anomaly = Some(why);
            // The executor's result will be discarded; let it drain out.
            self.feed.finish();
        }
    }

    fn spawn_executor(&self, g: &mut StreamInner) {
        let setup = Trace {
            meta: g.trace.meta.clone(),
            classes: g.trace.classes.clone(),
            threads: g.trace.threads.clone(),
            seeds: g.trace.seeds.clone(),
            events: Vec::new(),
            version: g.decoder.version(),
        };
        let config = self.config.clone();
        let recorder = self.recorder.clone();
        let feed = Arc::clone(&self.feed);
        let handle = std::thread::Builder::new()
            .name(format!("jinn-serve-stream-{}", self.session))
            .spawn(move || run_live_replay(&setup, &config, Some(&recorder), &feed))
            .expect("spawn streaming executor");
        g.executor = Some(handle);
    }

    /// Verifies the client's `Seal` declaration against the scanner's
    /// running byte/checksum totals — same check, precedence, and
    /// wording as the buffered path's reassembled-buffer verification.
    ///
    /// # Errors
    ///
    /// The quarantine reason on mismatch.
    pub(crate) fn verify_declaration(&self, total_len: u64, checksum: u64) -> Result<(), String> {
        let g = self.lock();
        verify_seal_declaration(
            total_len,
            checksum,
            g.decoder.stream_len(),
            g.decoder.stream_fnv(),
        )
        .map_err(|m| m.to_string())
    }

    /// Closes the stream after a successful seal: drains any residual
    /// tail, runs the scanner's end-of-stream verification (missing
    /// `End`, trailing bytes — batch error parity), and finishes the
    /// feed so the executor completes. The worker collects the result.
    pub(crate) fn finalize(&self) {
        let mut g = self.lock();
        self.drain(&mut g);
        if g.decode_error.is_none() {
            if let Err(e) = g.decoder.finish() {
                g.decode_error = Some(e);
            }
        }
        if let Err(why) = g.feeder.finish() {
            if g.anomaly.is_none() {
                g.anomaly = Some(why);
            }
        }
    }

    /// Worker entry after `Seal`: joins the executor and either
    /// publishes its (no-longer-speculative) outcome or runs one of the
    /// discard valves.
    ///
    /// # Errors
    ///
    /// A quarantine reason, byte-compatible with the buffered judge's.
    pub(crate) fn collect(
        &self,
        tenant: &str,
        configs: &[ReplayConfig],
        pool: &Arc<AtomicEnginePool<u64>>,
        specialized: Option<&SpecializedPool>,
        recorder_ring: usize,
        max_events: usize,
    ) -> Result<JudgeOutput, String> {
        let mut g = self.lock();
        if let Some(e) = &g.decode_error {
            return Err(format!("unreadable trace: {e}"));
        }
        let outcome = match g.executor.take() {
            Some(h) => match h.join() {
                Ok(Ok(out)) => Some(out),
                // A failed or panicked executor is treated like an
                // anomaly: re-judge buffered so the session resolves
                // exactly as it would have without streaming.
                Ok(Err(_)) | Err(_) => None,
            },
            // No event ever streamed (setup-only trace): the buffered
            // judge is already O(1) for it.
            None => None,
        };
        match outcome {
            Some(out) if g.anomaly.is_none() => {
                Ok(self.assemble(&mut g, out, tenant, specialized, max_events))
            }
            _ => judge_trace(
                &g.trace,
                self.session,
                tenant,
                configs,
                pool,
                specialized,
                recorder_ring,
                max_events,
            ),
        }
    }

    /// Publishes the live outcome: per-config rows from the executor,
    /// summaries and rollups from the recorder's final ring (on the
    /// held lease, or a covering specialized pool's), audit rows from
    /// the retained trace — field-for-field what the buffered judge
    /// produces.
    fn assemble(
        &self,
        g: &mut StreamInner,
        out: ReplayOutcome,
        tenant: &str,
        specialized: Option<&SpecializedPool>,
        max_events: usize,
    ) -> JudgeOutput {
        let session = self.session;
        let called_functions = std::mem::take(&mut g.called);
        let trace = &g.trace;
        let (specialized_hit, discharge_fallback) = match specialized {
            Some(sp) if sp.covers(&called_functions) => (true, false),
            Some(_) => (false, true),
            None => (false, false),
        };
        let all = self.recorder.events();
        let rollups = if specialized_hit {
            let sp = specialized.expect("specialized_hit implies a pool");
            let mut lease = sp.pool().lease();
            rollup_events_on_lease(&mut lease, &all)
        } else {
            let mut lease = g.lease.take().expect("lease held until collection");
            rollup_events_on_lease(&mut lease, &all)
        };
        let mut events_dropped = self.recorder.dropped_events();
        let skip = all.len().saturating_sub(max_events);
        events_dropped += skip as u64;
        let events = all
            .iter()
            .skip(skip)
            .map(|e| summarize(session, e))
            .collect();
        let config_label = self.config.label();
        let verdicts = out
            .violations
            .iter()
            .map(|v| VerdictRec {
                session,
                tenant: tenant.to_string(),
                config: config_label.clone(),
                machine: v.machine.to_string(),
                error_state: v.error_state.to_string(),
                function: v.function.clone(),
                message: v.message.clone(),
            })
            .collect();
        let outcomes = vec![OutcomeRec {
            session,
            config: config_label,
            behavior: out.behavior.to_string(),
            message: out.message.clone(),
            events_replayed: out.events_replayed,
            divergences: out.divergences,
        }];
        JudgeOutput {
            program: trace.program().to_string(),
            outcomes,
            verdicts,
            events,
            events_dropped,
            rollups,
            obs: obs_counters(trace),
            discharge: discharge_stats(trace.program(), &called_functions),
            events_replayed: out.events_replayed,
            divergences: out.divergences,
            called_functions,
            specialized: specialized_hit,
            discharge_fallback,
        }
    }

    /// Tears the session down without publishing anything: quarantine,
    /// abort, and shutdown all land here. Safe to call at any point —
    /// the feed is finished so a running executor drains and exits, and
    /// its result is dropped.
    pub(crate) fn discard(&self) {
        self.feed.finish();
        let mut g = self.lock();
        if let Some(h) = g.executor.take() {
            let _ = h.join();
        }
        g.lease = None;
    }
}
