//! The daemon: N ingest workers around a bounded queue, fronted by a
//! cloneable in-process handle.
//!
//! Lifecycle of one session: `open` → `append`* → `seal` (validates the
//! reassembled bytes, enqueues) → a worker takes it (`Judging`), replays
//! it under the session's checker stack, and stores the history
//! (`Judged`) — or poisons it (`Quarantined`). The queue is the
//! admission-control point: when all workers are busy and the queue is
//! full, `seal` blocks the *sealing* client (global backpressure), while
//! oversized appends fail fast with a per-session backpressure error.

use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

use jinn_fsm::{AtomicEnginePool, EnginePool, PoolStats};
use jinn_replay::{Frame, ReplayConfig, MAX_MANIFEST_FUNCTIONS};

use crate::error::ServeError;
use crate::judge::judge;
use crate::manifest::{ManifestRegistry, ManifestRegistryStats, ManifestSummary};
use crate::session::{MachineRollup, SessionId, SessionStats};
use crate::store::{FleetStats, Query, QueryPage, SessionTable, StoreLimits};
use crate::streaming::StreamingSession;

/// Daemon tuning knobs.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Ingest worker threads.
    pub workers: usize,
    /// Sealed sessions the queue holds before `seal` blocks.
    pub queue_capacity: usize,
    /// Per-session ingest buffer cap (backpressure threshold).
    pub max_buffered_bytes: u64,
    /// Live sessions admitted at once; `open` past it fails with
    /// [`ServeError::FleetSaturated`].
    pub max_live_sessions: usize,
    /// Session records kept (live + terminal); terminal records beyond
    /// it are evicted oldest-first.
    pub max_session_records: usize,
    /// Total buffered ingest bytes across all sessions; `append` past it
    /// fails with [`ServeError::FleetBackpressure`].
    pub max_total_buffered_bytes: u64,
    /// Global byte budget for judged history.
    pub retention_bytes: usize,
    /// Event summaries kept per session (newest win).
    pub max_events_per_session: usize,
    /// Checker stack for sessions that don't pick one, in
    /// [`ReplayConfig::parse`] syntax, comma-separated.
    pub default_configs: String,
    /// Ring capacity of the per-session replay recorder.
    pub recorder_ring: usize,
    /// Sessions after which a tenant with no declared manifest gets one
    /// *learned* from the union of its traces' call-site sets. `0`
    /// disables learning: only declared manifests specialize.
    pub learn_after_sessions: u64,
    /// Sessions judged *incrementally* at once: each streaming session
    /// holds an engine lease and an executor thread from `Open` to
    /// `Seal`, so this caps that standing cost. Single-config sessions
    /// opened while a slot is free stream; everything else (and `0`,
    /// which disables streaming) buffers exactly as before.
    pub streaming_sessions: usize,
}

impl Default for ServeConfig {
    fn default() -> ServeConfig {
        ServeConfig {
            workers: 4,
            queue_capacity: 256,
            max_buffered_bytes: 8 * 1024 * 1024,
            max_live_sessions: 4096,
            max_session_records: 16384,
            max_total_buffered_bytes: 256 * 1024 * 1024,
            retention_bytes: 4 * 1024 * 1024,
            max_events_per_session: 512,
            default_configs: "jinn".to_string(),
            recorder_ring: 1024,
            learn_after_sessions: 0,
            streaming_sessions: 8,
        }
    }
}

struct QueueInner {
    items: VecDeque<SessionId>,
    closed: bool,
}

struct IngestQueue {
    inner: Mutex<QueueInner>,
    not_full: Condvar,
    not_empty: Condvar,
    capacity: usize,
}

impl IngestQueue {
    fn new(capacity: usize) -> IngestQueue {
        IngestQueue {
            inner: Mutex::new(QueueInner {
                items: VecDeque::new(),
                closed: false,
            }),
            not_full: Condvar::new(),
            not_empty: Condvar::new(),
            capacity: capacity.max(1),
        }
    }

    /// Blocks while full; `Err` once the queue is closed.
    fn push(&self, id: SessionId) -> Result<(), ServeError> {
        let mut q = self.inner.lock().expect("ingest queue poisoned");
        while q.items.len() >= self.capacity && !q.closed {
            q = self.not_full.wait(q).expect("ingest queue poisoned");
        }
        if q.closed {
            return Err(ServeError::ShuttingDown);
        }
        q.items.push_back(id);
        self.not_empty.notify_one();
        Ok(())
    }

    /// Blocks while empty; `None` once closed *and* drained.
    fn pop(&self) -> Option<SessionId> {
        let mut q = self.inner.lock().expect("ingest queue poisoned");
        loop {
            if let Some(id) = q.items.pop_front() {
                self.not_full.notify_one();
                return Some(id);
            }
            if q.closed {
                return None;
            }
            q = self.not_empty.wait(q).expect("ingest queue poisoned");
        }
    }

    fn close(&self) {
        let mut q = self.inner.lock().expect("ingest queue poisoned");
        q.closed = true;
        self.not_empty.notify_all();
        self.not_full.notify_all();
    }
}

pub(crate) struct Shared {
    config: ServeConfig,
    pub(crate) table: SessionTable,
    queue: IngestQueue,
    pool: Arc<AtomicEnginePool<u64>>,
    registry: ManifestRegistry,
    streams: Mutex<HashMap<SessionId, Arc<StreamingSession>>>,
    next_auto: AtomicU64,
    shutting_down: AtomicBool,
}

impl Shared {
    fn stream(&self, id: SessionId) -> Option<Arc<StreamingSession>> {
        self.streams
            .lock()
            .expect("stream registry poisoned")
            .get(&id)
            .cloned()
    }

    fn remove_stream(&self, id: SessionId) -> Option<Arc<StreamingSession>> {
        self.streams
            .lock()
            .expect("stream registry poisoned")
            .remove(&id)
    }
}

/// The running daemon: owns the worker threads. Get a [`DaemonHandle`]
/// with [`Daemon::handle`]; call [`Daemon::shutdown`] (or drop) to stop.
pub struct Daemon {
    shared: Arc<Shared>,
    workers: Vec<JoinHandle<()>>,
}

/// Daemon-assigned session ids start here, far above anything a client
/// fleet plausibly chooses, so `open_auto` and client-chosen ids coexist.
pub const AUTO_SESSION_BASE: u64 = 1 << 48;

impl Daemon {
    /// Starts the workers and returns the daemon.
    pub fn start(config: ServeConfig) -> Daemon {
        let shared = Arc::new(Shared {
            table: SessionTable::new(StoreLimits {
                retention_bytes: config.retention_bytes,
                max_buffered: config.max_buffered_bytes,
                max_live_sessions: config.max_live_sessions,
                max_session_records: config.max_session_records,
                max_total_buffered: config.max_total_buffered_bytes,
            }),
            queue: IngestQueue::new(config.queue_capacity),
            pool: EnginePool::new(jinn_spec::machines()),
            registry: ManifestRegistry::default(),
            streams: Mutex::new(HashMap::new()),
            next_auto: AtomicU64::new(AUTO_SESSION_BASE),
            shutting_down: AtomicBool::new(false),
            config,
        });
        let workers = (0..shared.config.workers.max(1))
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("jinn-serve-worker-{i}"))
                    .spawn(move || worker_loop(&shared))
                    .expect("spawn ingest worker")
            })
            .collect();
        Daemon { shared, workers }
    }

    /// A cloneable front end to this daemon.
    pub fn handle(&self) -> DaemonHandle {
        DaemonHandle {
            shared: Arc::clone(&self.shared),
        }
    }

    /// Stops accepting work, drains the queue, and joins the workers.
    pub fn shutdown(mut self) {
        self.shutdown_inner();
    }

    fn shutdown_inner(&mut self) {
        self.shared.shutting_down.store(true, Ordering::SeqCst);
        self.shared.queue.close();
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
        // Workers drained every sealed session (including streaming
        // ones, which they removed from the registry); whatever is left
        // never sealed — discard the speculation and join the executors
        // so shutdown leaves no threads behind.
        let leftover: Vec<Arc<StreamingSession>> = self
            .shared
            .streams
            .lock()
            .expect("stream registry poisoned")
            .drain()
            .map(|(_, s)| s)
            .collect();
        for s in leftover {
            s.discard();
        }
    }
}

impl Drop for Daemon {
    fn drop(&mut self) {
        self.shutdown_inner();
    }
}

fn worker_loop(shared: &Arc<Shared>) {
    while let Some(id) = shared.queue.pop() {
        if let Some(stream) = shared.remove_stream(id) {
            let Some((tenant, configs)) = shared.table.begin_judging_streamed(id) else {
                stream.discard(); // quarantined while queued
                continue;
            };
            let specialized = shared.registry.specialized_for(&tenant);
            match stream.collect(
                &tenant,
                &configs,
                &shared.pool,
                specialized.as_deref(),
                shared.config.recorder_ring,
                shared.config.max_events_per_session,
            ) {
                Ok(out) => {
                    shared.registry.observe_judged(
                        &tenant,
                        &out.called_functions,
                        out.discharge_fallback,
                        shared.config.learn_after_sessions,
                    );
                    shared.table.finish(id, out);
                }
                Err(reason) => shared.table.fail(id, &reason),
            }
            continue;
        }
        let Some((bytes, tenant, configs)) = shared.table.begin_judging(id) else {
            continue; // quarantined while queued
        };
        let specialized = shared.registry.specialized_for(&tenant);
        match judge(
            &bytes,
            id,
            &tenant,
            &configs,
            &shared.pool,
            specialized.as_deref(),
            shared.config.recorder_ring,
            shared.config.max_events_per_session,
        ) {
            Ok(out) => {
                shared.registry.observe_judged(
                    &tenant,
                    &out.called_functions,
                    out.discharge_fallback,
                    shared.config.learn_after_sessions,
                );
                shared.table.finish(id, out);
            }
            Err(reason) => shared.table.fail(id, &reason),
        }
    }
}

/// A cloneable, thread-safe front end to a running [`Daemon`]: the
/// in-process query/ingest API. The socket server and the CLI are thin
/// wrappers over this.
#[derive(Clone)]
pub struct DaemonHandle {
    shared: Arc<Shared>,
}

impl DaemonHandle {
    fn guard(&self) -> Result<(), ServeError> {
        if self.shared.shutting_down.load(Ordering::SeqCst) {
            Err(ServeError::ShuttingDown)
        } else {
            Ok(())
        }
    }

    /// Parses a comma-separated checker-stack selection (empty string:
    /// the daemon default).
    ///
    /// # Errors
    ///
    /// [`ServeError::BadConfig`] naming the first unknown label.
    pub fn parse_configs(&self, selection: &str) -> Result<Vec<ReplayConfig>, ServeError> {
        let effective = if selection.trim().is_empty() {
            &self.shared.config.default_configs
        } else {
            selection
        };
        effective
            .split(',')
            .map(str::trim)
            .filter(|s| !s.is_empty())
            .map(|label| {
                ReplayConfig::parse(label).ok_or_else(|| ServeError::BadConfig(label.to_string()))
            })
            .collect()
    }

    /// Opens a session with a client-chosen id.
    ///
    /// # Errors
    ///
    /// Duplicate id, bad config selection, or shutdown.
    pub fn open(&self, session: SessionId, tenant: &str, configs: &str) -> Result<(), ServeError> {
        self.guard()?;
        let configs = self.parse_configs(configs)?;
        let single = match configs.as_slice() {
            [only] => Some(only.clone()),
            _ => None,
        };
        self.shared.table.open(session, tenant, configs)?;
        // Streaming dispatch: single-config sessions stream while a
        // slot is free; everything else buffers transparently. Decided
        // once here — the first `Append` must already hit the scanner.
        if let Some(config) = single {
            let cap = self.shared.config.streaming_sessions;
            if cap > 0 {
                let mut streams = self
                    .shared
                    .streams
                    .lock()
                    .expect("stream registry poisoned");
                if streams.len() < cap {
                    streams.insert(
                        session,
                        Arc::new(StreamingSession::start(
                            session,
                            config,
                            &self.shared.pool,
                            self.shared.config.recorder_ring,
                        )),
                    );
                    drop(streams);
                    self.shared.table.mark_streamed(session);
                }
            }
        }
        Ok(())
    }

    /// Opens a session with a daemon-assigned id (from
    /// [`AUTO_SESSION_BASE`] upward).
    ///
    /// # Errors
    ///
    /// As for [`DaemonHandle::open`].
    pub fn open_auto(&self, tenant: &str, configs: &str) -> Result<SessionId, ServeError> {
        let id = self.shared.next_auto.fetch_add(1, Ordering::Relaxed);
        self.open(id, tenant, configs)?;
        Ok(id)
    }

    /// Buffers trace bytes for an open session.
    ///
    /// # Errors
    ///
    /// [`ServeError::Backpressure`] past the per-session cap; lifecycle
    /// errors otherwise.
    pub fn append(&self, session: SessionId, chunk: &[u8]) -> Result<(), ServeError> {
        self.guard()?;
        match self.shared.stream(session) {
            Some(stream) => {
                // Admission (lifecycle + backpressure on the undecoded
                // tail) happens before the scanner sees a byte, so a
                // rejected chunk leaves the stream exactly as it was.
                self.shared
                    .table
                    .stream_admit(session, chunk.len() as u64)?;
                let pending = stream.ingest(chunk);
                self.shared.table.stream_settle(session, pending);
                Ok(())
            }
            None => self.shared.table.append(session, chunk),
        }
    }

    /// Seals a session and queues it for judging. Blocks while the
    /// ingest queue is full (global backpressure).
    ///
    /// # Errors
    ///
    /// [`ServeError::Quarantined`] when the reassembled bytes don't
    /// match the declaration; lifecycle or shutdown errors otherwise.
    pub fn seal(
        &self,
        session: SessionId,
        total_len: u64,
        checksum: u64,
    ) -> Result<(), ServeError> {
        self.guard()?;
        match self.shared.stream(session) {
            Some(stream) => {
                let declared = stream.verify_declaration(total_len, checksum);
                if let Err(e) = self.shared.table.seal_streamed(session, declared) {
                    if matches!(e, ServeError::Quarantined { .. }) {
                        if let Some(s) = self.shared.remove_stream(session) {
                            s.discard();
                        }
                    }
                    return Err(e);
                }
                stream.finalize();
            }
            None => self.shared.table.seal(session, total_len, checksum)?,
        }
        match self.shared.queue.push(session) {
            Ok(()) => Ok(()),
            Err(e) => {
                self.shared
                    .table
                    .quarantine(session, "daemon shut down before judging");
                if let Some(s) = self.shared.remove_stream(session) {
                    s.discard();
                }
                Err(e)
            }
        }
    }

    /// Abandons an open session.
    ///
    /// # Errors
    ///
    /// Lifecycle errors.
    pub fn abort(&self, session: SessionId, reason: &str) -> Result<(), ServeError> {
        self.shared.table.abort(session, reason)?;
        if let Some(s) = self.shared.remove_stream(session) {
            s.discard();
        }
        Ok(())
    }

    /// Poisons a session from the transport layer (its connection's
    /// frame stream went bad). No-op on terminal sessions.
    pub fn quarantine(&self, session: SessionId, reason: &str) {
        self.shared.table.quarantine(session, reason);
        if let Some(s) = self.shared.remove_stream(session) {
            s.discard();
        }
    }

    /// Declares (or replaces) `tenant`'s workload manifest: runs the
    /// static-discharge pass for the declared call-site set, compiles
    /// (or finds, for an identical function set) a specialized engine
    /// pool, and routes the tenant's future sessions through it.
    /// Function names unknown to the JNI registry are kept callable and
    /// reported in the summary — a misspelled manifest weakens
    /// discharge, it does not fail.
    ///
    /// # Errors
    ///
    /// [`ServeError::ManifestTooLarge`] past the wire cap
    /// ([`jinn_replay::MAX_MANIFEST_FUNCTIONS`]), or shutdown.
    pub fn declare_manifest(
        &self,
        tenant: &str,
        functions: &[String],
    ) -> Result<ManifestSummary, ServeError> {
        self.guard()?;
        if functions.len() as u64 > MAX_MANIFEST_FUNCTIONS {
            return Err(ServeError::ManifestTooLarge {
                count: functions.len() as u64,
                cap: MAX_MANIFEST_FUNCTIONS,
            });
        }
        Ok(self.shared.registry.declare(tenant, functions))
    }

    /// Manifest-registry counters.
    pub fn manifest_stats(&self) -> ManifestRegistryStats {
        self.shared.registry.stats()
    }

    /// Applies one decoded ingest frame.
    ///
    /// # Errors
    ///
    /// As for the corresponding lifecycle method.
    pub fn apply_frame(&self, frame: &Frame) -> Result<(), ServeError> {
        match frame {
            Frame::Open {
                session,
                tenant,
                config,
            } => self.open(*session, tenant, config),
            Frame::Append { session, chunk } => self.append(*session, chunk),
            Frame::Seal {
                session,
                total_len,
                checksum,
            } => self.seal(*session, *total_len, *checksum),
            Frame::Abort { session, reason } => self.abort(*session, reason),
            Frame::Manifest { tenant, functions } => {
                self.declare_manifest(tenant, functions).map(|_| ())
            }
        }
    }

    /// Runs a history query.
    pub fn query(&self, query: &Query) -> QueryPage {
        self.shared.table.query(query)
    }

    /// A stats snapshot for one session.
    pub fn session_stats(&self, session: SessionId) -> Option<SessionStats> {
        self.shared.table.stats(session)
    }

    /// The per-machine rollups of a judged session.
    pub fn rollups(&self, session: SessionId) -> Vec<MachineRollup> {
        self.shared.table.rollups(session)
    }

    /// Fleet counters.
    pub fn fleet(&self) -> FleetStats {
        self.shared.table.fleet()
    }

    /// Engine-pool counters (lease reuse across sessions).
    pub fn pool_stats(&self) -> PoolStats {
        self.shared.pool.stats()
    }

    /// Every known session id, in open order.
    pub fn session_ids(&self) -> Vec<SessionId> {
        self.shared.table.session_ids()
    }

    /// Blocks until the session is judged, quarantined, or aborted;
    /// `None` for an unknown id.
    pub fn wait_session(&self, session: SessionId) -> Option<SessionStats> {
        self.shared.table.wait_terminal(session)
    }

    /// Blocks until no session is queued or judging.
    pub fn wait_idle(&self) {
        self.shared.table.wait_idle();
    }
}
