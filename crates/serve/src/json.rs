//! Minimal hand-rolled JSON: a builder for responses and a flat-object
//! parser for requests.
//!
//! The daemon's wire format is line-delimited JSON, but this repository
//! builds offline — no `serde`. Responses are assembled with
//! [`JsonObj`]/[`JsonList`]; requests are parsed with [`parse_object`],
//! which accepts exactly the shape the query front end sends: one
//! non-nested object of string / integer / boolean / null fields.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Escapes a string into a JSON string literal (quotes included).
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// An in-order JSON object builder.
#[derive(Debug, Default)]
pub struct JsonObj {
    fields: Vec<(String, String)>,
}

impl JsonObj {
    /// An empty object.
    pub fn new() -> JsonObj {
        JsonObj::default()
    }

    /// Adds a string field.
    pub fn str(mut self, key: &str, value: &str) -> JsonObj {
        self.fields.push((key.to_string(), escape(value)));
        self
    }

    /// Adds an optional string field (omitted when `None`).
    pub fn opt_str(self, key: &str, value: Option<&str>) -> JsonObj {
        match value {
            Some(v) => self.str(key, v),
            None => self,
        }
    }

    /// Adds an integer field.
    pub fn num(mut self, key: &str, value: impl Into<i128>) -> JsonObj {
        self.fields
            .push((key.to_string(), value.into().to_string()));
        self
    }

    /// Adds an optional integer field (omitted when `None`).
    pub fn opt_num(self, key: &str, value: Option<impl Into<i128>>) -> JsonObj {
        match value {
            Some(v) => self.num(key, v),
            None => self,
        }
    }

    /// Adds a float field (for rates; rendered with 3 decimals).
    pub fn float(mut self, key: &str, value: f64) -> JsonObj {
        self.fields.push((key.to_string(), format!("{value:.3}")));
        self
    }

    /// Adds a boolean field.
    pub fn bool(mut self, key: &str, value: bool) -> JsonObj {
        self.fields.push((key.to_string(), value.to_string()));
        self
    }

    /// Adds a pre-rendered JSON value (object, list…).
    pub fn raw(mut self, key: &str, value: String) -> JsonObj {
        self.fields.push((key.to_string(), value));
        self
    }

    /// Renders the object.
    pub fn build(self) -> String {
        let mut out = String::from("{");
        for (i, (k, v)) in self.fields.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&escape(k));
            out.push(':');
            out.push_str(v);
        }
        out.push('}');
        out
    }
}

/// Renders a list of pre-rendered JSON values.
pub fn list(items: impl IntoIterator<Item = String>) -> String {
    let mut out = String::from("[");
    for (i, item) in items.into_iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&item);
    }
    out.push(']');
    out
}

/// A parsed request field value.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonVal {
    /// A string.
    Str(String),
    /// An integer (the request vocabulary has no floats).
    Num(i64),
    /// A boolean.
    Bool(bool),
    /// `null`.
    Null,
}

impl JsonVal {
    /// The string payload, if a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonVal::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The integer payload as `u64`, if a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            JsonVal::Num(n) if *n >= 0 => Some(*n as u64),
            _ => None,
        }
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        self.skip_ws();
        if self.bytes.get(self.pos) == Some(&b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected `{}` at byte {}", char::from(b), self.pos))
        }
    }

    fn peek(&mut self) -> Option<u8> {
        self.skip_ws();
        self.bytes.get(self.pos).copied()
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let b = *self
                .bytes
                .get(self.pos)
                .ok_or_else(|| "unterminated string".to_string())?;
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let e = *self
                        .bytes
                        .get(self.pos)
                        .ok_or_else(|| "unterminated escape".to_string())?;
                    self.pos += 1;
                    match e {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or_else(|| "truncated \\u escape".to_string())?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| "bad \\u escape".to_string())?;
                            let cp = u32::from_str_radix(hex, 16)
                                .map_err(|_| "bad \\u escape".to_string())?;
                            self.pos += 4;
                            out.push(char::from_u32(cp).unwrap_or('\u{fffd}'));
                        }
                        other => return Err(format!("bad escape `\\{}`", char::from(other))),
                    }
                }
                b if b < 0x80 => out.push(char::from(b)),
                _ => {
                    // Multi-byte UTF-8: find the full scalar.
                    let start = self.pos - 1;
                    let mut end = self.pos;
                    while end < self.bytes.len() && self.bytes[end] & 0xc0 == 0x80 {
                        end += 1;
                    }
                    let s = std::str::from_utf8(&self.bytes[start..end])
                        .map_err(|_| "invalid UTF-8 in string".to_string())?;
                    out.push_str(s);
                    self.pos = end;
                }
            }
        }
    }

    fn value(&mut self) -> Result<JsonVal, String> {
        match self.peek() {
            Some(b'"') => Ok(JsonVal::Str(self.string()?)),
            Some(b't') => self.literal("true", JsonVal::Bool(true)),
            Some(b'f') => self.literal("false", JsonVal::Bool(false)),
            Some(b'n') => self.literal("null", JsonVal::Null),
            Some(b'-' | b'0'..=b'9') => {
                let start = self.pos;
                if self.bytes[self.pos] == b'-' {
                    self.pos += 1;
                }
                while matches!(self.bytes.get(self.pos), Some(b'0'..=b'9')) {
                    self.pos += 1;
                }
                let s = std::str::from_utf8(&self.bytes[start..self.pos]).expect("digits");
                s.parse::<i64>()
                    .map(JsonVal::Num)
                    .map_err(|_| format!("integer out of range: {s}"))
            }
            other => Err(format!("unexpected value start {other:?}")),
        }
    }

    fn literal(&mut self, word: &str, val: JsonVal) -> Result<JsonVal, String> {
        self.skip_ws();
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(val)
        } else {
            Err(format!("expected `{word}`"))
        }
    }
}

/// Parses one flat JSON object (string / integer / boolean / null
/// values only — the request vocabulary).
///
/// # Errors
///
/// A human-readable description of the first syntax problem.
pub fn parse_object(input: &str) -> Result<BTreeMap<String, JsonVal>, String> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    let mut out = BTreeMap::new();
    p.expect(b'{')?;
    if p.peek() == Some(b'}') {
        p.pos += 1;
    } else {
        loop {
            let key = p.string()?;
            p.expect(b':')?;
            let val = p.value()?;
            out.insert(key, val);
            match p.peek() {
                Some(b',') => p.pos += 1,
                Some(b'}') => {
                    p.pos += 1;
                    break;
                }
                other => return Err(format!("expected `,` or `}}`, got {other:?}")),
            }
        }
    }
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err("trailing bytes after object".to_string());
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_renders_in_order() {
        let s = JsonObj::new()
            .str("op", "query")
            .num("session", 7)
            .bool("ok", true)
            .opt_str("missing", None)
            .raw("items", list(vec!["1".to_string(), "2".to_string()]))
            .build();
        assert_eq!(s, r#"{"op":"query","session":7,"ok":true,"items":[1,2]}"#);
    }

    #[test]
    fn parser_round_trips_builder_output() {
        let s = JsonObj::new()
            .str("tenant", "acme \"prod\"\n")
            .num("limit", 42)
            .bool("sampled", false)
            .build();
        let obj = parse_object(&s).unwrap();
        assert_eq!(obj["tenant"], JsonVal::Str("acme \"prod\"\n".to_string()));
        assert_eq!(obj["limit"].as_u64(), Some(42));
        assert_eq!(obj["sampled"], JsonVal::Bool(false));
    }

    #[test]
    fn parser_rejects_garbage() {
        assert!(parse_object("{").is_err());
        assert!(parse_object(r#"{"a":}"#).is_err());
        assert!(parse_object(r#"{"a":1} extra"#).is_err());
        assert!(parse_object(r#"{"a":99999999999999999999}"#).is_err());
    }

    #[test]
    fn parser_handles_unicode_escapes() {
        let obj = parse_object(r#"{"s":"aéb","u":"naïve"}"#).unwrap();
        assert_eq!(obj["s"], JsonVal::Str("aéb".to_string()));
        assert_eq!(obj["u"], JsonVal::Str("naïve".to_string()));
    }
}
