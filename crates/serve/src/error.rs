//! Typed daemon errors: everything a client can get wrong, with enough
//! structure for the socket front end to render and for tests to match.

use std::fmt;

use crate::session::SessionId;

/// Why a daemon call failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServeError {
    /// The session id has never been opened (or its record was deleted).
    UnknownSession(SessionId),
    /// `Open` for a session id that already exists.
    DuplicateSession(SessionId),
    /// `Append`/`Seal` on a session that is not in the `Open` state.
    SessionNotOpen {
        /// The addressed session.
        session: SessionId,
        /// Its actual state, rendered.
        state: String,
    },
    /// Per-session backpressure: the append would exceed the per-session
    /// buffer cap. The client should drain (seal) or slow down.
    Backpressure {
        /// The addressed session.
        session: SessionId,
        /// Bytes already buffered.
        buffered: u64,
        /// The per-session cap.
        cap: u64,
    },
    /// The session was quarantined (corrupt frames or an unreadable
    /// trace) and accepts no further operations.
    Quarantined {
        /// The addressed session.
        session: SessionId,
        /// Why it was poisoned.
        reason: String,
    },
    /// Global admission control: the fleet is at its live-session cap
    /// and admits no new `Open` until a session goes terminal.
    FleetSaturated {
        /// Live (open/queued/judging) sessions right now.
        live: u64,
        /// The configured cap.
        cap: u64,
    },
    /// Global backpressure: total un-judged ingest bytes buffered across
    /// all sessions are at the fleet cap. The client should wait for
    /// sealed sessions to drain.
    FleetBackpressure {
        /// Bytes currently buffered fleet-wide.
        buffered: u64,
        /// The fleet-wide cap.
        cap: u64,
    },
    /// The checker-stack selection string did not parse.
    BadConfig(String),
    /// A manifest declaration named more functions than the wire cap
    /// admits ([`jinn_replay::MAX_MANIFEST_FUNCTIONS`]).
    ManifestTooLarge {
        /// Functions in the declaration.
        count: u64,
        /// The cap.
        cap: u64,
    },
    /// The daemon is shutting down and accepts no new work.
    ShuttingDown,
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::UnknownSession(s) => write!(f, "unknown session {s}"),
            ServeError::DuplicateSession(s) => write!(f, "session {s} already open"),
            ServeError::SessionNotOpen { session, state } => {
                write!(f, "session {session} is {state}, not open")
            }
            ServeError::Backpressure {
                session,
                buffered,
                cap,
            } => write!(
                f,
                "session {session} backpressure: {buffered} bytes buffered, cap {cap}"
            ),
            ServeError::Quarantined { session, reason } => {
                write!(f, "session {session} quarantined: {reason}")
            }
            ServeError::FleetSaturated { live, cap } => {
                write!(f, "fleet saturated: {live} live sessions, cap {cap}")
            }
            ServeError::FleetBackpressure { buffered, cap } => write!(
                f,
                "fleet backpressure: {buffered} ingest bytes buffered, cap {cap}"
            ),
            ServeError::BadConfig(c) => write!(f, "unknown checker config `{c}`"),
            ServeError::ManifestTooLarge { count, cap } => {
                write!(f, "manifest of {count} functions exceeds cap {cap}")
            }
            ServeError::ShuttingDown => f.write_str("daemon is shutting down"),
        }
    }
}

impl std::error::Error for ServeError {}
