//! The TCP front end: binary frame streams in, line-delimited JSON out.
//!
//! A connection picks its protocol with its first byte:
//!
//! * `J` (the first byte of the `JFRM` stream preamble) — **ingest
//!   mode**. The connection carries a frame stream; every `Seal` is
//!   answered with one JSON line once the session reaches a terminal
//!   state (judged or quarantined), so the client's read is its
//!   end-to-end ingest barrier. A frame-stream error (bad checksum,
//!   oversized length, truncation) answers one JSON error line,
//!   quarantines every still-open session this connection opened, and
//!   closes — the poison stays on this connection's sessions, never the
//!   fleet.
//! * anything else — **query mode**. Each line is one JSON request
//!   (`op`: `query`, `stats`, `rollups`, `fleet`, `wait`, `ping`),
//!   answered with one JSON line. Request lines are capped at
//!   `MAX_QUERY_LINE` bytes — past it the connection gets one error
//!   line and closes, mirroring the ingest side's frame-size cap.

use std::collections::HashSet;
use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use jinn_replay::{Frame, FrameDecoder};

use crate::daemon::DaemonHandle;
use crate::json::{self, JsonObj, JsonVal};
use crate::store::{Query, QueryKind};

/// A listening socket server bound to a [`DaemonHandle`].
pub struct SocketServer {
    addr: SocketAddr,
    accept_thread: Option<JoinHandle<()>>,
    stop: Arc<AtomicBool>,
}

impl SocketServer {
    /// Binds `addr` (use port 0 for an ephemeral port) and starts the
    /// accept loop.
    ///
    /// # Errors
    ///
    /// Any bind error.
    pub fn bind(handle: DaemonHandle, addr: &str) -> std::io::Result<SocketServer> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        listener.set_nonblocking(true)?;
        let stop = Arc::new(AtomicBool::new(false));
        let accept_stop = Arc::clone(&stop);
        let accept_thread = std::thread::Builder::new()
            .name("jinn-serve-accept".to_string())
            .spawn(move || accept_loop(&listener, &handle, &accept_stop))
            .expect("spawn accept loop");
        Ok(SocketServer {
            addr,
            accept_thread: Some(accept_thread),
            stop,
        })
    }

    /// The bound address (for clients when port 0 was requested).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops accepting connections. In-flight connections finish on
    /// their own threads.
    pub fn shutdown(mut self) {
        self.stop_inner();
    }

    fn stop_inner(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
    }
}

impl Drop for SocketServer {
    fn drop(&mut self) {
        self.stop_inner();
    }
}

fn accept_loop(listener: &TcpListener, handle: &DaemonHandle, stop: &Arc<AtomicBool>) {
    while !stop.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _)) => {
                let handle = handle.clone();
                let _ = std::thread::Builder::new()
                    .name("jinn-serve-conn".to_string())
                    .spawn(move || {
                        let _ = serve_connection(stream, &handle);
                    });
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(5));
            }
            Err(_) => break,
        }
    }
}

fn error_line(msg: &str) -> String {
    let mut line = JsonObj::new().bool("ok", false).str("error", msg).build();
    line.push('\n');
    line
}

fn serve_connection(stream: TcpStream, handle: &DaemonHandle) -> std::io::Result<()> {
    let mut first = [0u8; 1];
    // Block until the client commits to a protocol.
    stream.set_nonblocking(false)?;
    let n = stream.peek(&mut first)?;
    if n == 0 {
        return Ok(());
    }
    if first[0] == b'J' {
        serve_ingest(stream, handle)
    } else {
        serve_queries(stream, handle)
    }
}

fn serve_ingest(mut stream: TcpStream, handle: &DaemonHandle) -> std::io::Result<()> {
    let mut decoder = FrameDecoder::new();
    let mut owned: HashSet<u64> = HashSet::new();
    let mut buf = [0u8; 16 * 1024];
    loop {
        let n = match stream.read(&mut buf) {
            Ok(0) => break,
            Ok(n) => n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(e),
        };
        decoder.feed(&buf[..n]);
        loop {
            match decoder.next_frame() {
                Ok(Some(frame)) => {
                    // Manifest frames are tenant-scoped (no session) and
                    // always answered with one JSON line: the discharge
                    // summary on success, the typed error otherwise.
                    if let Frame::Manifest { tenant, functions } = &frame {
                        let line = match handle.declare_manifest(tenant, functions) {
                            Ok(summary) => {
                                let mut l = JsonObj::new()
                                    .bool("ok", true)
                                    .raw("manifest", summary.to_json())
                                    .build();
                                l.push('\n');
                                l
                            }
                            Err(e) => error_line(&e.to_string()),
                        };
                        stream.write_all(line.as_bytes())?;
                        continue;
                    }
                    let is_open = matches!(frame, Frame::Open { .. });
                    let is_seal = matches!(frame, Frame::Seal { .. });
                    let session = frame.session().expect("non-manifest frames have a session");
                    match handle.apply_frame(&frame) {
                        // Own a session only once the daemon admitted
                        // its Open: a rejected duplicate id belongs to
                        // another connection, and this connection's
                        // corruption must never poison it.
                        Ok(()) if is_open => {
                            owned.insert(session);
                        }
                        Ok(()) if is_seal => {
                            let stats = handle.wait_session(session);
                            let line = match stats {
                                Some(s) => {
                                    let mut l = JsonObj::new()
                                        .bool("ok", true)
                                        .raw("stats", s.to_json())
                                        .build();
                                    l.push('\n');
                                    l
                                }
                                None => error_line("session vanished"),
                            };
                            stream.write_all(line.as_bytes())?;
                        }
                        Ok(()) => {}
                        Err(e) => {
                            stream.write_all(error_line(&e.to_string()).as_bytes())?;
                        }
                    }
                }
                Ok(None) => break,
                Err(e) => {
                    // Stream-level corruption: poison this connection's
                    // still-open sessions and drop the connection.
                    let reason = format!("corrupt frame stream: {e}");
                    for id in &owned {
                        handle.quarantine(*id, &reason);
                    }
                    stream.write_all(error_line(&reason).as_bytes())?;
                    return Ok(());
                }
            }
        }
    }
    Ok(())
}

fn get_u64(req: &std::collections::BTreeMap<String, JsonVal>, key: &str) -> Option<u64> {
    req.get(key).and_then(JsonVal::as_u64)
}

fn get_str(req: &std::collections::BTreeMap<String, JsonVal>, key: &str) -> Option<String> {
    req.get(key).and_then(|v| v.as_str().map(str::to_string))
}

fn handle_request(line: &str, handle: &DaemonHandle) -> String {
    let req = match json::parse_object(line) {
        Ok(r) => r,
        Err(e) => return JsonObj::new().bool("ok", false).str("error", &e).build(),
    };
    let op = get_str(&req, "op").unwrap_or_default();
    match op.as_str() {
        "ping" => JsonObj::new()
            .bool("ok", true)
            .str("pong", "jinn-serve")
            .build(),
        "fleet" => {
            let f = handle.fleet();
            let p = handle.pool_stats();
            let m = handle.manifest_stats();
            JsonObj::new()
                .bool("ok", true)
                .num("opened", f.opened)
                .num("judged", f.judged)
                .num("quarantined", f.quarantined)
                .num("aborted", f.aborted)
                .num("live", f.live)
                .num("history_bytes", f.history_bytes)
                .num("retention_bytes", f.retention_bytes)
                .num("purged_sessions", f.purged_sessions)
                .num("total_verdicts", f.total_verdicts)
                .num("total_events_replayed", f.total_events_replayed)
                .num("specialized_sessions", f.specialized_sessions)
                .num("fallback_sessions", f.fallback_sessions)
                .num("streamed_sessions", f.streamed_sessions)
                .num("buffered_bytes_high_water", f.buffered_bytes_high_water)
                .num("pool_built", p.built)
                .num("pool_leases", p.leases)
                .num("pool_lease_high_water", p.lease_high_water)
                .num("manifested_tenants", m.manifested_tenants)
                .num("learning_tenants", m.learning_tenants)
                .num("specialized_pools", m.specialized_pools)
                .build()
        }
        "stats" => match get_u64(&req, "session").and_then(|id| handle.session_stats(id)) {
            Some(s) => JsonObj::new()
                .bool("ok", true)
                .raw("stats", s.to_json())
                .build(),
            None => JsonObj::new()
                .bool("ok", false)
                .str("error", "unknown session")
                .build(),
        },
        "rollups" => match get_u64(&req, "session") {
            Some(id) => JsonObj::new()
                .bool("ok", true)
                .raw(
                    "rollups",
                    json::list(handle.rollups(id).iter().map(|r| r.to_json())),
                )
                .build(),
            None => JsonObj::new()
                .bool("ok", false)
                .str("error", "missing session")
                .build(),
        },
        "wait" => match get_u64(&req, "session").and_then(|id| handle.wait_session(id)) {
            Some(s) => JsonObj::new()
                .bool("ok", true)
                .raw("stats", s.to_json())
                .build(),
            None => JsonObj::new()
                .bool("ok", false)
                .str("error", "unknown session")
                .build(),
        },
        "query" => {
            let kind = match get_str(&req, "kind").as_deref() {
                None | Some("verdicts") => QueryKind::Verdicts,
                Some("events") => QueryKind::Events,
                Some("outcomes") => QueryKind::Outcomes,
                Some(other) => {
                    return JsonObj::new()
                        .bool("ok", false)
                        .str("error", &format!("unknown query kind `{other}`"))
                        .build()
                }
            };
            // Threads are u16 on the wire; a larger filter value must
            // not silently truncate onto some other thread's rows.
            let thread = match get_u64(&req, "thread").map(u16::try_from) {
                None => None,
                Some(Ok(t)) => Some(t),
                Some(Err(_)) => {
                    return JsonObj::new()
                        .bool("ok", false)
                        .str(
                            "error",
                            &format!("thread filter out of range (max {})", u16::MAX),
                        )
                        .build()
                }
            };
            let query = Query {
                kind,
                session: get_u64(&req, "session"),
                tenant: get_str(&req, "tenant"),
                config: get_str(&req, "config"),
                function: get_str(&req, "function"),
                machine: get_str(&req, "machine"),
                entity: get_str(&req, "entity"),
                thread,
                min_index: get_u64(&req, "min_index"),
                max_index: get_u64(&req, "max_index"),
                cursor: get_u64(&req, "cursor"),
                limit: get_u64(&req, "limit").unwrap_or(0) as usize,
            };
            let page = handle.query(&query);
            JsonObj::new()
                .bool("ok", true)
                .num("count", page.items.len() as u64)
                .raw("items", json::list(page.items.iter().map(|i| i.to_json())))
                .opt_num("next_cursor", page.next_cursor)
                .build()
        }
        other => JsonObj::new()
            .bool("ok", false)
            .str("error", &format!("unknown op `{other}`"))
            .build(),
    }
}

/// Cap on one query-mode request line. The ingest side caps frames at
/// `MAX_FRAME_PAYLOAD` so a hostile length can't allocate unboundedly;
/// an endless JSON line without a newline gets the same treatment.
const MAX_QUERY_LINE: u64 = 1024 * 1024;

fn serve_queries(stream: TcpStream, handle: &DaemonHandle) -> std::io::Result<()> {
    let mut writer = stream.try_clone()?;
    let mut reader = BufReader::new(stream);
    let mut buf = Vec::new();
    loop {
        buf.clear();
        let n = reader
            .by_ref()
            .take(MAX_QUERY_LINE + 1)
            .read_until(b'\n', &mut buf)?;
        if n == 0 {
            break;
        }
        if buf.last() != Some(&b'\n') && n as u64 > MAX_QUERY_LINE {
            writer.write_all(error_line("request line too long").as_bytes())?;
            break;
        }
        let line = String::from_utf8_lossy(&buf);
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let mut response = handle_request(line, handle);
        response.push('\n');
        writer.write_all(response.as_bytes())?;
    }
    Ok(())
}
