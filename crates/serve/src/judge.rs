//! The worker side of ingest: parse a sealed session's trace bytes,
//! re-judge them under the session's checker stack, and condense the
//! results into history rows for the store.
//!
//! One replay per configuration; the first configuration runs with a
//! live [`Recorder`] wired in ([`jinn_replay::replay_trace_observed`])
//! so the re-judged execution's events can be summarized for the query
//! API. The session's FSM-transition stream is additionally re-applied
//! through a leased set of pooled lock-free [`AtomicStore`] engines
//! ([`jinn_fsm::AtomicEnginePool`]) to produce per-machine entity
//! rollups without rebuilding compiled machines per session — and
//! without any mutex on the rollup path, so concurrent ingest workers
//! never convoy on a pool engine's interior lock.
//!
//! [`AtomicStore`]: jinn_fsm::AtomicStore

use std::collections::{BTreeSet, HashMap};
use std::sync::Arc;

use jinn_fsm::{AtomicEnginePool, AtomicStore, Engine, EngineLease, TransitionOutcome};
use jinn_obs::{EventKind, Recorder, TraceEvent};
use jinn_replay::{replay_trace, replay_trace_observed, ReplayConfig, Trace};

use crate::manifest::SpecializedPool;
use crate::session::{
    DischargeStats, EventSummary, MachineRollup, ObsCounters, OutcomeRec, SessionId, VerdictRec,
};

/// Everything one judged session contributes to the store.
#[derive(Debug, Clone)]
pub struct JudgeOutput {
    /// The traced program's name.
    pub program: String,
    /// Per-config overall outcome.
    pub outcomes: Vec<OutcomeRec>,
    /// Every checker violation, per config, in detection order.
    pub verdicts: Vec<VerdictRec>,
    /// Event summaries from the first config's recorder (newest
    /// `max_events`).
    pub events: Vec<EventSummary>,
    /// Re-judged events beyond the summary cap.
    pub events_dropped: u64,
    /// Per-machine rollups from the pooled engines.
    pub rollups: Vec<MachineRollup>,
    /// Recorder coverage of the *recorded* trace (its `obs.*` meta).
    pub obs: ObsCounters,
    /// Static-discharge audit against the trace's own call-site set.
    pub discharge: DischargeStats,
    /// Total JNI calls re-issued across configs.
    pub events_replayed: u64,
    /// Total replay divergences across configs.
    pub divergences: u64,
    /// The trace's own call-site set (drives manifest learning).
    pub called_functions: BTreeSet<String>,
    /// Whether the rollups ran on a manifest-specialized pool.
    pub specialized: bool,
    /// Whether a manifested tenant's trace called outside its manifest
    /// and was re-judged on the full pool instead.
    pub discharge_fallback: bool,
}

/// Reads the recorded trace's `obs.*` metadata (written by
/// `jinn_replay::append_obs_events` at record time).
pub fn obs_counters(trace: &Trace) -> ObsCounters {
    let num = |key: &str| {
        trace
            .meta_value(key)
            .and_then(|v| v.parse::<u64>().ok())
            .unwrap_or(0)
    };
    ObsCounters {
        dropped: num("obs.dropped"),
        suppressed: num("obs.suppressed"),
        sampled: trace.meta_value("obs.sampled") == Some("true"),
        policy_epoch: num("obs.policy_epoch"),
    }
}

/// The checker records condensed transition labels; the spec machines
/// use the full names. Map the condensed forms back before re-applying
/// through a spec-built engine.
fn transition_aliases(name: &str) -> &'static [&'static str] {
    match name {
        "Use" => &["UseAfterRelease"],
        _ => &[],
    }
}

/// The static-discharge audit row for one trace, shared by the
/// buffered and streaming judges. Takes the trace's call-site set
/// precomputed so callers that already hold one (the buffered judge
/// computes it for pool selection; the streaming judge accumulates it
/// incrementally during ingest) never walk the events again at seal.
pub(crate) fn discharge_stats(program: &str, called: &BTreeSet<String>) -> DischargeStats {
    let manifest = jinn_core::WorkloadManifest::new(program, called.iter().map(String::as_str));
    let report = jinn_core::discharge(&jinn_spec::machines(), &manifest);
    DischargeStats {
        called_functions: report.manifest_functions as u64,
        total_transitions: report.total_transitions() as u64,
        discharged: report.total_discharged() as u64,
        inactive_machines: report
            .inactive_machines()
            .iter()
            .map(|m| m.to_string())
            .collect(),
    }
}

pub(crate) fn summarize(session: SessionId, ev: &TraceEvent) -> EventSummary {
    let (label, function, machine, entity, failed) = match &ev.kind {
        EventKind::JniEnter { func } => ("jni-enter", Some(func.to_string()), None, None, false),
        EventKind::JniExit { func, failed, .. } => {
            ("jni-exit", Some(func.to_string()), None, None, *failed)
        }
        EventKind::NativeEnter { method } => {
            ("native-enter", Some(method.to_string()), None, None, false)
        }
        EventKind::NativeExit { method, failed, .. } => {
            ("native-exit", Some(method.to_string()), None, None, *failed)
        }
        EventKind::FsmTransition {
            machine,
            outcome,
            entity,
            ..
        } => (
            "fsm-transition",
            None,
            Some(machine.to_string()),
            entity.as_ref().map(|e| e.0.to_string()),
            matches!(outcome, jinn_obs::FsmOutcome::Error),
        ),
        EventKind::GcSafepoint { .. } => ("gc-safepoint", None, None, None, false),
        EventKind::Gc { .. } => ("gc", None, None, None, false),
        EventKind::PinAcquire { .. } => ("pin-acquire", None, None, None, false),
        EventKind::PinRelease { ok, .. } => ("pin-release", None, None, None, !*ok),
        EventKind::Verdict {
            machine, function, ..
        } => (
            "verdict",
            Some(function.to_string()),
            Some(machine.to_string()),
            None,
            true,
        ),
    };
    EventSummary {
        session,
        index: ev.seq,
        thread: ev.thread,
        label: label.to_string(),
        function,
        machine,
        entity,
        failed,
    }
}

/// Re-applies the session's transition stream through pooled compiled
/// engines, producing one rollup per machine that saw traffic.
///
/// Re-exported at the crate root as `rollup_events` so the discharge
/// benchmark can drive the daemon's exact rollup path against an
/// arbitrary pool.
///
/// Entity keys are dense *per machine*: each engine sees keys `0..n`
/// for its own entities, so a store's slab growth tracks the machine's
/// entity count, not the session-global one. Transitions the spec
/// machine does not recognise (even after aliasing) are tallied as
/// `unknown_transitions` instead of inflating the applied count.
pub fn rollup_events(
    pool: &Arc<AtomicEnginePool<u64>>,
    events: &[TraceEvent],
) -> Vec<MachineRollup> {
    let mut lease = pool.lease();
    rollup_events_on_lease(&mut lease, events)
}

/// [`rollup_events`] on an already-held lease. The streaming judge
/// keeps one lease alive from session `Open` to `Seal` and rolls up
/// the recorder's final ring on it at seal, so it must not re-lease
/// (that would double-count pool concurrency and could build a second
/// engine set mid-session).
pub fn rollup_events_on_lease(
    lease: &mut EngineLease<u64, AtomicStore<u64>>,
    events: &[TraceEvent],
) -> Vec<MachineRollup> {
    // Hoisted once per judge call: machine name -> engine index. The
    // per-event linear scan this replaces cost O(machines) per
    // transition.
    let index_of: HashMap<String, usize> = lease
        .iter()
        .enumerate()
        .map(|(i, e)| (e.spec().name().to_string(), i))
        .collect();
    let mut keys: HashMap<(usize, String), u64> = HashMap::new();
    let mut next_key: Vec<u64> = vec![0; lease.len()];
    // machine -> (applied, errors, unknown)
    let mut counts: HashMap<String, (u64, u64, u64)> = HashMap::new();
    for ev in events {
        let EventKind::FsmTransition {
            machine,
            transition,
            entity: Some(entity),
            ..
        } = &ev.kind
        else {
            continue;
        };
        let Some(&idx) = index_of.get(&**machine) else {
            continue;
        };
        let key = *keys.entry((idx, entity.0.to_string())).or_insert_with(|| {
            let k = next_key[idx];
            next_key[idx] += 1;
            k
        });
        let engine = &mut lease[idx];
        let mut outcome = engine.try_apply_named(&key, transition);
        if outcome.is_err() {
            for alias in transition_aliases(transition) {
                outcome = engine.try_apply_named(&key, alias);
                if outcome.is_ok() {
                    break;
                }
            }
        }
        let entry = counts.entry(machine.to_string()).or_default();
        match outcome {
            Ok(o) => {
                entry.0 += 1;
                if matches!(o, TransitionOutcome::Error(_)) {
                    entry.1 += 1;
                }
            }
            Err(_) => entry.2 += 1,
        }
    }
    let mut out: Vec<MachineRollup> = counts
        .into_iter()
        .map(|(machine, (transitions, errors, unknown_transitions))| {
            let entities = index_of
                .get(machine.as_str())
                .map_or(0, |&i| lease[i].len() as u64);
            MachineRollup {
                machine,
                transitions,
                entities,
                errors,
                unknown_transitions,
            }
        })
        .collect();
    out.sort_by(|a, b| a.machine.cmp(&b.machine));
    out
}

/// Parses and re-judges one sealed session.
///
/// When the tenant has a manifest, `specialized` carries its pool: a
/// trace whose own call-site set the manifest covers rolls up there;
/// one that calls outside it falls back to the full `pool` and is
/// flagged (`JudgeOutput::discharge_fallback`). Verdicts come from the
/// replay either way — the pool choice never affects them.
///
/// # Errors
///
/// A quarantine reason: the trace failed to parse or a replay was
/// structurally impossible. The caller poisons the session.
#[allow(clippy::too_many_arguments)]
pub fn judge(
    bytes: &[u8],
    session: SessionId,
    tenant: &str,
    configs: &[ReplayConfig],
    pool: &Arc<AtomicEnginePool<u64>>,
    specialized: Option<&SpecializedPool>,
    recorder_ring: usize,
    max_events: usize,
) -> Result<JudgeOutput, String> {
    let trace = Trace::parse(bytes).map_err(|e| format!("unreadable trace: {e}"))?;
    judge_trace(
        &trace,
        session,
        tenant,
        configs,
        pool,
        specialized,
        recorder_ring,
        max_events,
    )
}

/// [`judge`] for an already-parsed trace. The streaming judge's
/// fallback valve lands here: when a live session turns out to be
/// anomalous (overlapping activations, manifest escape discovered
/// mid-stream, …) it discards the speculative outcome and re-judges
/// the retained records buffered — without re-decoding bytes it
/// already decoded once.
#[allow(clippy::too_many_arguments)]
pub fn judge_trace(
    trace: &Trace,
    session: SessionId,
    tenant: &str,
    configs: &[ReplayConfig],
    pool: &Arc<AtomicEnginePool<u64>>,
    specialized: Option<&SpecializedPool>,
    recorder_ring: usize,
    max_events: usize,
) -> Result<JudgeOutput, String> {
    let obs = obs_counters(trace);
    let program = trace.program().to_string();
    let called_functions = trace.called_functions();
    let (rollup_pool, specialized_hit, discharge_fallback) = match specialized {
        Some(sp) if sp.covers(&called_functions) => (Arc::clone(sp.pool()), true, false),
        Some(_) => (Arc::clone(pool), false, true),
        None => (Arc::clone(pool), false, false),
    };
    let discharge = discharge_stats(&program, &called_functions);

    let mut outcomes = Vec::with_capacity(configs.len());
    let mut verdicts = Vec::new();
    let mut events = Vec::new();
    let mut events_dropped = 0u64;
    let mut rollups = Vec::new();
    let mut events_replayed = 0u64;
    let mut divergences = 0u64;

    for (i, config) in configs.iter().enumerate() {
        let recorder = (i == 0).then(|| Recorder::enabled(recorder_ring));
        let outcome = match &recorder {
            Some(rec) => replay_trace_observed(trace, config, rec),
            None => replay_trace(trace, config),
        }
        .map_err(|e| format!("replay under {} failed: {e}", config.label()))?;

        events_replayed += outcome.events_replayed;
        divergences += outcome.divergences;
        verdicts.extend(outcome.violations.iter().map(|v| VerdictRec {
            session,
            tenant: tenant.to_string(),
            config: config.label(),
            machine: v.machine.to_string(),
            error_state: v.error_state.to_string(),
            function: v.function.clone(),
            message: v.message.clone(),
        }));
        outcomes.push(OutcomeRec {
            session,
            config: config.label(),
            behavior: outcome.behavior.to_string(),
            message: outcome.message.clone(),
            events_replayed: outcome.events_replayed,
            divergences: outcome.divergences,
        });

        if let Some(rec) = recorder {
            let all = rec.events();
            events_dropped = rec.dropped_events();
            rollups = rollup_events(&rollup_pool, &all);
            let skip = all.len().saturating_sub(max_events);
            events_dropped += skip as u64;
            events = all
                .iter()
                .skip(skip)
                .map(|e| summarize(session, e))
                .collect();
        }
    }

    Ok(JudgeOutput {
        program,
        outcomes,
        verdicts,
        events,
        events_dropped,
        rollups,
        obs,
        discharge,
        events_replayed,
        divergences,
        called_functions,
        specialized: specialized_hit,
        discharge_fallback,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use jinn_fsm::EnginePool;
    use jinn_replay::{program_by_name, record_program};

    fn corpus_trace(name: &str) -> Vec<u8> {
        record_program(&program_by_name(name).expect("known program"))
    }

    #[test]
    fn judging_figure1_yields_a_jinn_verdict() {
        let bytes = corpus_trace("LocalRefDangling");
        let pool = EnginePool::new(jinn_spec::machines());
        let configs = vec![ReplayConfig::parse("jinn").unwrap()];
        let out = judge(&bytes, 9, "acme", &configs, &pool, None, 4096, 256).expect("judge");
        assert_eq!(out.program, "LocalRefDangling");
        assert!(!out.specialized && !out.discharge_fallback);
        assert!(
            !out.called_functions.is_empty(),
            "trace call-site set captured"
        );
        assert!(
            out.verdicts
                .iter()
                .any(|v| v.machine == "local-reference" && v.session == 9),
            "expected a local-reference verdict: {:?}",
            out.verdicts
        );
        assert_eq!(out.outcomes.len(), 1);
        assert_eq!(out.outcomes[0].behavior, "exception");
        assert!(!out.events.is_empty(), "recorder summaries present");
        assert!(
            out.rollups.iter().any(|r| r.machine == "local-reference"),
            "rollups: {:?}",
            out.rollups
        );
    }

    #[test]
    fn summary_cap_keeps_newest_events() {
        let bytes = corpus_trace("LocalRefDangling");
        let pool = EnginePool::new(jinn_spec::machines());
        let configs = vec![ReplayConfig::parse("jinn").unwrap()];
        let full = judge(&bytes, 1, "t", &configs, &pool, None, 4096, 10_000).expect("judge");
        let capped = judge(&bytes, 1, "t", &configs, &pool, None, 4096, 4).expect("judge");
        assert_eq!(capped.events.len(), 4);
        assert_eq!(
            capped.events_dropped,
            full.events.len() as u64 - 4 + full.events_dropped
        );
        // The kept summaries are the newest ones.
        let tail: Vec<u64> = full.events[full.events.len() - 4..]
            .iter()
            .map(|e| e.index)
            .collect();
        let got: Vec<u64> = capped.events.iter().map(|e| e.index).collect();
        assert_eq!(got, tail);
    }

    #[test]
    fn unreadable_bytes_are_a_quarantine_reason() {
        let pool = EnginePool::new(jinn_spec::machines());
        let configs = vec![ReplayConfig::parse("jinn").unwrap()];
        let err = judge(b"not a trace", 1, "t", &configs, &pool, None, 64, 16).unwrap_err();
        assert!(err.contains("unreadable trace"), "{err}");
    }

    fn fsm_event(seq: u64, machine: &str, transition: &str, entity: &str) -> TraceEvent {
        TraceEvent {
            seq,
            micros: seq,
            thread: 0,
            kind: EventKind::FsmTransition {
                machine: Arc::from(machine),
                transition: Arc::from(transition),
                outcome: jinn_obs::FsmOutcome::Moved,
                entity: Some(jinn_obs::EntityTag::new(entity)),
            },
        }
    }

    #[test]
    fn rollup_entities_are_dense_per_machine() {
        // Three global refs and one local ref, interleaved so a shared
        // counter would hand the local-reference engine key 2 instead
        // of 0. Per-machine Engine::len must equal each machine's OWN
        // distinct-entity count.
        let events = vec![
            fsm_event(0, "global-reference", "Acquire", "g0"),
            fsm_event(1, "global-reference", "Acquire", "g1"),
            fsm_event(2, "local-reference", "Acquire", "l0"),
            fsm_event(3, "global-reference", "Acquire", "g2"),
            fsm_event(4, "local-reference", "Release", "l0"),
        ];
        let pool = EnginePool::new(jinn_spec::machines());
        let rollups = rollup_events(&pool, &events);
        let by_name = |n: &str| {
            rollups
                .iter()
                .find(|r| r.machine == n)
                .unwrap_or_else(|| panic!("rollup for {n}: {rollups:?}"))
        };
        assert_eq!(by_name("global-reference").entities, 3);
        assert_eq!(by_name("local-reference").entities, 1);
        assert_eq!(by_name("local-reference").transitions, 2);
        assert_eq!(
            rollups.iter().map(|r| r.unknown_transitions).sum::<u64>(),
            0
        );
    }

    #[test]
    fn unrecognised_transitions_count_as_unknown_not_applied() {
        let events = vec![
            fsm_event(0, "global-reference", "Acquire", "g0"),
            fsm_event(1, "global-reference", "NoSuchTransition", "g0"),
            // The "Use" alias still resolves to UseAfterRelease.
            fsm_event(2, "local-reference", "Acquire", "l0"),
            fsm_event(3, "local-reference", "Release", "l0"),
            fsm_event(4, "local-reference", "Use", "l0"),
        ];
        let pool = EnginePool::new(jinn_spec::machines());
        let rollups = rollup_events(&pool, &events);
        let global = rollups.iter().find(|r| r.machine == "global-reference");
        let global = global.expect("global rollup");
        assert_eq!(global.transitions, 1, "only the applied transition counts");
        assert_eq!(global.unknown_transitions, 1);
        let local = rollups.iter().find(|r| r.machine == "local-reference");
        let local = local.expect("local rollup");
        assert_eq!(local.transitions, 3, "aliased Use applies");
        assert_eq!(local.unknown_transitions, 0);
        assert_eq!(local.errors, 1, "UseAfterRelease lands in an error state");
    }

    #[test]
    fn covering_manifest_specializes_and_lying_manifest_falls_back() {
        let bytes = corpus_trace("LocalRefDangling");
        let pool = EnginePool::new(jinn_spec::machines());
        let configs = vec![ReplayConfig::parse("jinn").unwrap()];
        let baseline = judge(&bytes, 1, "t", &configs, &pool, None, 4096, 256).expect("judge");

        let honest = SpecializedPool::for_functions(
            "honest",
            baseline.called_functions.iter().map(String::as_str),
        );
        let fast = judge(&bytes, 2, "t", &configs, &pool, Some(&honest), 4096, 256).expect("judge");
        assert!(fast.specialized && !fast.discharge_fallback);

        let lying = SpecializedPool::for_functions("lying", ["GetVersion"]);
        let slow = judge(&bytes, 3, "t", &configs, &pool, Some(&lying), 4096, 256).expect("judge");
        assert!(!slow.specialized && slow.discharge_fallback);

        // The pool choice never affects verdicts.
        let key = |o: &JudgeOutput| {
            let mut v: Vec<(String, String, String)> = o
                .verdicts
                .iter()
                .map(|v| {
                    (
                        v.config.to_string(),
                        v.machine.clone(),
                        v.error_state.clone(),
                    )
                })
                .collect();
            v.sort();
            v
        };
        assert_eq!(key(&baseline), key(&fast));
        assert_eq!(key(&baseline), key(&slow));
        // And the specialized rollups agree with the full pool's on the
        // machines both carry.
        for r in &fast.rollups {
            let base = baseline.rollups.iter().find(|b| b.machine == r.machine);
            let base = base.expect("machine present in baseline");
            assert_eq!((r.transitions, r.entities, r.errors), {
                (base.transitions, base.entities, base.errors)
            });
        }
    }
}
