//! The worker side of ingest: parse a sealed session's trace bytes,
//! re-judge them under the session's checker stack, and condense the
//! results into history rows for the store.
//!
//! One replay per configuration; the first configuration runs with a
//! live [`Recorder`] wired in ([`jinn_replay::replay_trace_observed`])
//! so the re-judged execution's events can be summarized for the query
//! API. The session's FSM-transition stream is additionally re-applied
//! through a leased set of pooled lock-free [`AtomicStore`] engines
//! ([`jinn_fsm::AtomicEnginePool`]) to produce per-machine entity
//! rollups without rebuilding compiled machines per session — and
//! without any mutex on the rollup path, so concurrent ingest workers
//! never convoy on a pool engine's interior lock.
//!
//! [`AtomicStore`]: jinn_fsm::AtomicStore

use std::collections::HashMap;
use std::sync::Arc;

use jinn_fsm::{AtomicEnginePool, Engine, TransitionOutcome};
use jinn_obs::{EventKind, Recorder, TraceEvent};
use jinn_replay::{replay_trace, replay_trace_observed, trace_discharge, ReplayConfig, Trace};

use crate::session::{
    DischargeStats, EventSummary, MachineRollup, ObsCounters, OutcomeRec, SessionId, VerdictRec,
};

/// Everything one judged session contributes to the store.
#[derive(Debug, Clone)]
pub struct JudgeOutput {
    /// The traced program's name.
    pub program: String,
    /// Per-config overall outcome.
    pub outcomes: Vec<OutcomeRec>,
    /// Every checker violation, per config, in detection order.
    pub verdicts: Vec<VerdictRec>,
    /// Event summaries from the first config's recorder (newest
    /// `max_events`).
    pub events: Vec<EventSummary>,
    /// Re-judged events beyond the summary cap.
    pub events_dropped: u64,
    /// Per-machine rollups from the pooled engines.
    pub rollups: Vec<MachineRollup>,
    /// Recorder coverage of the *recorded* trace (its `obs.*` meta).
    pub obs: ObsCounters,
    /// Static-discharge audit against the trace's own call-site set.
    pub discharge: DischargeStats,
    /// Total JNI calls re-issued across configs.
    pub events_replayed: u64,
    /// Total replay divergences across configs.
    pub divergences: u64,
}

/// Reads the recorded trace's `obs.*` metadata (written by
/// `jinn_replay::append_obs_events` at record time).
pub fn obs_counters(trace: &Trace) -> ObsCounters {
    let num = |key: &str| {
        trace
            .meta_value(key)
            .and_then(|v| v.parse::<u64>().ok())
            .unwrap_or(0)
    };
    ObsCounters {
        dropped: num("obs.dropped"),
        suppressed: num("obs.suppressed"),
        sampled: trace.meta_value("obs.sampled") == Some("true"),
        policy_epoch: num("obs.policy_epoch"),
    }
}

/// The checker records condensed transition labels; the spec machines
/// use the full names. Map the condensed forms back before re-applying
/// through a spec-built engine.
fn transition_aliases(name: &str) -> &'static [&'static str] {
    match name {
        "Use" => &["UseAfterRelease"],
        _ => &[],
    }
}

fn summarize(session: SessionId, ev: &TraceEvent) -> EventSummary {
    let (label, function, machine, entity, failed) = match &ev.kind {
        EventKind::JniEnter { func } => ("jni-enter", Some(func.to_string()), None, None, false),
        EventKind::JniExit { func, failed, .. } => {
            ("jni-exit", Some(func.to_string()), None, None, *failed)
        }
        EventKind::NativeEnter { method } => {
            ("native-enter", Some(method.to_string()), None, None, false)
        }
        EventKind::NativeExit { method, failed, .. } => {
            ("native-exit", Some(method.to_string()), None, None, *failed)
        }
        EventKind::FsmTransition {
            machine,
            outcome,
            entity,
            ..
        } => (
            "fsm-transition",
            None,
            Some(machine.to_string()),
            entity.as_ref().map(|e| e.0.to_string()),
            matches!(outcome, jinn_obs::FsmOutcome::Error),
        ),
        EventKind::GcSafepoint { .. } => ("gc-safepoint", None, None, None, false),
        EventKind::Gc { .. } => ("gc", None, None, None, false),
        EventKind::PinAcquire { .. } => ("pin-acquire", None, None, None, false),
        EventKind::PinRelease { ok, .. } => ("pin-release", None, None, None, !*ok),
        EventKind::Verdict {
            machine, function, ..
        } => (
            "verdict",
            Some(function.to_string()),
            Some(machine.to_string()),
            None,
            true,
        ),
    };
    EventSummary {
        session,
        index: ev.seq,
        thread: ev.thread,
        label: label.to_string(),
        function,
        machine,
        entity,
        failed,
    }
}

/// Re-applies the session's transition stream through pooled compiled
/// engines, producing one rollup per machine that saw traffic.
fn rollup(pool: &Arc<AtomicEnginePool<u64>>, events: &[TraceEvent]) -> Vec<MachineRollup> {
    let mut lease = pool.lease();
    let mut keys: HashMap<(usize, String), u64> = HashMap::new();
    let mut next_key = 0u64;
    let mut counts: HashMap<String, (u64, u64)> = HashMap::new(); // machine -> (transitions, errors)
    for ev in events {
        let EventKind::FsmTransition {
            machine,
            transition,
            entity: Some(entity),
            ..
        } = &ev.kind
        else {
            continue;
        };
        // Find the machine's engine index first (so entity keys are
        // per-machine dense).
        let Some(idx) = lease.iter().position(|e| e.spec().name() == &**machine) else {
            continue;
        };
        let key = *keys.entry((idx, entity.0.to_string())).or_insert_with(|| {
            let k = next_key;
            next_key += 1;
            k
        });
        let engine = &mut lease[idx];
        let mut outcome = engine.try_apply_named(&key, transition);
        if outcome.is_err() {
            for alias in transition_aliases(transition) {
                outcome = engine.try_apply_named(&key, alias);
                if outcome.is_ok() {
                    break;
                }
            }
        }
        let entry = counts.entry(machine.to_string()).or_default();
        entry.0 += 1;
        if matches!(outcome, Ok(TransitionOutcome::Error(_))) {
            entry.1 += 1;
        }
    }
    let mut out: Vec<MachineRollup> = counts
        .into_iter()
        .map(|(machine, (transitions, errors))| {
            let entities = lease
                .iter()
                .find(|e| e.spec().name() == machine)
                .map_or(0, |e| e.len() as u64);
            MachineRollup {
                machine,
                transitions,
                entities,
                errors,
            }
        })
        .collect();
    out.sort_by(|a, b| a.machine.cmp(&b.machine));
    out
}

/// Parses and re-judges one sealed session.
///
/// # Errors
///
/// A quarantine reason: the trace failed to parse or a replay was
/// structurally impossible. The caller poisons the session.
pub fn judge(
    bytes: &[u8],
    session: SessionId,
    tenant: &str,
    configs: &[ReplayConfig],
    pool: &Arc<AtomicEnginePool<u64>>,
    recorder_ring: usize,
    max_events: usize,
) -> Result<JudgeOutput, String> {
    let trace = Trace::parse(bytes).map_err(|e| format!("unreadable trace: {e}"))?;
    let obs = obs_counters(&trace);
    let program = trace.program().to_string();
    let report = trace_discharge(&trace);
    let discharge = DischargeStats {
        called_functions: report.manifest_functions as u64,
        total_transitions: report.total_transitions() as u64,
        discharged: report.total_discharged() as u64,
        inactive_machines: report
            .inactive_machines()
            .iter()
            .map(|m| m.to_string())
            .collect(),
    };

    let mut outcomes = Vec::with_capacity(configs.len());
    let mut verdicts = Vec::new();
    let mut events = Vec::new();
    let mut events_dropped = 0u64;
    let mut rollups = Vec::new();
    let mut events_replayed = 0u64;
    let mut divergences = 0u64;

    for (i, config) in configs.iter().enumerate() {
        let recorder = (i == 0).then(|| Recorder::enabled(recorder_ring));
        let outcome = match &recorder {
            Some(rec) => replay_trace_observed(&trace, config, rec),
            None => replay_trace(&trace, config),
        }
        .map_err(|e| format!("replay under {} failed: {e}", config.label()))?;

        events_replayed += outcome.events_replayed;
        divergences += outcome.divergences;
        verdicts.extend(outcome.violations.iter().map(|v| VerdictRec {
            session,
            tenant: tenant.to_string(),
            config: config.label(),
            machine: v.machine.to_string(),
            error_state: v.error_state.to_string(),
            function: v.function.clone(),
            message: v.message.clone(),
        }));
        outcomes.push(OutcomeRec {
            session,
            config: config.label(),
            behavior: outcome.behavior.to_string(),
            message: outcome.message.clone(),
            events_replayed: outcome.events_replayed,
            divergences: outcome.divergences,
        });

        if let Some(rec) = recorder {
            let all = rec.events();
            events_dropped = rec.dropped_events();
            rollups = rollup(pool, &all);
            let skip = all.len().saturating_sub(max_events);
            events_dropped += skip as u64;
            events = all
                .iter()
                .skip(skip)
                .map(|e| summarize(session, e))
                .collect();
        }
    }

    Ok(JudgeOutput {
        program,
        outcomes,
        verdicts,
        events,
        events_dropped,
        rollups,
        obs,
        discharge,
        events_replayed,
        divergences,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use jinn_fsm::EnginePool;
    use jinn_replay::{program_by_name, record_program};

    fn corpus_trace(name: &str) -> Vec<u8> {
        record_program(&program_by_name(name).expect("known program"))
    }

    #[test]
    fn judging_figure1_yields_a_jinn_verdict() {
        let bytes = corpus_trace("LocalRefDangling");
        let pool = EnginePool::new(jinn_spec::machines());
        let configs = vec![ReplayConfig::parse("jinn").unwrap()];
        let out = judge(&bytes, 9, "acme", &configs, &pool, 4096, 256).expect("judge");
        assert_eq!(out.program, "LocalRefDangling");
        assert!(
            out.verdicts
                .iter()
                .any(|v| v.machine == "local-reference" && v.session == 9),
            "expected a local-reference verdict: {:?}",
            out.verdicts
        );
        assert_eq!(out.outcomes.len(), 1);
        assert_eq!(out.outcomes[0].behavior, "exception");
        assert!(!out.events.is_empty(), "recorder summaries present");
        assert!(
            out.rollups.iter().any(|r| r.machine == "local-reference"),
            "rollups: {:?}",
            out.rollups
        );
    }

    #[test]
    fn summary_cap_keeps_newest_events() {
        let bytes = corpus_trace("LocalRefDangling");
        let pool = EnginePool::new(jinn_spec::machines());
        let configs = vec![ReplayConfig::parse("jinn").unwrap()];
        let full = judge(&bytes, 1, "t", &configs, &pool, 4096, 10_000).expect("judge");
        let capped = judge(&bytes, 1, "t", &configs, &pool, 4096, 4).expect("judge");
        assert_eq!(capped.events.len(), 4);
        assert_eq!(
            capped.events_dropped,
            full.events.len() as u64 - 4 + full.events_dropped
        );
        // The kept summaries are the newest ones.
        let tail: Vec<u64> = full.events[full.events.len() - 4..]
            .iter()
            .map(|e| e.index)
            .collect();
        let got: Vec<u64> = capped.events.iter().map(|e| e.index).collect();
        assert_eq!(got, tail);
    }

    #[test]
    fn unreadable_bytes_are_a_quarantine_reason() {
        let pool = EnginePool::new(jinn_spec::machines());
        let configs = vec![ReplayConfig::parse("jinn").unwrap()];
        let err = judge(b"not a trace", 1, "t", &configs, &pool, 64, 16).unwrap_err();
        assert!(err.contains("unreadable trace"), "{err}");
    }
}
