//! Workload-adaptive discharge: the tenant→manifest registry and the
//! manifest-keyed cache of specialized engine pools.
//!
//! The static discharge pass (`jinn_core::discharge`) proves which
//! machine transitions a workload's call-site manifest can never
//! trigger. This module closes the loop for the daemon: a tenant
//! *declares* its manifest (the `Manifest` ingest frame /
//! [`crate::DaemonHandle::declare_manifest`]) — or the daemon *learns*
//! one from the union of the tenant's first K judged sessions — and
//! subsequent sessions roll up through a [`SpecializedPool`] compiled
//! with the provably-dead transitions discharged
//! (`CompiledMachine::compile_discharged`) and no engines at all for
//! fully-inactive machines.
//!
//! ## Soundness and the fallback path
//!
//! Verdicts never depend on the pool: re-judging replays the trace
//! under the full checker stack regardless. The specialized pool only
//! carries the per-machine entity rollups — and a session is admitted
//! to it **only after** its trace's own call-site set is checked
//! against the manifest ([`SpecializedPool::covers`]). A trace that
//! calls outside its tenant's manifest is rolled up on the full pool
//! instead and flagged (`SessionStats::discharge_fallback`), so a
//! lying manifest costs its tenant the specialization, never a
//! verdict. Learned manifests widen on fallback (the union grows and
//! the pool is rebuilt); declared manifests stay as declared and keep
//! flagging.
//!
//! ## Why a specialized pool is cheaper
//!
//! Every lease drop clears the engines — for the lock-free
//! `AtomicStore` that walks every allocated state segment. A
//! fleet-shared full pool's engines accumulate the all-tenant
//! high-water footprint (every machine, sized by the largest session
//! they ever served); a manifest-keyed pool receives only
//! manifest-compliant traffic, so inactive machines need no engine and
//! untouched machines never allocate a segment. Pools are cached by
//! the manifest's function set, so tenants with identical manifests
//! share one pool.

use std::collections::{BTreeSet, HashMap};
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};

use jinn_core::{discharge, WorkloadManifest};
use jinn_fsm::{AtomicEnginePool, AtomicStore, CompiledMachine, EnginePool};

use crate::json::{self, JsonObj};

/// How a tenant's manifest came to exist.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ManifestSource {
    /// The tenant declared it (frame or API).
    Declared,
    /// The daemon learned it from the tenant's first sessions.
    Learned,
}

impl ManifestSource {
    /// Stable string form for JSON surfaces.
    pub fn as_str(self) -> &'static str {
        match self {
            ManifestSource::Declared => "declared",
            ManifestSource::Learned => "learned",
        }
    }
}

/// A specialized engine pool compiled for one call-site manifest:
/// engines only for machines the manifest leaves active, each sharing
/// a pre-compiled discharged transition table across every pooled set.
pub struct SpecializedPool {
    functions: BTreeSet<String>,
    pool: Arc<AtomicEnginePool<u64>>,
    unknown_functions: Vec<String>,
    inactive_machines: Vec<String>,
    total_transitions: u64,
    discharged: u64,
    active_machines: u64,
}

impl SpecializedPool {
    /// Runs the discharge pass for `functions` and compiles the pool.
    /// Machines whose every transition is discharged get no engine;
    /// the rest share one `compile_discharged` table per machine.
    pub fn for_functions<I, S>(name: &str, functions: I) -> SpecializedPool
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        let manifest = WorkloadManifest::new(name, functions);
        let machines = jinn_spec::machines();
        let report = discharge(&machines, &manifest);
        let mut specs = Vec::new();
        let mut compiled: Vec<Arc<CompiledMachine>> = Vec::new();
        let mut inactive_machines = Vec::new();
        for spec in machines {
            let md = report.for_machine(spec.name());
            if md.is_some_and(|m| m.inactive) {
                inactive_machines.push(spec.name().to_string());
                continue;
            }
            let elided = md.map_or_else(Vec::new, |m| m.elided());
            compiled.push(Arc::new(CompiledMachine::compile_discharged(
                spec.clone(),
                &elided,
            )));
            specs.push(spec);
        }
        let active_machines = specs.len() as u64;
        let pool: Arc<AtomicEnginePool<u64>> = EnginePool::with_builder(specs, move |i, _| {
            AtomicStore::with_compiled(Arc::clone(&compiled[i]))
        });
        SpecializedPool {
            functions: manifest.functions().map(str::to_string).collect(),
            pool,
            unknown_functions: manifest.unknown_functions().to_vec(),
            inactive_machines,
            total_transitions: report.total_transitions() as u64,
            discharged: report.total_discharged() as u64,
            active_machines,
        }
    }

    /// Whether every function in `called` is inside the manifest — the
    /// admission check a session must pass to roll up here.
    pub fn covers(&self, called: &BTreeSet<String>) -> bool {
        called.iter().all(|f| self.functions.contains(f))
    }

    /// The underlying engine pool.
    pub fn pool(&self) -> &Arc<AtomicEnginePool<u64>> {
        &self.pool
    }

    /// The manifest's function set (sorted).
    pub fn functions(&self) -> &BTreeSet<String> {
        &self.functions
    }

    /// Machines with no engine in this pool (fully discharged).
    pub fn inactive_machines(&self) -> &[String] {
        &self.inactive_machines
    }
}

/// What a manifest declaration did — the ack surfaced to the client.
#[derive(Debug, Clone)]
pub struct ManifestSummary {
    /// The tenant the manifest now applies to.
    pub tenant: String,
    /// Callable functions in the manifest.
    pub functions: u64,
    /// Manifest entries unknown to the JNI registry. Kept callable and
    /// reported — a misspelled manifest weakens discharge, it does not
    /// fail the declaration.
    pub unknown_functions: Vec<String>,
    /// Transitions across all machines.
    pub total_transitions: u64,
    /// Transitions compiled out of the specialized pool.
    pub discharged: u64,
    /// Machines the pool carries no engine for.
    pub inactive_machines: Vec<String>,
    /// Machines the pool carries engines for.
    pub active_machines: u64,
    /// Whether this declaration replaced an earlier manifest (or a
    /// learning window) for the tenant.
    pub replaced: bool,
}

impl ManifestSummary {
    /// Renders the summary as a JSON object.
    pub fn to_json(&self) -> String {
        JsonObj::new()
            .str("tenant", &self.tenant)
            .num("functions", self.functions)
            .raw(
                "unknown_functions",
                json::list(self.unknown_functions.iter().map(|f| json::escape(f))),
            )
            .num("total_transitions", self.total_transitions)
            .num("discharged", self.discharged)
            .raw(
                "inactive_machines",
                json::list(self.inactive_machines.iter().map(|m| json::escape(m))),
            )
            .num("active_machines", self.active_machines)
            .bool("replaced", self.replaced)
            .build()
    }
}

/// Point-in-time registry counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ManifestRegistryStats {
    /// Tenants currently holding a manifest (declared or learned).
    pub manifested_tenants: u64,
    /// Tenants currently inside a learning window.
    pub learning_tenants: u64,
    /// Distinct specialized pools in the cache.
    pub specialized_pools: u64,
    /// Manifests ever declared (including replacements).
    pub declared: u64,
    /// Manifests ever learned from session unions.
    pub learned: u64,
    /// Learned manifests widened after a fallback.
    pub widened: u64,
}

enum TenantState {
    /// Serving from a specialized pool.
    Active {
        source: ManifestSource,
        spec: Arc<SpecializedPool>,
    },
    /// Accumulating the call-site union of the first sessions.
    Learning {
        sessions: u64,
        union: BTreeSet<String>,
    },
}

#[derive(Default)]
struct RegistryInner {
    tenants: HashMap<String, TenantState>,
    /// Pool cache keyed by the manifest's sorted function set, so
    /// tenants with identical manifests share one pool.
    pools: HashMap<String, Arc<SpecializedPool>>,
    declared: u64,
    learned: u64,
    widened: u64,
}

/// The daemon's tenant→manifest registry (see the module docs).
#[derive(Default)]
pub(crate) struct ManifestRegistry {
    inner: Mutex<RegistryInner>,
}

fn cache_key(functions: &BTreeSet<String>) -> String {
    let mut key = String::new();
    for f in functions {
        key.push_str(f);
        key.push('\n');
    }
    key
}

/// Poison recovery mirrors the engine pool's: registry state is plain
/// owned data, structurally sound even if a holder panicked.
fn lock(m: &Mutex<RegistryInner>) -> MutexGuard<'_, RegistryInner> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

impl ManifestRegistry {
    fn pool_for(
        inner: &mut RegistryInner,
        tenant: &str,
        functions: &BTreeSet<String>,
    ) -> Arc<SpecializedPool> {
        let key = cache_key(functions);
        if let Some(existing) = inner.pools.get(&key) {
            return Arc::clone(existing);
        }
        let built = Arc::new(SpecializedPool::for_functions(
            tenant,
            functions.iter().cloned(),
        ));
        inner.pools.insert(key, Arc::clone(&built));
        built
    }

    /// Declares (or replaces) a tenant's manifest and returns the ack.
    pub(crate) fn declare(&self, tenant: &str, functions: &[String]) -> ManifestSummary {
        let set: BTreeSet<String> = functions.iter().cloned().collect();
        let mut inner = lock(&self.inner);
        let spec = Self::pool_for(&mut inner, tenant, &set);
        let replaced = inner
            .tenants
            .insert(
                tenant.to_string(),
                TenantState::Active {
                    source: ManifestSource::Declared,
                    spec: Arc::clone(&spec),
                },
            )
            .is_some();
        inner.declared += 1;
        ManifestSummary {
            tenant: tenant.to_string(),
            functions: set.len() as u64,
            unknown_functions: spec.unknown_functions.clone(),
            total_transitions: spec.total_transitions,
            discharged: spec.discharged,
            inactive_machines: spec.inactive_machines.clone(),
            active_machines: spec.active_machines,
            replaced,
        }
    }

    /// The specialized pool serving `tenant`, if it has a manifest.
    pub(crate) fn specialized_for(&self, tenant: &str) -> Option<Arc<SpecializedPool>> {
        match lock(&self.inner).tenants.get(tenant) {
            Some(TenantState::Active { spec, .. }) => Some(Arc::clone(spec)),
            _ => None,
        }
    }

    /// Feeds one judged session back into the registry: advances the
    /// tenant's learning window (when `learn_after > 0` and nothing is
    /// declared) and widens a learned manifest whose session fell back.
    /// Declared manifests never widen — a lying manifest keeps flagging.
    pub(crate) fn observe_judged(
        &self,
        tenant: &str,
        called: &BTreeSet<String>,
        fell_back: bool,
        learn_after: u64,
    ) {
        let mut inner = lock(&self.inner);
        match inner.tenants.get_mut(tenant) {
            Some(TenantState::Active {
                source: ManifestSource::Learned,
                spec,
            }) => {
                if !fell_back {
                    return;
                }
                let mut union = spec.functions.clone();
                union.extend(called.iter().cloned());
                let spec = Self::pool_for(&mut inner, tenant, &union);
                inner.tenants.insert(
                    tenant.to_string(),
                    TenantState::Active {
                        source: ManifestSource::Learned,
                        spec,
                    },
                );
                inner.widened += 1;
            }
            Some(TenantState::Active { .. }) => {}
            Some(TenantState::Learning { sessions, union }) => {
                *sessions += 1;
                union.extend(called.iter().cloned());
                if *sessions >= learn_after {
                    let union = union.clone();
                    let spec = Self::pool_for(&mut inner, tenant, &union);
                    inner.tenants.insert(
                        tenant.to_string(),
                        TenantState::Active {
                            source: ManifestSource::Learned,
                            spec,
                        },
                    );
                    inner.learned += 1;
                }
            }
            None => {
                if learn_after == 0 {
                    return;
                }
                let union = called.clone();
                if learn_after == 1 {
                    let spec = Self::pool_for(&mut inner, tenant, &union);
                    inner.tenants.insert(
                        tenant.to_string(),
                        TenantState::Active {
                            source: ManifestSource::Learned,
                            spec,
                        },
                    );
                    inner.learned += 1;
                } else {
                    inner.tenants.insert(
                        tenant.to_string(),
                        TenantState::Learning { sessions: 1, union },
                    );
                }
            }
        }
    }

    /// Current counters.
    pub(crate) fn stats(&self) -> ManifestRegistryStats {
        let inner = lock(&self.inner);
        let mut manifested = 0u64;
        let mut learning = 0u64;
        for state in inner.tenants.values() {
            match state {
                TenantState::Active { .. } => manifested += 1,
                TenantState::Learning { .. } => learning += 1,
            }
        }
        ManifestRegistryStats {
            manifested_tenants: manifested,
            learning_tenants: learning,
            specialized_pools: inner.pools.len() as u64,
            declared: inner.declared,
            learned: inner.learned,
            widened: inner.widened,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table3_manifest_compiles_a_smaller_pool() {
        let spec = SpecializedPool::for_functions(
            "table3-mix",
            jinn_workloads::TABLE3_CALLED_FUNCTIONS.iter().copied(),
        );
        // Pinned by DISCHARGE_bench.json: monitor and critical-section
        // are fully inactive for this mix.
        assert!(spec
            .inactive_machines()
            .iter()
            .any(|m| m == "critical-section"));
        assert!(spec.inactive_machines().iter().any(|m| m == "monitor"));
        assert_eq!(
            spec.active_machines as usize + spec.inactive_machines().len(),
            jinn_spec::machines().len()
        );
        assert!(spec.discharged > 0);
        assert!(spec.unknown_functions.is_empty());
        // Admission: the manifest covers itself, not a superset.
        let inside: BTreeSet<String> =
            ["NewGlobalRef".to_string(), "DeleteGlobalRef".to_string()].into();
        assert!(spec.covers(&inside));
        let outside: BTreeSet<String> = ["MonitorEnter".to_string()].into();
        assert!(!spec.covers(&outside));
    }

    #[test]
    fn identical_manifests_share_one_pool() {
        let registry = ManifestRegistry::default();
        let a = registry.declare("a", &["NewGlobalRef".to_string()]);
        let b = registry.declare("b", &["NewGlobalRef".to_string()]);
        assert!(!a.replaced);
        assert!(!b.replaced);
        let stats = registry.stats();
        assert_eq!(stats.manifested_tenants, 2);
        assert_eq!(stats.specialized_pools, 1, "cache keyed by function set");
        let pa = registry.specialized_for("a").unwrap();
        let pb = registry.specialized_for("b").unwrap();
        assert!(Arc::ptr_eq(&pa, &pb));
    }

    #[test]
    fn redeclaration_replaces_and_unknown_functions_survive() {
        let registry = ManifestRegistry::default();
        let first = registry.declare("t", &["NewGlobalRef".to_string()]);
        assert!(!first.replaced);
        let second = registry.declare(
            "t",
            &["NewGlobalRef".to_string(), "NotARealJniFn".to_string()],
        );
        assert!(second.replaced);
        assert_eq!(second.unknown_functions, vec!["NotARealJniFn".to_string()]);
        assert_eq!(registry.stats().declared, 2);
    }

    #[test]
    fn learning_window_promotes_after_k_sessions_and_widens_on_fallback() {
        let registry = ManifestRegistry::default();
        let s1: BTreeSet<String> = ["NewGlobalRef".to_string()].into();
        let s2: BTreeSet<String> = ["DeleteGlobalRef".to_string()].into();
        registry.observe_judged("t", &s1, false, 2);
        assert!(registry.specialized_for("t").is_none(), "still learning");
        registry.observe_judged("t", &s2, false, 2);
        let learned = registry.specialized_for("t").expect("promoted");
        assert!(learned.covers(&s1) && learned.covers(&s2));
        assert_eq!(registry.stats().learned, 1);
        // A fallback widens the learned manifest.
        let s3: BTreeSet<String> = ["MonitorEnter".to_string()].into();
        registry.observe_judged("t", &s3, true, 2);
        let widened = registry.specialized_for("t").expect("still active");
        assert!(widened.covers(&s3), "union grew");
        assert_eq!(registry.stats().widened, 1);
        // Declared manifests never widen.
        registry.declare("d", &["NewGlobalRef".to_string()]);
        registry.observe_judged("d", &s3, true, 2);
        let declared = registry.specialized_for("d").expect("declared");
        assert!(!declared.covers(&s3), "declared manifest stays as declared");
    }

    #[test]
    fn learning_disabled_when_learn_after_is_zero() {
        let registry = ManifestRegistry::default();
        let s: BTreeSet<String> = ["NewGlobalRef".to_string()].into();
        for _ in 0..5 {
            registry.observe_judged("t", &s, false, 0);
        }
        assert!(registry.specialized_for("t").is_none());
        assert_eq!(registry.stats().learning_tenants, 0);
    }
}
