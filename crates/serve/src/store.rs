//! The session table: lifecycle bookkeeping, buffered ingest bytes,
//! judged history rows, the retention budget, and the query scan.
//!
//! One mutex guards the whole table. That is deliberate: every
//! operation here is bookkeeping measured in microseconds, while the
//! expensive work (replay) happens in workers *outside* the lock — a
//! worker takes the sealed bytes out, judges without the lock, and
//! comes back once with the results. A condvar broadcast on every state
//! change backs `wait_session`/`wait_idle`.
//!
//! ## Retention
//!
//! Judged history (verdict rows, event summaries, per-config outcomes)
//! is held under a global byte budget. When an insert pushes the total
//! over, whole-session histories are purged **oldest-session-first** by
//! open order until back under. Only terminal sessions are candidates:
//! a live (open/queued/judging) session has no history yet and can
//! never be evicted, structurally. Purged sessions keep their stats —
//! the query API reports `history_purged` rather than silently
//! returning nothing.
//!
//! ## Admission control
//!
//! Every other resource the table holds is bounded too
//! ([`StoreLimits`]): `open` past the live-session cap and `append`
//! past the fleet-wide buffered-bytes cap fail with typed errors, and
//! whole session *records* beyond the record cap are evicted
//! oldest-first among terminal sessions whenever one goes terminal —
//! an evicted id stops answering stats and may be reopened. Live
//! sessions are never evicted; the live-session cap bounds how many
//! can exist.

use std::collections::HashMap;
use std::sync::{Condvar, Mutex};
use std::time::Instant;

use jinn_replay::{verify_seal_declaration, ReplayConfig};

use crate::error::ServeError;
use crate::judge::JudgeOutput;
use crate::session::{
    approx_bytes_event, approx_bytes_outcome, approx_bytes_verdict, DischargeStats, EventSummary,
    MachineRollup, ObsCounters, OutcomeRec, SessionId, SessionState, SessionStats, VerdictRec,
};

/// Hard bounds on what a [`SessionTable`] may hold. Everything a remote
/// client can grow is capped: live sessions, buffered ingest bytes
/// (per session and fleet-wide), judged-history bytes, and the session
/// records themselves.
#[derive(Debug, Clone, Copy)]
pub struct StoreLimits {
    /// Global byte budget for judged history (see the module docs).
    pub retention_bytes: usize,
    /// Per-session ingest buffer cap ([`ServeError::Backpressure`]).
    pub max_buffered: u64,
    /// Live (open/queued/judging) sessions admitted at once
    /// ([`ServeError::FleetSaturated`] past it).
    pub max_live_sessions: usize,
    /// Session records kept, live and terminal together; terminal
    /// records beyond it are evicted oldest-first.
    pub max_session_records: usize,
    /// Total un-judged ingest bytes buffered across all sessions
    /// ([`ServeError::FleetBackpressure`] past it).
    pub max_total_buffered: u64,
}

/// Which history rows a query scans.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum QueryKind {
    /// Checker violations (the default).
    #[default]
    Verdicts,
    /// Re-judged execution event summaries.
    Events,
    /// Per-config overall outcomes.
    Outcomes,
}

/// A history query: filters are conjunctive; absent filters match
/// everything. Results are ordered by insertion (rowid) and paginated
/// with an opaque cursor.
#[derive(Debug, Clone, Default)]
pub struct Query {
    /// Row family to scan.
    pub kind: QueryKind,
    /// Only rows of this session.
    pub session: Option<SessionId>,
    /// Only rows of sessions with this tenant tag.
    pub tenant: Option<String>,
    /// Only rows produced under this config label.
    pub config: Option<String>,
    /// Only rows naming this JNI function / native method.
    pub function: Option<String>,
    /// Only rows naming this state machine.
    pub machine: Option<String>,
    /// Only event rows naming this entity.
    pub entity: Option<String>,
    /// Only event rows on this thread.
    pub thread: Option<u16>,
    /// Only event rows with index ≥ this.
    pub min_index: Option<u64>,
    /// Only event rows with index ≤ this.
    pub max_index: Option<u64>,
    /// Resume after this rowid (from a previous page's `next_cursor`).
    pub cursor: Option<u64>,
    /// Page size; 0 means the default (100), capped at 1000.
    pub limit: usize,
}

/// One matched row.
#[derive(Debug, Clone, PartialEq)]
pub enum QueryItem {
    /// A verdict row.
    Verdict(VerdictRec),
    /// An event-summary row.
    Event(EventSummary),
    /// A per-config outcome row.
    Outcome(OutcomeRec),
}

impl QueryItem {
    /// Renders the row as a JSON object.
    pub fn to_json(&self) -> String {
        match self {
            QueryItem::Verdict(v) => v.to_json(),
            QueryItem::Event(e) => e.to_json(),
            QueryItem::Outcome(o) => o.to_json(),
        }
    }
}

/// One page of query results.
#[derive(Debug, Clone, Default)]
pub struct QueryPage {
    /// Matched rows, insertion order.
    pub items: Vec<QueryItem>,
    /// Pass back as [`Query::cursor`] for the next page; `None` when the
    /// scan is exhausted.
    pub next_cursor: Option<u64>,
}

/// Fleet-wide counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FleetStats {
    /// Sessions ever opened.
    pub opened: u64,
    /// Sessions judged.
    pub judged: u64,
    /// Sessions quarantined.
    pub quarantined: u64,
    /// Sessions aborted by their client.
    pub aborted: u64,
    /// Sessions currently open/queued/judging.
    pub live: u64,
    /// History bytes currently held.
    pub history_bytes: u64,
    /// The retention budget.
    pub retention_bytes: u64,
    /// Sessions whose history retention purged.
    pub purged_sessions: u64,
    /// Terminal session records evicted by the record cap.
    pub evicted_sessions: u64,
    /// Verdict rows ever stored.
    pub total_verdicts: u64,
    /// JNI calls re-issued across all judged sessions.
    pub total_events_replayed: u64,
    /// Sessions whose rollups ran on a manifest-specialized pool.
    pub specialized_sessions: u64,
    /// Sessions of manifested tenants that called outside the manifest
    /// and fell back to the full pool.
    pub fallback_sessions: u64,
    /// Sessions judged incrementally by a streaming judge.
    pub streamed_sessions: u64,
    /// Most un-judged ingest bytes simultaneously buffered across the
    /// fleet over the daemon's lifetime. A streaming session charges
    /// only its undecoded tail here, so this is the figure the
    /// streaming bench's peak-resident-bytes comparison reads.
    pub buffered_bytes_high_water: u64,
}

struct History {
    bytes: usize,
    outcomes: Vec<(u64, OutcomeRec)>,
    verdicts: Vec<(u64, VerdictRec)>,
    events: Vec<(u64, EventSummary)>,
    rollups: Vec<MachineRollup>,
}

struct Session {
    opened_seq: u64,
    tenant: String,
    configs: Vec<ReplayConfig>,
    state: SessionState,
    buf: Vec<u8>,
    frames: u64,
    program: Option<String>,
    obs: ObsCounters,
    discharge: Option<DischargeStats>,
    specialized: bool,
    discharge_fallback: bool,
    reason: Option<String>,
    history: Option<History>,
    history_purged: bool,
    sealed_at: Option<Instant>,
    first_frame_at: Option<Instant>,
    seal_to_verdict_micros: Option<u64>,
    first_frame_micros: Option<u64>,
    streamed: bool,
    // Bytes a *streaming* session currently has charged against the
    // fleet buffered-bytes budget (its undecoded tail). Buffered
    // sessions charge via `buf` instead; the two are never both
    // non-zero.
    stream_charged: u64,
    events_replayed: u64,
    divergences: u64,
    summaries_dropped: u64,
    bytes_received: u64,
}

struct TableInner {
    sessions: HashMap<SessionId, Session>,
    next_seq: u64,
    next_rowid: u64,
    history_bytes: usize,
    active: u64,   // sessions in Queued or Judging
    live: u64,     // sessions in any non-terminal state
    buffered: u64, // un-judged ingest bytes across all sessions
    fleet: FleetStats,
}

/// The daemon's shared session store. See the module docs.
pub struct SessionTable {
    inner: Mutex<TableInner>,
    changed: Condvar,
    limits: StoreLimits,
}

impl SessionTable {
    /// An empty table with the given bounds.
    pub fn new(limits: StoreLimits) -> SessionTable {
        SessionTable {
            inner: Mutex::new(TableInner {
                sessions: HashMap::new(),
                next_seq: 0,
                next_rowid: 1,
                history_bytes: 0,
                active: 0,
                live: 0,
                buffered: 0,
                fleet: FleetStats {
                    retention_bytes: limits.retention_bytes as u64,
                    ..FleetStats::default()
                },
            }),
            changed: Condvar::new(),
            limits,
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, TableInner> {
        self.inner.lock().expect("session table poisoned")
    }

    /// Opens a session.
    ///
    /// # Errors
    ///
    /// [`ServeError::DuplicateSession`] if the id already exists;
    /// [`ServeError::FleetSaturated`] at the live-session cap.
    pub fn open(
        &self,
        id: SessionId,
        tenant: &str,
        configs: Vec<ReplayConfig>,
    ) -> Result<(), ServeError> {
        let mut t = self.lock();
        if t.sessions.contains_key(&id) {
            return Err(ServeError::DuplicateSession(id));
        }
        if t.live >= self.limits.max_live_sessions as u64 {
            return Err(ServeError::FleetSaturated {
                live: t.live,
                cap: self.limits.max_live_sessions as u64,
            });
        }
        let opened_seq = t.next_seq;
        t.next_seq += 1;
        t.fleet.opened += 1;
        t.live += 1;
        t.sessions.insert(
            id,
            Session {
                opened_seq,
                tenant: tenant.to_string(),
                configs,
                state: SessionState::Open,
                buf: Vec::new(),
                frames: 1,
                program: None,
                obs: ObsCounters::default(),
                discharge: None,
                specialized: false,
                discharge_fallback: false,
                reason: None,
                history: None,
                history_purged: false,
                sealed_at: None,
                first_frame_at: None,
                seal_to_verdict_micros: None,
                first_frame_micros: None,
                streamed: false,
                stream_charged: 0,
                events_replayed: 0,
                divergences: 0,
                summaries_dropped: 0,
                bytes_received: 0,
            },
        );
        self.changed.notify_all();
        Ok(())
    }

    fn session_mut(t: &mut TableInner, id: SessionId) -> Result<&mut Session, ServeError> {
        t.sessions
            .get_mut(&id)
            .ok_or(ServeError::UnknownSession(id))
    }

    fn require_open(s: &Session, id: SessionId) -> Result<(), ServeError> {
        match s.state {
            SessionState::Open => Ok(()),
            SessionState::Quarantined => Err(ServeError::Quarantined {
                session: id,
                reason: s.reason.clone().unwrap_or_default(),
            }),
            other => Err(ServeError::SessionNotOpen {
                session: id,
                state: other.to_string(),
            }),
        }
    }

    /// Buffers a chunk of trace bytes.
    ///
    /// # Errors
    ///
    /// [`ServeError::Backpressure`] when the chunk would exceed the
    /// per-session buffer cap, [`ServeError::FleetBackpressure`] when it
    /// would exceed the fleet-wide one; lifecycle errors otherwise.
    pub fn append(&self, id: SessionId, chunk: &[u8]) -> Result<(), ServeError> {
        let mut t = self.lock();
        let cap = self.limits.max_buffered;
        let total = t.buffered;
        let total_cap = self.limits.max_total_buffered;
        let s = Self::session_mut(&mut t, id)?;
        Self::require_open(s, id)?;
        if s.buf.len() as u64 + chunk.len() as u64 > cap {
            return Err(ServeError::Backpressure {
                session: id,
                buffered: s.buf.len() as u64,
                cap,
            });
        }
        if total + chunk.len() as u64 > total_cap {
            return Err(ServeError::FleetBackpressure {
                buffered: total,
                cap: total_cap,
            });
        }
        s.buf.extend_from_slice(chunk);
        s.bytes_received += chunk.len() as u64;
        s.frames += 1;
        if s.first_frame_at.is_none() {
            s.first_frame_at = Some(Instant::now());
        }
        t.buffered += chunk.len() as u64;
        t.fleet.buffered_bytes_high_water = t.fleet.buffered_bytes_high_water.max(t.buffered);
        Ok(())
    }

    /// Marks a session as judged by the streaming path. Called once at
    /// dispatch time, before any `Append` is streamed into it.
    pub fn mark_streamed(&self, id: SessionId) {
        let mut t = self.lock();
        if let Some(s) = t.sessions.get_mut(&id) {
            s.streamed = true;
        }
    }

    /// [`SessionTable::append`]'s admission half for a streaming
    /// session: the same lifecycle and backpressure checks (against the
    /// session's *undecoded tail*, not everything ever received), and
    /// the same byte/frame accounting — but the chunk itself goes to
    /// the stream scanner, not the table. Charges the whole chunk to
    /// the fleet buffered budget provisionally; [`stream_settle`]
    /// releases what the scanner decoded.
    ///
    /// [`stream_settle`]: SessionTable::stream_settle
    ///
    /// # Errors
    ///
    /// Exactly [`SessionTable::append`]'s.
    pub fn stream_admit(&self, id: SessionId, chunk_len: u64) -> Result<(), ServeError> {
        let mut t = self.lock();
        let cap = self.limits.max_buffered;
        let total = t.buffered;
        let total_cap = self.limits.max_total_buffered;
        let s = Self::session_mut(&mut t, id)?;
        Self::require_open(s, id)?;
        if s.stream_charged + chunk_len > cap {
            return Err(ServeError::Backpressure {
                session: id,
                buffered: s.stream_charged,
                cap,
            });
        }
        if total + chunk_len > total_cap {
            return Err(ServeError::FleetBackpressure {
                buffered: total,
                cap: total_cap,
            });
        }
        s.bytes_received += chunk_len;
        s.frames += 1;
        s.stream_charged += chunk_len;
        if s.first_frame_at.is_none() {
            s.first_frame_at = Some(Instant::now());
        }
        t.buffered += chunk_len;
        t.fleet.buffered_bytes_high_water = t.fleet.buffered_bytes_high_water.max(t.buffered);
        Ok(())
    }

    /// Settles a streaming session's buffered charge down to its
    /// scanner's current undecoded tail — the moment streamed bytes
    /// stop being resident. No-op on unknown or already-drained
    /// sessions.
    pub fn stream_settle(&self, id: SessionId, pending: u64) {
        let mut t = self.lock();
        let Some(s) = t.sessions.get_mut(&id) else {
            return;
        };
        let release = s.stream_charged.saturating_sub(pending);
        s.stream_charged -= release;
        t.buffered -= release;
    }

    /// Seals a session: verifies the declared length and checksum, then
    /// marks it queued. The caller enqueues the id for a worker.
    ///
    /// # Errors
    ///
    /// [`ServeError::Quarantined`] when the reassembled bytes don't
    /// match the seal declaration (the session is poisoned in place);
    /// lifecycle errors otherwise.
    pub fn seal(&self, id: SessionId, total_len: u64, checksum: u64) -> Result<(), ServeError> {
        let mut t = self.lock();
        let s = Self::session_mut(&mut t, id)?;
        Self::require_open(s, id)?;
        s.frames += 1;
        let actual_len = s.buf.len() as u64;
        let actual_sum = jinn_replay::format::fnv1a(&s.buf);
        if let Err(mismatch) = verify_seal_declaration(total_len, checksum, actual_len, actual_sum)
        {
            let reason = mismatch.to_string();
            self.poison(&mut t, id, &reason);
            self.changed.notify_all();
            return Err(ServeError::Quarantined {
                session: id,
                reason,
            });
        }
        let s = Self::session_mut(&mut t, id)?;
        s.state = SessionState::Queued;
        s.sealed_at = Some(Instant::now());
        t.active += 1;
        self.changed.notify_all();
        Ok(())
    }

    /// [`SessionTable::seal`] for a streaming session: the declaration
    /// was verified against the scanner's running totals (the table
    /// never saw the bytes), and its result is applied here under the
    /// same lock, with the same lifecycle precedence and poisoning, as
    /// the buffered path's reassembled-buffer verification.
    ///
    /// # Errors
    ///
    /// [`ServeError::Quarantined`] when `declared` carries a mismatch
    /// reason; lifecycle errors otherwise.
    pub fn seal_streamed(
        &self,
        id: SessionId,
        declared: Result<(), String>,
    ) -> Result<(), ServeError> {
        let mut t = self.lock();
        let s = Self::session_mut(&mut t, id)?;
        Self::require_open(s, id)?;
        s.frames += 1;
        if let Err(reason) = declared {
            self.poison(&mut t, id, &reason);
            self.changed.notify_all();
            return Err(ServeError::Quarantined {
                session: id,
                reason,
            });
        }
        let s = Self::session_mut(&mut t, id)?;
        s.state = SessionState::Queued;
        s.sealed_at = Some(Instant::now());
        t.active += 1;
        self.changed.notify_all();
        Ok(())
    }

    /// Client-side abort: drops the buffer, terminal state.
    ///
    /// # Errors
    ///
    /// Lifecycle errors; aborting a non-open session is invalid.
    pub fn abort(&self, id: SessionId, reason: &str) -> Result<(), ServeError> {
        let mut t = self.lock();
        let s = Self::session_mut(&mut t, id)?;
        Self::require_open(s, id)?;
        s.state = SessionState::Aborted;
        s.reason = Some(reason.to_string());
        let freed = s.buf.len() as u64 + std::mem::take(&mut s.stream_charged);
        s.buf = Vec::new();
        s.frames += 1;
        t.buffered -= freed;
        t.live -= 1;
        t.fleet.aborted += 1;
        self.evict_session_records(&mut t);
        self.changed.notify_all();
        Ok(())
    }

    fn poison(&self, t: &mut TableInner, id: SessionId, reason: &str) {
        let Some(s) = t.sessions.get_mut(&id) else {
            return;
        };
        if s.state.is_terminal() {
            return;
        }
        if matches!(s.state, SessionState::Queued | SessionState::Judging) {
            t.active -= 1;
        }
        s.state = SessionState::Quarantined;
        s.reason = Some(reason.to_string());
        let freed = s.buf.len() as u64 + std::mem::take(&mut s.stream_charged);
        s.buf = Vec::new();
        t.buffered -= freed;
        t.live -= 1;
        t.fleet.quarantined += 1;
        self.evict_session_records(t);
    }

    /// Quarantines a session from outside the worker path (stream-level
    /// corruption on its connection). Terminal sessions are left alone.
    pub fn quarantine(&self, id: SessionId, reason: &str) {
        let mut t = self.lock();
        self.poison(&mut t, id, reason);
        self.changed.notify_all();
    }

    /// Worker entry: takes a queued session's bytes for judging.
    /// Returns `None` when the session is no longer queued (e.g. it was
    /// quarantined while waiting).
    pub fn begin_judging(&self, id: SessionId) -> Option<(Vec<u8>, String, Vec<ReplayConfig>)> {
        let mut t = self.lock();
        let s = t.sessions.get_mut(&id)?;
        if s.state != SessionState::Queued {
            return None;
        }
        s.state = SessionState::Judging;
        let bytes = std::mem::take(&mut s.buf);
        let out = (bytes, s.tenant.clone(), s.configs.clone());
        t.buffered -= out.0.len() as u64;
        self.changed.notify_all();
        Some(out)
    }

    /// [`SessionTable::begin_judging`] for a streaming session: there
    /// are no buffered bytes to take (the scanner consumed them as they
    /// arrived); any residual undecoded-tail charge is released here.
    pub fn begin_judging_streamed(&self, id: SessionId) -> Option<(String, Vec<ReplayConfig>)> {
        let mut t = self.lock();
        let s = t.sessions.get_mut(&id)?;
        if s.state != SessionState::Queued {
            return None;
        }
        s.state = SessionState::Judging;
        let charged = std::mem::take(&mut s.stream_charged);
        let out = (s.tenant.clone(), s.configs.clone());
        t.buffered -= charged;
        self.changed.notify_all();
        Some(out)
    }

    /// Worker exit, success path: records the judge output, assigns
    /// rowids, charges the retention budget, and purges oldest-first if
    /// over it.
    ///
    /// A session can leave `Judging` while the worker runs: a
    /// stream-level quarantine poisons it in place (already releasing
    /// its `active` slot). Quarantine is terminal, so a late judge
    /// output is discarded — nothing is recorded and no counter moves.
    pub fn finish(&self, id: SessionId, out: JudgeOutput) {
        let mut t = self.lock();
        if t.sessions.get(&id).map(|s| s.state) != Some(SessionState::Judging) {
            return;
        }
        let mut bytes = 0usize;
        let outcomes: Vec<(u64, OutcomeRec)> = out
            .outcomes
            .into_iter()
            .map(|o| {
                bytes += approx_bytes_outcome(&o);
                let rowid = t.next_rowid;
                t.next_rowid += 1;
                (rowid, o)
            })
            .collect();
        let verdicts: Vec<(u64, VerdictRec)> = out
            .verdicts
            .into_iter()
            .map(|v| {
                bytes += approx_bytes_verdict(&v);
                let rowid = t.next_rowid;
                t.next_rowid += 1;
                (rowid, v)
            })
            .collect();
        let events: Vec<(u64, EventSummary)> = out
            .events
            .into_iter()
            .map(|e| {
                bytes += approx_bytes_event(&e);
                let rowid = t.next_rowid;
                t.next_rowid += 1;
                (rowid, e)
            })
            .collect();
        t.fleet.total_verdicts += verdicts.len() as u64;
        t.fleet.total_events_replayed += out.events_replayed;
        t.fleet.judged += 1;
        t.fleet.specialized_sessions += u64::from(out.specialized);
        t.fleet.fallback_sessions += u64::from(out.discharge_fallback);
        t.fleet.streamed_sessions += u64::from(t.sessions.get(&id).is_some_and(|s| s.streamed));
        t.history_bytes += bytes;
        {
            let s = t.sessions.get_mut(&id).expect("checked Judging above");
            s.state = SessionState::Judged;
            s.program = Some(out.program);
            s.obs = out.obs;
            s.discharge = Some(out.discharge);
            s.specialized = out.specialized;
            s.discharge_fallback = out.discharge_fallback;
            s.events_replayed = out.events_replayed;
            s.divergences = out.divergences;
            s.summaries_dropped = out.events_dropped;
            s.seal_to_verdict_micros = s
                .sealed_at
                .map(|at| at.elapsed().as_micros().min(u128::from(u64::MAX)) as u64);
            s.first_frame_micros = s
                .first_frame_at
                .map(|at| at.elapsed().as_micros().min(u128::from(u64::MAX)) as u64);
            s.history = Some(History {
                bytes,
                outcomes,
                verdicts,
                events,
                rollups: out.rollups,
            });
        }
        t.active -= 1;
        t.live -= 1;
        self.enforce_retention(&mut t);
        self.evict_session_records(&mut t);
        t.fleet.history_bytes = t.history_bytes as u64;
        self.changed.notify_all();
    }

    /// Worker exit, failure path.
    pub fn fail(&self, id: SessionId, reason: &str) {
        let mut t = self.lock();
        self.poison(&mut t, id, reason);
        self.changed.notify_all();
    }

    fn enforce_retention(&self, t: &mut TableInner) {
        while t.history_bytes > self.limits.retention_bytes {
            // Oldest-first by open order, among terminal sessions that
            // still hold history. Deterministic: open order is a total
            // order assigned under this same lock.
            let victim = t
                .sessions
                .iter()
                .filter(|(_, s)| s.state.is_terminal() && s.history.is_some())
                .min_by_key(|(_, s)| s.opened_seq)
                .map(|(id, _)| *id);
            let Some(victim) = victim else {
                break;
            };
            let s = t.sessions.get_mut(&victim).expect("victim exists");
            let hist = s.history.take().expect("victim holds history");
            s.history_purged = true;
            t.history_bytes -= hist.bytes;
            t.fleet.purged_sessions += 1;
        }
    }

    /// Drops whole terminal session records, oldest-first, while the
    /// table holds more than the record cap — the bound that keeps a
    /// fleet of short-lived sessions from growing the map forever. Live
    /// sessions are never dropped (the live cap bounds those), so the
    /// map can exceed the record cap only by live sessions. An evicted
    /// id stops answering stats and may be reopened.
    fn evict_session_records(&self, t: &mut TableInner) {
        while t.sessions.len() > self.limits.max_session_records {
            let victim = t
                .sessions
                .iter()
                .filter(|(_, s)| s.state.is_terminal())
                .min_by_key(|(_, s)| s.opened_seq)
                .map(|(id, _)| *id);
            let Some(victim) = victim else {
                break;
            };
            let s = t.sessions.remove(&victim).expect("victim exists");
            if let Some(hist) = s.history {
                t.history_bytes -= hist.bytes;
            }
            t.fleet.evicted_sessions += 1;
        }
        t.fleet.history_bytes = t.history_bytes as u64;
    }

    /// A stats snapshot for one session.
    pub fn stats(&self, id: SessionId) -> Option<SessionStats> {
        let t = self.lock();
        let s = t.sessions.get(&id)?;
        Some(Self::snapshot(id, s))
    }

    fn snapshot(id: SessionId, s: &Session) -> SessionStats {
        let (verdicts, summaries) = match &s.history {
            Some(h) => (h.verdicts.len() as u64, h.events.len() as u64),
            None => (0, 0),
        };
        SessionStats {
            session: id,
            tenant: s.tenant.clone(),
            state: s.state,
            configs: s.configs.iter().map(ReplayConfig::label).collect(),
            program: s.program.clone(),
            bytes: s.bytes_received,
            frames: s.frames,
            events_replayed: s.events_replayed,
            divergences: s.divergences,
            verdicts,
            summaries,
            summaries_dropped: s.summaries_dropped,
            obs: s.obs,
            discharge: s.discharge.clone(),
            specialized: s.specialized,
            discharge_fallback: s.discharge_fallback,
            reason: s.reason.clone(),
            history_purged: s.history_purged,
            streamed: s.streamed,
            seal_to_verdict_micros: s.seal_to_verdict_micros,
            first_frame_micros: s.first_frame_micros,
        }
    }

    /// The per-machine rollups of a judged session (empty if purged or
    /// not judged).
    pub fn rollups(&self, id: SessionId) -> Vec<MachineRollup> {
        let t = self.lock();
        t.sessions
            .get(&id)
            .and_then(|s| s.history.as_ref())
            .map(|h| h.rollups.clone())
            .unwrap_or_default()
    }

    /// Fleet counters.
    pub fn fleet(&self) -> FleetStats {
        let t = self.lock();
        let mut f = t.fleet;
        f.live = t.live;
        f.history_bytes = t.history_bytes as u64;
        f
    }

    /// Runs a query: scans matching history rows across sessions, in
    /// rowid (insertion) order, resuming after `query.cursor`.
    pub fn query(&self, query: &Query) -> QueryPage {
        let limit = match query.limit {
            0 => 100,
            n => n.min(1000),
        };
        let after = query.cursor.unwrap_or(0);
        let t = self.lock();
        let mut matched: Vec<(u64, QueryItem)> = Vec::new();
        for (&id, s) in &t.sessions {
            if let Some(want) = query.session {
                if want != id {
                    continue;
                }
            }
            if let Some(tenant) = &query.tenant {
                if &s.tenant != tenant {
                    continue;
                }
            }
            let Some(hist) = &s.history else {
                continue;
            };
            match query.kind {
                QueryKind::Verdicts => {
                    for (rowid, v) in &hist.verdicts {
                        if *rowid <= after {
                            continue;
                        }
                        if query.config.as_deref().is_some_and(|c| c != v.config) {
                            continue;
                        }
                        if query.function.as_deref().is_some_and(|f| f != v.function) {
                            continue;
                        }
                        if query.machine.as_deref().is_some_and(|m| m != v.machine) {
                            continue;
                        }
                        matched.push((*rowid, QueryItem::Verdict(v.clone())));
                    }
                }
                QueryKind::Events => {
                    for (rowid, e) in &hist.events {
                        if *rowid <= after {
                            continue;
                        }
                        if query
                            .function
                            .as_deref()
                            .is_some_and(|f| e.function.as_deref() != Some(f))
                        {
                            continue;
                        }
                        if query
                            .machine
                            .as_deref()
                            .is_some_and(|m| e.machine.as_deref() != Some(m))
                        {
                            continue;
                        }
                        if query
                            .entity
                            .as_deref()
                            .is_some_and(|x| e.entity.as_deref() != Some(x))
                        {
                            continue;
                        }
                        if query.thread.is_some_and(|th| th != e.thread) {
                            continue;
                        }
                        if query.min_index.is_some_and(|m| e.index < m) {
                            continue;
                        }
                        if query.max_index.is_some_and(|m| e.index > m) {
                            continue;
                        }
                        matched.push((*rowid, QueryItem::Event(e.clone())));
                    }
                }
                QueryKind::Outcomes => {
                    for (rowid, o) in &hist.outcomes {
                        if *rowid <= after {
                            continue;
                        }
                        if query.config.as_deref().is_some_and(|c| c != o.config) {
                            continue;
                        }
                        matched.push((*rowid, QueryItem::Outcome(o.clone())));
                    }
                }
            }
        }
        drop(t);
        matched.sort_by_key(|(rowid, _)| *rowid);
        let more = matched.len() > limit;
        matched.truncate(limit);
        let next_cursor = if more {
            matched.last().map(|(rowid, _)| *rowid)
        } else {
            None
        };
        QueryPage {
            items: matched.into_iter().map(|(_, item)| item).collect(),
            next_cursor,
        }
    }

    /// Blocks until the session reaches a terminal state; returns its
    /// stats, or `None` for an unknown session.
    pub fn wait_terminal(&self, id: SessionId) -> Option<SessionStats> {
        let mut t = self.lock();
        loop {
            let s = t.sessions.get(&id)?;
            if s.state.is_terminal() {
                return Some(Self::snapshot(id, s));
            }
            t = self.changed.wait(t).expect("session table poisoned");
        }
    }

    /// Blocks until no session is queued or judging.
    pub fn wait_idle(&self) {
        let mut t = self.lock();
        while t.active > 0 {
            t = self.changed.wait(t).expect("session table poisoned");
        }
    }

    /// Every known session id, in open order (for tests and the CLI).
    pub fn session_ids(&self) -> Vec<SessionId> {
        let t = self.lock();
        let mut ids: Vec<(u64, SessionId)> = t
            .sessions
            .iter()
            .map(|(id, s)| (s.opened_seq, *id))
            .collect();
        ids.sort_unstable();
        ids.into_iter().map(|(_, id)| id).collect()
    }
}
