//! # jinn-serve
//!
//! A multi-tenant trace-ingestion and re-judging daemon with a verdict
//! query API: the service shape of the Jinn pipeline.
//!
//! The paper's detectors are synthesized once but meant to run
//! everywhere (§6–7). The sibling crates already record at 1.04×
//! overhead and replay at millions of events per second — but only one
//! session in one process. This crate turns the checker library into a
//! fleet service:
//!
//! * **Session lifecycle** — clients `Open`/`Append`/`Seal` `.jtrace`
//!   byte streams over the length-prefixed frame envelope
//!   (`jinn_replay::stream`), each session carrying a tenant tag and a
//!   checker-stack selection.
//! * **Ingest pipeline** — [`Daemon`] runs N worker threads over a
//!   bounded queue. A sealed session is parsed with the hardened trace
//!   reader and replayed under its configs
//!   ([`jinn_replay::replay_trace_observed`]); compiled check tables are
//!   cloned from a process-wide synthesis cache, and per-machine entity
//!   rollups reuse pooled lock-free engines
//!   ([`jinn_fsm::AtomicEnginePool`]). Corrupt input — frame checksum
//!   mismatch, truncation, unreadable trace — quarantines the one
//!   poisoned session and never stalls the fleet.
//! * **Verdict/history store with retention** — per-session verdicts,
//!   per-config outcomes, and execution-event summaries under a global
//!   byte budget with deterministic oldest-session-first purge
//!   ([`store`] module docs).
//! * **Streaming incremental judging** — while a `streaming_sessions`
//!   permit is available, a session is judged *as it uploads*: a
//!   resumable record decoder ([`jinn_replay::StreamDecoder`]) consumes
//!   each `Append`, releases the bytes it decodes (only the undecoded
//!   tail stays resident), and pipes events to a per-session live
//!   replay executor, so `Seal` only verifies the declared
//!   length/checksum against running totals and publishes the
//!   already-computed result. The speculative verdict is never
//!   observable before seal verification passes; seal mismatch, decode
//!   error, or a live-replay anomaly falls back to quarantine or a
//!   buffered re-judge with byte-identical semantics (`streaming`
//!   module docs, DESIGN.md §16).
//! * **Workload-adaptive discharge** — a tenant can declare its
//!   call-site manifest (the `Manifest` frame /
//!   [`DaemonHandle::declare_manifest`]), or the daemon can learn one
//!   from the tenant's first sessions
//!   ([`ServeConfig::learn_after_sessions`]). Manifested tenants roll up
//!   through manifest-keyed *specialized* engine pools with provably-dead
//!   transitions compiled out and inactive machines carrying no engines
//!   at all; a trace that calls outside its manifest soundly falls back
//!   to the full pool and is flagged
//!   ([`SessionStats`] `discharge_fallback`). See the [`manifest`
//!   module](crate::SpecializedPool) docs.
//! * **Query API** — [`DaemonHandle::query`] filters by session,
//!   tenant, config, function, machine, entity, thread, and event-index
//!   range, with cursor pagination; [`SocketServer`] exposes the same
//!   over line-delimited JSON, and the `serve` bin in `jinn-bench` is
//!   the CLI front end.
//!
//! ```
//! use jinn_replay::{encode_ingest, program_by_name, record_program};
//! use jinn_serve::{Daemon, Query, ServeConfig};
//!
//! let daemon = Daemon::start(ServeConfig::default());
//! let handle = daemon.handle();
//!
//! // One client session: frame up a recorded trace and apply it.
//! let trace = record_program(&program_by_name("LocalRefDangling").unwrap());
//! for frame in jinn_replay::decode_stream(&encode_ingest(7, "acme", "jinn", &trace, 4096))
//!     .unwrap()
//! {
//!     handle.apply_frame(&frame).unwrap();
//! }
//! let stats = handle.wait_session(7).unwrap();
//! assert_eq!(stats.state.to_string(), "judged");
//!
//! // Query its verdicts.
//! let page = handle.query(&Query {
//!     session: Some(7),
//!     machine: Some("local-reference".to_string()),
//!     ..Query::default()
//! });
//! assert!(!page.items.is_empty());
//! daemon.shutdown();
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod daemon;
mod error;
pub mod json;
mod judge;
mod manifest;
mod session;
mod socket;
pub mod store;
mod streaming;

pub use daemon::{Daemon, DaemonHandle, ServeConfig, AUTO_SESSION_BASE};
pub use error::ServeError;
pub use judge::{judge, judge_trace, obs_counters, rollup_events, JudgeOutput};
pub use manifest::{ManifestRegistryStats, ManifestSource, ManifestSummary, SpecializedPool};
pub use session::{
    DischargeStats, EventSummary, MachineRollup, ObsCounters, OutcomeRec, SessionId, SessionState,
    SessionStats, VerdictRec,
};
pub use socket::SocketServer;
pub use store::{FleetStats, Query, QueryItem, QueryKind, QueryPage, SessionTable, StoreLimits};
