//! Per-session record types: lifecycle states, stats snapshots, and the
//! history rows (verdicts, event summaries, per-config outcomes,
//! machine rollups) the query API serves.

use std::fmt;

use crate::json::{self, JsonObj};

/// A session identifier — client-chosen on `Open`, or daemon-assigned
/// (from [`crate::DaemonHandle::open_auto`]'s high range).
pub type SessionId = u64;

/// Where a session is in its lifecycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SessionState {
    /// Opened; accepting `Append` frames.
    Open,
    /// Sealed and waiting for an ingest worker.
    Queued,
    /// An ingest worker is replaying it.
    Judging,
    /// Re-judged; history available until retention purges it.
    Judged,
    /// Poisoned by corrupt input; terminal, no history.
    Quarantined,
    /// Abandoned by the client; terminal, no history.
    Aborted,
}

impl SessionState {
    /// Terminal states never change again (and are the only candidates
    /// for retention eviction).
    pub fn is_terminal(self) -> bool {
        matches!(
            self,
            SessionState::Judged | SessionState::Quarantined | SessionState::Aborted
        )
    }
}

impl fmt::Display for SessionState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            SessionState::Open => "open",
            SessionState::Queued => "queued",
            SessionState::Judging => "judging",
            SessionState::Judged => "judged",
            SessionState::Quarantined => "quarantined",
            SessionState::Aborted => "aborted",
        })
    }
}

/// The recorder-coverage counters of the *recorded* trace, read from its
/// `obs.*` metadata — how much of the original execution the trace
/// actually holds. Surfaced per session so a tenant can see when its
/// trace was downsampled at the recorder.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ObsCounters {
    /// Events evicted by recorder ring overflow (`obs.dropped`).
    pub dropped: u64,
    /// Events the trace policy disabled or sampled away
    /// (`obs.suppressed`).
    pub suppressed: u64,
    /// Whether the trace is a policy-thinned subset (`obs.sampled`).
    pub sampled: bool,
    /// The trace policy epoch in force (`obs.policy_epoch`).
    pub policy_epoch: u64,
}

impl ObsCounters {
    /// Renders the counters as a JSON object.
    pub fn to_json(self) -> String {
        JsonObj::new()
            .num("dropped", self.dropped)
            .num("suppressed", self.suppressed)
            .bool("sampled", self.sampled)
            .num("policy_epoch", self.policy_epoch)
            .build()
    }
}

/// The static-discharge audit of one judged session: re-running the
/// discharge pass with the trace's own call-site set as the manifest,
/// how many machine transitions could have been compiled out for this
/// exact recording, and which machines were entirely inactive.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DischargeStats {
    /// Distinct JNI functions the trace called.
    pub called_functions: u64,
    /// Transitions across all machines.
    pub total_transitions: u64,
    /// Transitions provably untriggerable for this trace.
    pub discharged: u64,
    /// Machines whose every transition was discharged.
    pub inactive_machines: Vec<String>,
}

impl DischargeStats {
    /// Renders the audit as a JSON object.
    pub fn to_json(&self) -> String {
        JsonObj::new()
            .num("called_functions", self.called_functions)
            .num("total_transitions", self.total_transitions)
            .num("discharged", self.discharged)
            .raw(
                "inactive_machines",
                json::list(self.inactive_machines.iter().map(|m| json::escape(m))),
            )
            .build()
    }
}

/// A point-in-time snapshot of one session's accounting.
#[derive(Debug, Clone)]
pub struct SessionStats {
    /// The session id.
    pub session: SessionId,
    /// The tenant tag from `Open`.
    pub tenant: String,
    /// Lifecycle state at snapshot time.
    pub state: SessionState,
    /// Checker-stack labels the session re-judges under.
    pub configs: Vec<String>,
    /// The traced program's name, once parsed.
    pub program: Option<String>,
    /// Trace bytes received.
    pub bytes: u64,
    /// Frames received (`Open` + `Append`s + `Seal`/`Abort`).
    pub frames: u64,
    /// JNI calls re-issued across all configs.
    pub events_replayed: u64,
    /// Replay divergences across all configs.
    pub divergences: u64,
    /// Verdict rows currently held for the session.
    pub verdicts: u64,
    /// Event-summary rows currently held for the session.
    pub summaries: u64,
    /// Re-judged events that did not fit the per-session summary cap.
    pub summaries_dropped: u64,
    /// Recorder coverage of the *recorded* trace (see [`ObsCounters`]).
    pub obs: ObsCounters,
    /// The static-discharge audit, once judged (see [`DischargeStats`]).
    pub discharge: Option<DischargeStats>,
    /// Whether the session's rollups ran on its tenant's
    /// manifest-specialized pool.
    pub specialized: bool,
    /// Whether the trace called outside its tenant's manifest and was
    /// re-judged on the full pool instead.
    pub discharge_fallback: bool,
    /// Why the session was quarantined or aborted, if it was.
    pub reason: Option<String>,
    /// Whether retention purged the session's history rows.
    pub history_purged: bool,
    /// Whether the session was judged incrementally (a streaming judge
    /// overlapped checking with ingest) rather than buffered-then-judged.
    pub streamed: bool,
    /// Seal-to-verdict latency, once judged: how long the client waited
    /// after `Seal` for its verdict. (Formerly `ingest_micros`.)
    pub seal_to_verdict_micros: Option<u64>,
    /// First-`Append`-to-verdict latency, once judged — the whole-trace
    /// figure both the buffered and streaming paths pay in full, for
    /// like-with-like benchmark comparisons.
    pub first_frame_micros: Option<u64>,
}

impl SessionStats {
    /// Renders the snapshot as a JSON object.
    pub fn to_json(&self) -> String {
        JsonObj::new()
            .num("session", self.session)
            .str("tenant", &self.tenant)
            .str("state", &self.state.to_string())
            .str("configs", &self.configs.join(","))
            .opt_str("program", self.program.as_deref())
            .num("bytes", self.bytes)
            .num("frames", self.frames)
            .num("events_replayed", self.events_replayed)
            .num("divergences", self.divergences)
            .num("verdicts", self.verdicts)
            .num("summaries", self.summaries)
            .num("summaries_dropped", self.summaries_dropped)
            .raw("obs", self.obs.to_json())
            .raw(
                "discharge",
                self.discharge
                    .as_ref()
                    .map_or_else(|| "null".to_string(), DischargeStats::to_json),
            )
            .bool("specialized", self.specialized)
            .bool("discharge_fallback", self.discharge_fallback)
            .opt_str("reason", self.reason.as_deref())
            .bool("history_purged", self.history_purged)
            .bool("streamed", self.streamed)
            .opt_num("seal_to_verdict_micros", self.seal_to_verdict_micros)
            .opt_num("first_frame_micros", self.first_frame_micros)
            .build()
    }
}

/// One checker violation from one config's re-judging — the primary
/// queryable row.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VerdictRec {
    /// The session it belongs to.
    pub session: SessionId,
    /// The tenant tag (denormalized for tenant-filtered queries).
    pub tenant: String,
    /// The configuration label that produced it.
    pub config: String,
    /// The violated machine.
    pub machine: String,
    /// The error state entered.
    pub error_state: String,
    /// The JNI function (or native method) at detection.
    pub function: String,
    /// Human-readable diagnosis.
    pub message: String,
}

impl VerdictRec {
    /// Renders the row as a JSON object.
    pub fn to_json(&self) -> String {
        JsonObj::new()
            .num("session", self.session)
            .str("tenant", &self.tenant)
            .str("config", &self.config)
            .str("machine", &self.machine)
            .str("error_state", &self.error_state)
            .str("function", &self.function)
            .str("message", &self.message)
            .build()
    }
}

/// One re-judged execution event, summarized from the replay recorder.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EventSummary {
    /// The session it belongs to.
    pub session: SessionId,
    /// The recorder sequence number — the query API's event index.
    pub index: u64,
    /// The thread it happened on ([`jinn_obs::NO_THREAD`] for global
    /// events).
    pub thread: u16,
    /// Event family (`jni-enter`, `fsm-transition`, `verdict`…).
    pub label: String,
    /// The JNI function or native method, when the event names one.
    pub function: Option<String>,
    /// The state machine, for transitions and verdicts.
    pub machine: Option<String>,
    /// The entity acted on, for transitions that name one.
    pub entity: Option<String>,
    /// Whether the event represents a failure (failed call, error
    /// transition, verdict).
    pub failed: bool,
}

impl EventSummary {
    /// Renders the row as a JSON object.
    pub fn to_json(&self) -> String {
        JsonObj::new()
            .num("session", self.session)
            .num("index", self.index)
            .num("thread", self.thread)
            .str("label", &self.label)
            .opt_str("function", self.function.as_deref())
            .opt_str("machine", self.machine.as_deref())
            .opt_str("entity", self.entity.as_deref())
            .bool("failed", self.failed)
            .build()
    }
}

/// One configuration's overall replay outcome for a session.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OutcomeRec {
    /// The session it belongs to.
    pub session: SessionId,
    /// The configuration label.
    pub config: String,
    /// The Table 1 behaviour classification, rendered.
    pub behavior: String,
    /// The primary diagnosis, if any tool produced one.
    pub message: Option<String>,
    /// JNI calls re-issued under this config.
    pub events_replayed: u64,
    /// Replay divergences under this config.
    pub divergences: u64,
}

impl OutcomeRec {
    /// Renders the row as a JSON object.
    pub fn to_json(&self) -> String {
        JsonObj::new()
            .num("session", self.session)
            .str("config", &self.config)
            .str("behavior", &self.behavior)
            .opt_str("message", self.message.as_deref())
            .num("events_replayed", self.events_replayed)
            .num("divergences", self.divergences)
            .build()
    }
}

/// Final entity-population rollup of one machine after re-applying the
/// session's transition stream through a pooled engine.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MachineRollup {
    /// The machine name.
    pub machine: String,
    /// Transitions re-applied.
    pub transitions: u64,
    /// Entities tracked at end of stream.
    pub entities: u64,
    /// Error-state entries observed.
    pub errors: u64,
    /// Transition labels the spec machine did not recognise (even
    /// after aliasing) — excluded from `transitions`.
    pub unknown_transitions: u64,
}

impl MachineRollup {
    /// Renders the rollup as a JSON object.
    pub fn to_json(&self) -> String {
        JsonObj::new()
            .str("machine", &self.machine)
            .num("transitions", self.transitions)
            .num("entities", self.entities)
            .num("errors", self.errors)
            .num("unknown_transitions", self.unknown_transitions)
            .build()
    }
}

/// Approximate heap footprint of a history row, for the retention
/// budget. Deliberately simple and deterministic: struct size plus
/// string payloads.
pub(crate) fn approx_bytes_verdict(v: &VerdictRec) -> usize {
    std::mem::size_of::<VerdictRec>()
        + v.tenant.len()
        + v.config.len()
        + v.machine.len()
        + v.error_state.len()
        + v.function.len()
        + v.message.len()
}

pub(crate) fn approx_bytes_event(e: &EventSummary) -> usize {
    std::mem::size_of::<EventSummary>()
        + e.label.len()
        + e.function.as_deref().map_or(0, str::len)
        + e.machine.as_deref().map_or(0, str::len)
        + e.entity.as_deref().map_or(0, str::len)
}

pub(crate) fn approx_bytes_outcome(o: &OutcomeRec) -> usize {
    std::mem::size_of::<OutcomeRec>()
        + o.config.len()
        + o.behavior.len()
        + o.message.as_deref().map_or(0, str::len)
}

#[cfg(test)]
mod tests {
    use super::DischargeStats;

    // `json::escape` already wraps its result in quotes; this pins the
    // exact bytes so a second quoting layer (invalid JSON) can't sneak
    // back into the stats surface.
    #[test]
    fn discharge_stats_render_as_valid_json() {
        let stats = DischargeStats {
            called_functions: 3,
            total_transitions: 32,
            discharged: 13,
            inactive_machines: vec!["monitor".to_string(), "critical-section".to_string()],
        };
        assert_eq!(
            stats.to_json(),
            "{\"called_functions\":3,\"total_transitions\":32,\"discharged\":13,\
             \"inactive_machines\":[\"monitor\",\"critical-section\"]}"
        );
        assert_eq!(
            DischargeStats::default().to_json(),
            "{\"called_functions\":0,\"total_transitions\":0,\"discharged\":0,\
             \"inactive_machines\":[]}"
        );
    }
}
