//! The C code-generation backend of the synthesizer.
//!
//! The paper reports that from ~1,400 lines of state machine and mapping
//! code, the synthesizer generates **22,000+ lines** of wrapper code
//! (Figures 3 and 4 show two generated wrappers). This module is that
//! backend: it prints, for every one of the 229 JNI functions, a C wrapper
//! whose body interleaves the synthesized pre-call checks, the call to the
//! wrapped function, and the post-return transitions. The `codegen_stats`
//! experiment counts the output against the specification input to
//! reproduce the annotation-burden claim.
//!
//! The generated code is illustrative C in the style of the paper's
//! figures; the *executable* form of the same table is interpreted by
//! [`crate::Jinn`].

use std::fmt::Write as _;

use jinn_spec::{Check, EntityCallMode, InstrPoint};
use minijni::registry::{ParamKind, RetKind};
use minijni::{registry, FuncSpec};

use crate::synth::synthesize;

/// Line statistics of one generation run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CodegenStats {
    /// Wrapper functions emitted (one per JNI function).
    pub functions: usize,
    /// Synthesized checks expanded into the wrappers.
    pub checks: usize,
    /// Total non-blank generated lines.
    pub generated_lines: usize,
    /// Non-comment lines of specification input (machines + mapping).
    pub spec_lines: usize,
}

fn c_type(kind: &ParamKind) -> &'static str {
    match kind {
        ParamKind::Ref => "jobject",
        ParamKind::MethodId => "jmethodID",
        ParamKind::FieldId => "jfieldID",
        ParamKind::Prim(p) => match p {
            minijvm::PrimType::Boolean => "jboolean",
            minijvm::PrimType::Byte => "jbyte",
            minijvm::PrimType::Char => "jchar",
            minijvm::PrimType::Short => "jshort",
            minijvm::PrimType::Int => "jint",
            minijvm::PrimType::Long => "jlong",
            minijvm::PrimType::Float => "jfloat",
            minijvm::PrimType::Double => "jdouble",
        },
        ParamKind::Size => "jsize",
        ParamKind::Mode => "jint",
        ParamKind::Name => "const char*",
        ParamKind::Buffer => "void*",
        ParamKind::Args => "const jvalue*",
        ParamKind::IsCopyOut => "jboolean*",
        ParamKind::VmOut => "JavaVM**",
    }
}

fn c_ret_type(ret: RetKind) -> &'static str {
    match ret {
        RetKind::Void => "void",
        RetKind::Prim(p) => match p {
            minijvm::PrimType::Boolean => "jboolean",
            minijvm::PrimType::Byte => "jbyte",
            minijvm::PrimType::Char => "jchar",
            minijvm::PrimType::Short => "jshort",
            minijvm::PrimType::Int => "jint",
            minijvm::PrimType::Long => "jlong",
            minijvm::PrimType::Float => "jfloat",
            minijvm::PrimType::Double => "jdouble",
        },
        RetKind::LocalRef | RetKind::GlobalRef | RetKind::WeakRef => "jobject",
        RetKind::MethodId => "jmethodID",
        RetKind::FieldId => "jfieldID",
        RetKind::Size => "jint",
        RetKind::Pin => "void*",
        RetKind::Address => "void*",
    }
}

fn default_c_value(ret: RetKind) -> &'static str {
    match ret {
        RetKind::Void => "",
        RetKind::Prim(_) | RetKind::Size => "0",
        _ => "NULL",
    }
}

fn param_name(spec: &FuncSpec, idx: usize) -> &str {
    spec.params[idx].name
}

fn emit_pre_check(out: &mut String, spec: &FuncSpec, point: &InstrPoint, fail: &str) {
    let fname = &spec.name;
    match point.check {
        Check::EnvMatches => {
            let _ = writeln!(out, "  /* [{}] JNIEnv* state */", point.machine);
            let _ = writeln!(out, "  if (jinn_env_of_current_thread() != env) {{");
            let _ = writeln!(
                out,
                "    return jinn_throw_JNIException(env, \"JNIEnv* mismatch in {fname}\"){fail};"
            );
            let _ = writeln!(out, "  }}");
        }
        Check::NoPendingException => {
            let _ = writeln!(out, "  /* [{}] exception state */", point.machine);
            let _ = writeln!(out, "  if (jinn_exception_pending(env)) {{");
            let _ = writeln!(
                out,
                "    return jinn_throw_JNIException(env, \"An exception is pending in {fname}.\"){fail};"
            );
            let _ = writeln!(out, "  }}");
        }
        Check::CriticalSensitive => {
            let _ = writeln!(out, "  /* [{}] critical-section state */", point.machine);
            let _ = writeln!(out, "  if (jinn_critical_depth(env) > 0) {{");
            let _ = writeln!(
                out,
                "    return jinn_throw_JNIException(env, \"{fname} called in a JNI critical section\"){fail};"
            );
            let _ = writeln!(out, "  }}");
        }
        Check::CriticalRelease => {
            let _ = writeln!(out, "  /* [{}] critical release matching */", point.machine);
            let _ = writeln!(
                out,
                "  if (!jinn_critical_release(env, {})) {{",
                param_name(spec, 1)
            );
            let _ = writeln!(
                out,
                "    return jinn_throw_JNIException(env, \"unmatched critical release in {fname}\"){fail};"
            );
            let _ = writeln!(out, "  }}");
        }
        Check::FixedType { param } => {
            let p = param_name(spec, param as usize);
            let expected = spec.params[param as usize].fixed_types.join("|");
            let _ = writeln!(out, "  /* [{}] fixed typing of `{p}` */", point.machine);
            let _ = writeln!(out, "  if ({p} != NULL) {{");
            let _ = writeln!(
                out,
                "    jclass jinn_cls_{p} = jinn_GetObjectClass(env, {p});"
            );
            let _ = writeln!(
                out,
                "    if (!jinn_conforms(env, jinn_cls_{p}, \"{expected}\")) {{"
            );
            let _ = writeln!(
                out,
                "      return jinn_throw_JNIException(env, \"`{p}` must conform to {expected} in {fname}\"){fail};"
            );
            let _ = writeln!(out, "    }}");
            let _ = writeln!(out, "  }}");
        }
        Check::EntityCall { mode } => {
            let (recv, mid) = match mode {
                EntityCallMode::Virtual => ("obj", "methodID"),
                EntityCallMode::Nonvirtual => ("obj", "methodID"),
                EntityCallMode::Static | EntityCallMode::Constructor => ("clazz", "methodID"),
            };
            let _ = writeln!(out, "  /* [{}] entity-specific typing */", point.machine);
            let _ = writeln!(out, "  {{");
            let _ = writeln!(out, "    jinn_method_t* m = jinn_lookup_method({mid});");
            let _ = writeln!(out, "    if (m == NULL) {{");
            let _ = writeln!(
                out,
                "      return jinn_throw_JNIException(env, \"method ID never issued in {fname}\"){fail};"
            );
            let _ = writeln!(out, "    }}");
            let _ = writeln!(out, "    if (!jinn_check_receiver(env, m, {recv}) ||");
            let _ = writeln!(out, "        !jinn_check_actuals(env, m, args)) {{");
            let _ = writeln!(
                out,
                "      return jinn_throw_JNIException(env, \"arguments do not conform in {fname}\"){fail};"
            );
            let _ = writeln!(out, "    }}");
            let _ = writeln!(out, "  }}");
        }
        Check::EntityFieldAccess { stat, write } => {
            let recv = if stat { "clazz" } else { "obj" };
            let _ = writeln!(out, "  /* [{}] entity-specific typing */", point.machine);
            let _ = writeln!(out, "  {{");
            let _ = writeln!(out, "    jinn_field_t* f = jinn_lookup_field(fieldID);");
            let _ = writeln!(
                out,
                "    if (f == NULL || !jinn_check_field(env, f, {recv}, {})) {{",
                write as u8
            );
            let _ = writeln!(
                out,
                "      return jinn_throw_JNIException(env, \"field access does not conform in {fname}\"){fail};"
            );
            let _ = writeln!(out, "    }}");
            let _ = writeln!(out, "  }}");
        }
        Check::KnownMethodId { param } => {
            let p = param_name(spec, param as usize);
            let _ = writeln!(out, "  /* [{}] entity ID validity */", point.machine);
            let _ = writeln!(out, "  if (jinn_lookup_method({p}) == NULL) {{");
            let _ = writeln!(
                out,
                "    return jinn_throw_JNIException(env, \"method ID never issued in {fname}\"){fail};"
            );
            let _ = writeln!(out, "  }}");
        }
        Check::KnownFieldId { param } => {
            let p = param_name(spec, param as usize);
            let _ = writeln!(out, "  /* [{}] entity ID validity */", point.machine);
            let _ = writeln!(out, "  if (jinn_lookup_field({p}) == NULL) {{");
            let _ = writeln!(
                out,
                "    return jinn_throw_JNIException(env, \"field ID never issued in {fname}\"){fail};"
            );
            let _ = writeln!(out, "  }}");
        }
        Check::FinalFieldGuard => {
            let _ = writeln!(out, "  /* [{}] access control */", point.machine);
            let _ = writeln!(out, "  if (jinn_field_is_final(fieldID)) {{");
            let _ = writeln!(
                out,
                "    return jinn_throw_JNIException(env, \"{fname} assigns to a final field\"){fail};"
            );
            let _ = writeln!(out, "  }}");
        }
        Check::NonNull { param } => {
            let p = param_name(spec, param as usize);
            let _ = writeln!(out, "  /* [{}] nullness of `{p}` */", point.machine);
            let _ = writeln!(out, "  if ({p} == NULL) {{");
            let _ = writeln!(
                out,
                "    return jinn_throw_JNIException(env, \"`{p}` must not be null in {fname}\"){fail};"
            );
            let _ = writeln!(out, "  }}");
        }
        Check::PinRelease { param } => {
            let p = param_name(spec, param as usize);
            let _ = writeln!(out, "  /* [{}] pinned buffer release */", point.machine);
            let _ = writeln!(out, "  if (!jinn_pin_release(env, {p})) {{");
            let _ = writeln!(
                out,
                "    return jinn_throw_JNIException(env, \"double free of pinned buffer in {fname}\"){fail};"
            );
            let _ = writeln!(out, "  }}");
        }
        Check::RefUse { param } => {
            let p = param_name(spec, param as usize);
            let table = if point.machine == "local-reference" {
                "locals"
            } else {
                "globals"
            };
            let _ = writeln!(out, "  /* [{}] use of `{p}` */", point.machine);
            let _ = writeln!(
                out,
                "  if ({p} != NULL && jinn_ref_kind({p}) == JINN_{}_REF) {{",
                if point.machine == "local-reference" {
                    "LOCAL"
                } else {
                    "GLOBAL"
                }
            );
            let _ = writeln!(out, "    jinn_ref_set_t* refs_{p} = jinn_{table}(env);");
            let _ = writeln!(out, "    if (!jinn_refs_contains(refs_{p}, {p})) {{");
            let _ = writeln!(
                out,
                "      return jinn_throw_JNIException(env, \"Error: dangling `{p}` in {fname}\"){fail};"
            );
            let _ = writeln!(out, "    }}");
            let _ = writeln!(out, "  }}");
        }
        Check::GlobalRelease { param } => {
            let p = param_name(spec, param as usize);
            let _ = writeln!(out, "  /* [{}] global release */", point.machine);
            let _ = writeln!(out, "  if (!jinn_global_release(env, {p})) {{");
            let _ = writeln!(
                out,
                "    return jinn_throw_JNIException(env, \"double delete of global ref in {fname}\"){fail};"
            );
            let _ = writeln!(out, "  }}");
        }
        Check::LocalDelete { param } => {
            let p = param_name(spec, param as usize);
            let _ = writeln!(out, "  /* [{}] local release */", point.machine);
            let _ = writeln!(out, "  if (!jinn_local_release(env, {p})) {{");
            let _ = writeln!(
                out,
                "    return jinn_throw_JNIException(env, \"double delete of local ref in {fname}\"){fail};"
            );
            let _ = writeln!(out, "  }}");
        }
        Check::FramePop => {
            let _ = writeln!(out, "  /* [{}] frame balance */", point.machine);
            let _ = writeln!(out, "  if (!jinn_frame_pop(env)) {{");
            let _ = writeln!(
                out,
                "    return jinn_throw_JNIException(env, \"{fname} pops a frame that was never pushed\"){fail};"
            );
            let _ = writeln!(out, "  }}");
        }
        _ => {}
    }
}

fn emit_post_check(out: &mut String, spec: &FuncSpec, point: &InstrPoint) {
    match point.check {
        Check::RecordMethodId => {
            let _ = writeln!(out, "  /* [{}] record entity signature */", point.machine);
            let _ = writeln!(out, "  jinn_record_method(env, jinn_result);");
        }
        Check::RecordFieldId => {
            let _ = writeln!(out, "  /* [{}] record entity signature */", point.machine);
            let _ = writeln!(out, "  jinn_record_field(env, jinn_result);");
        }
        Check::CriticalAcquire => {
            let _ = writeln!(out, "  /* [{}] critical acquire */", point.machine);
            let _ = writeln!(
                out,
                "  jinn_critical_acquire(env, {});",
                param_name(spec, 0)
            );
        }
        Check::PinAcquire => {
            let _ = writeln!(out, "  /* [{}] pin acquire */", point.machine);
            let _ = writeln!(
                out,
                "  jinn_pin_acquire(env, {}, jinn_result);",
                param_name(spec, 0)
            );
        }
        Check::MonitorAcquire => {
            let _ = writeln!(out, "  /* [{}] monitor acquire */", point.machine);
            let _ = writeln!(out, "  jinn_monitor_acquire(env, {});", param_name(spec, 0));
        }
        Check::MonitorRelease => {
            let _ = writeln!(out, "  /* [{}] monitor release */", point.machine);
            let _ = writeln!(out, "  jinn_monitor_release(env, {});", param_name(spec, 0));
        }
        Check::GlobalAcquire => {
            let _ = writeln!(out, "  /* [{}] global acquire */", point.machine);
            let _ = writeln!(out, "  jinn_global_acquire(env, jinn_result);");
        }
        Check::LocalAcquireFromReturn => {
            let _ = writeln!(out, "  /* [{}] local acquire (+overflow) */", point.machine);
            let _ = writeln!(out, "  if (!jinn_local_acquire(env, jinn_result)) {{");
            let _ = writeln!(
                out,
                "    return jinn_throw_JNIException(env, \"local reference frame overflow in {}\");",
                spec.name
            );
            let _ = writeln!(out, "  }}");
        }
        Check::FramePush => {
            let _ = writeln!(out, "  /* [{}] frame push */", point.machine);
            let _ = writeln!(out, "  jinn_frame_push(env, {});", param_name(spec, 0));
        }
        Check::EnsureCapacity => {
            let _ = writeln!(out, "  /* [{}] capacity raise */", point.machine);
            let _ = writeln!(out, "  jinn_ensure_capacity(env, {});", param_name(spec, 0));
        }
        _ => {}
    }
}

/// Generates the full C wrapper source for all 229 functions.
pub fn generate_c_wrappers() -> (String, CodegenStats) {
    let reg = registry();
    let (table, synth_stats) = synthesize();
    let mut out = String::new();
    let _ = writeln!(out, "/* Generated by the Jinn synthesizer. DO NOT EDIT.");
    let _ = writeln!(
        out,
        " * Input: 11 state machine specifications + languageTransitionsFor"
    );
    let _ = writeln!(
        out,
        " * mapping resolved over the 229-function JNI registry."
    );
    let _ = writeln!(out, " */");
    let _ = writeln!(out, "#include <jni.h>");
    let _ = writeln!(out, "#include \"jinn_runtime.h\"");
    let _ = writeln!(out);

    // Function ids, resolved once at synthesis time: every name in the
    // registry becomes a dense u16 constant (jni.h order), so the
    // generated runtime dispatches, saves, and counts by id — no name
    // lookups on the interposition hot path.
    let _ = writeln!(
        out,
        "/* --- generated function ids (u16, jni.h order) --------------- */"
    );
    let _ = writeln!(out, "enum jinn_func_id {{");
    for (func, spec) in reg.iter() {
        let _ = writeln!(out, "  JINN_FUNC_{} = {},", spec.name, func.0);
    }
    let _ = writeln!(out, "  JINN_FUNC_COUNT = {}", reg.len());
    let _ = writeln!(out, "}};");
    let _ = writeln!(out);

    // Forward declarations (the generated header section).
    let _ = writeln!(
        out,
        "/* --- generated prototypes ------------------------------------ */"
    );
    for (_, spec) in reg.iter() {
        let ret_ty = c_ret_type(spec.ret);
        let mut params = String::from("JNIEnv*");
        for p in &spec.params {
            let _ = write!(params, ", {}", c_type(&p.kind));
        }
        let _ = writeln!(out, "{} jinn_wrapped_{}({});", ret_ty, spec.name, params);
    }
    let _ = writeln!(out);

    let mut checks = 0usize;
    for (func, spec) in reg.iter() {
        let ret_ty = c_ret_type(spec.ret);
        // Variadic forms take `...`/`va_list`; the wrapper marshals into a
        // jvalue array before checking, exactly as Jinn's generated
        // wrappers do.
        let is_variadic_form =
            spec.params.iter().any(|p| p.kind == ParamKind::Args) && !spec.name.ends_with('A');
        let mut params = String::from("JNIEnv* env");
        for p in &spec.params {
            if p.kind == ParamKind::Args && is_variadic_form {
                if spec.name.ends_with('V') {
                    let _ = write!(params, ", va_list {}", p.name);
                } else {
                    let _ = write!(params, ", ...");
                }
            } else {
                let _ = write!(params, ", {} {}", c_type(&p.kind), p.name);
            }
        }
        let _ = writeln!(out, "{} jinn_wrapped_{}({}) {{", ret_ty, spec.name, params);

        // Prologue: thread lookup and transition accounting (the
        // interposition framework cost measured in Table 3 column 4).
        // Accounting is keyed by the synthesis-time function id, not the
        // name, so per-call bookkeeping is an array index.
        let _ = writeln!(out, "  jinn_thread_t* jinn_t = jinn_current_thread();");
        let _ = writeln!(
            out,
            "  jinn_count_transition(jinn_t, JINN_CALL_C_TO_JAVA, JINN_FUNC_{});",
            spec.name
        );
        if is_variadic_form {
            let _ = writeln!(out, "  jvalue jinn_args_buf[JINN_MAX_ARGS];");
            if spec.name.ends_with('V') {
                let _ = writeln!(
                    out,
                    "  const jvalue* args = jinn_marshal_va_list(env, methodID, args_va, jinn_args_buf);"
                );
            } else {
                let _ = writeln!(out, "  va_list jinn_ap;");
                let _ = writeln!(out, "  va_start(jinn_ap, methodID);");
                let _ = writeln!(
                    out,
                    "  const jvalue* args = jinn_marshal_va_list(env, methodID, jinn_ap, jinn_args_buf);"
                );
                let _ = writeln!(out, "  va_end(jinn_ap);");
            }
        }

        // The synthesized throw both raises the exception and returns the
        // function's default value.
        let fail = match default_c_value(spec.ret) {
            "" => String::new(),
            v => format!(", {v}"),
        };
        for point in table.pre(func) {
            emit_pre_check(&mut out, spec, point, &fail);
            checks += 1;
        }

        // The call to the wrapped JNI function (the A-form carries the
        // marshalled arguments for variadic wrappers).
        let callee = if is_variadic_form {
            let base = spec.name.trim_end_matches('V');
            format!("{base}A")
        } else {
            spec.name.clone()
        };
        let arg_list: Vec<&str> = spec.params.iter().map(|p| p.name).collect();
        let call = format!(
            "(*env)->{}(env{}{})",
            callee,
            if arg_list.is_empty() { "" } else { ", " },
            arg_list.join(", ")
        );
        if spec.ret == RetKind::Void {
            let _ = writeln!(out, "  {call};");
        } else {
            let _ = writeln!(out, "  {ret_ty} jinn_result = {call};");
        }

        for point in table.post(func) {
            emit_post_check(&mut out, spec, point);
            checks += 1;
        }
        let _ = writeln!(
            out,
            "  jinn_count_transition(jinn_t, JINN_RETURN_JAVA_TO_C, JINN_FUNC_{});",
            spec.name
        );
        if spec.ret == RetKind::Void {
            let _ = writeln!(out, "}}");
        } else {
            let _ = writeln!(out, "  return jinn_result;");
            let _ = writeln!(out, "}}");
        }
        let _ = writeln!(out);
    }

    // The interposition table: how the agent injects the wrappers into a
    // running JVM through the JVMTI (the analysis driver's work).
    let _ = writeln!(
        out,
        "/* --- generated interposition table ---------------------------- */"
    );
    let _ = writeln!(
        out,
        "void jinn_interpose_all(struct JNINativeInterface_* functions) {{"
    );
    // The saved-function table is indexed by the generated id enum, so
    // un-interposed calls forward through one array read.
    for (_, spec) in reg.iter() {
        let _ = writeln!(
            out,
            "  jinn_saved[JINN_FUNC_{}] = (void (*)()) functions->{};",
            spec.name, spec.name
        );
        let _ = writeln!(
            out,
            "  functions->{} = ({}(*)()) jinn_wrapped_{};",
            spec.name,
            c_ret_type(spec.ret),
            spec.name
        );
    }
    let _ = writeln!(out, "}}");

    let generated_lines = out.lines().filter(|l| !l.trim().is_empty()).count();
    let stats = CodegenStats {
        functions: reg.len(),
        checks,
        generated_lines,
        spec_lines: synth_stats.spec_lines,
    };
    (out, stats)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generates_all_wrappers() {
        let (code, stats) = generate_c_wrappers();
        assert_eq!(stats.functions, 229);
        assert!(code.contains("jinn_wrapped_CallStaticVoidMethodA"));
        assert!(code.contains("jinn_wrapped_GetStringCritical"));
        assert!(code.contains("jinn_throw_JNIException"));
    }

    #[test]
    fn generated_code_dwarfs_the_spec() {
        let (_, stats) = generate_c_wrappers();
        // Paper: ~1,400 spec lines -> 22,000+ generated lines. The exact
        // totals depend on formatting; the *ratio* is the claim.
        assert!(
            stats.generated_lines > 10 * stats.spec_lines,
            "generated {} vs spec {}",
            stats.generated_lines,
            stats.spec_lines
        );
        assert!(
            stats.generated_lines > 10_000,
            "generated {}",
            stats.generated_lines
        );
    }

    #[test]
    fn emits_interned_function_id_enum() {
        use minijni::registry::FuncId;
        let (code, _) = generate_c_wrappers();
        // The enum mirrors the Rust-side registry ids exactly, so the
        // generated C and the checker agree on every function's u16 id.
        assert!(code.contains(&format!(
            "JINN_FUNC_GetVersion = {},",
            FuncId::of("GetVersion").0
        )));
        assert!(code.contains("JINN_FUNC_COUNT = 229"));
        // The interposition table and transition counters are id-keyed.
        assert!(code.contains("jinn_saved[JINN_FUNC_GetVersion]"));
        assert!(code.contains("JINN_CALL_C_TO_JAVA, JINN_FUNC_GetVersion"));
    }

    #[test]
    fn figure_4_shape_is_present() {
        // The wrapper for CallStaticVoidMethodA must contain a dangling
        // reference check before the call, as in Figure 4.
        let (code, _) = generate_c_wrappers();
        let start = code
            .find("jinn_wrapped_CallStaticVoidMethodA(JNIEnv* env")
            .expect("wrapper exists");
        let end = code[start..]
            .find("\n}\n")
            .map(|e| start + e)
            .unwrap_or(code.len());
        let body = &code[start..end];
        assert!(
            body.contains("jinn_refs_contains"),
            "Use check (Figure 4 line 6)"
        );
        assert!(
            body.contains("An exception is pending"),
            "exception state check"
        );
        assert!(
            body.contains("(*env)->CallStaticVoidMethodA"),
            "wrapped call"
        );
    }
}
