//! The synthesizer — Algorithm 1 of the paper.
//!
//! Input: the eleven state-machine specifications and their
//! `languageTransitionsFor` mapping (crate `jinn-spec`), plus the JNI
//! function registry (crate `minijni`). Output: for every one of the 229
//! JNI functions, the ordered pre-call and post-return check lists its
//! synthesized wrapper executes. The runtime checker
//! ([`crate::Jinn`]) interprets this table; the C backend
//! ([`crate::codegen`]) prints it as wrapper source code.
//!
//! The module also hosts the **static discharge pass**
//! ([`discharge`]): given a [`WorkloadManifest`] of JNI functions a
//! workload can actually call, it proves machine transitions
//! untriggerable (every trigger names only uncallable functions) or
//! unreachable (the source state cannot be entered once untriggerable
//! transitions are removed) and emits a machine-readable
//! [`DischargeReport`]. Discharged transitions can then be compiled out
//! with [`jinn_fsm::CompiledMachine::compile_discharged`] — sound
//! because an elided transition answers `NotApplicable` exactly like a
//! transition whose trigger never fires.

use std::collections::BTreeSet;
use std::sync::OnceLock;

use jinn_fsm::{MachineSpec, TransitionId};
use jinn_spec::{instrumentation, Check, InstrPoint, Phase, BOUNDARY_CHECKS};
use minijni::registry;

/// The synthesized per-function check table.
#[derive(Debug, Clone)]
pub struct CheckTable {
    pre: Vec<Vec<InstrPoint>>,
    post: Vec<Vec<InstrPoint>>,
}

impl CheckTable {
    /// Pre-call checks for a function.
    pub fn pre(&self, func: minijni::FuncId) -> &[InstrPoint] {
        &self.pre[func.0 as usize]
    }

    /// Post-return checks for a function.
    pub fn post(&self, func: minijni::FuncId) -> &[InstrPoint] {
        &self.post[func.0 as usize]
    }

    /// Total number of synthesized checks.
    pub fn len(&self) -> usize {
        self.pre.iter().map(Vec::len).sum::<usize>() + self.post.iter().map(Vec::len).sum::<usize>()
    }

    /// Drops every check belonging to machines rejected by `keep` — the
    /// ablation knob: synthesizing from a subset of the eleven machines.
    pub fn retain_machines(&mut self, keep: impl Fn(&'static str) -> bool) {
        for list in self.pre.iter_mut().chain(self.post.iter_mut()) {
            list.retain(|p| keep(p.machine));
        }
    }

    /// A check table is never empty.
    pub fn is_empty(&self) -> bool {
        false
    }
}

/// Statistics about one synthesis run, for the `codegen_stats` experiment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SynthStats {
    /// Number of input state machines.
    pub machines: usize,
    /// Number of resolved instrumentation points (the cross product).
    pub instr_points: usize,
    /// Functions that received at least one check (all 229).
    pub wrapped_functions: usize,
    /// Driver-side checks at the native-method boundary.
    pub boundary_checks: usize,
    /// Non-comment lines of specification input.
    pub spec_lines: usize,
}

/// Runs Algorithm 1: expands machines × transitions × triggers into the
/// per-function check table.
pub fn synthesize() -> (CheckTable, SynthStats) {
    let reg = registry();
    let n = reg.len();
    let mut pre: Vec<Vec<InstrPoint>> = vec![Vec::new(); n];
    let mut post: Vec<Vec<InstrPoint>> = vec![Vec::new(); n];
    let points = instrumentation();
    let instr_points = points.len();
    for p in points {
        match p.phase {
            Phase::Pre => pre[p.func.0 as usize].push(p),
            Phase::Post => post[p.func.0 as usize].push(p),
        }
    }
    let wrapped_functions = (0..n)
        .filter(|&i| !pre[i].is_empty() || !post[i].is_empty())
        .count();
    let stats = SynthStats {
        machines: jinn_spec::machines().len(),
        instr_points,
        wrapped_functions,
        boundary_checks: BOUNDARY_CHECKS.len(),
        spec_lines: jinn_spec::spec_source_lines(),
    };
    (CheckTable { pre, post }, stats)
}

/// The memoized synthesis result. Algorithm 1 is a pure function of the
/// in-tree specifications, so it runs once per process; callers that
/// need a private table (every [`crate::Jinn`] construction) clone the
/// cached one instead of re-expanding machines × transitions × triggers.
/// The fleet-serving daemon constructs one checker per ingested session,
/// which is what makes the clone-vs-resynthesize difference matter.
pub fn synthesize_cached() -> (&'static CheckTable, SynthStats) {
    static CACHE: OnceLock<(CheckTable, SynthStats)> = OnceLock::new();
    let (table, stats) = CACHE.get_or_init(synthesize);
    (table, *stats)
}

/// The set of JNI functions one workload's native code can call — the
/// call-site metadata input to the static [`discharge`] pass.
///
/// Construction validates every name against the function registry
/// without panicking: names the registry does not know are kept — and
/// conservatively treated as callable — but surfaced via
/// [`WorkloadManifest::unknown_functions`] so an audit can flag a
/// misspelled manifest instead of silently weakening discharge.
#[derive(Debug, Clone)]
pub struct WorkloadManifest {
    name: String,
    called: BTreeSet<String>,
    unknown: Vec<String>,
}

impl WorkloadManifest {
    /// Builds a manifest from a workload name and its callable functions.
    pub fn new<I, S>(name: impl Into<String>, functions: I) -> WorkloadManifest
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        let reg = registry();
        let called: BTreeSet<String> = functions.into_iter().map(Into::into).collect();
        let unknown: Vec<String> = called
            .iter()
            .filter(|f| !reg.iter().any(|(_, s)| s.name == **f))
            .cloned()
            .collect();
        WorkloadManifest {
            name: name.into(),
            called,
            unknown,
        }
    }

    /// The workload's name, carried into the report.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Whether the workload can call `func`.
    pub fn can_call(&self, func: &str) -> bool {
        self.called.contains(func)
    }

    /// Manifest entries the registry does not know (kept callable).
    pub fn unknown_functions(&self) -> &[String] {
        &self.unknown
    }

    /// The callable functions in sorted order — the manifest's stable
    /// identity, used for pool-cache keying and wire serialization.
    pub fn functions(&self) -> impl Iterator<Item = &str> {
        self.called.iter().map(String::as_str)
    }

    /// Number of callable functions.
    pub fn len(&self) -> usize {
        self.called.len()
    }

    /// True if the manifest lists no callable functions.
    pub fn is_empty(&self) -> bool {
        self.called.is_empty()
    }
}

/// Why a transition was statically discharged.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DischargeReason {
    /// Every trigger names only functions the workload cannot call.
    TriggerAbsent,
    /// The source state cannot be entered once `TriggerAbsent`
    /// transitions are removed from the machine.
    SourceUnreachable,
}

impl DischargeReason {
    /// Stable string form, used in the JSON report.
    pub fn as_str(self) -> &'static str {
        match self {
            DischargeReason::TriggerAbsent => "trigger_absent",
            DischargeReason::SourceUnreachable => "source_unreachable",
        }
    }
}

/// One transition proven untriggerable for a workload.
#[derive(Debug, Clone)]
pub struct DischargedTransition {
    /// The transition's id in its machine.
    pub id: TransitionId,
    /// The transition's name.
    pub transition: String,
    /// Why it was discharged.
    pub reason: DischargeReason,
}

/// The discharge result for one machine.
#[derive(Debug, Clone)]
pub struct MachineDischarge {
    /// The machine's name.
    pub machine: String,
    /// Total transitions in the machine.
    pub total_transitions: usize,
    /// Transitions proven untriggerable, in id order.
    pub discharged: Vec<DischargedTransition>,
    /// True when *every* transition was discharged: the machine can
    /// never leave its initial state under this workload, so its checks
    /// need not run at all.
    pub inactive: bool,
}

impl MachineDischarge {
    /// The transition ids to pass to
    /// [`jinn_fsm::CompiledMachine::compile_discharged`].
    pub fn elided(&self) -> Vec<TransitionId> {
        self.discharged.iter().map(|d| d.id).collect()
    }
}

/// The full static discharge report for one workload across a set of
/// machines — the artifact the serving and replay layers surface.
#[derive(Debug, Clone)]
pub struct DischargeReport {
    /// The workload's name (from the manifest).
    pub workload: String,
    /// Callable-function count in the manifest.
    pub manifest_functions: usize,
    /// Manifest entries unknown to the registry (audit trail).
    pub unknown_functions: Vec<String>,
    /// Per-machine results, in input order.
    pub machines: Vec<MachineDischarge>,
}

impl DischargeReport {
    /// The result for one machine, by name.
    pub fn for_machine(&self, name: &str) -> Option<&MachineDischarge> {
        self.machines.iter().find(|m| m.machine == name)
    }

    /// The elided transition ids for one machine (empty if unknown).
    pub fn elided_for(&self, name: &str) -> Vec<TransitionId> {
        self.for_machine(name).map_or(Vec::new(), |m| m.elided())
    }

    /// Total transitions across all machines.
    pub fn total_transitions(&self) -> usize {
        self.machines.iter().map(|m| m.total_transitions).sum()
    }

    /// Total discharged transitions across all machines.
    pub fn total_discharged(&self) -> usize {
        self.machines.iter().map(|m| m.discharged.len()).sum()
    }

    /// Names of machines that are entirely inactive for this workload.
    pub fn inactive_machines(&self) -> Vec<&str> {
        self.machines
            .iter()
            .filter(|m| m.inactive)
            .map(|m| m.machine.as_str())
            .collect()
    }

    /// Serializes the report as JSON (hand-rolled; no serde in-tree).
    pub fn to_json(&self) -> String {
        fn esc(s: &str) -> String {
            let mut out = String::with_capacity(s.len());
            for c in s.chars() {
                match c {
                    '"' => out.push_str("\\\""),
                    '\\' => out.push_str("\\\\"),
                    '\n' => out.push_str("\\n"),
                    c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
                    c => out.push(c),
                }
            }
            out
        }
        let mut out = String::new();
        out.push_str("{\n");
        out.push_str(&format!("  \"workload\": \"{}\",\n", esc(&self.workload)));
        out.push_str(&format!(
            "  \"manifest_functions\": {},\n",
            self.manifest_functions
        ));
        let unknown: Vec<String> = self
            .unknown_functions
            .iter()
            .map(|f| format!("\"{}\"", esc(f)))
            .collect();
        out.push_str(&format!(
            "  \"unknown_functions\": [{}],\n",
            unknown.join(", ")
        ));
        out.push_str(&format!(
            "  \"total_transitions\": {},\n",
            self.total_transitions()
        ));
        out.push_str(&format!(
            "  \"total_discharged\": {},\n",
            self.total_discharged()
        ));
        let inactive: Vec<String> = self
            .inactive_machines()
            .iter()
            .map(|m| format!("\"{}\"", esc(m)))
            .collect();
        out.push_str(&format!(
            "  \"inactive_machines\": [{}],\n",
            inactive.join(", ")
        ));
        out.push_str("  \"machines\": [\n");
        for (i, m) in self.machines.iter().enumerate() {
            out.push_str("    {\n");
            out.push_str(&format!("      \"machine\": \"{}\",\n", esc(&m.machine)));
            out.push_str(&format!(
                "      \"total_transitions\": {},\n",
                m.total_transitions
            ));
            out.push_str(&format!("      \"inactive\": {},\n", m.inactive));
            out.push_str("      \"discharged\": [\n");
            for (j, d) in m.discharged.iter().enumerate() {
                out.push_str(&format!(
                    "        {{\"transition\": \"{}\", \"reason\": \"{}\"}}{}\n",
                    esc(&d.transition),
                    d.reason.as_str(),
                    if j + 1 < m.discharged.len() { "," } else { "" },
                ));
            }
            out.push_str("      ]\n");
            out.push_str(&format!(
                "    }}{}\n",
                if i + 1 < self.machines.len() { "," } else { "" }
            ));
        }
        out.push_str("  ]\n}\n");
        out
    }
}

/// Discharges one machine against a manifest.
///
/// Two sound rules, applied in order:
///
/// 1. **TriggerAbsent** — a transition is untriggerable if it has at
///    least one trigger, *every* trigger carries an explicit function
///    list (a prose-only trigger is conservatively always live), and
///    the workload can call none of the listed functions.
/// 2. **SourceUnreachable** — with untriggerable transitions removed,
///    compute the states reachable from the initial state; any
///    remaining transition whose source state is unreachable can never
///    fire either. (Removing those does not shrink reachability
///    further — their sources were already unreachable — so a single
///    closure suffices.)
pub fn discharge_machine(spec: &MachineSpec, manifest: &WorkloadManifest) -> MachineDischarge {
    let transitions = spec.transitions();
    let mut reasons: Vec<Option<DischargeReason>> = vec![None; transitions.len()];
    for (i, t) in transitions.iter().enumerate() {
        let untriggerable = !t.triggers().is_empty()
            && t.triggers().iter().all(|trig| {
                !trig.functions().is_empty()
                    && trig.functions().iter().all(|f| !manifest.can_call(f))
            });
        if untriggerable {
            reasons[i] = Some(DischargeReason::TriggerAbsent);
        }
    }

    let mut reachable = vec![false; spec.states().len()];
    reachable[spec.initial().index()] = true;
    loop {
        let mut changed = false;
        for (i, t) in transitions.iter().enumerate() {
            if reasons[i].is_none() && reachable[t.from().index()] && !reachable[t.to().index()] {
                reachable[t.to().index()] = true;
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }
    for (i, t) in transitions.iter().enumerate() {
        if reasons[i].is_none() && !reachable[t.from().index()] {
            reasons[i] = Some(DischargeReason::SourceUnreachable);
        }
    }

    let discharged: Vec<DischargedTransition> = transitions
        .iter()
        .enumerate()
        .filter_map(|(i, t)| {
            reasons[i].map(|reason| DischargedTransition {
                id: spec.transition_id(t.name()).expect("own transition"),
                transition: t.name().to_string(),
                reason,
            })
        })
        .collect();
    MachineDischarge {
        machine: spec.name().to_string(),
        total_transitions: transitions.len(),
        inactive: discharged.len() == transitions.len(),
        discharged,
    }
}

/// Runs the static discharge pass over a set of machines.
pub fn discharge(machines: &[MachineSpec], manifest: &WorkloadManifest) -> DischargeReport {
    DischargeReport {
        workload: manifest.name().to_string(),
        manifest_functions: manifest.len(),
        unknown_functions: manifest.unknown_functions().to_vec(),
        machines: machines
            .iter()
            .map(|m| discharge_machine(m, manifest))
            .collect(),
    }
}

/// True if the check mutates checker state (an *encoding* update) rather
/// than only validating — used by the codegen backend to decide whether to
/// emit bookkeeping or an `if`.
pub fn is_encoding_update(check: Check) -> bool {
    matches!(
        check,
        Check::CriticalAcquire
            | Check::RecordMethodId
            | Check::RecordFieldId
            | Check::PinAcquire
            | Check::MonitorAcquire
            | Check::MonitorRelease
            | Check::GlobalAcquire
            | Check::FramePush
            | Check::EnsureCapacity
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use minijni::FuncId;

    #[test]
    fn every_function_is_wrapped() {
        let (_, stats) = synthesize();
        assert_eq!(stats.wrapped_functions, 229);
        assert_eq!(stats.machines, 11);
        assert!(stats.instr_points > 1500);
    }

    #[test]
    fn table_orders_checks_per_function() {
        let (table, _) = synthesize();
        let f = FuncId::of("GetStringCritical");
        assert!(table.pre(f).iter().any(|p| p.check == Check::EnvMatches));
        assert!(table
            .post(f)
            .iter()
            .any(|p| p.check == Check::CriticalAcquire));
        assert!(table.post(f).iter().any(|p| p.check == Check::PinAcquire));
        // Critical-insensitive: no CriticalSensitive pre check.
        assert!(!table
            .pre(f)
            .iter()
            .any(|p| p.check == Check::CriticalSensitive));
    }

    #[test]
    fn table_len_matches_points() {
        let (table, stats) = synthesize();
        assert_eq!(table.len(), stats.instr_points);
        assert!(!table.is_empty());
    }

    #[test]
    fn encoding_classification() {
        assert!(is_encoding_update(Check::PinAcquire));
        assert!(!is_encoding_update(Check::EnvMatches));
        assert!(!is_encoding_update(Check::NonNull { param: 0 }));
    }

    /// The Table 3 mix: no monitors, no critical sections, but global
    /// refs and pinned string bytes. (Kept in sync with the workloads
    /// crate by its `manifest_covers_workload` test; duplicated here
    /// because `jinn-workloads` depends on this crate.)
    fn bench_manifest() -> WorkloadManifest {
        WorkloadManifest::new(
            "table3-mix",
            [
                "CallIntMethodA",
                "DeleteGlobalRef",
                "DeleteLocalRef",
                "GetFieldID",
                "GetIntArrayRegion",
                "GetIntField",
                "GetMethodID",
                "GetObjectClass",
                "GetStringUTFChars",
                "GetStringUTFLength",
                "IsSameObject",
                "NewGlobalRef",
                "NewIntArray",
                "NewLocalRef",
                "NewStringUTF",
                "ReleaseStringUTFChars",
                "SetIntArrayRegion",
                "SetIntField",
            ],
        )
    }

    #[test]
    fn manifest_validates_against_registry_without_panicking() {
        let m = WorkloadManifest::new("typo", ["MonitorEnter", "NotARealFunction"]);
        assert_eq!(m.unknown_functions(), ["NotARealFunction".to_string()]);
        // Unknown names stay conservatively callable.
        assert!(m.can_call("NotARealFunction"));
        assert!(m.can_call("MonitorEnter"));
        assert_eq!(m.len(), 2);
    }

    #[test]
    fn bench_mix_discharges_monitor_and_critical_section_entirely() {
        let report = discharge(&jinn_spec::machines(), &bench_manifest());
        assert!(report.unknown_functions.is_empty());

        let monitor = report.for_machine("monitor").expect("present");
        assert!(monitor.inactive, "{monitor:?}");
        let by_name = |name: &str| {
            monitor
                .discharged
                .iter()
                .find(|d| d.transition == name)
                .map(|d| d.reason)
        };
        assert_eq!(by_name("Acquire"), Some(DischargeReason::TriggerAbsent));
        assert_eq!(by_name("Release"), Some(DischargeReason::TriggerAbsent));
        // LeakAtExit's trigger is prose (program termination), but its
        // source state `Held` is unenterable once Acquire is discharged.
        assert_eq!(
            by_name("LeakAtExit"),
            Some(DischargeReason::SourceUnreachable)
        );

        let critical = report.for_machine("critical-section").expect("present");
        assert!(critical.inactive, "{critical:?}");

        // The mix pins string bytes and makes global refs: both resource
        // machines must stay fully active.
        let pinned = report.for_machine("pinned-buffer").expect("present");
        assert!(pinned.discharged.is_empty(), "{pinned:?}");
        let global = report.for_machine("global-reference").expect("present");
        assert!(global.discharged.is_empty(), "{global:?}");

        assert_eq!(report.inactive_machines(), ["critical-section", "monitor"]);
        assert!(report.total_discharged() >= 7);
        assert!(report.total_discharged() < report.total_transitions());
    }

    #[test]
    fn prose_triggers_are_never_discharged_directly() {
        // An empty manifest can call nothing, so every transition whose
        // triggers all carry function lists discharges — but prose-only
        // triggers (no list) must survive unless their source is cut off.
        let empty = WorkloadManifest::new("nothing", Vec::<String>::new());
        let report = discharge(&jinn_spec::machines(), &empty);
        let nullness = report.for_machine("nullness").expect("present");
        assert!(
            nullness.discharged.is_empty(),
            "prose trigger discharged: {nullness:?}"
        );
        let global = report.for_machine("global-reference").expect("present");
        assert!(global.inactive, "{global:?}");
        assert_eq!(
            global
                .discharged
                .iter()
                .find(|d| d.transition == "UseAfterRelease")
                .map(|d| d.reason),
            Some(DischargeReason::SourceUnreachable)
        );
    }

    #[test]
    fn discharged_machine_compiles_with_elided_transitions() {
        let spec = jinn_spec::monitor();
        let report = discharge(std::slice::from_ref(&spec), &bench_manifest());
        let elided = report.elided_for("monitor");
        assert_eq!(elided.len(), 3);
        let compiled = jinn_fsm::CompiledMachine::compile_discharged(spec, &elided);
        assert_eq!(compiled.elided_transitions().len(), 3);
    }

    #[test]
    fn report_json_is_well_formed_enough() {
        let report = discharge(&jinn_spec::machines(), &bench_manifest());
        let json = report.to_json();
        assert!(json.contains("\"workload\": \"table3-mix\""));
        assert!(json.contains("\"machine\": \"monitor\""));
        assert!(json.contains("\"reason\": \"trigger_absent\""));
        assert!(json.contains("\"reason\": \"source_unreachable\""));
        assert!(json.contains("\"inactive_machines\": [\"critical-section\", \"monitor\"]"));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }
}
