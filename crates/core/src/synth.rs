//! The synthesizer — Algorithm 1 of the paper.
//!
//! Input: the eleven state-machine specifications and their
//! `languageTransitionsFor` mapping (crate `jinn-spec`), plus the JNI
//! function registry (crate `minijni`). Output: for every one of the 229
//! JNI functions, the ordered pre-call and post-return check lists its
//! synthesized wrapper executes. The runtime checker
//! ([`crate::Jinn`]) interprets this table; the C backend
//! ([`crate::codegen`]) prints it as wrapper source code.

use std::sync::OnceLock;

use jinn_spec::{instrumentation, Check, InstrPoint, Phase, BOUNDARY_CHECKS};
use minijni::registry;

/// The synthesized per-function check table.
#[derive(Debug, Clone)]
pub struct CheckTable {
    pre: Vec<Vec<InstrPoint>>,
    post: Vec<Vec<InstrPoint>>,
}

impl CheckTable {
    /// Pre-call checks for a function.
    pub fn pre(&self, func: minijni::FuncId) -> &[InstrPoint] {
        &self.pre[func.0 as usize]
    }

    /// Post-return checks for a function.
    pub fn post(&self, func: minijni::FuncId) -> &[InstrPoint] {
        &self.post[func.0 as usize]
    }

    /// Total number of synthesized checks.
    pub fn len(&self) -> usize {
        self.pre.iter().map(Vec::len).sum::<usize>() + self.post.iter().map(Vec::len).sum::<usize>()
    }

    /// Drops every check belonging to machines rejected by `keep` — the
    /// ablation knob: synthesizing from a subset of the eleven machines.
    pub fn retain_machines(&mut self, keep: impl Fn(&'static str) -> bool) {
        for list in self.pre.iter_mut().chain(self.post.iter_mut()) {
            list.retain(|p| keep(p.machine));
        }
    }

    /// A check table is never empty.
    pub fn is_empty(&self) -> bool {
        false
    }
}

/// Statistics about one synthesis run, for the `codegen_stats` experiment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SynthStats {
    /// Number of input state machines.
    pub machines: usize,
    /// Number of resolved instrumentation points (the cross product).
    pub instr_points: usize,
    /// Functions that received at least one check (all 229).
    pub wrapped_functions: usize,
    /// Driver-side checks at the native-method boundary.
    pub boundary_checks: usize,
    /// Non-comment lines of specification input.
    pub spec_lines: usize,
}

/// Runs Algorithm 1: expands machines × transitions × triggers into the
/// per-function check table.
pub fn synthesize() -> (CheckTable, SynthStats) {
    let reg = registry();
    let n = reg.len();
    let mut pre: Vec<Vec<InstrPoint>> = vec![Vec::new(); n];
    let mut post: Vec<Vec<InstrPoint>> = vec![Vec::new(); n];
    let points = instrumentation();
    let instr_points = points.len();
    for p in points {
        match p.phase {
            Phase::Pre => pre[p.func.0 as usize].push(p),
            Phase::Post => post[p.func.0 as usize].push(p),
        }
    }
    let wrapped_functions = (0..n)
        .filter(|&i| !pre[i].is_empty() || !post[i].is_empty())
        .count();
    let stats = SynthStats {
        machines: jinn_spec::machines().len(),
        instr_points,
        wrapped_functions,
        boundary_checks: BOUNDARY_CHECKS.len(),
        spec_lines: jinn_spec::spec_source_lines(),
    };
    (CheckTable { pre, post }, stats)
}

/// The memoized synthesis result. Algorithm 1 is a pure function of the
/// in-tree specifications, so it runs once per process; callers that
/// need a private table (every [`crate::Jinn`] construction) clone the
/// cached one instead of re-expanding machines × transitions × triggers.
/// The fleet-serving daemon constructs one checker per ingested session,
/// which is what makes the clone-vs-resynthesize difference matter.
pub fn synthesize_cached() -> (&'static CheckTable, SynthStats) {
    static CACHE: OnceLock<(CheckTable, SynthStats)> = OnceLock::new();
    let (table, stats) = CACHE.get_or_init(synthesize);
    (table, *stats)
}

/// True if the check mutates checker state (an *encoding* update) rather
/// than only validating — used by the codegen backend to decide whether to
/// emit bookkeeping or an `if`.
pub fn is_encoding_update(check: Check) -> bool {
    matches!(
        check,
        Check::CriticalAcquire
            | Check::RecordMethodId
            | Check::RecordFieldId
            | Check::PinAcquire
            | Check::MonitorAcquire
            | Check::MonitorRelease
            | Check::GlobalAcquire
            | Check::FramePush
            | Check::EnsureCapacity
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use minijni::FuncId;

    #[test]
    fn every_function_is_wrapped() {
        let (_, stats) = synthesize();
        assert_eq!(stats.wrapped_functions, 229);
        assert_eq!(stats.machines, 11);
        assert!(stats.instr_points > 1500);
    }

    #[test]
    fn table_orders_checks_per_function() {
        let (table, _) = synthesize();
        let f = FuncId::of("GetStringCritical");
        assert!(table.pre(f).iter().any(|p| p.check == Check::EnvMatches));
        assert!(table
            .post(f)
            .iter()
            .any(|p| p.check == Check::CriticalAcquire));
        assert!(table.post(f).iter().any(|p| p.check == Check::PinAcquire));
        // Critical-insensitive: no CriticalSensitive pre check.
        assert!(!table
            .pre(f)
            .iter()
            .any(|p| p.check == Check::CriticalSensitive));
    }

    #[test]
    fn table_len_matches_points() {
        let (table, stats) = synthesize();
        assert_eq!(table.len(), stats.instr_points);
        assert!(!table.is_empty());
    }

    #[test]
    fn encoding_classification() {
        assert!(is_encoding_update(Check::PinAcquire));
        assert!(!is_encoding_update(Check::EnvMatches));
        assert!(!is_encoding_update(Check::NonNull { param: 0 }));
    }
}
