//! `jinn-core` — the Jinn synthesizer and the synthesized dynamic JNI bug
//! detector.
//!
//! This crate is the paper's primary contribution, assembled from the
//! specification crates:
//!
//! * [`synthesize`] runs **Algorithm 1**: it expands the eleven state
//!   machines (`jinn-spec`) over the 229-function registry (`minijni`)
//!   into per-function check tables;
//! * [`Jinn`] is the synthesized checker: an interposition agent that
//!   executes those checks at every language transition and throws
//!   `jinn.JNIAssertionFailure` at the point of failure — attach it to a
//!   session with [`install`];
//! * [`codegen`] is the C backend that prints the same table as wrapper
//!   source code (Figures 3–4), reproducing the "1,400 lines of spec →
//!   22,000+ generated lines" claim.
//!
//! # Example: catching the Figure 1 bug
//!
//! ```
//! use jinn_core::install;
//! use minijni::{typed, JniError, RunOutcome, Session, Vm};
//! use minijvm::JValue;
//! use std::rc::Rc;
//!
//! let mut vm = Vm::permissive();
//! // Native code that stores a local reference in a "C global" and uses
//! // it after its frame died — GNOME bug 576111 in miniature.
//! let stash: Rc<std::cell::RefCell<Option<minijvm::JRef>>> = Rc::default();
//! let (class, bind) = {
//!     let stash = Rc::clone(&stash);
//!     vm.define_native_class("Callback", "bind", "(Ljava/lang/Object;)V", true,
//!         Rc::new(move |_env, args| {
//!             *stash.borrow_mut() = args[0].as_ref(); // escape!
//!             Ok(JValue::Void)
//!         }))
//! };
//! let (_, fire) = {
//!     let stash = Rc::clone(&stash);
//!     let (c, m) = (class, ());
//!     let _ = (c, m);
//!     vm.define_native_class("Callback2", "fire", "()V", true,
//!         Rc::new(move |env, _| {
//!             let dead = stash.borrow().expect("bound");
//!             // Use of the dead local reference: Jinn throws here.
//!             typed::get_object_class(env, dead)?;
//!             Ok(JValue::Void)
//!         }))
//! };
//! let thread = vm.jvm().main_thread();
//! let receiver = {
//!     let class = vm.jvm().find_class("java/lang/Object").unwrap();
//!     let oop = vm.jvm_mut().alloc_object(class);
//!     vm.jvm_mut().new_local(thread, oop)
//! };
//! let mut session = Session::new(vm);
//! install(&mut session);
//! session.run_native(thread, bind, &[JValue::Ref(receiver)]);
//! let outcome = session.run_native(thread, fire, &[]);
//! match outcome {
//!     RunOutcome::CheckerException(v) => {
//!         assert_eq!(v.machine, "local-reference");
//!         assert_eq!(v.error_state, "Error:Dangling");
//!     }
//!     other => panic!("Jinn should have detected the dangling use: {other:?}"),
//! }
//! # let _ = JniError::Exception;
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod checker;
pub mod codegen;
mod synth;

pub use checker::{
    install, install_prebuilt, install_with_config, Jinn, JinnConfig, JinnStats, SharedStats,
    StatsCell,
};
pub use codegen::{generate_c_wrappers, CodegenStats};
pub use synth::{
    discharge, discharge_machine, is_encoding_update, synthesize, synthesize_cached, CheckTable,
    DischargeReason, DischargeReport, DischargedTransition, MachineDischarge, SynthStats,
    WorkloadManifest,
};
