//! Jinn — the synthesized dynamic JNI bug detector.
//!
//! `Jinn` interprets the check table produced by [`crate::synthesize`]:
//! at every language transition it executes the synthesized checks,
//! transitions its state-machine encodings (the paper's thread-local
//! reference sets, ID signature tables, tallies and frame mirrors), and
//! reports a [`Violation`] — thrown as a `jinn.JNIAssertionFailure` — the
//! moment an entity enters an error state.
//!
//! Jinn never asks the VM whether a reference is valid; like the real
//! tool, it maintains its own encodings and detects danglingness from the
//! acquire/release history it observed. (The single exception is the
//! *adoption* of references acquired before Jinn was attached, which are
//! verified against the VM once and then tracked — this is what the JVMTI
//! start-up hook gives the real Jinn for free.)

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use jinn_obs::{FsmOutcome, LabelId, Recorder};
use jinn_spec::{Check, EntityCallMode};
use minijni::registry::Op;
use minijni::{CallCx, FuncId, Interpose, JniArg, JniRet, Report, ReportAction, Violation};
use minijvm::{
    ClassId, FieldId, FieldType, JRef, JValue, Jvm, MethodId, MethodSig, ObjectId, PinId, PinKind,
    RefKind, ThreadId, DEFAULT_LOCAL_CAPACITY,
};

use crate::synth::CheckTable;

/// Counters Jinn keeps about its own work (for the overhead experiments).
/// This is a point-in-time copy; the live counters are the atomics in
/// [`StatsCell`], read via [`StatsCell::snapshot`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct JinnStats {
    /// Synthesized checks executed.
    pub checks_executed: u64,
    /// Violations reported.
    pub violations: u64,
    /// Pre-attach references adopted instead of flagged (kept at zero by
    /// well-formed harnesses).
    pub adopted_refs: u64,
}

/// The live, atomically-updated counters behind [`SharedStats`]. Atomic
/// so a `Jinn` moved to a worker thread can be observed from the driver
/// thread without locks (and so `Jinn` itself is `Send`).
#[derive(Debug, Default)]
pub struct StatsCell {
    checks_executed: AtomicU64,
    violations: AtomicU64,
    adopted_refs: AtomicU64,
}

impl StatsCell {
    /// Synthesized checks executed so far.
    pub fn checks_executed(&self) -> u64 {
        self.checks_executed.load(Ordering::Relaxed)
    }

    /// Violations reported so far.
    pub fn violations(&self) -> u64 {
        self.violations.load(Ordering::Relaxed)
    }

    /// Pre-attach references adopted so far.
    pub fn adopted_refs(&self) -> u64 {
        self.adopted_refs.load(Ordering::Relaxed)
    }

    /// A point-in-time copy of all counters.
    pub fn snapshot(&self) -> JinnStats {
        JinnStats {
            checks_executed: self.checks_executed(),
            violations: self.violations(),
            adopted_refs: self.adopted_refs(),
        }
    }
}

/// Shared handle to the live [`StatsCell`], usable after the checker has
/// been boxed into a session — including from another thread.
pub type SharedStats = Arc<StatsCell>;

#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct LocalKey {
    thread: u16,
    slot: u32,
    generation: u32,
}

impl LocalKey {
    fn of(r: JRef) -> LocalKey {
        LocalKey {
            thread: r.owner().0,
            slot: r.slot(),
            generation: r.generation(),
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct GlobalKey {
    weak: bool,
    slot: u32,
    generation: u32,
}

impl GlobalKey {
    fn of(r: JRef) -> GlobalKey {
        GlobalKey {
            weak: r.kind() == RefKind::WeakGlobal,
            slot: r.slot(),
            generation: r.generation(),
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum RefState {
    Live,
    Released,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum FrameKind {
    NativeEntry,
    Explicit,
}

#[derive(Debug)]
struct Frame {
    kind: FrameKind,
    capacity: usize,
    refs: Vec<LocalKey>,
}

#[derive(Debug, Default)]
struct LocalTracker {
    frames: Vec<Frame>,
    states: HashMap<LocalKey, RefState>,
}

impl LocalTracker {
    fn base(&mut self) -> &mut Frame {
        if self.frames.is_empty() {
            self.frames.push(Frame {
                kind: FrameKind::NativeEntry,
                capacity: DEFAULT_LOCAL_CAPACITY,
                refs: Vec::new(),
            });
        }
        self.frames.first_mut().expect("just ensured")
    }

    fn current(&mut self) -> &mut Frame {
        self.base();
        self.frames.last_mut().expect("non-empty")
    }

    fn acquire(&mut self, key: LocalKey) {
        self.current().refs.push(key);
        self.states.insert(key, RefState::Live);
    }

    fn release_frame(&mut self) -> Option<Frame> {
        if self.frames.len() <= 1 {
            // Keep the base frame; release its refs instead.
            let base = self.base();
            let refs = std::mem::take(&mut base.refs);
            for r in refs {
                self.states.insert(r, RefState::Released);
            }
            return None;
        }
        let frame = self.frames.pop()?;
        for r in &frame.refs {
            self.states.insert(*r, RefState::Released);
        }
        Some(frame)
    }
}

#[derive(Debug, Clone)]
struct MethodSnapshot {
    class: ClassId,
    name: String,
    sig: MethodSig,
    is_static: bool,
    visibility: minijvm::Visibility,
}

#[derive(Debug, Clone)]
struct FieldSnapshot {
    class: ClassId,
    name: String,
    ty: FieldType,
    is_static: bool,
    is_final: bool,
    visibility: minijvm::Visibility,
}

/// Configuration of a synthesized checker.
///
/// The defaults reproduce the paper's Jinn exactly. The knobs expose the
/// paper's own discussion points: `pedantic_visibility` turns on the
/// Section 6.5 "correctness gray zone" check (C code accessing private
/// Java members -- entrenched practice, so off by default), and
/// `disabled_machines` ablates individual machines (used by the
/// `ablation` experiment to attribute checking cost).
#[derive(Debug, Clone, Default)]
pub struct JinnConfig {
    /// Also flag access to private members from native code.
    pub pedantic_visibility: bool,
    /// Machines whose synthesized checks are dropped.
    pub disabled_machines: Vec<&'static str>,
}

#[derive(Debug, Clone, Copy)]
struct PinInfo {
    kind: PinKind,
    released: bool,
}

/// The Jinn dynamic checker. Attach with [`install`].
pub struct Jinn {
    table: CheckTable,
    /// When false, wrappers are interposed and traversed but the analysis
    /// bodies are skipped — the "Interposing" configuration of Table 3,
    /// which isolates the framework overhead from the checking overhead.
    checks_enabled: bool,
    config: JinnConfig,
    stats: SharedStats,
    methods: HashMap<MethodId, MethodSnapshot>,
    fields: HashMap<FieldId, FieldSnapshot>,
    pins: HashMap<PinId, PinInfo>,
    criticals: HashMap<ThreadId, Vec<(ObjectId, u32)>>,
    monitors: HashMap<(ThreadId, ObjectId), u32>,
    globals: HashMap<GlobalKey, RefState>,
    locals: HashMap<ThreadId, LocalTracker>,
    recorder: Recorder,
    labels: ObsLabels,
}

/// The checker's interned trace labels, resolved once when a recorder is
/// attached so the per-event record path carries only dense ids.
#[derive(Debug, Default)]
struct ObsLabels {
    local_ref: LabelId,
    global_ref: LabelId,
    acquire: LabelId,
    release: LabelId,
    use_: LabelId,
    checks_executed: LabelId,
    locals_acquired: LabelId,
}

/// Packs a reference's identity bits into the opaque numeric entity key
/// recorded with its transitions. References are short-lived and each
/// acquisition mints a fresh generation, so a label cache would never
/// hit; the packed key costs a few shifts instead of a `format!` and an
/// intern-table round-trip per event. Equal references pack equally,
/// which is what forensics matching needs. Slot and generation are
/// truncated to 22 bits each — far above what any workload reaches, and
/// a collision only blurs a forensics relevance filter.
fn entity_key(r: &JRef) -> u64 {
    let kind = match r.kind() {
        RefKind::Local => 0u64,
        RefKind::Global => 1,
        RefKind::WeakGlobal => 2,
        RefKind::Null => 3,
    };
    (kind << 60)
        | (u64::from(r.owner().0) << 44)
        | (u64::from(r.slot() & 0x3f_ffff) << 22)
        | u64::from(r.generation() & 0x3f_ffff)
}

// The whole point of the Arc/atomic stats backend: a synthesized checker
// can be constructed on the driver thread and moved into a worker.
const _: fn() = || {
    fn assert_send<T: Send>() {}
    assert_send::<Jinn>();
};

impl std::fmt::Debug for Jinn {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Jinn")
            .field("stats", &self.stats.snapshot())
            .finish_non_exhaustive()
    }
}

impl Default for Jinn {
    fn default() -> Self {
        Jinn::new()
    }
}

impl Jinn {
    /// Synthesizes a fresh checker from the eleven machine specifications.
    pub fn new() -> Jinn {
        Jinn::with_config(JinnConfig::default())
    }

    /// Synthesizes a checker with explicit configuration. The expansion
    /// itself is memoized process-wide ([`crate::synthesize_cached`]);
    /// each checker clones the table so ablation can prune its own copy.
    pub fn with_config(config: JinnConfig) -> Jinn {
        let mut table = crate::synth::synthesize_cached().0.clone();
        if !config.disabled_machines.is_empty() {
            let disabled = config.disabled_machines.clone();
            table.retain_machines(|m| !disabled.contains(&m));
        }
        Jinn {
            table,
            checks_enabled: true,
            config,
            stats: Arc::new(StatsCell::default()),
            methods: HashMap::new(),
            fields: HashMap::new(),
            pins: HashMap::new(),
            criticals: HashMap::new(),
            monitors: HashMap::new(),
            globals: HashMap::new(),
            locals: HashMap::new(),
            recorder: Recorder::disabled(),
            labels: ObsLabels::default(),
        }
    }

    /// Attaches an observability recorder: machine error transitions and
    /// check-volume counters are recorded from then on. [`install`] wires
    /// this automatically from the session's recorder. The handful of
    /// machine, transition, and counter names the checker records are
    /// interned here, once.
    pub fn set_recorder(&mut self, recorder: Recorder) {
        self.labels = ObsLabels {
            local_ref: recorder.intern("local-reference"),
            global_ref: recorder.intern("global-reference"),
            acquire: recorder.intern("Acquire"),
            release: recorder.intern("Release"),
            use_: recorder.intern("Use"),
            checks_executed: recorder.intern("checks.executed"),
            locals_acquired: recorder.intern("locals.acquired"),
        };
        self.recorder = recorder;
    }

    /// A shared handle to the checker's statistics.
    pub fn stats_handle(&self) -> SharedStats {
        Arc::clone(&self.stats)
    }

    /// An interposing-but-not-checking Jinn: the wrappers run, the check
    /// tables are traversed, but no analysis executes (Table 3's
    /// "Interposing" column).
    pub fn interpose_only() -> Jinn {
        let mut jinn = Jinn::new();
        jinn.checks_enabled = false;
        jinn
    }

    fn violation(
        &self,
        machine: &'static str,
        error_state: &'static str,
        function: &str,
        message: String,
        stack: &[String],
    ) -> Report {
        self.stats.violations.fetch_add(1, Ordering::Relaxed);
        if self.recorder.is_enabled() {
            // Cold path (violations are rare): interning per event keeps
            // it simple.
            let machine_label = self.recorder.intern(machine);
            let state_label = self.recorder.intern(error_state);
            self.recorder.fsm_transition_id(
                jinn_obs::event::NO_THREAD,
                machine_label,
                state_label,
                FsmOutcome::Error,
                None,
            );
        }
        Report::new(
            Violation {
                machine,
                error_state,
                function: function.to_string(),
                message,
                // Innermost frame first, as in a Java stack trace.
                backtrace: stack.iter().rev().cloned().collect(),
            },
            ReportAction::ThrowException,
        )
    }

    // ---- local reference helpers ------------------------------------

    fn tracker(&mut self, thread: ThreadId) -> &mut LocalTracker {
        self.locals.entry(thread).or_default()
    }

    /// Checks a use of a local reference; returns an error message on
    /// violation.
    fn check_local_use(&mut self, jvm: &Jvm, thread: ThreadId, r: JRef) -> Option<String> {
        let key = LocalKey::of(r);
        let failure = if r.owner() != thread {
            Some(format!(
                "local reference created on thread-{} used on {}",
                r.owner().0,
                thread
            ))
        } else {
            match self.tracker(thread).states.get(&key) {
                Some(RefState::Live) => None,
                Some(RefState::Released) => Some("Error: dangling local reference".to_string()),
                None => {
                    // Pre-attach reference: adopt it if the VM vouches for it.
                    if jvm.resolve(thread, r).map(|o| o.is_some()).unwrap_or(false) {
                        self.stats.adopted_refs.fetch_add(1, Ordering::Relaxed);
                        let tracker = self.tracker(thread);
                        tracker.base().refs.push(key);
                        tracker.states.insert(key, RefState::Live);
                        None
                    } else {
                        Some("Error: dangling local reference (never acquired)".to_string())
                    }
                }
            }
        };
        if failure.is_some() {
            self.record_ref_error(self.labels.local_ref, thread, r);
        }
        failure
    }

    fn check_global_use(&mut self, jvm: &Jvm, thread: ThreadId, r: JRef) -> Option<String> {
        let key = GlobalKey::of(r);
        let failure = match self.globals.get(&key) {
            Some(RefState::Live) => None,
            Some(RefState::Released) => Some(format!("Error: dangling {} reference", r.kind())),
            None => {
                if jvm.resolve(thread, r).is_ok() {
                    self.stats.adopted_refs.fetch_add(1, Ordering::Relaxed);
                    self.globals.insert(key, RefState::Live);
                    None
                } else {
                    Some(format!(
                        "Error: dangling {} reference (never acquired)",
                        r.kind()
                    ))
                }
            }
        };
        if failure.is_some() {
            self.record_ref_error(self.labels.global_ref, thread, r);
        }
        failure
    }

    /// Emits an entity-tagged successful transition (acquire/release) into
    /// the trace ring and the per-machine metrics. `machine` and
    /// `transition` are the ids cached in [`ObsLabels`].
    fn record_ref_moved(&self, machine: LabelId, thread: ThreadId, transition: LabelId, r: &JRef) {
        self.recorder.fsm_transition_keyed(
            thread.0,
            machine,
            transition,
            FsmOutcome::Moved,
            entity_key(r),
        );
    }

    /// Emits an entity-tagged error transition into the trace ring so a
    /// forensics capture can name the failing reference. Error `Use`
    /// events deliberately do not feed the per-machine `Moved` tallies —
    /// the violation path counts them.
    fn record_ref_error(&self, machine: LabelId, thread: ThreadId, r: JRef) {
        self.recorder.fsm_transition_keyed(
            thread.0,
            machine,
            self.labels.use_,
            FsmOutcome::Error,
            entity_key(&r),
        );
    }

    fn check_ref_use(
        &mut self,
        jvm: &Jvm,
        thread: ThreadId,
        r: JRef,
        machine_wanted: &'static str,
    ) -> Option<String> {
        match (r.kind(), machine_wanted) {
            (RefKind::Null, _) => None,
            (RefKind::Local, "local-reference") => self.check_local_use(jvm, thread, r),
            (RefKind::Global | RefKind::WeakGlobal, "global-reference") => {
                self.check_global_use(jvm, thread, r)
            }
            _ => None, // the other machine owns this kind
        }
    }

    // ---- entity typing helpers ---------------------------------------

    fn check_args_against_sig(
        &self,
        jvm: &Jvm,
        thread: ThreadId,
        sig: &MethodSig,
        actuals: &[JValue],
    ) -> Option<String> {
        if sig.params().len() != actuals.len() {
            return Some(format!(
                "{} actual arguments for {} formals",
                actuals.len(),
                sig.params().len()
            ));
        }
        for (i, (formal, actual)) in sig.params().iter().zip(actuals).enumerate() {
            match (formal, actual) {
                (FieldType::Prim(p), v) => {
                    if v.prim_type() != Some(*p) {
                        return Some(format!(
                            "argument {i} has the wrong primitive type (expected {p})"
                        ));
                    }
                }
                (ft, JValue::Ref(r)) => {
                    if r.is_null() {
                        continue;
                    }
                    if let Ok(Some(oop)) = jvm.resolve(thread, *r) {
                        let actual_class = jvm.class_of(oop);
                        if let Some(expected) = jvm.registry().class_for_type(ft) {
                            if !jvm.registry().is_assignable(actual_class, expected) {
                                return Some(format!(
                                    "argument {i} is a {} but the formal is {}",
                                    jvm.registry().class(actual_class).dotted_name(),
                                    ft
                                ));
                            }
                        }
                    }
                }
                (_, v) => {
                    return Some(format!(
                        "argument {i} is a primitive {v} where a reference is expected"
                    ));
                }
            }
        }
        None
    }

    fn resolve_class_arg(&self, jvm: &Jvm, thread: ThreadId, r: JRef) -> Option<ClassId> {
        let oop = jvm.resolve(thread, r).ok().flatten()?;
        jvm.class_of_mirror(oop)
    }

    #[allow(clippy::too_many_lines)]
    fn check_entity_call(
        &self,
        jvm: &Jvm,
        cx: &CallCx<'_>,
        mode: EntityCallMode,
    ) -> Option<String> {
        let (obj_idx, clazz_idx, mid_idx, args_idx): (Option<usize>, Option<usize>, usize, usize) =
            match mode {
                EntityCallMode::Virtual => (Some(0), None, 1, 2),
                EntityCallMode::Nonvirtual => (Some(0), Some(1), 2, 3),
                EntityCallMode::Static | EntityCallMode::Constructor => (None, Some(0), 1, 2),
            };
        let mid = match cx.args.get(mid_idx) {
            Some(JniArg::Method(m)) => *m,
            _ => return None,
        };
        let Some(snap) = self.methods.get(&mid) else {
            return Some(format!("method ID {mid} was never issued by the JVM"));
        };
        // The Section 6.5 gray zone, opt-in: calling private methods.
        if self.config.pedantic_visibility && snap.visibility == minijvm::Visibility::Private {
            return Some(format!(
                "call to private method {} from native code",
                snap.name
            ));
        }
        // Staticness.
        let want_static = matches!(mode, EntityCallMode::Static);
        if snap.is_static != want_static {
            return Some(format!(
                "method {} is {} but was invoked {}",
                snap.name,
                if snap.is_static {
                    "static"
                } else {
                    "an instance method"
                },
                if want_static {
                    "statically"
                } else {
                    "virtually"
                },
            ));
        }
        // Receiver / class conformance.
        if let Some(i) = obj_idx {
            if let Some(JniArg::Ref(r)) = cx.args.get(i) {
                if !r.is_null() {
                    if let Ok(Some(oop)) = jvm.resolve(cx.thread, *r) {
                        let cls = jvm.class_of(oop);
                        if !jvm.registry().is_assignable(cls, snap.class) {
                            return Some(format!(
                                "receiver of class {} does not conform to {} declaring {}",
                                jvm.registry().class(cls).dotted_name(),
                                jvm.registry().class(snap.class).dotted_name(),
                                snap.name,
                            ));
                        }
                    }
                }
            }
        }
        if let Some(i) = clazz_idx {
            if let Some(JniArg::Ref(r)) = cx.args.get(i) {
                if let Some(given) = self.resolve_class_arg(jvm, cx.thread, *r) {
                    // The Eclipse SWT bug (Section 6.4.3): the class must
                    // itself declare the method; inheriting it from a
                    // superclass is a JNI violation.
                    if given != snap.class {
                        return Some(format!(
                            "class {} does not declare {} (it is declared by {})",
                            jvm.registry().class(given).dotted_name(),
                            snap.name,
                            jvm.registry().class(snap.class).dotted_name(),
                        ));
                    }
                }
            }
        }
        // Actual arguments against formals.
        let actuals = match cx.args.get(args_idx) {
            Some(JniArg::Args(v)) => v.clone(),
            _ => Vec::new(),
        };
        self.check_args_against_sig(jvm, cx.thread, &snap.sig, &actuals)
    }

    fn check_field_access(
        &self,
        jvm: &Jvm,
        cx: &CallCx<'_>,
        stat: bool,
        write: bool,
    ) -> Option<String> {
        let fid = match cx.args.get(1) {
            Some(JniArg::Field(f)) => *f,
            _ => return None,
        };
        let Some(snap) = self.fields.get(&fid) else {
            return Some(format!("field ID {fid} was never issued by the JVM"));
        };
        if self.config.pedantic_visibility && snap.visibility == minijvm::Visibility::Private {
            return Some(format!(
                "access to private field {} from native code",
                snap.name
            ));
        }
        if snap.is_static != stat {
            return Some(format!(
                "field {} is {} but was accessed {}",
                snap.name,
                if snap.is_static {
                    "static"
                } else {
                    "an instance field"
                },
                if stat {
                    "statically"
                } else {
                    "through an instance"
                },
            ));
        }
        if stat {
            if let Some(JniArg::Ref(r)) = cx.args.first() {
                if let Some(given) = self.resolve_class_arg(jvm, cx.thread, *r) {
                    if given != snap.class {
                        return Some(format!(
                            "class {} does not declare field {}",
                            jvm.registry().class(given).dotted_name(),
                            snap.name,
                        ));
                    }
                }
            }
        } else if let Some(JniArg::Ref(r)) = cx.args.first() {
            if !r.is_null() {
                if let Ok(Some(oop)) = jvm.resolve(cx.thread, *r) {
                    let cls = jvm.class_of(oop);
                    if !jvm.registry().is_assignable(cls, snap.class) {
                        return Some(format!(
                            "object of class {} has no field {}",
                            jvm.registry().class(cls).dotted_name(),
                            snap.name,
                        ));
                    }
                }
            }
        }
        if write {
            let value = match cx.args.get(2) {
                Some(JniArg::Val(v)) => Some(*v),
                Some(JniArg::Ref(r)) => Some(JValue::Ref(*r)),
                _ => None,
            };
            if let Some(v) = value {
                match (&snap.ty, v) {
                    (FieldType::Prim(p), v) => {
                        if v.prim_type() != Some(*p) {
                            return Some(format!("value {v} does not conform to field type {p}"));
                        }
                    }
                    (ft, JValue::Ref(r)) => {
                        if !r.is_null() {
                            if let Ok(Some(oop)) = jvm.resolve(cx.thread, r) {
                                let cls = jvm.class_of(oop);
                                if let Some(expected) = jvm.registry().class_for_type(ft) {
                                    if !jvm.registry().is_assignable(cls, expected) {
                                        return Some(format!(
                                            "value of class {} does not conform to field type {}",
                                            jvm.registry().class(cls).dotted_name(),
                                            ft,
                                        ));
                                    }
                                }
                            }
                        }
                    }
                    (ft, v) => {
                        return Some(format!("primitive {v} written to reference field {ft}"));
                    }
                }
            }
        }
        None
    }

    fn check_fixed_type(&self, jvm: &Jvm, cx: &CallCx<'_>, param: usize) -> Option<String> {
        let spec = cx.spec();
        let p = &spec.params[param];
        let r = cx.args.get(param).and_then(JniArg::as_ref)?;
        if r.is_null() {
            return None; // nullness machine owns this case
        }
        let oop = jvm.resolve(cx.thread, r).ok().flatten()?;
        let class = jvm.class_of(oop);
        let class_name = jvm.registry().class(class).name();
        let conforms = p.fixed_types.iter().any(|t| match *t {
            "[*" => class_name.starts_with('['),
            "[prim" => class_name.len() == 2 && class_name.starts_with('['),
            "[obj" => class_name.starts_with("[L") || class_name.starts_with("[["),
            expected => match jvm.registry().class_by_name(expected) {
                Some(tc) => jvm.registry().is_assignable(class, tc),
                None => false,
            },
        });
        if conforms {
            None
        } else {
            Some(format!(
                "parameter `{}` is a {} but must conform to {}",
                p.name,
                jvm.registry().class(class).dotted_name(),
                p.fixed_types.join(" or "),
            ))
        }
    }

    // ---- record encodings ----------------------------------------------

    fn record_method(&mut self, jvm: &Jvm, mid: MethodId) {
        if self.methods.contains_key(&mid) {
            return;
        }
        if let Some(info) = jvm.registry().method(mid) {
            self.methods.insert(
                mid,
                MethodSnapshot {
                    class: info.class,
                    name: info.name.clone(),
                    sig: info.sig.clone(),
                    is_static: info.flags.is_static,
                    visibility: info.flags.visibility,
                },
            );
        }
    }

    fn record_field(&mut self, jvm: &Jvm, fid: FieldId) {
        if self.fields.contains_key(&fid) {
            return;
        }
        if let Some(info) = jvm.registry().field(fid) {
            self.fields.insert(
                fid,
                FieldSnapshot {
                    class: info.class,
                    name: info.name.clone(),
                    ty: info.ty.clone(),
                    is_static: info.flags.is_static,
                    is_final: info.flags.is_final,
                    visibility: info.flags.visibility,
                },
            );
        }
    }

    // ---- the check interpreter ------------------------------------------

    #[allow(clippy::too_many_lines)]
    fn run_pre_check(
        &mut self,
        jvm: &Jvm,
        cx: &CallCx<'_>,
        machine: &'static str,
        check: Check,
    ) -> Option<Report> {
        let fname = cx.func.name();
        match check {
            Check::EnvMatches => {
                let own = jvm.thread(cx.thread).env();
                if cx.presented_env != own {
                    return Some(self.violation(
                        machine,
                        "Error:EnvMismatch",
                        fname,
                        format!("JNIEnv* does not belong to the current thread in {fname}"),
                        cx.stack,
                    ));
                }
            }
            Check::NoPendingException if jvm.thread(cx.thread).pending_exception().is_some() => {
                return Some(self.violation(
                    machine,
                    "Error:SensitiveCallWithPending",
                    fname,
                    format!("An exception is pending in {fname}."),
                    cx.stack,
                ));
            }
            Check::CriticalSensitive
                if self
                    .criticals
                    .get(&cx.thread)
                    .map(|v| !v.is_empty())
                    .unwrap_or(false) =>
            {
                return Some(self.violation(
                    machine,
                    "Error:SensitiveCallInCritical",
                    fname,
                    format!("{fname} called inside a JNI critical section"),
                    cx.stack,
                ));
            }
            Check::CriticalRelease => {
                let object = cx.args.get(1).and_then(|a| match a {
                    JniArg::Buf(p) => jvm.pins().object(*p),
                    _ => None,
                });
                let tally = self.criticals.entry(cx.thread).or_default();
                match object.and_then(|o| tally.iter().position(|(obj, _)| *obj == o)) {
                    Some(pos) => {
                        tally[pos].1 -= 1;
                        if tally[pos].1 == 0 {
                            tally.remove(pos);
                        }
                    }
                    None => {
                        return Some(self.violation(
                            machine,
                            "Error:UnmatchedRelease",
                            fname,
                            format!(
                                "{fname} releases a critical resource the thread does not hold"
                            ),
                            cx.stack,
                        ));
                    }
                }
            }
            Check::FixedType { param } => {
                if let Some(msg) = self.check_fixed_type(jvm, cx, param as usize) {
                    return Some(self.violation(
                        machine,
                        "Error:FixedTypeMismatch",
                        fname,
                        format!("{msg} in {fname}"),
                        cx.stack,
                    ));
                }
            }
            Check::EntityCall { mode } => {
                if let Some(msg) = self.check_entity_call(jvm, cx, mode) {
                    return Some(self.violation(
                        machine,
                        "Error:EntityTypeMismatch",
                        fname,
                        format!("{msg} in {fname}"),
                        cx.stack,
                    ));
                }
            }
            Check::EntityFieldAccess { stat, write } => {
                if let Some(msg) = self.check_field_access(jvm, cx, stat, write) {
                    return Some(self.violation(
                        machine,
                        "Error:EntityTypeMismatch",
                        fname,
                        format!("{msg} in {fname}"),
                        cx.stack,
                    ));
                }
            }
            Check::KnownMethodId { param } => {
                if let Some(JniArg::Method(m)) = cx.args.get(param as usize) {
                    if !self.methods.contains_key(m) {
                        return Some(self.violation(
                            machine,
                            "Error:EntityTypeMismatch",
                            fname,
                            format!("method ID {m} was never issued by the JVM (in {fname})"),
                            cx.stack,
                        ));
                    }
                }
            }
            Check::KnownFieldId { param } => {
                if let Some(JniArg::Field(f)) = cx.args.get(param as usize) {
                    if !self.fields.contains_key(f) {
                        return Some(self.violation(
                            machine,
                            "Error:EntityTypeMismatch",
                            fname,
                            format!("field ID {f} was never issued by the JVM (in {fname})"),
                            cx.stack,
                        ));
                    }
                }
            }
            Check::FinalFieldGuard => {
                if let Some(JniArg::Field(f)) = cx.args.get(1) {
                    if let Some(snap) = self.fields.get(f) {
                        if snap.is_final {
                            return Some(self.violation(
                                machine,
                                "Error:FinalFieldWrite",
                                fname,
                                format!("{fname} assigns to final field {}", snap.name),
                                cx.stack,
                            ));
                        }
                    }
                }
            }
            Check::NonNull { param } => {
                if let Some(r) = cx.args.get(param as usize).and_then(JniArg::as_ref) {
                    if r.is_null() {
                        let pname = cx.spec().params[param as usize].name;
                        return Some(self.violation(
                            machine,
                            "Error:Null",
                            fname,
                            format!("parameter `{pname}` of {fname} must not be null"),
                            cx.stack,
                        ));
                    }
                }
            }
            Check::PinRelease { param } => {
                if let Some(JniArg::Buf(pin)) = cx.args.get(param as usize) {
                    let expected = expected_pin_kind(cx.func);
                    match self.pins.get_mut(pin) {
                        Some(info) if info.released => {
                            return Some(self.violation(
                                "pinned-buffer",
                                "Error:DoubleFree",
                                fname,
                                format!("{fname} releases an already-released buffer"),
                                cx.stack,
                            ));
                        }
                        Some(info) => {
                            if Some(info.kind) != expected {
                                let kind = info.kind;
                                return Some(self.violation(
                                    "pinned-buffer",
                                    "Error:DoubleFree",
                                    fname,
                                    format!("{fname} releases a buffer acquired via {kind}"),
                                    cx.stack,
                                ));
                            }
                            info.released = true;
                        }
                        None => {
                            if jvm.pins().is_live(*pin) {
                                self.stats.adopted_refs.fetch_add(1, Ordering::Relaxed);
                                self.pins.insert(
                                    *pin,
                                    PinInfo {
                                        kind: jvm
                                            .pins()
                                            .kind(*pin)
                                            .unwrap_or(PinKind::ArrayElements),
                                        released: true,
                                    },
                                );
                            } else {
                                return Some(self.violation(
                                    "pinned-buffer",
                                    "Error:DoubleFree",
                                    fname,
                                    format!("{fname} releases a buffer that was never acquired"),
                                    cx.stack,
                                ));
                            }
                        }
                    }
                }
            }
            Check::RefUse { param } => {
                if let Some(r) = cx.args.get(param as usize).and_then(JniArg::as_ref) {
                    if let Some(msg) = self.check_ref_use(jvm, cx.thread, r, machine) {
                        return Some(self.violation(
                            machine,
                            "Error:Dangling",
                            fname,
                            format!("{msg} in {fname}"),
                            cx.stack,
                        ));
                    }
                }
            }
            Check::GlobalRelease { param } => {
                if let Some(r) = cx.args.get(param as usize).and_then(JniArg::as_ref) {
                    if r.is_null() {
                        return None;
                    }
                    let key = GlobalKey::of(r);
                    match self.globals.get(&key) {
                        Some(RefState::Live) => {
                            self.globals.insert(key, RefState::Released);
                            self.record_ref_moved(
                                self.labels.global_ref,
                                cx.thread,
                                self.labels.release,
                                &r,
                            );
                        }
                        Some(RefState::Released) => {
                            return Some(self.violation(
                                machine,
                                "Error:Dangling",
                                fname,
                                format!("{fname} deletes an already-deleted global reference"),
                                cx.stack,
                            ));
                        }
                        None => {
                            if jvm.resolve(cx.thread, r).is_ok() {
                                self.globals.insert(key, RefState::Released);
                            } else {
                                return Some(self.violation(
                                    machine,
                                    "Error:Dangling",
                                    fname,
                                    format!("{fname} deletes a global reference that was never acquired"),
                                    cx.stack,
                                ));
                            }
                        }
                    }
                }
            }
            Check::LocalDelete { param } => {
                if let Some(r) = cx.args.get(param as usize).and_then(JniArg::as_ref) {
                    if r.is_null() || r.kind() != RefKind::Local {
                        return None;
                    }
                    let key = LocalKey::of(r);
                    let thread = cx.thread;
                    match self.tracker(thread).states.get(&key).copied() {
                        Some(RefState::Live) => {
                            let tracker = self.tracker(thread);
                            tracker.states.insert(key, RefState::Released);
                            for f in tracker.frames.iter_mut() {
                                f.refs.retain(|k| *k != key);
                            }
                            self.record_ref_moved(
                                self.labels.local_ref,
                                thread,
                                self.labels.release,
                                &r,
                            );
                        }
                        Some(RefState::Released) => {
                            return Some(self.violation(
                                machine,
                                "Error:DoubleFree",
                                fname,
                                format!("{fname} deletes an already-deleted local reference"),
                                cx.stack,
                            ));
                        }
                        None => {
                            if jvm.resolve(thread, r).map(|o| o.is_some()).unwrap_or(false) {
                                self.tracker(thread).states.insert(key, RefState::Released);
                            } else {
                                return Some(self.violation(
                                    machine,
                                    "Error:DoubleFree",
                                    fname,
                                    format!(
                                        "{fname} deletes a local reference that was never acquired"
                                    ),
                                    cx.stack,
                                ));
                            }
                        }
                    }
                }
            }
            Check::FramePop => {
                let thread = cx.thread;
                let tracker = self.tracker(thread);
                let top_is_explicit = tracker
                    .frames
                    .last()
                    .map(|f| f.kind == FrameKind::Explicit)
                    .unwrap_or(false);
                if top_is_explicit {
                    tracker.release_frame();
                } else {
                    return Some(self.violation(
                        machine,
                        "Error:DoubleFree",
                        fname,
                        format!("{fname} pops a local frame that was never pushed"),
                        cx.stack,
                    ));
                }
            }
            // Post-only checks never appear in pre tables.
            _ => {}
        }
        None
    }

    fn run_post_check(
        &mut self,
        jvm: &Jvm,
        cx: &CallCx<'_>,
        machine: &'static str,
        check: Check,
        ret: Option<&JniRet>,
    ) -> Option<Report> {
        let fname = cx.func.name();
        let Some(ret) = ret else {
            return None; // the call failed; no encoding transitions
        };
        match check {
            Check::RecordMethodId => {
                if let JniRet::Method(m) = ret {
                    self.record_method(jvm, *m);
                }
            }
            Check::RecordFieldId => {
                if let JniRet::Field(f) = ret {
                    self.record_field(jvm, *f);
                }
            }
            Check::CriticalAcquire => {
                if let JniRet::Buf(pin) = ret {
                    if let Some(obj) = jvm.pins().object(*pin) {
                        let tally = self.criticals.entry(cx.thread).or_default();
                        match tally.iter_mut().find(|(o, _)| *o == obj) {
                            Some(entry) => entry.1 += 1,
                            None => tally.push((obj, 1)),
                        }
                    }
                }
            }
            Check::PinAcquire => {
                if let JniRet::Buf(pin) = ret {
                    if let Some(kind) = jvm.pins().kind(*pin) {
                        self.pins.insert(
                            *pin,
                            PinInfo {
                                kind,
                                released: false,
                            },
                        );
                    }
                }
            }
            Check::MonitorAcquire => {
                if let Some(r) = cx.args.first().and_then(JniArg::as_ref) {
                    if let Ok(Some(oop)) = jvm.resolve(cx.thread, r) {
                        let id = jvm.heap().id_of(oop);
                        *self.monitors.entry((cx.thread, id)).or_insert(0) += 1;
                    }
                }
            }
            Check::MonitorRelease => {
                if let Some(r) = cx.args.first().and_then(JniArg::as_ref) {
                    if let Ok(Some(oop)) = jvm.resolve(cx.thread, r) {
                        let id = jvm.heap().id_of(oop);
                        if let Some(count) = self.monitors.get_mut(&(cx.thread, id)) {
                            *count -= 1;
                            if *count == 0 {
                                self.monitors.remove(&(cx.thread, id));
                            }
                        }
                    }
                }
            }
            Check::GlobalAcquire => {
                if let JniRet::Ref(r) = ret {
                    if !r.is_null() {
                        self.globals.insert(GlobalKey::of(*r), RefState::Live);
                        self.record_ref_moved(
                            self.labels.global_ref,
                            cx.thread,
                            self.labels.acquire,
                            r,
                        );
                    }
                }
            }
            Check::LocalAcquireFromReturn => {
                if let JniRet::Ref(r) = ret {
                    if !r.is_null() && r.kind() == RefKind::Local {
                        let thread = cx.thread;
                        let tracker = self.tracker(thread);
                        tracker.acquire(LocalKey::of(*r));
                        let frame = tracker.current();
                        let overflow = frame.refs.len() > frame.capacity;
                        let (len, cap) = (frame.refs.len(), frame.capacity);
                        self.record_ref_moved(
                            self.labels.local_ref,
                            thread,
                            self.labels.acquire,
                            r,
                        );
                        if overflow {
                            return Some(self.violation(
                                machine,
                                "Error:Overflow",
                                fname,
                                format!(
                                    "{fname} acquired local reference {len} of a frame with capacity {cap} (use EnsureLocalCapacity or PushLocalFrame)"
                                ),
                                cx.stack,
                            ));
                        }
                    }
                }
            }
            Check::FramePush => {
                let capacity = match cx.args.first() {
                    Some(JniArg::Size(c)) => (*c).max(0) as usize,
                    _ => DEFAULT_LOCAL_CAPACITY,
                };
                self.tracker(cx.thread).frames.push(Frame {
                    kind: FrameKind::Explicit,
                    capacity,
                    refs: Vec::new(),
                });
            }
            Check::EnsureCapacity => {
                if let Some(JniArg::Size(c)) = cx.args.first() {
                    let c = (*c).max(0) as usize;
                    let frame = self.tracker(cx.thread).current();
                    frame.capacity = frame.capacity.max(c);
                }
            }
            _ => {}
        }
        None
    }
}

fn expected_pin_kind(func: FuncId) -> Option<PinKind> {
    match func.spec().op {
        Op::ReleaseStringChars => Some(PinKind::StringChars),
        Op::ReleaseStringUtfChars => Some(PinKind::StringUtfChars),
        Op::ReleaseArrayElements(_) => Some(PinKind::ArrayElements),
        Op::ReleasePrimitiveArrayCritical => Some(PinKind::ArrayCritical),
        Op::ReleaseStringCritical => Some(PinKind::StringCritical),
        _ => None,
    }
}

impl Interpose for Jinn {
    fn name(&self) -> &str {
        "jinn"
    }

    fn pre_jni(&mut self, jvm: &Jvm, cx: &CallCx<'_>) -> Vec<Report> {
        // Synthesized wrappers throw at the first violated constraint
        // (Figure 4), so the first report wins.
        let n = self.table.pre(cx.func).len();
        self.stats
            .checks_executed
            .fetch_add(n as u64, Ordering::Relaxed);
        self.recorder
            .count_id(self.labels.checks_executed, n as u64);
        if !self.checks_enabled {
            return Vec::new();
        }
        for i in 0..n {
            let point = self.table.pre(cx.func)[i];
            if let Some(report) = self.run_pre_check(jvm, cx, point.machine, point.check) {
                return vec![report];
            }
        }
        Vec::new()
    }

    fn post_jni(&mut self, jvm: &Jvm, cx: &CallCx<'_>, ret: Option<&JniRet>) -> Vec<Report> {
        let n = self.table.post(cx.func).len();
        self.stats
            .checks_executed
            .fetch_add(n as u64, Ordering::Relaxed);
        self.recorder
            .count_id(self.labels.checks_executed, n as u64);
        if !self.checks_enabled {
            return Vec::new();
        }
        for i in 0..n {
            let point = self.table.post(cx.func)[i];
            if let Some(report) = self.run_post_check(jvm, cx, point.machine, point.check, ret) {
                return vec![report];
            }
        }
        Vec::new()
    }

    fn native_enter(
        &mut self,
        _jvm: &Jvm,
        thread: ThreadId,
        _method: MethodId,
        arg_refs: &[JRef],
        _stack: &[String],
    ) -> Vec<Report> {
        if !self.checks_enabled {
            return Vec::new();
        }
        let tracker = self.tracker(thread);
        tracker.frames.push(Frame {
            kind: FrameKind::NativeEntry,
            capacity: DEFAULT_LOCAL_CAPACITY,
            refs: Vec::new(),
        });
        let mut acquired = 0u64;
        for r in arg_refs {
            if r.kind() == RefKind::Local {
                tracker.acquire(LocalKey::of(*r));
                acquired += 1;
            }
        }
        if self.recorder.is_enabled() && acquired > 0 {
            // Call:Java→C Acquire transitions for the argument references.
            for r in arg_refs.iter().filter(|r| r.kind() == RefKind::Local) {
                self.record_ref_moved(self.labels.local_ref, thread, self.labels.acquire, r);
            }
            self.recorder
                .count_id(self.labels.locals_acquired, acquired);
        }
        Vec::new()
    }

    fn native_exit(
        &mut self,
        jvm: &Jvm,
        thread: ThreadId,
        method: MethodId,
        returned_ref: Option<JRef>,
        stack: &[String],
    ) -> Vec<Report> {
        if !self.checks_enabled {
            return Vec::new();
        }
        let mut reports = Vec::new();
        let method_name = jvm
            .registry()
            .method(method)
            .map(|m| m.name.clone())
            .unwrap_or_else(|| "<native method>".to_string());

        // Use of the returned reference (Return:C→Java Use transition).
        if let Some(r) = returned_ref {
            let msg = match r.kind() {
                RefKind::Local => self.check_local_use(jvm, thread, r),
                RefKind::Global | RefKind::WeakGlobal => self.check_global_use(jvm, thread, r),
                RefKind::Null => None,
            };
            if let Some(msg) = msg {
                let machine: &'static str = if r.kind() == RefKind::Local {
                    "local-reference"
                } else {
                    "global-reference"
                };
                reports.push(self.violation(
                    machine,
                    "Error:Dangling",
                    &method_name,
                    format!("{msg} returned from native method {method_name}"),
                    stack,
                ));
            }
        }

        // Frame balance: explicit frames must be popped before returning.
        let tracker = self.tracker(thread);
        let mut leaked_frames = 0;
        while tracker
            .frames
            .last()
            .map(|f| f.kind == FrameKind::Explicit)
            .unwrap_or(false)
        {
            leaked_frames += 1;
            tracker.release_frame();
        }
        // Release the native-entry frame itself.
        tracker.release_frame();
        if leaked_frames > 0 {
            reports.push(self.violation(
                "local-reference",
                "Error:FrameLeak",
                &method_name,
                format!("{leaked_frames} local frame(s) pushed by {method_name} were never popped"),
                stack,
            ));
        }
        reports
    }

    fn vm_death(&mut self, jvm: &Jvm) -> Vec<Report> {
        if !self.checks_enabled {
            return Vec::new();
        }
        let mut reports = Vec::new();
        // Leak sweeps iterate in sorted entity order: the backing maps
        // iterate in randomized order per process run, and verdict
        // sequences must be stable across runs (and across replays).
        let mut leaked_pins: Vec<(&PinId, &PinInfo)> =
            self.pins.iter().filter(|(_, i)| !i.released).collect();
        leaked_pins.sort_unstable_by_key(|(pin, _)| pin.0);
        for (pin, info) in leaked_pins {
            let kind = info.kind;
            reports.push(Report::new(
                Violation {
                    machine: "pinned-buffer",
                    error_state: "Error:Leak",
                    function: "VMDeath".to_string(),
                    message: format!("buffer {pin} acquired via {kind} was never released"),
                    backtrace: Vec::new(),
                },
                ReportAction::ThrowException,
            ));
        }
        let mut held_monitors: Vec<(&(ThreadId, ObjectId), &u32)> = self.monitors.iter().collect();
        held_monitors.sort_unstable_by_key(|((t, o), _)| (t.0, o.0));
        for ((thread, obj), count) in held_monitors {
            reports.push(Report::new(
                Violation {
                    machine: "monitor",
                    error_state: "Error:Leak",
                    function: "VMDeath".to_string(),
                    message: format!(
                        "monitor of {obj} still held {count}x by {thread} at termination (deadlock risk)"
                    ),
                    backtrace: Vec::new(),
                },
                ReportAction::ThrowException,
            ));
        }
        let leaked_globals = self
            .globals
            .values()
            .filter(|s| **s == RefState::Live)
            .count();
        if leaked_globals > 0 {
            reports.push(Report::new(
                Violation {
                    machine: "global-reference",
                    error_state: "Error:Leak",
                    function: "VMDeath".to_string(),
                    message: format!(
                        "{leaked_globals} global/weak-global reference(s) never deleted"
                    ),
                    backtrace: Vec::new(),
                },
                ReportAction::ThrowException,
            ));
        }
        self.stats
            .violations
            .fetch_add(reports.len() as u64, Ordering::Relaxed);
        let _ = jvm;
        reports
    }
}

/// Registers Jinn's exception class and attaches a fresh checker to the
/// session (`java -agentlib:jinn`). Returns the stats handle.
pub fn install(session: &mut minijni::Session) -> SharedStats {
    install_with_config(session, JinnConfig::default())
}

/// Like [`install`], with explicit configuration.
pub fn install_with_config(session: &mut minijni::Session, config: JinnConfig) -> SharedStats {
    install_prebuilt(session, Jinn::with_config(config))
}

/// Like [`install`], but attaches a checker constructed elsewhere — for
/// example on a driver thread that then moves it into a worker thread
/// (`Jinn` is `Send`). Registers the exception class, wires the
/// session's recorder into the checker, and returns the stats handle.
pub fn install_prebuilt(session: &mut minijni::Session, mut jinn: Jinn) -> SharedStats {
    let jvm = session.vm_mut().jvm_mut();
    if jvm.find_class(minijni::JINN_EXCEPTION_CLASS).is_none() {
        jvm.registry_mut()
            .define(minijni::JINN_EXCEPTION_CLASS)
            .superclass(minijvm::class::names::RUNTIME_EXCEPTION)
            .build()
            .expect("register jinn exception class");
    }
    jinn.set_recorder(session.recorder().clone());
    let stats = jinn.stats_handle();
    session.attach(Box::new(jinn));
    stats
}
