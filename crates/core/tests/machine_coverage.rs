//! Per-machine unit tests of the synthesized checker: for each of the
//! eleven machines, one positive case (the violation is detected with the
//! right error state) and one negative case (the closest legal program is
//! not flagged). Also covers the configuration knobs (pedantic visibility,
//! per-machine ablation).

use std::rc::Rc;

use jinn_core::{install, install_with_config, JinnConfig};
use minijni::{typed, JniError, RunOutcome, Session, Vm};
use minijvm::{JRef, JValue, MemberFlags};

type Body = Rc<dyn Fn(&mut minijni::JniEnv<'_>, &[JValue]) -> Result<JValue, JniError>>;

fn run_with(config: Option<JinnConfig>, setup: impl FnOnce(&mut Vm), body: Body) -> RunOutcome {
    let mut vm = Vm::permissive();
    setup(&mut vm);
    let (_c, entry) = vm.define_native_class("cover/T", "m", "(Ljava/lang/Object;)V", true, body);
    let class = vm.jvm().find_class("java/lang/Object").unwrap();
    let oop = vm.jvm_mut().alloc_object(class);
    let thread = vm.jvm().main_thread();
    let arg = JValue::Ref(vm.jvm_mut().new_local(thread, oop));
    let mut session = Session::new(vm);
    match config {
        Some(c) => {
            install_with_config(&mut session, c);
        }
        None => {
            install(&mut session);
        }
    }
    session.run_native(thread, entry, &[arg])
}

fn run(body: Body) -> RunOutcome {
    run_with(None, |_| {}, body)
}

fn expect_violation(outcome: RunOutcome, machine: &str, state: &str) {
    match outcome {
        RunOutcome::CheckerException(v) => {
            assert_eq!(v.machine, machine, "{v}");
            assert_eq!(v.error_state, state, "{v}");
        }
        other => panic!("expected [{machine}/{state}], got {other:?}"),
    }
}

fn expect_clean(outcome: RunOutcome) {
    assert!(matches!(outcome, RunOutcome::Completed(_)), "{outcome:?}");
}

// --- machine 1: jnienv-state -------------------------------------------------

#[test]
fn m1_env_mismatch_detected() {
    let mut vm = Vm::permissive();
    let other = vm.jvm_mut().spawn_thread();
    let token = vm.jvm().thread(other).env();
    let (_c, entry) = vm.define_native_class(
        "cover/Env",
        "m",
        "()V",
        true,
        Rc::new(move |env, _| {
            env.set_presented_env(token);
            typed::get_version(env)?;
            Ok(JValue::Void)
        }),
    );
    let thread = vm.jvm().main_thread();
    let mut session = Session::new(vm);
    install(&mut session);
    expect_violation(
        session.run_native(thread, entry, &[]),
        "jnienv-state",
        "Error:EnvMismatch",
    );
}

// --- machine 2: exception-state ------------------------------------------------

#[test]
fn m2_sensitive_call_with_pending_detected_oblivious_allowed() {
    expect_violation(
        run(Rc::new(|env, _| {
            let rte = typed::find_class(env, "java/lang/RuntimeException")?;
            typed::throw_new(env, rte, "pending")?;
            // ExceptionCheck/Occurred/Describe/Clear are oblivious:
            assert!(typed::exception_check(env)?);
            let _ = typed::exception_occurred(env)?;
            // ...but GetVersion is sensitive.
            typed::get_version(env)?;
            Ok(JValue::Void)
        })),
        "exception-state",
        "Error:SensitiveCallWithPending",
    );
    expect_clean(run(Rc::new(|env, _| {
        let rte = typed::find_class(env, "java/lang/RuntimeException")?;
        typed::throw_new(env, rte, "pending")?;
        typed::exception_clear(env)?; // handled properly
        typed::get_version(env)?;
        Ok(JValue::Void)
    })));
}

// --- machine 3: critical-section -------------------------------------------------

#[test]
fn m3_sensitive_call_in_critical_detected_insensitive_allowed() {
    expect_violation(
        run(Rc::new(|env, _| {
            let s = typed::new_string_utf(env, "x")?;
            let pin = typed::get_string_critical(env, s)?;
            typed::get_version(env)?; // sensitive!
            typed::release_string_critical(env, s, pin)?;
            Ok(JValue::Void)
        })),
        "critical-section",
        "Error:SensitiveCallInCritical",
    );
    expect_clean(run(Rc::new(|env, _| {
        let s = typed::new_string_utf(env, "x")?;
        let a = typed::new_int_array(env, 2)?;
        let p1 = typed::get_string_critical(env, s)?;
        // Nested acquisition of another critical resource is the one legal
        // thing to do inside a critical section.
        let p2 = typed::get_primitive_array_critical(env, a)?;
        typed::release_primitive_array_critical(env, a, p2, 0)?;
        typed::release_string_critical(env, s, p1)?;
        typed::get_version(env)?; // fine now
        Ok(JValue::Void)
    })));
}

#[test]
fn m3_unmatched_release_detected() {
    expect_violation(
        run(Rc::new(|env, _| {
            let s = typed::new_string_utf(env, "x")?;
            let pin = typed::get_string_chars(env, s)?; // NOT critical
            typed::release_string_critical(env, s, pin)?;
            Ok(JValue::Void)
        })),
        "critical-section",
        "Error:UnmatchedRelease",
    );
}

// --- machine 4: fixed-typing ---------------------------------------------------

#[test]
fn m4_fixed_type_mismatch_detected_conforming_allowed() {
    expect_violation(
        run(Rc::new(|env, args| {
            let obj = args[0].as_ref().unwrap();
            // A plain object where GetStringLength requires a jstring.
            let _ = typed::get_string_length(env, obj)?;
            Ok(JValue::Void)
        })),
        "fixed-typing",
        "Error:FixedTypeMismatch",
    );
    expect_clean(run(Rc::new(|env, _| {
        let s = typed::new_string_utf(env, "ok")?;
        assert_eq!(typed::get_string_length(env, s)?, 2);
        Ok(JValue::Void)
    })));
}

// --- machine 5: entity-typing ----------------------------------------------------

#[test]
fn m5_forged_id_detected() {
    expect_violation(
        run(Rc::new(|env, args| {
            let obj = args[0].as_ref().unwrap();
            typed::call_void_method_a(env, obj, minijvm::MethodId::forged(0xDEAD_0001), &[])?;
            Ok(JValue::Void)
        })),
        "entity-typing",
        "Error:EntityTypeMismatch",
    );
}

#[test]
fn m5_staticness_and_arity_checked() {
    let setup = |vm: &mut Vm| {
        vm.define_managed_class(
            "cover/Target",
            "twice",
            "(I)I",
            true,
            Rc::new(|_env, args| Ok(JValue::Int(args[0].as_int().unwrap_or(0) * 2))),
        );
    };
    // Static method invoked virtually: violation.
    expect_violation(
        run_with(
            None,
            setup,
            Rc::new(|env, args| {
                let obj = args[0].as_ref().unwrap();
                let clazz = typed::find_class(env, "cover/Target")?;
                let mid = typed::get_static_method_id(env, clazz, "twice", "(I)I")?;
                let _ = typed::call_int_method_a(env, obj, mid, &[JValue::Int(1)])?;
                Ok(JValue::Void)
            }),
        ),
        "entity-typing",
        "Error:EntityTypeMismatch",
    );
    // Wrong arity: violation.
    expect_violation(
        run_with(
            None,
            setup,
            Rc::new(|env, _| {
                let clazz = typed::find_class(env, "cover/Target")?;
                let mid = typed::get_static_method_id(env, clazz, "twice", "(I)I")?;
                let _ = typed::call_static_int_method_a(env, clazz, mid, &[])?;
                Ok(JValue::Void)
            }),
        ),
        "entity-typing",
        "Error:EntityTypeMismatch",
    );
    // Wrong primitive type: violation.
    expect_violation(
        run_with(
            None,
            setup,
            Rc::new(|env, _| {
                let clazz = typed::find_class(env, "cover/Target")?;
                let mid = typed::get_static_method_id(env, clazz, "twice", "(I)I")?;
                let _ = typed::call_static_int_method_a(env, clazz, mid, &[JValue::Long(1)])?;
                Ok(JValue::Void)
            }),
        ),
        "entity-typing",
        "Error:EntityTypeMismatch",
    );
    // Conforming call: clean.
    expect_clean(run_with(
        None,
        setup,
        Rc::new(|env, _| {
            let clazz = typed::find_class(env, "cover/Target")?;
            let mid = typed::get_static_method_id(env, clazz, "twice", "(I)I")?;
            assert_eq!(
                typed::call_static_int_method_a(env, clazz, mid, &[JValue::Int(21)])?,
                42
            );
            Ok(JValue::Void)
        }),
    ));
}

// --- machine 6: access-control ----------------------------------------------------

#[test]
fn m6_final_write_detected_nonfinal_allowed() {
    let setup = |vm: &mut Vm| {
        vm.jvm_mut()
            .registry_mut()
            .define("cover/Conf")
            .field("MAX", "I", MemberFlags::public().with_final(true))
            .field("cur", "I", MemberFlags::public())
            .build()
            .unwrap();
    };
    let body = |field: &'static str| -> Body {
        Rc::new(move |env, _| {
            let clazz = typed::find_class(env, "cover/Conf")?;
            let obj = typed::alloc_object(env, clazz)?;
            let fid = typed::get_field_id(env, clazz, field, "I")?;
            typed::set_int_field(env, obj, fid, 1)?;
            Ok(JValue::Void)
        })
    };
    expect_violation(
        run_with(None, setup, body("MAX")),
        "access-control",
        "Error:FinalFieldWrite",
    );
    expect_clean(run_with(None, setup, body("cur")));
}

// --- machine 7: nullness ------------------------------------------------------------

#[test]
fn m7_null_argument_detected_nullable_allowed() {
    expect_violation(
        run(Rc::new(|env, _| {
            typed::get_object_class(env, JRef::NULL)?;
            Ok(JValue::Void)
        })),
        "nullness",
        "Error:Null",
    );
    // NewGlobalRef's argument is nullable by spec.
    expect_clean(run(Rc::new(|env, _| {
        let g = typed::new_global_ref(env, JRef::NULL)?;
        assert!(g.is_null());
        Ok(JValue::Void)
    })));
}

// --- machine 8: pinned-buffer ---------------------------------------------------------

#[test]
fn m8_double_free_detected_matched_release_allowed() {
    expect_violation(
        run(Rc::new(|env, _| {
            let a = typed::new_int_array(env, 2)?;
            let pin = typed::get_int_array_elements(env, a)?;
            typed::release_int_array_elements(env, a, pin, 0)?;
            typed::release_int_array_elements(env, a, pin, 0)?;
            Ok(JValue::Void)
        })),
        "pinned-buffer",
        "Error:DoubleFree",
    );
}

#[test]
fn m8_kind_mismatch_detected() {
    expect_violation(
        run(Rc::new(|env, _| {
            let s = typed::new_string_utf(env, "x")?;
            let pin = typed::get_string_chars(env, s)?;
            // Released through the UTF variant: wrong family.
            typed::release_string_utf_chars(env, s, pin)?;
            Ok(JValue::Void)
        })),
        "pinned-buffer",
        "Error:DoubleFree",
    );
}

#[test]
fn m8_leak_reported_at_death() {
    let mut vm = Vm::permissive();
    let (_c, entry) = vm.define_native_class(
        "cover/Pin",
        "m",
        "()V",
        true,
        Rc::new(|env, _| {
            let s = typed::new_string_utf(env, "kept")?;
            let _pin = typed::get_string_utf_chars(env, s)?;
            Ok(JValue::Void)
        }),
    );
    let thread = vm.jvm().main_thread();
    let mut session = Session::new(vm);
    install(&mut session);
    expect_clean(session.run_native(thread, entry, &[]));
    let reports = session.shutdown();
    assert_eq!(reports.len(), 1, "{reports:?}");
    assert_eq!(reports[0].violation.machine, "pinned-buffer");
    assert_eq!(reports[0].violation.error_state, "Error:Leak");
}

// --- machine 9: monitor -----------------------------------------------------------------

#[test]
fn m9_monitor_leak_reported_balanced_clean() {
    let leak: Body = Rc::new(|env, args| {
        let obj = args[0].as_ref().unwrap();
        typed::monitor_enter(env, obj)?;
        Ok(JValue::Void)
    });
    let mut vm = Vm::permissive();
    let (_c, entry) = vm.define_native_class("cover/Mon", "m", "(Ljava/lang/Object;)V", true, leak);
    let class = vm.jvm().find_class("java/lang/Object").unwrap();
    let oop = vm.jvm_mut().alloc_object(class);
    let thread = vm.jvm().main_thread();
    let arg = JValue::Ref(vm.jvm_mut().new_local(thread, oop));
    let mut session = Session::new(vm);
    install(&mut session);
    expect_clean(session.run_native(thread, entry, &[arg]));
    let reports = session.shutdown();
    assert!(
        reports
            .iter()
            .any(|r| r.violation.machine == "monitor" && r.violation.error_state == "Error:Leak"),
        "{reports:?}"
    );

    expect_clean(run(Rc::new(|env, args| {
        let obj = args[0].as_ref().unwrap();
        typed::monitor_enter(env, obj)?;
        typed::monitor_exit(env, obj)?;
        Ok(JValue::Void)
    })));
}

// --- machine 10: global-reference ----------------------------------------------------------

#[test]
fn m10_dangling_global_use_detected() {
    expect_violation(
        run(Rc::new(|env, args| {
            let obj = args[0].as_ref().unwrap();
            let g = typed::new_global_ref(env, obj)?;
            typed::delete_global_ref(env, g)?;
            typed::get_object_class(env, g)?;
            Ok(JValue::Void)
        })),
        "global-reference",
        "Error:Dangling",
    );
}

#[test]
fn m10_double_delete_detected_and_weak_refs_tracked() {
    expect_violation(
        run(Rc::new(|env, args| {
            let obj = args[0].as_ref().unwrap();
            let g = typed::new_global_ref(env, obj)?;
            typed::delete_global_ref(env, g)?;
            typed::delete_global_ref(env, g)?;
            Ok(JValue::Void)
        })),
        "global-reference",
        "Error:Dangling",
    );
    expect_clean(run(Rc::new(|env, args| {
        let obj = args[0].as_ref().unwrap();
        let w = typed::new_weak_global_ref(env, obj)?;
        let _ = typed::is_same_object(env, w, JRef::NULL)?;
        typed::delete_weak_global_ref(env, w)?;
        Ok(JValue::Void)
    })));
}

// --- machine 11: local-reference ---------------------------------------------------------------

#[test]
fn m11_overflow_at_the_17th_reference() {
    let outcome = run(Rc::new(|env, args| {
        let obj = args[0].as_ref().unwrap();
        for _ in 0..17 {
            typed::new_local_ref(env, obj)?;
        }
        Ok(JValue::Void)
    }));
    match outcome {
        RunOutcome::CheckerException(v) => {
            assert_eq!(v.error_state, "Error:Overflow");
            assert!(v.message.contains("17"), "{}", v.message);
        }
        other => panic!("{other:?}"),
    }
    // EnsureLocalCapacity legalizes the same program.
    expect_clean(run(Rc::new(|env, args| {
        let obj = args[0].as_ref().unwrap();
        typed::ensure_local_capacity(env, 64)?;
        for _ in 0..17 {
            typed::new_local_ref(env, obj)?;
        }
        Ok(JValue::Void)
    })));
}

#[test]
fn m11_frame_leak_and_unmatched_pop() {
    // A pushed frame that is never popped is reported at native return.
    let outcome = run(Rc::new(|env, _| {
        typed::push_local_frame(env, 8)?;
        Ok(JValue::Void)
    }));
    expect_violation(outcome, "local-reference", "Error:FrameLeak");
    // Popping a frame that was never pushed.
    expect_violation(
        run(Rc::new(|env, _| {
            typed::pop_local_frame(env, JRef::NULL)?;
            Ok(JValue::Void)
        })),
        "local-reference",
        "Error:DoubleFree",
    );
}

#[test]
fn m11_cross_thread_local_use_detected() {
    let mut vm = Vm::permissive();
    let stash: Rc<std::cell::RefCell<Option<JRef>>> = Rc::default();
    let (_c1, steal) = {
        let stash = Rc::clone(&stash);
        vm.define_native_class(
            "cover/Steal",
            "m",
            "(Ljava/lang/Object;)V",
            true,
            Rc::new(move |_env, args| {
                *stash.borrow_mut() = args[0].as_ref();
                Ok(JValue::Void)
            }),
        )
    };
    let (_c2, usr) = {
        let stash = Rc::clone(&stash);
        vm.define_native_class(
            "cover/Use",
            "m",
            "()V",
            true,
            Rc::new(move |env, _| {
                let r = stash.borrow().unwrap();
                typed::get_object_class(env, r)?;
                Ok(JValue::Void)
            }),
        )
    };
    let class = vm.jvm().find_class("java/lang/Object").unwrap();
    let oop = vm.jvm_mut().alloc_object(class);
    let main = vm.jvm().main_thread();
    let worker = vm.jvm_mut().spawn_thread();
    let arg = JValue::Ref(vm.jvm_mut().new_local(main, oop));
    let mut session = Session::new(vm);
    install(&mut session);
    // `steal` runs on main and stashes a main-thread local ref that stays
    // live; `usr` runs on the worker and uses it across threads.
    expect_clean(session.run_native(main, steal, &[arg]));
    // Keep the stashed ref live on main: re-stash a fresh one directly.
    let oop2 = {
        let class = session.vm().jvm().find_class("java/lang/Object").unwrap();
        session.vm_mut().jvm_mut().alloc_object(class)
    };
    let fresh = session.vm_mut().jvm_mut().new_local(main, oop2);
    *stash.borrow_mut() = Some(fresh);
    match session.run_native(worker, usr, &[]) {
        RunOutcome::CheckerException(v) => {
            assert_eq!(v.machine, "local-reference");
            assert!(v.message.contains("thread"), "{}", v.message);
        }
        other => panic!("cross-thread use missed: {other:?}"),
    }
}

// --- configuration knobs --------------------------------------------------------------------

#[test]
fn pedantic_visibility_flags_private_access_default_does_not() {
    let setup = |vm: &mut Vm| {
        vm.jvm_mut()
            .registry_mut()
            .define("cover/Secret")
            .field("hidden", "I", MemberFlags::private())
            .build()
            .unwrap();
    };
    let body: fn() -> Body = || {
        Rc::new(|env, _| {
            let clazz = typed::find_class(env, "cover/Secret")?;
            let obj = typed::alloc_object(env, clazz)?;
            let fid = typed::get_field_id(env, clazz, "hidden", "I")?;
            let _ = typed::get_int_field(env, obj, fid)?;
            Ok(JValue::Void)
        })
    };
    // Default Jinn follows the paper: private access is entrenched
    // practice, not an error.
    expect_clean(run_with(None, setup, body()));
    // Pedantic mode enforces the gray zone.
    expect_violation(
        run_with(
            Some(JinnConfig {
                pedantic_visibility: true,
                ..Default::default()
            }),
            setup,
            body(),
        ),
        "entity-typing",
        "Error:EntityTypeMismatch",
    );
}

#[test]
fn ablation_disables_exactly_the_named_machine() {
    let buggy: fn() -> Body = || {
        Rc::new(|env, _| {
            typed::get_object_class(env, JRef::NULL)?;
            Ok(JValue::Void)
        })
    };
    // Full Jinn catches the null argument...
    expect_violation(run_with(None, |_| {}, buggy()), "nullness", "Error:Null");
    // ...Jinn-without-the-nullness-machine does not (the raw permissive
    // VM then raises its NPE).
    let outcome = run_with(
        Some(JinnConfig {
            disabled_machines: vec!["nullness"],
            ..Default::default()
        }),
        |_| {},
        buggy(),
    );
    match outcome {
        RunOutcome::UncaughtException(desc) => {
            assert!(desc.contains("NullPointerException"), "{desc}");
        }
        other => panic!("expected raw NPE, got {other:?}"),
    }
    // Unrelated machines still work with nullness disabled.
    let outcome = run_with(
        Some(JinnConfig {
            disabled_machines: vec!["nullness"],
            ..Default::default()
        }),
        |_| {},
        Rc::new(|env, args| {
            let obj = args[0].as_ref().unwrap();
            let r = typed::new_local_ref(env, obj)?;
            typed::delete_local_ref(env, r)?;
            typed::get_object_class(env, r)?;
            Ok(JValue::Void)
        }),
    );
    expect_violation(outcome, "local-reference", "Error:Dangling");
}
