//! Discharge soundness, pinned end to end: for every machine of the
//! Jinn suite and the bench workload mix's manifest, an engine compiled
//! with the discharge pass's elided transitions must produce the exact
//! same outcome transcript — and therefore the same verdict multiset —
//! as the fully compiled engine, on any event stream the workload can
//! actually produce (i.e. any stream over the *non*-discharged
//! transitions). This is the property that makes eliding transitions an
//! optimization and not a behaviour change.

use std::collections::BTreeMap;
use std::sync::Arc;

use jinn_core::{discharge, WorkloadManifest};
use jinn_fsm::{AtomicStore, CompiledMachine, TransitionId};

/// The Table 3 mix — kept textually in sync with
/// `jinn_workloads::TABLE3_CALLED_FUNCTIONS` (the workloads crate pins
/// that constant against the recorded workload, and depends on this
/// crate, so the list is duplicated here).
const BENCH_MIX: [&str; 18] = [
    "CallIntMethodA",
    "DeleteGlobalRef",
    "DeleteLocalRef",
    "GetFieldID",
    "GetIntArrayRegion",
    "GetIntField",
    "GetMethodID",
    "GetObjectClass",
    "GetStringUTFChars",
    "GetStringUTFLength",
    "IsSameObject",
    "NewGlobalRef",
    "NewIntArray",
    "NewLocalRef",
    "NewStringUTF",
    "ReleaseStringUTFChars",
    "SetIntArrayRegion",
    "SetIntField",
];

/// Deterministic stream source (no external RNG dependency needed).
struct Lcg(u64);

impl Lcg {
    fn next(&mut self) -> u64 {
        self.0 = self
            .0
            .wrapping_mul(6_364_136_223_846_793_005)
            .wrapping_add(1_442_695_040_888_963_407);
        self.0 >> 16
    }
}

/// A multiset of error-state entries: error state name → count. Two
/// engines with equal maps produced the same verdicts, regardless of
/// which entities hit them in which order.
fn verdict_multiset(outcomes: &[jinn_fsm::TransitionOutcome]) -> BTreeMap<String, u64> {
    let mut m = BTreeMap::new();
    for o in outcomes {
        if let Some(err) = o.error() {
            *m.entry(err.state.to_string()).or_default() += 1;
        }
    }
    m
}

#[test]
fn discharged_engines_match_full_engines_on_workload_streams() {
    let machines = jinn_spec::machines();
    let manifest = WorkloadManifest::new("table3-mix", BENCH_MIX);
    let report = discharge(&machines, &manifest);
    assert!(report.unknown_functions.is_empty());
    assert!(report.total_discharged() > 0, "the mix must discharge work");

    let mut rng = Lcg(0x5eed_1234_abcd_0001);
    for spec in &machines {
        let elided: Vec<TransitionId> = report.elided_for(spec.name());
        let live: Vec<TransitionId> = spec
            .transitions()
            .iter()
            .filter_map(|t| spec.transition_id(t.name()))
            .filter(|id| !elided.contains(id))
            .collect();

        let full = AtomicStore::<u64>::new(spec.clone());
        let discharged = AtomicStore::<u64>::with_compiled(Arc::new(
            CompiledMachine::compile_discharged(spec.clone(), &elided),
        ));

        // A workload that cannot call a transition's triggers cannot
        // emit that transition: streams draw from `live` only. Inactive
        // machines have no live transitions and hence no stream — the
        // equivalence is vacuous there, which is exactly why the whole
        // machine can be skipped at check time.
        let mut full_outcomes = Vec::new();
        let mut discharged_outcomes = Vec::new();
        for _ in 0..if live.is_empty() { 0 } else { 2_000 } {
            let key = rng.next() % 24;
            let t = live[(rng.next() as usize) % live.len()];
            let thread = (rng.next() % 3) as u16;
            full_outcomes.push(full.apply(thread, &key, t).outcome);
            discharged_outcomes.push(discharged.apply(thread, &key, t).outcome);
        }

        assert_eq!(
            full_outcomes,
            discharged_outcomes,
            "machine `{}`: full and discharged transcripts must agree",
            spec.name()
        );
        assert_eq!(
            verdict_multiset(&full_outcomes),
            verdict_multiset(&discharged_outcomes),
            "machine `{}`: verdict multisets must agree",
            spec.name()
        );
        assert_eq!(full.len(), discharged.len(), "machine `{}`", spec.name());
        assert_eq!(
            full.entities_not_in(spec.initial()),
            discharged.entities_not_in(spec.initial()),
            "machine `{}`: leak sweeps must agree",
            spec.name()
        );
    }
}

/// On the discharged engine, an elided transition is pure
/// `NotApplicable` from *every* state — even states where the full
/// machine would have moved. This is the compiled form of the
/// discharge proof, and the reason eliding is only sound when the
/// workload can never emit the transition.
#[test]
fn elided_transitions_are_inert_from_every_state() {
    let machines = jinn_spec::machines();
    let manifest = WorkloadManifest::new("table3-mix", BENCH_MIX);
    let report = discharge(&machines, &manifest);

    let monitor = machines
        .iter()
        .find(|m| m.name() == "monitor")
        .expect("suite has a monitor machine");
    let elided = report.elided_for("monitor");
    assert!(!elided.is_empty());
    let store = AtomicStore::<u64>::with_compiled(Arc::new(CompiledMachine::compile_discharged(
        monitor.clone(),
        &elided,
    )));
    for &t in &elided {
        let out = store.apply(0, &7, t).outcome;
        assert!(
            matches!(out, jinn_fsm::TransitionOutcome::NotApplicable { .. }),
            "elided `{}` must be inert, got {out:?}",
            monitor.transitions()[t.index()].name()
        );
    }
    assert_eq!(verdict_multiset(&[]), BTreeMap::new());
}
