//! The [`Engine`] abstraction: one interface over the two entity-state
//! encodings — the reference [`StateStore`] and the compiled
//! [`CompactStore`] — plus [`DiffStore`], the differential-equivalence
//! adapter that runs both and asserts they agree.
//!
//! [`ShardedStateStore`](crate::ShardedStateStore) is generic over an
//! engine, so the concurrent store can host either encoding (or the
//! differential pair) without duplicating the sharding logic.

use std::fmt;
use std::hash::Hash;

use jinn_obs::Recorder;

use crate::compiled::{CompactStore, DenseKey};
use crate::machine::{MachineSpec, StateId, TransitionId};
use crate::runtime::{EntityState, StateStore, TransitionOutcome, UnknownTransition};

/// A dispatch engine: an entity-state map plus transition application
/// for one machine. Implementations must agree outcome-for-outcome —
/// [`DiffStore`] and the equivalence proptest enforce it.
pub trait Engine<K> {
    /// Creates an empty engine tracking instances of `machine`.
    fn for_machine(machine: MachineSpec) -> Self
    where
        Self: Sized;

    /// Attaches an observability recorder.
    fn set_recorder(&mut self, recorder: Recorder);

    /// The machine spec this engine tracks.
    fn spec(&self) -> &MachineSpec;

    /// Number of tracked entities.
    fn len(&self) -> usize;

    /// Returns `true` if no entities are tracked.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Current state of `entity`, or the initial state if never seen.
    fn state_of(&self, entity: &K) -> StateId;

    /// Returns `true` if the entity has been attached.
    fn contains(&self, entity: &K) -> bool;

    /// Applies a transition by id; see
    /// [`StateStore::apply`](crate::StateStore::apply).
    fn apply(&mut self, entity: &K, transition: TransitionId) -> TransitionOutcome;

    /// Applies a transition by name, degrading unknown names to
    /// `NotApplicable`.
    fn apply_named(&mut self, entity: &K, name: &str) -> TransitionOutcome;

    /// Applies a transition by name, reporting unknown names.
    ///
    /// # Errors
    ///
    /// Returns [`UnknownTransition`] when the machine has no transition
    /// of that name.
    fn try_apply_named(
        &mut self,
        entity: &K,
        name: &str,
    ) -> Result<TransitionOutcome, UnknownTransition>;

    /// Removes an entity from the engine.
    fn evict(&mut self, entity: &K) -> Option<EntityState>;

    /// Entities currently in `state`, sorted by key.
    fn entities_in(&self, state: StateId) -> Vec<K>
    where
        K: Ord;

    /// Entities *not* in `state`, sorted by key (the leak sweep).
    fn entities_not_in(&self, state: StateId) -> Vec<K>
    where
        K: Ord;

    /// Clears all tracked entities.
    fn clear(&mut self);
}

impl<K: Eq + Hash + Clone + fmt::Debug> Engine<K> for StateStore<K> {
    fn for_machine(machine: MachineSpec) -> Self {
        StateStore::new(machine)
    }

    fn set_recorder(&mut self, recorder: Recorder) {
        StateStore::set_recorder(self, recorder);
    }

    fn spec(&self) -> &MachineSpec {
        self.machine()
    }

    fn len(&self) -> usize {
        StateStore::len(self)
    }

    fn state_of(&self, entity: &K) -> StateId {
        StateStore::state_of(self, entity)
    }

    fn contains(&self, entity: &K) -> bool {
        StateStore::contains(self, entity)
    }

    fn apply(&mut self, entity: &K, transition: TransitionId) -> TransitionOutcome {
        StateStore::apply(self, entity, transition)
    }

    fn apply_named(&mut self, entity: &K, name: &str) -> TransitionOutcome {
        StateStore::apply_named(self, entity, name)
    }

    fn try_apply_named(
        &mut self,
        entity: &K,
        name: &str,
    ) -> Result<TransitionOutcome, UnknownTransition> {
        StateStore::try_apply_named(self, entity, name)
    }

    fn evict(&mut self, entity: &K) -> Option<EntityState> {
        StateStore::evict(self, entity)
    }

    fn entities_in(&self, state: StateId) -> Vec<K>
    where
        K: Ord,
    {
        StateStore::entities_in(self, state)
    }

    fn entities_not_in(&self, state: StateId) -> Vec<K>
    where
        K: Ord,
    {
        StateStore::entities_not_in(self, state)
    }

    fn clear(&mut self) {
        StateStore::clear(self);
    }
}

impl<K: DenseKey> Engine<K> for CompactStore<K> {
    fn for_machine(machine: MachineSpec) -> Self {
        CompactStore::new(machine)
    }

    fn set_recorder(&mut self, recorder: Recorder) {
        CompactStore::set_recorder(self, recorder);
    }

    fn spec(&self) -> &MachineSpec {
        self.machine()
    }

    fn len(&self) -> usize {
        CompactStore::len(self)
    }

    fn state_of(&self, entity: &K) -> StateId {
        CompactStore::state_of(self, entity)
    }

    fn contains(&self, entity: &K) -> bool {
        CompactStore::contains(self, entity)
    }

    fn apply(&mut self, entity: &K, transition: TransitionId) -> TransitionOutcome {
        CompactStore::apply(self, entity, transition)
    }

    fn apply_named(&mut self, entity: &K, name: &str) -> TransitionOutcome {
        CompactStore::apply_named(self, entity, name)
    }

    fn try_apply_named(
        &mut self,
        entity: &K,
        name: &str,
    ) -> Result<TransitionOutcome, UnknownTransition> {
        CompactStore::try_apply_named(self, entity, name)
    }

    fn evict(&mut self, entity: &K) -> Option<EntityState> {
        CompactStore::evict(self, entity)
    }

    fn entities_in(&self, state: StateId) -> Vec<K>
    where
        K: Ord,
    {
        CompactStore::entities_in(self, state)
    }

    fn entities_not_in(&self, state: StateId) -> Vec<K>
    where
        K: Ord,
    {
        CompactStore::entities_not_in(self, state)
    }

    fn clear(&mut self) {
        CompactStore::clear(self);
    }
}

/// The differential-equivalence adapter: every operation runs against
/// both the reference [`StateStore`] and the compiled [`CompactStore`],
/// and any divergence panics with both answers.
///
/// Use it as a drop-in engine when validating a new key type or machine
/// shape; the cost is roughly the sum of both encodings. Only the
/// reference side records observability events (attaching the recorder
/// to both would double every trace event).
#[derive(Debug, Clone)]
pub struct DiffStore<K> {
    reference: StateStore<K>,
    compiled: CompactStore<K>,
}

impl<K: DenseKey> DiffStore<K> {
    /// Creates a differential pair tracking instances of `machine`.
    pub fn new(machine: MachineSpec) -> Self {
        DiffStore {
            reference: StateStore::new(machine.clone()),
            compiled: CompactStore::new(machine),
        }
    }

    /// The reference side.
    pub fn reference(&self) -> &StateStore<K> {
        &self.reference
    }

    /// The compiled side.
    pub fn compiled(&self) -> &CompactStore<K> {
        &self.compiled
    }

    fn check<T: PartialEq + fmt::Debug>(&self, what: &str, reference: T, compiled: T) -> T {
        assert_eq!(
            reference,
            compiled,
            "engine divergence in {what} (machine `{}`): reference vs compiled",
            self.reference.machine().name()
        );
        reference
    }
}

impl<K: DenseKey> Engine<K> for DiffStore<K> {
    fn for_machine(machine: MachineSpec) -> Self {
        DiffStore::new(machine)
    }

    fn set_recorder(&mut self, recorder: Recorder) {
        // Reference side only: one event stream, not two.
        self.reference.set_recorder(recorder);
    }

    fn spec(&self) -> &MachineSpec {
        self.reference.machine()
    }

    fn len(&self) -> usize {
        self.check("len", self.reference.len(), self.compiled.len())
    }

    fn state_of(&self, entity: &K) -> StateId {
        self.check(
            "state_of",
            self.reference.state_of(entity),
            self.compiled.state_of(entity),
        )
    }

    fn contains(&self, entity: &K) -> bool {
        self.check(
            "contains",
            self.reference.contains(entity),
            self.compiled.contains(entity),
        )
    }

    fn apply(&mut self, entity: &K, transition: TransitionId) -> TransitionOutcome {
        let a = self.reference.apply(entity, transition);
        let b = self.compiled.apply(entity, transition);
        self.check("apply", a, b)
    }

    fn apply_named(&mut self, entity: &K, name: &str) -> TransitionOutcome {
        let a = self.reference.apply_named(entity, name);
        let b = self.compiled.apply_named(entity, name);
        self.check("apply_named", a, b)
    }

    fn try_apply_named(
        &mut self,
        entity: &K,
        name: &str,
    ) -> Result<TransitionOutcome, UnknownTransition> {
        let a = self.reference.try_apply_named(entity, name);
        let b = self.compiled.try_apply_named(entity, name);
        self.check("try_apply_named", a, b)
    }

    fn evict(&mut self, entity: &K) -> Option<EntityState> {
        let a = self.reference.evict(entity);
        let b = self.compiled.evict(entity);
        self.check("evict", a, b)
    }

    fn entities_in(&self, state: StateId) -> Vec<K>
    where
        K: Ord,
    {
        let a = self.reference.entities_in(state);
        let b = self.compiled.entities_in(state);
        self.check("entities_in", a, b)
    }

    fn entities_not_in(&self, state: StateId) -> Vec<K>
    where
        K: Ord,
    {
        let a = self.reference.entities_not_in(state);
        let b = self.compiled.entities_not_in(state);
        self.check("entities_not_in", a, b)
    }

    fn clear(&mut self) {
        self.reference.clear();
        self.compiled.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::{ConstraintClass, Direction, EntityKind};

    fn machine() -> MachineSpec {
        MachineSpec::builder("local-ref", ConstraintClass::Resource)
            .entity(EntityKind::Reference)
            .state("BeforeAcquire")
            .state("Acquired")
            .state("Released")
            .error_state("Dangling", "use of dangling reference in {function}")
            .transition("Acquire", "BeforeAcquire", "Acquired", |t| {
                t.on(Direction::CallJavaToC, "native method taking reference")
            })
            .transition("Release", "Acquired", "Released", |t| {
                t.on(Direction::ReturnCToJava, "any native method")
            })
            .transition("UseAfterRelease", "Released", "Dangling", |t| {
                t.on(Direction::CallCToJava, "JNI function taking reference")
            })
            .build()
            .unwrap()
    }

    /// Drives the same generic script over any engine.
    fn drive<E: Engine<u64>>() -> (Vec<TransitionOutcome>, Vec<u64>) {
        let mut engine = E::for_machine(machine());
        let mut outcomes = Vec::new();
        for key in [1u64, 2, 3, 1, 2] {
            outcomes.push(engine.apply_named(&key, "Acquire"));
            if key % 2 == 0 {
                outcomes.push(engine.apply_named(&key, "Release"));
                outcomes.push(engine.apply_named(&key, "UseAfterRelease"));
            }
        }
        engine.evict(&3);
        let released = engine.spec().state_id("Released").unwrap();
        (outcomes, engine.entities_not_in(released))
    }

    #[test]
    fn all_engines_agree_on_a_scripted_run() {
        let reference = drive::<StateStore<u64>>();
        let compiled = drive::<CompactStore<u64>>();
        let differential = drive::<DiffStore<u64>>();
        assert_eq!(reference, compiled);
        assert_eq!(reference, differential);
    }

    #[test]
    #[should_panic(expected = "index out of bounds")]
    fn diff_store_propagates_reference_panics() {
        let mut store: DiffStore<u64> = DiffStore::new(machine());
        // An out-of-range id panics in both engines; the reference one
        // fires first.
        store.apply(&1, TransitionId(99));
    }
}
