//! Concurrent entity-state tracking: [`ShardedStateStore`] shards a
//! [`StateStore`] by the thread that owns each entity.
//!
//! The paper encodes JNIEnv thread-locality as a JVM-state constraint:
//! an entity (a local reference, a frame, an env pointer) belongs to the
//! thread that created it, and touching it from another thread is itself
//! a bug (`Error:EnvMismatch` in the jvm-state machine). That constraint
//! is exactly what makes per-entity state machines shardable: in a
//! correct program every entity is only ever transitioned by its owning
//! thread, so each shard's lock is uncontended.
//!
//! The cross-shard path exists *because* buggy programs break the
//! constraint. When a foreign thread touches an entity, the store still
//! locks the entity's home shard and applies the transition there — it
//! never deadlocks (one lock at a time, directory before shard) and
//! never silently rehomes the entity — and additionally surfaces a
//! [`CrossThreadUse`] so the checker can raise the thread-locality
//! violation the paper prescribes.

use std::collections::HashMap;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::sync::Mutex;

use jinn_obs::Recorder;

use crate::compiled::CompactStore;
use crate::engine::Engine;
use crate::machine::{MachineSpec, StateId, TransitionId};
use crate::runtime::{StateStore, TransitionOutcome, UnknownTransition};

/// Default shard count for [`ShardedStateStore::new`].
pub const DEFAULT_SHARDS: usize = 16;

/// A foreign-thread touch of an entity: the paper's thread-locality
/// (`EnvMismatch`) situation, observed at the state-store layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CrossThreadUse {
    /// The thread that first touched (and therefore owns) the entity.
    pub owner: u16,
    /// The thread performing this transition.
    pub user: u16,
}

impl fmt::Display for CrossThreadUse {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "entity owned by thread-{} transitioned from thread-{}",
            self.owner, self.user
        )
    }
}

/// Outcome of a sharded transition: the machine outcome plus, when the
/// calling thread is not the entity's owner, the thread-locality
/// violation that the cross-shard access constitutes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardedOutcome {
    /// What the machine did (identical to the serialized semantics).
    pub outcome: TransitionOutcome,
    /// `Some` exactly when a foreign thread touched the entity.
    pub cross_thread: Option<CrossThreadUse>,
}

/// Where an entity lives: its home shard and owning thread, fixed at
/// first touch.
#[derive(Debug, Clone, Copy)]
struct Placement {
    shard: usize,
    owner: u16,
}

/// A concurrency-safe [`StateStore`]: entity state is sharded by the
/// entity-owning thread, with one mutex per shard and a sharded
/// directory mapping entities to their home shard.
///
/// * Same-thread traffic (the correct-program case) only ever takes the
///   calling thread's own shard lock plus a directory-shard lock —
///   disjoint entity sets on distinct threads proceed in parallel.
/// * Foreign-thread traffic falls back to the entity's *home* shard (the
///   transition semantics stay identical to a serialized run) and
///   reports the access as a [`CrossThreadUse`].
///
/// Locks are always taken one at a time (directory shard, released, then
/// state shard), so the store cannot deadlock against itself.
///
/// The store is generic over its per-shard [`Engine`]; the default is
/// the reference [`StateStore`], and [`ShardedCompactStore`] hosts the
/// compiled [`CompactStore`] in the same sharding shell.
#[derive(Debug)]
pub struct ShardedStateStore<K, E = StateStore<K>> {
    shards: Box<[Mutex<E>]>,
    directory: Box<[Mutex<HashMap<K, Placement>>]>,
}

/// A [`ShardedStateStore`] whose shards dispatch through the compiled
/// engine's dense tables.
pub type ShardedCompactStore<K> = ShardedStateStore<K, CompactStore<K>>;

impl<K: Eq + Hash + Clone + fmt::Debug, E: Engine<K>> ShardedStateStore<K, E> {
    /// Creates a store with [`DEFAULT_SHARDS`] shards, each tracking
    /// instances of `machine`.
    pub fn new(machine: MachineSpec) -> Self {
        Self::with_shards(machine, DEFAULT_SHARDS)
    }

    /// Creates a store with an explicit shard count (minimum 1).
    pub fn with_shards(machine: MachineSpec, shards: usize) -> Self {
        let n = shards.max(1);
        ShardedStateStore {
            shards: (0..n)
                .map(|_| Mutex::new(E::for_machine(machine.clone())))
                .collect(),
            directory: (0..n).map(|_| Mutex::new(HashMap::new())).collect(),
        }
    }

    /// Attaches an observability recorder to every shard.
    pub fn set_recorder(&mut self, recorder: Recorder) {
        for shard in self.shards.iter_mut() {
            lock(shard).set_recorder(recorder.clone());
        }
    }

    /// The number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The machine this store tracks.
    pub fn machine(&self) -> MachineSpec {
        lock(&self.shards[0]).spec().clone()
    }

    /// Total tracked entities across all shards.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| lock(s).len()).sum()
    }

    /// Returns `true` if no entities are tracked.
    pub fn is_empty(&self) -> bool {
        self.shards.iter().all(|s| lock(s).is_empty())
    }

    fn dir_shard(&self, entity: &K) -> &Mutex<HashMap<K, Placement>> {
        let mut h = std::collections::hash_map::DefaultHasher::new();
        entity.hash(&mut h);
        &self.directory[(h.finish() as usize) % self.directory.len()]
    }

    /// Looks up — or on first touch, fixes — the entity's placement.
    /// The home shard is the *owning thread's* shard: `thread % shards`.
    fn placement(&self, thread: u16, entity: &K) -> Placement {
        let mut dir = lock(self.dir_shard(entity));
        *dir.entry(entity.clone()).or_insert_with(|| Placement {
            shard: thread as usize % self.shards.len(),
            owner: thread,
        })
    }

    /// Current state of `entity` as seen from `thread`, or the initial
    /// state if never seen.
    pub fn state_of(&self, thread: u16, entity: &K) -> StateId {
        let placement = self.placement(thread, entity);
        lock(&self.shards[placement.shard]).state_of(entity)
    }

    /// Applies `transition` to `entity` on behalf of `thread`.
    ///
    /// The transition is applied on the entity's home shard regardless
    /// of the calling thread; a foreign-thread call additionally yields
    /// [`ShardedOutcome::cross_thread`].
    ///
    /// # Panics
    ///
    /// Panics if `transition` does not belong to the store's machine
    /// (as [`StateStore::apply`]).
    pub fn apply(&self, thread: u16, entity: &K, transition: TransitionId) -> ShardedOutcome {
        let placement = self.placement(thread, entity);
        let outcome = lock(&self.shards[placement.shard]).apply(entity, transition);
        ShardedOutcome {
            outcome,
            cross_thread: (placement.owner != thread).then_some(CrossThreadUse {
                owner: placement.owner,
                user: thread,
            }),
        }
    }

    /// Applies the transition named `name`; unknown names resolve to
    /// `NotApplicable` exactly as [`StateStore::apply_named`].
    pub fn apply_named(&self, thread: u16, entity: &K, name: &str) -> ShardedOutcome {
        let placement = self.placement(thread, entity);
        let outcome = lock(&self.shards[placement.shard]).apply_named(entity, name);
        ShardedOutcome {
            outcome,
            cross_thread: (placement.owner != thread).then_some(CrossThreadUse {
                owner: placement.owner,
                user: thread,
            }),
        }
    }

    /// Fallible variant of [`ShardedStateStore::apply_named`]; see
    /// [`StateStore::try_apply_named`].
    ///
    /// # Errors
    ///
    /// Returns [`UnknownTransition`] when the machine has no transition
    /// of that name.
    pub fn try_apply_named(
        &self,
        thread: u16,
        entity: &K,
        name: &str,
    ) -> Result<ShardedOutcome, UnknownTransition> {
        let placement = self.placement(thread, entity);
        let outcome = lock(&self.shards[placement.shard]).try_apply_named(entity, name)?;
        Ok(ShardedOutcome {
            outcome,
            cross_thread: (placement.owner != thread).then_some(CrossThreadUse {
                owner: placement.owner,
                user: thread,
            }),
        })
    }

    /// Removes an entity (e.g. after its resource dies). The directory
    /// entry is dropped too, so a re-created entity is re-homed to the
    /// thread that next touches it.
    pub fn evict(&self, entity: &K) -> bool {
        let placement = {
            let mut dir = lock(self.dir_shard(entity));
            dir.remove(entity)
        };
        match placement {
            Some(p) => lock(&self.shards[p.shard]).evict(entity).is_some(),
            None => false,
        }
    }

    /// Entities currently in `state` across all shards, sorted by key —
    /// identical to the serialized [`StateStore::entities_in`] sweep.
    pub fn entities_in(&self, state: StateId) -> Vec<K>
    where
        K: Ord,
    {
        let mut out: Vec<K> = self
            .shards
            .iter()
            .flat_map(|s| lock(s).entities_in(state))
            .collect();
        out.sort_unstable();
        out
    }

    /// Entities *not* in `state` across all shards, sorted by key: the
    /// deterministic program-termination leak sweep.
    pub fn entities_not_in(&self, state: StateId) -> Vec<K>
    where
        K: Ord,
    {
        let mut out: Vec<K> = self
            .shards
            .iter()
            .flat_map(|s| lock(s).entities_not_in(state))
            .collect();
        out.sort_unstable();
        out
    }

    /// Clears all tracked entities and placements.
    pub fn clear(&self) {
        for shard in self.shards.iter() {
            lock(shard).clear();
        }
        for dir in self.directory.iter() {
            lock(dir).clear();
        }
    }
}

/// Poison-recovering lock, used for every shard and directory mutex: a
/// panicking worker must not propagate its panic into unrelated threads
/// that merely share the store. Shard engines and directory maps are
/// always structurally sound mid-operation (each apply is a single
/// engine call), so adopting the inner guard is safe. The lock-free
/// [`AtomicStore`](crate::AtomicStore) removes the question entirely on
/// its dense path; this helper remains for the directory-style locking
/// this store still uses.
fn lock<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::{ConstraintClass, Direction, EntityKind};

    const _: fn() = || {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<ShardedStateStore<u64>>();
        assert_send_sync::<ShardedCompactStore<u64>>();
    };

    fn machine() -> MachineSpec {
        MachineSpec::builder("local-ref", ConstraintClass::Resource)
            .entity(EntityKind::Reference)
            .state("BeforeAcquire")
            .state("Acquired")
            .state("Released")
            .error_state("Dangling", "use of dangling reference in {function}")
            .transition("Acquire", "BeforeAcquire", "Acquired", |t| {
                t.on(Direction::CallJavaToC, "native method taking reference")
            })
            .transition("Release", "Acquired", "Released", |t| {
                t.on(Direction::ReturnCToJava, "any native method")
            })
            .transition("UseAfterRelease", "Released", "Dangling", |t| {
                t.on(Direction::CallCToJava, "JNI function taking reference")
            })
            .build()
            .unwrap()
    }

    #[test]
    fn same_thread_lifecycle_matches_state_store() {
        let store: ShardedStateStore<u32> = ShardedStateStore::new(machine());
        let out = store.apply_named(0, &7, "Acquire");
        assert!(out.outcome.applied());
        assert!(out.cross_thread.is_none());
        assert!(store.apply_named(0, &7, "Release").outcome.applied());
        let out = store.apply_named(0, &7, "UseAfterRelease");
        assert!(out.outcome.error().is_some());
        assert_eq!(store.len(), 1);
    }

    #[test]
    fn foreign_thread_use_raises_cross_thread_and_still_transitions() {
        let store: ShardedStateStore<u32> = ShardedStateStore::new(machine());
        store.apply_named(3, &42, "Acquire");
        // A foreign thread releases the entity: the transition must still
        // apply on the home shard (no rehoming, no deadlock)...
        let out = store.apply_named(9, &42, "Release");
        assert!(out.outcome.applied());
        // ...and the access itself is the thread-locality violation.
        assert_eq!(out.cross_thread, Some(CrossThreadUse { owner: 3, user: 9 }));
        // The owner still sees the foreign thread's transition.
        let released = store.machine().state_id("Released").unwrap();
        assert_eq!(store.state_of(3, &42), released);
    }

    #[test]
    fn eviction_rehomes_on_next_touch() {
        let store: ShardedStateStore<u32> = ShardedStateStore::new(machine());
        store.apply_named(1, &5, "Acquire");
        assert!(store.evict(&5));
        assert!(!store.evict(&5), "second evict is a no-op");
        let out = store.apply_named(2, &5, "Acquire");
        assert!(out.cross_thread.is_none(), "entity rehomed after evict");
    }

    #[test]
    fn sweeps_are_sorted_across_shards() {
        let store: ShardedStateStore<u32> = ShardedStateStore::with_shards(machine(), 4);
        for (thread, key) in [(0u16, 40u32), (1, 31), (2, 22), (3, 13), (0, 4)] {
            store.apply_named(thread, &key, "Acquire");
        }
        let released = store.machine().state_id("Released").unwrap();
        assert_eq!(store.entities_not_in(released), vec![4, 13, 22, 31, 40]);
        store.clear();
        assert!(store.is_empty());
    }

    #[test]
    fn compiled_shards_match_reference_shards() {
        let reference: ShardedStateStore<u32> = ShardedStateStore::with_shards(machine(), 4);
        let compiled: ShardedCompactStore<u32> = ShardedStateStore::with_shards(machine(), 4);
        for (thread, key) in [(0u16, 40u32), (1, 31), (2, 22), (1, 31), (9, 31)] {
            for name in ["Acquire", "Release", "UseAfterRelease"] {
                assert_eq!(
                    reference.apply_named(thread, &key, name),
                    compiled.apply_named(thread, &key, name),
                    "thread {thread}, key {key}, transition {name}"
                );
            }
        }
        let released = reference.machine().state_id("Released").unwrap();
        assert_eq!(
            reference.entities_not_in(released),
            compiled.entities_not_in(released)
        );
        assert_eq!(reference.len(), compiled.len());
    }

    #[test]
    fn parallel_disjoint_threads_match_serial_multiset() {
        let store: ShardedStateStore<u64> = ShardedStateStore::new(machine());
        std::thread::scope(|scope| {
            for t in 0..4u16 {
                let store = &store;
                scope.spawn(move || {
                    for i in 0..50u64 {
                        let key = u64::from(t) * 1000 + i;
                        assert!(store.apply_named(t, &key, "Acquire").outcome.applied());
                        if i % 2 == 0 {
                            assert!(store.apply_named(t, &key, "Release").outcome.applied());
                        }
                    }
                });
            }
        });
        // Serialized reference run over the same per-thread scripts.
        let mut serial: StateStore<u64> = StateStore::new(machine());
        for t in 0..4u16 {
            for i in 0..50u64 {
                let key = u64::from(t) * 1000 + i;
                serial.apply_named(&key, "Acquire");
                if i % 2 == 0 {
                    serial.apply_named(&key, "Release");
                }
            }
        }
        let released = store.machine().state_id("Released").unwrap();
        assert_eq!(
            store.entities_not_in(released),
            serial.entities_not_in(released),
            "sharded leak sweep must equal the serialized sweep"
        );
        assert_eq!(store.len(), serial.len());
    }
}
