//! Declarative state-machine specifications.

use std::fmt;

/// The three classes of FFI constraints identified by the paper (Section 5).
///
/// Every constraint of the JNI and the Python/C API falls into exactly one
/// of these classes; the class determines what the machine's entity is and
/// when the synthesizer consults it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum ConstraintClass {
    /// Restrictions on the managed runtime's thread context, critical
    /// section state, and/or exception state ("JVM state constraints").
    RuntimeState,
    /// Restrictions on parameter types, values (e.g. not `NULL`), and
    /// semantics (e.g. no writing to final fields).
    Type,
    /// Restrictions on the number of multilingual pointers and on resource
    /// lifetimes, e.g. locks and memory.
    Resource,
}

impl fmt::Display for ConstraintClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ConstraintClass::RuntimeState => "runtime-state",
            ConstraintClass::Type => "type",
            ConstraintClass::Resource => "resource",
        };
        f.write_str(s)
    }
}

/// A language transition direction: which way control crosses the boundary
/// between the managed language ("Java") and the foreign language ("C").
///
/// The paper writes these as `Call:Java→C`, `Return:C→Java`, `Call:C→Java`
/// and `Return:Java→C` (Figure 2). The first pair brackets the execution of
/// a *native method*; the second pair brackets the execution of an *FFI
/// function* invoked from native code.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Direction {
    /// Managed code calls into a native method (`Call:Java→C`).
    CallJavaToC,
    /// A native method returns to managed code (`Return:C→Java`).
    ReturnCToJava,
    /// Native code calls an FFI function (`Call:C→Java`).
    CallCToJava,
    /// An FFI function returns to native code (`Return:Java→C`).
    ReturnJavaToC,
}

impl Direction {
    /// All four directions, in the paper's order of presentation.
    pub const ALL: [Direction; 4] = [
        Direction::CallJavaToC,
        Direction::ReturnCToJava,
        Direction::CallCToJava,
        Direction::ReturnJavaToC,
    ];

    /// Returns `true` if this direction happens *before* the wrapped
    /// function body runs (a call edge), `false` for a return edge.
    ///
    /// Algorithm 1 of the paper uses this to decide whether synthesized
    /// instrumentation is added at the start or end of the wrapper.
    pub fn is_call(self) -> bool {
        matches!(self, Direction::CallJavaToC | Direction::CallCToJava)
    }
}

impl fmt::Display for Direction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Direction::CallJavaToC => "Call:Java->C",
            Direction::ReturnCToJava => "Return:C->Java",
            Direction::CallCToJava => "Call:C->Java",
            Direction::ReturnJavaToC => "Return:Java->C",
        };
        f.write_str(s)
    }
}

/// The kind of program entity a machine instance is attached to.
///
/// The paper parameterizes each state machine by program entities: threads,
/// references, and objects (Section 1); the concrete machines also observe
/// entity IDs, critical resources, monitors and pinned buffers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum EntityKind {
    /// A thread of the managed runtime.
    Thread,
    /// A cross-language reference (local, global, or weak-global).
    Reference,
    /// An opaque entity ID (method ID or field ID).
    EntityId,
    /// A critical resource (directly-accessed string or array contents).
    CriticalResource,
    /// A monitor (mutual-exclusion primitive).
    Monitor,
    /// A pinned-or-copied string or array buffer.
    PinnedBuffer,
}

impl fmt::Display for EntityKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            EntityKind::Thread => "thread",
            EntityKind::Reference => "reference",
            EntityKind::EntityId => "entity-id",
            EntityKind::CriticalResource => "critical-resource",
            EntityKind::Monitor => "monitor",
            EntityKind::PinnedBuffer => "pinned-buffer",
        };
        f.write_str(s)
    }
}

/// Index of a state within its [`MachineSpec`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct StateId(pub(crate) u16);

impl StateId {
    /// Numeric index of the state in declaration order.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Index of a transition within its [`MachineSpec`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TransitionId(pub(crate) u16);

impl TransitionId {
    /// Numeric index of the transition in declaration order.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// A named state of a machine specification.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StateSpec {
    name: String,
    diagnosis: Option<String>,
}

impl StateSpec {
    /// The state's name, unique within its machine.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Returns `true` if entering this state constitutes a detected bug.
    pub fn is_error(&self) -> bool {
        self.diagnosis.is_some()
    }

    /// The diagnosis message template for an error state.
    ///
    /// Templates may contain `{function}` and `{entity}` placeholders that
    /// the checker substitutes when reporting.
    pub fn diagnosis(&self) -> Option<&str> {
        self.diagnosis.as_deref()
    }
}

/// A trigger: one (direction, function-selector) pair of the
/// `languageTransitionsFor` mapping.
///
/// The `selector` is a free-form description resolved against a concrete
/// function registry by the synthesizer (e.g. `"JNI function taking
/// reference"` or a literal function name such as `"DeleteLocalRef"`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TriggerSpec {
    direction: Direction,
    selector: String,
    functions: Vec<String>,
}

impl TriggerSpec {
    /// The boundary-crossing direction at which this trigger fires.
    pub fn direction(&self) -> Direction {
        self.direction
    }

    /// The function selector resolved by the synthesizer.
    pub fn selector(&self) -> &str {
        &self.selector
    }

    /// The exact registry functions this trigger fires at, when the
    /// selector is crisp enough to enumerate them (added via
    /// [`TransitionBuilder::on_funcs`]). Empty means the selector is
    /// prose-only: static analyses must treat the trigger as reachable
    /// from any call site.
    pub fn functions(&self) -> &[String] {
        &self.functions
    }
}

/// A named transition between two states, with its triggering language
/// transitions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TransitionSpec {
    name: String,
    from: StateId,
    to: StateId,
    triggers: Vec<TriggerSpec>,
}

impl TransitionSpec {
    /// The transition's name (e.g. `"Acquire"`, `"Release"`, `"Use"`).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Source state.
    pub fn from(&self) -> StateId {
        self.from
    }

    /// Destination state.
    pub fn to(&self) -> StateId {
        self.to
    }

    /// The language transitions at which this state transition may occur —
    /// the paper's `Mi.languageTransitionsFor(sa → sb)`.
    pub fn triggers(&self) -> &[TriggerSpec] {
        &self.triggers
    }
}

/// Errors detected while building a [`MachineSpec`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MachineError {
    /// Two states share a name.
    DuplicateState(String),
    /// Two transitions share a name.
    DuplicateTransition(String),
    /// A transition referenced a state name that was never declared.
    UnknownState {
        /// Transition that contained the reference.
        transition: String,
        /// The undeclared state name.
        state: String,
    },
    /// The machine has no states.
    NoStates,
    /// The machine declares no initial (first, non-error) state.
    ErrorInitialState,
    /// A transition leaves an error state; error states must be terminal.
    TransitionFromError {
        /// The offending transition.
        transition: String,
    },
}

impl fmt::Display for MachineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MachineError::DuplicateState(name) => write!(f, "duplicate state `{name}`"),
            MachineError::DuplicateTransition(name) => {
                write!(f, "duplicate transition `{name}`")
            }
            MachineError::UnknownState { transition, state } => {
                write!(
                    f,
                    "transition `{transition}` references unknown state `{state}`"
                )
            }
            MachineError::NoStates => write!(f, "machine declares no states"),
            MachineError::ErrorInitialState => {
                write!(
                    f,
                    "the initial state of a machine must not be an error state"
                )
            }
            MachineError::TransitionFromError { transition } => {
                write!(f, "transition `{transition}` leaves an error state")
            }
        }
    }
}

impl std::error::Error for MachineError {}

/// A complete, validated state-machine specification.
///
/// Corresponds to one `Mi` of the paper's Algorithm 1 input
/// `M1, …, Mn`. Build one with [`MachineSpec::builder`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MachineSpec {
    name: String,
    class: ConstraintClass,
    entity: EntityKind,
    states: Vec<StateSpec>,
    transitions: Vec<TransitionSpec>,
}

impl MachineSpec {
    /// Starts building a machine with the given name and constraint class.
    pub fn builder(name: impl Into<String>, class: ConstraintClass) -> MachineBuilder {
        MachineBuilder {
            name: name.into(),
            class,
            entity: EntityKind::Thread,
            states: Vec::new(),
            transitions: Vec::new(),
            error: None,
        }
    }

    /// The machine's name (e.g. `"local-reference"`).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The constraint class this machine enforces.
    pub fn class(&self) -> ConstraintClass {
        self.class
    }

    /// The kind of entity instances of this machine are attached to.
    pub fn entity(&self) -> EntityKind {
        self.entity
    }

    /// All states, in declaration order; index 0 is the initial state.
    pub fn states(&self) -> &[StateSpec] {
        &self.states
    }

    /// All transitions in declaration order — `Mi.stateTransitions`.
    pub fn transitions(&self) -> &[TransitionSpec] {
        &self.transitions
    }

    /// The initial state (always the first declared state).
    pub fn initial(&self) -> StateId {
        StateId(0)
    }

    /// Looks up a state by name.
    pub fn state_by_name(&self, name: &str) -> Option<&StateSpec> {
        self.states.iter().find(|s| s.name == name)
    }

    /// Looks up a state id by name.
    pub fn state_id(&self, name: &str) -> Option<StateId> {
        self.states
            .iter()
            .position(|s| s.name == name)
            .map(|i| StateId(i as u16))
    }

    /// Looks up a transition by name.
    pub fn transition_by_name(&self, name: &str) -> Option<&TransitionSpec> {
        self.transitions.iter().find(|t| t.name == name)
    }

    /// Looks up a transition id by name.
    pub fn transition_id(&self, name: &str) -> Option<TransitionId> {
        self.transitions
            .iter()
            .position(|t| t.name == name)
            .map(|i| TransitionId(i as u16))
    }

    /// Returns the state spec for an id.
    ///
    /// # Panics
    ///
    /// Panics if `id` does not belong to this machine.
    pub fn state(&self, id: StateId) -> &StateSpec {
        &self.states[id.index()]
    }

    /// Returns the transition spec for an id.
    ///
    /// # Panics
    ///
    /// Panics if `id` does not belong to this machine.
    pub fn transition(&self, id: TransitionId) -> &TransitionSpec {
        &self.transitions[id.index()]
    }

    /// Iterates over the error states of the machine.
    pub fn error_states(&self) -> impl Iterator<Item = (StateId, &StateSpec)> {
        self.states
            .iter()
            .enumerate()
            .filter(|(_, s)| s.is_error())
            .map(|(i, s)| (StateId(i as u16), s))
    }

    /// States reachable from the initial state by following transitions.
    pub fn reachable_states(&self) -> Vec<StateId> {
        let mut seen = vec![false; self.states.len()];
        let mut stack = vec![self.initial()];
        seen[0] = true;
        while let Some(s) = stack.pop() {
            for t in &self.transitions {
                if t.from == s && !seen[t.to.index()] {
                    seen[t.to.index()] = true;
                    stack.push(t.to);
                }
            }
        }
        seen.iter()
            .enumerate()
            .filter(|(_, v)| **v)
            .map(|(i, _)| StateId(i as u16))
            .collect()
    }

    /// Total number of (state transition, trigger) pairs — the size of the
    /// cross product that Algorithm 1 expands into generated checks.
    pub fn trigger_count(&self) -> usize {
        self.transitions.iter().map(|t| t.triggers.len()).sum()
    }
}

impl fmt::Display for MachineSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} ({} machine over {}; {} states, {} transitions)",
            self.name,
            self.class,
            self.entity,
            self.states.len(),
            self.transitions.len()
        )
    }
}

/// Builder for [`MachineSpec`]; see [`MachineSpec::builder`].
#[derive(Debug)]
pub struct MachineBuilder {
    name: String,
    class: ConstraintClass,
    entity: EntityKind,
    states: Vec<StateSpec>,
    transitions: Vec<(String, String, String, Vec<TriggerSpec>)>,
    error: Option<MachineError>,
}

impl MachineBuilder {
    /// Sets the entity kind the machine observes (default:
    /// [`EntityKind::Thread`]).
    pub fn entity(mut self, entity: EntityKind) -> Self {
        self.entity = entity;
        self
    }

    /// Declares a non-error state. The first declared state is initial.
    pub fn state(mut self, name: impl Into<String>) -> Self {
        self.push_state(StateSpec {
            name: name.into(),
            diagnosis: None,
        });
        self
    }

    /// Declares an error state with a diagnosis message template.
    pub fn error_state(mut self, name: impl Into<String>, diagnosis: impl Into<String>) -> Self {
        self.push_state(StateSpec {
            name: name.into(),
            diagnosis: Some(diagnosis.into()),
        });
        self
    }

    fn push_state(&mut self, state: StateSpec) {
        if self.error.is_none() && self.states.iter().any(|s| s.name == state.name) {
            self.error = Some(MachineError::DuplicateState(state.name));
            return;
        }
        self.states.push(state);
    }

    /// Declares a transition from `from` to `to` and configures its
    /// triggers through the closure.
    pub fn transition(
        mut self,
        name: impl Into<String>,
        from: impl Into<String>,
        to: impl Into<String>,
        configure: impl FnOnce(TransitionBuilder) -> TransitionBuilder,
    ) -> Self {
        let name = name.into();
        if self.error.is_none() && self.transitions.iter().any(|(n, ..)| *n == name) {
            self.error = Some(MachineError::DuplicateTransition(name));
            return self;
        }
        let tb = configure(TransitionBuilder {
            triggers: Vec::new(),
        });
        self.transitions
            .push((name, from.into(), to.into(), tb.triggers));
        self
    }

    /// Validates and produces the machine.
    ///
    /// # Errors
    ///
    /// Returns a [`MachineError`] if states or transitions are duplicated,
    /// a transition names an undeclared state, the machine is empty, the
    /// initial state is an error state, or a transition leaves an error
    /// state (error states are terminal: once a bug is detected, the entity
    /// stays condemned).
    pub fn build(self) -> Result<MachineSpec, MachineError> {
        if let Some(e) = self.error {
            return Err(e);
        }
        if self.states.is_empty() {
            return Err(MachineError::NoStates);
        }
        if self.states[0].is_error() {
            return Err(MachineError::ErrorInitialState);
        }
        let find = |tname: &str, sname: &str| -> Result<StateId, MachineError> {
            self.states
                .iter()
                .position(|s| s.name == sname)
                .map(|i| StateId(i as u16))
                .ok_or_else(|| MachineError::UnknownState {
                    transition: tname.to_string(),
                    state: sname.to_string(),
                })
        };
        let mut transitions = Vec::with_capacity(self.transitions.len());
        for (name, from, to, triggers) in self.transitions {
            let from = find(&name, &from)?;
            let to = find(&name, &to)?;
            if self.states[from.index()].is_error() {
                return Err(MachineError::TransitionFromError { transition: name });
            }
            transitions.push(TransitionSpec {
                name,
                from,
                to,
                triggers,
            });
        }
        Ok(MachineSpec {
            name: self.name,
            class: self.class,
            entity: self.entity,
            states: self.states,
            transitions,
        })
    }
}

/// Builder for the trigger set of one transition.
#[derive(Debug)]
pub struct TransitionBuilder {
    triggers: Vec<TriggerSpec>,
}

impl TransitionBuilder {
    /// Adds a (direction, selector) trigger.
    pub fn on(mut self, direction: Direction, selector: impl Into<String>) -> Self {
        self.triggers.push(TriggerSpec {
            direction,
            selector: selector.into(),
            functions: Vec::new(),
        });
        self
    }

    /// Adds a trigger whose selector is crisp enough to enumerate the
    /// exact registry functions it fires at. Static discharge passes may
    /// prove the transition untriggerable for a workload that can call
    /// none of `functions`; a trigger added via [`TransitionBuilder::on`]
    /// (no function list) is always treated as potentially live.
    pub fn on_funcs<I, S>(
        mut self,
        direction: Direction,
        selector: impl Into<String>,
        functions: I,
    ) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        self.triggers.push(TriggerSpec {
            direction,
            selector: selector.into(),
            functions: functions.into_iter().map(Into::into).collect(),
        });
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn simple() -> MachineSpec {
        MachineSpec::builder("m", ConstraintClass::Resource)
            .entity(EntityKind::Reference)
            .state("A")
            .state("B")
            .error_state("E", "boom in {function}")
            .transition("go", "A", "B", |t| t.on(Direction::CallCToJava, "any"))
            .transition("fail", "B", "E", |t| t.on(Direction::CallCToJava, "any"))
            .build()
            .unwrap()
    }

    #[test]
    fn builds_and_queries() {
        let m = simple();
        assert_eq!(m.name(), "m");
        assert_eq!(m.class(), ConstraintClass::Resource);
        assert_eq!(m.entity(), EntityKind::Reference);
        assert_eq!(m.initial(), StateId(0));
        assert_eq!(m.state_id("B"), Some(StateId(1)));
        assert_eq!(m.transition_id("fail"), Some(TransitionId(1)));
        assert_eq!(m.error_states().count(), 1);
        assert_eq!(m.trigger_count(), 2);
    }

    #[test]
    fn duplicate_state_rejected() {
        let r = MachineSpec::builder("m", ConstraintClass::Type)
            .state("A")
            .state("A")
            .build();
        assert_eq!(r.unwrap_err(), MachineError::DuplicateState("A".into()));
    }

    #[test]
    fn duplicate_transition_rejected() {
        let r = MachineSpec::builder("m", ConstraintClass::Type)
            .state("A")
            .state("B")
            .transition("t", "A", "B", |t| t)
            .transition("t", "B", "A", |t| t)
            .build();
        assert_eq!(
            r.unwrap_err(),
            MachineError::DuplicateTransition("t".into())
        );
    }

    #[test]
    fn unknown_state_rejected() {
        let r = MachineSpec::builder("m", ConstraintClass::Type)
            .state("A")
            .transition("t", "A", "Z", |t| t)
            .build();
        assert!(matches!(r.unwrap_err(), MachineError::UnknownState { .. }));
    }

    #[test]
    fn empty_machine_rejected() {
        let r = MachineSpec::builder("m", ConstraintClass::Type).build();
        assert_eq!(r.unwrap_err(), MachineError::NoStates);
    }

    #[test]
    fn error_initial_state_rejected() {
        let r = MachineSpec::builder("m", ConstraintClass::Type)
            .error_state("E", "nope")
            .build();
        assert_eq!(r.unwrap_err(), MachineError::ErrorInitialState);
    }

    #[test]
    fn transition_from_error_rejected() {
        let r = MachineSpec::builder("m", ConstraintClass::Type)
            .state("A")
            .error_state("E", "boom")
            .transition("bad", "E", "A", |t| t)
            .build();
        assert!(matches!(
            r.unwrap_err(),
            MachineError::TransitionFromError { .. }
        ));
    }

    #[test]
    fn reachability() {
        let m = MachineSpec::builder("m", ConstraintClass::Type)
            .state("A")
            .state("B")
            .state("Unreachable")
            .transition("go", "A", "B", |t| t)
            .build()
            .unwrap();
        let reach = m.reachable_states();
        assert!(reach.contains(&StateId(0)));
        assert!(reach.contains(&StateId(1)));
        assert!(!reach.contains(&StateId(2)));
    }

    #[test]
    fn direction_call_classification() {
        assert!(Direction::CallJavaToC.is_call());
        assert!(Direction::CallCToJava.is_call());
        assert!(!Direction::ReturnCToJava.is_call());
        assert!(!Direction::ReturnJavaToC.is_call());
    }

    #[test]
    fn display_impls_nonempty() {
        let m = simple();
        assert!(!format!("{m}").is_empty());
        for d in Direction::ALL {
            assert!(!format!("{d}").is_empty());
        }
        for c in [
            ConstraintClass::RuntimeState,
            ConstraintClass::Type,
            ConstraintClass::Resource,
        ] {
            assert!(!format!("{c}").is_empty());
        }
    }
}
