//! Compiled dispatch: lowering a [`MachineSpec`] into dense tables so
//! the per-event path is a couple of array reads instead of name
//! resolution and hash probes.
//!
//! The paper's pitch is that synthesized checkers are cheap enough to
//! leave on; this module moves everything that *can* be done once — at
//! synthesis/build time — out of the per-event path:
//!
//! * [`CompiledMachine`] lowers the spec into a dense `states ×
//!   transitions` next-state matrix ([`NOT_APPLICABLE`] sentinel for
//!   cells where the transition's source state does not match), plus a
//!   pre-resolved [`ErrorEntered`] prototype per error-entering
//!   transition and pre-interned `Arc<str>` labels, so applying a
//!   transition is one bounds-checked array read and one branch, and an
//!   enabled recorder costs zero label allocations per event.
//! * [`CompactStore`] tracks entity state in a slab (`Vec` indexed by
//!   the key's dense index) when the key is a small integer — the
//!   dominant case for references and handles — and falls back to a
//!   hash map for sparse or non-integer keys (see [`DenseKey`] and
//!   [`DENSE_LIMIT`]).
//!
//! The original [`StateStore`](crate::StateStore) remains the reference
//! encoding; [`DiffStore`](crate::DiffStore) cross-checks the two and
//! the equivalence proptest in `tests/engine_equivalence.rs` proves
//! outcome parity on arbitrary machines and event streams.

use std::collections::HashMap;
use std::fmt;
use std::hash::Hash;
use std::sync::Arc;

use jinn_obs::{FsmOutcome, LabelId, Recorder};

use crate::machine::{MachineSpec, StateId, TransitionId};
use crate::runtime::{EntityState, ErrorEntered, TransitionOutcome, UnknownTransition};

/// Sentinel cell value in the next-state matrix: the transition's source
/// state does not match, so applying it is a no-op (`NotApplicable`).
///
/// A machine may therefore declare at most `u16::MAX` states; the
/// builder's `u16` state ids already enforce that bound.
pub const NOT_APPLICABLE: u16 = u16::MAX;

/// Slab growth cap for [`CompactStore`]: keys whose
/// [`DenseKey::dense_index`] is below this go to the `Vec`-indexed slab
/// (2 bytes per possible key); keys at or above it — or keys with no
/// dense index at all — spill to a hash map. This keeps a store with a
/// few huge keys (e.g. pointer-valued handles) from allocating a
/// multi-gigabyte slab.
pub const DENSE_LIMIT: usize = 1 << 20;

/// Slot value for "entity not tracked" in the slab (shared with the
/// lock-free [`AtomicStore`](crate::AtomicStore) cells).
pub(crate) const VACANT: u16 = u16::MAX;

/// A [`MachineSpec`] lowered into dense dispatch tables.
///
/// Lowering rules:
///
/// * `next[from.index() * transitions + t.index()]` holds the
///   destination state id, or [`NOT_APPLICABLE`] when `from` is not the
///   transition's source state. One `(state, transition)` read answers
///   "does it apply, and where does it go".
/// * Each transition into an error state gets a fully formatted
///   [`ErrorEntered`] prototype at compile time; an error hit clones the
///   prototype instead of formatting strings on the hot path.
/// * Machine and transition names are interned as `Arc<str>` once, so an
///   enabled recorder clones a pointer per event instead of allocating.
#[derive(Debug, Clone)]
pub struct CompiledMachine {
    spec: MachineSpec,
    machine_label: Arc<str>,
    transition_labels: Box<[Arc<str>]>,
    by_name: HashMap<String, TransitionId>,
    transitions: usize,
    initial: StateId,
    next: Box<[u16]>,
    error_protos: Box<[Option<Arc<ErrorEntered>>]>,
    /// Per-transition flag: `true` when a static discharge pass compiled
    /// the transition out (its matrix column is all [`NOT_APPLICABLE`]).
    elided: Box<[bool]>,
}

impl CompiledMachine {
    /// Lowers `spec` into dense tables.
    ///
    /// # Panics
    ///
    /// Panics if the machine declares `u16::MAX` or more states — the
    /// top state id is reserved as the [`NOT_APPLICABLE`] sentinel.
    pub fn compile(spec: MachineSpec) -> CompiledMachine {
        assert!(
            spec.states().len() < usize::from(u16::MAX),
            "machine `{}` has too many states to compile (the top u16 is \
             the not-applicable sentinel)",
            spec.name()
        );
        let states = spec.states().len();
        let transitions = spec.transitions().len();
        let mut next = vec![NOT_APPLICABLE; states * transitions].into_boxed_slice();
        let mut error_protos: Vec<Option<Arc<ErrorEntered>>> = Vec::with_capacity(transitions);
        let mut transition_labels: Vec<Arc<str>> = Vec::with_capacity(transitions);
        let mut by_name = HashMap::with_capacity(transitions);
        for (i, t) in spec.transitions().iter().enumerate() {
            next[t.from().index() * transitions + i] = t.to().0;
            let dest = spec.state(t.to());
            error_protos.push(dest.diagnosis().map(|diag| {
                Arc::new(ErrorEntered {
                    machine: spec.name().to_string(),
                    transition: t.name().to_string(),
                    state: dest.name().to_string(),
                    diagnosis: diag.to_string(),
                })
            }));
            transition_labels.push(Arc::from(t.name()));
            by_name.insert(t.name().to_string(), TransitionId(i as u16));
        }
        CompiledMachine {
            machine_label: Arc::from(spec.name()),
            transition_labels: transition_labels.into_boxed_slice(),
            by_name,
            transitions,
            initial: spec.initial(),
            next,
            error_protos: error_protos.into_boxed_slice(),
            elided: vec![false; transitions].into_boxed_slice(),
            spec,
        }
    }

    /// Lowers `spec` with the given transitions *compiled out*: their
    /// matrix columns are forced to [`NOT_APPLICABLE`], so applying them
    /// is a no-op (`NotApplicable`) from every state and their error
    /// prototypes can never be reached through this machine.
    ///
    /// Soundness is the *caller's* burden: eliding a transition is
    /// outcome-preserving only when a static pass has proved the
    /// workload can never drive it (trigger functions absent) or that
    /// its source state is unreachable (in which case every apply
    /// already returned `NotApplicable`). `jinn-core`'s discharge pass
    /// produces such proofs as a `DischargeReport`; the elided set is
    /// kept queryable here ([`Self::is_elided`]) so elision stays
    /// auditable, never silent.
    ///
    /// # Panics
    ///
    /// Panics if a [`TransitionId`] does not belong to `spec`, or on the
    /// same state-count bound as [`Self::compile`].
    pub fn compile_discharged(spec: MachineSpec, elided: &[TransitionId]) -> CompiledMachine {
        let mut m = Self::compile(spec);
        let states = m.spec.states().len();
        for &t in elided {
            assert!(
                t.index() < m.transitions,
                "transition id {} out of range for machine `{}`",
                t.index(),
                m.spec.name()
            );
            for s in 0..states {
                m.next[s * m.transitions + t.index()] = NOT_APPLICABLE;
            }
            m.elided[t.index()] = true;
        }
        m
    }

    /// Whether a discharge pass compiled this transition out.
    #[inline]
    pub fn is_elided(&self, t: TransitionId) -> bool {
        self.elided[t.index()]
    }

    /// Names of the transitions a discharge pass compiled out, in
    /// transition-id order.
    pub fn elided_transitions(&self) -> Vec<&str> {
        self.elided
            .iter()
            .enumerate()
            .filter(|&(_, &e)| e)
            .map(|(i, _)| self.spec.transitions()[i].name())
            .collect()
    }

    /// Number of transitions in the compiled matrix.
    #[inline]
    pub fn transition_count(&self) -> usize {
        self.transitions
    }

    /// The dense `states × transitions` next-state matrix (row-major by
    /// state). Shared with the lock-free store so both encodings
    /// dispatch off identical tables.
    #[inline]
    pub(crate) fn matrix(&self) -> &[u16] {
        &self.next
    }

    /// The machine's initial state, cached out of the spec so the hot
    /// path never chases the spec pointer.
    #[inline]
    pub fn initial(&self) -> StateId {
        self.initial
    }

    /// The spec this machine was lowered from.
    pub fn spec(&self) -> &MachineSpec {
        &self.spec
    }

    /// The machine's name.
    pub fn name(&self) -> &str {
        self.spec.name()
    }

    /// The pre-interned machine-name label.
    pub fn machine_label(&self) -> &Arc<str> {
        &self.machine_label
    }

    /// The pre-interned label of a transition.
    ///
    /// # Panics
    ///
    /// Panics if `t` does not belong to this machine.
    pub fn transition_label(&self, t: TransitionId) -> &Arc<str> {
        &self.transition_labels[t.index()]
    }

    /// Resolves a transition name to its id (one hash probe; the
    /// reference spec scans linearly).
    pub fn transition_id(&self, name: &str) -> Option<TransitionId> {
        self.by_name.get(name).copied()
    }

    /// Where applying `t` in state `from` leads: `Some(destination)` if
    /// the transition's source matches, `None` otherwise. This is the
    /// whole hot path: one multiply-add index and one sentinel compare.
    ///
    /// # Panics
    ///
    /// Panics if `from` or `t` does not belong to this machine (the
    /// matrix read is bounds-checked).
    #[inline]
    pub fn next_state(&self, from: StateId, t: TransitionId) -> Option<StateId> {
        let cell = self.next[from.index() * self.transitions + t.index()];
        (cell != NOT_APPLICABLE).then_some(StateId(cell))
    }

    /// The pre-resolved error record for a transition whose destination
    /// is an error state, `None` for transitions to non-error states.
    #[inline]
    pub fn error_proto(&self, t: TransitionId) -> Option<&Arc<ErrorEntered>> {
        self.error_protos[t.index()].as_ref()
    }
}

/// Keys that may have a *dense index*: a small non-negative integer
/// image suitable for direct `Vec` indexing.
///
/// [`CompactStore`] keeps entities whose dense index is below
/// [`DENSE_LIMIT`] in a slab and spills the rest to a hash map, so the
/// two methods must round-trip: `from_dense_index(k.dense_index()?)`
/// must reconstruct `k` exactly (the leak sweep uses it to recover
/// keys from slab slots).
pub trait DenseKey: Eq + Hash + Clone + fmt::Debug {
    /// The key's dense index, or `None` if it has no small-integer image
    /// (always-`None` implementations simply route every key to the
    /// hash fallback).
    fn dense_index(&self) -> Option<usize>;

    /// Reconstructs the key from an index previously returned by
    /// [`DenseKey::dense_index`].
    fn from_dense_index(index: usize) -> Option<Self>;
}

macro_rules! impl_dense_key {
    ($($t:ty),*) => {$(
        impl DenseKey for $t {
            #[inline]
            fn dense_index(&self) -> Option<usize> {
                usize::try_from(*self).ok()
            }

            #[inline]
            fn from_dense_index(index: usize) -> Option<Self> {
                <$t>::try_from(index).ok()
            }
        }
    )*};
}
impl_dense_key!(u8, u16, u32, u64, usize);

/// An entity map tuned for dense integer keys, dispatching through a
/// [`CompiledMachine`].
///
/// Entity state lives in a slab — `slab[key.dense_index()]` holds the
/// current state id, [`VACANT`] when untracked — so the steady-state
/// `apply` is two array reads and one write, with no hashing and no key
/// clone. Keys outside the dense range (index ≥ [`DENSE_LIMIT`], or no
/// dense index at all) spill to a hash map with identical semantics.
///
/// Outcomes, leak-sweep order, and recorded observability events are
/// bit-for-bit identical to the reference
/// [`StateStore`](crate::StateStore); see
/// [`DiffStore`](crate::DiffStore) and the equivalence proptest.
#[derive(Debug, Clone)]
pub struct CompactStore<K> {
    machine: Arc<CompiledMachine>,
    /// Per-store copy of the next-state matrix (it is tiny — `states ×
    /// transitions × 2` bytes), so the per-event read is one pointer
    /// chase from `self` instead of two through the shared `Arc`.
    next: Box<[u16]>,
    transitions: usize,
    initial: StateId,
    slab: Vec<u16>,
    slab_len: usize,
    spill: HashMap<K, StateId>,
    recorder: Recorder,
    /// Interned machine/transition label ids for the attached recorder
    /// (empty until [`set_recorder`](Self::set_recorder)).
    machine_label: LabelId,
    transition_labels: Box<[LabelId]>,
    /// Per-entity label ids: slab-parallel for dense keys
    /// ([`NO_ENTITY_LABEL`] when not yet interned), hash map for spilled
    /// keys.
    slab_labels: Vec<u32>,
    spill_labels: HashMap<K, LabelId>,
}

/// Sentinel in [`CompactStore::slab_labels`]: entity label not interned
/// yet.
const NO_ENTITY_LABEL: u32 = u32::MAX;

impl<K: DenseKey> CompactStore<K> {
    /// Compiles `machine` and creates an empty store.
    pub fn new(machine: MachineSpec) -> Self {
        Self::with_compiled(Arc::new(CompiledMachine::compile(machine)))
    }

    /// Creates an empty store over an already compiled machine (lets
    /// shards share one set of tables).
    pub fn with_compiled(machine: Arc<CompiledMachine>) -> Self {
        CompactStore {
            next: machine.next.clone(),
            transitions: machine.transitions,
            initial: machine.initial,
            machine,
            slab: Vec::new(),
            slab_len: 0,
            spill: HashMap::new(),
            recorder: Recorder::disabled(),
            machine_label: LabelId(0),
            transition_labels: Box::new([]),
            slab_labels: Vec::new(),
            spill_labels: HashMap::new(),
        }
    }

    /// The store-local copy of [`CompiledMachine::next_state`].
    #[inline]
    fn next_state(&self, from: StateId, t: TransitionId) -> Option<StateId> {
        let cell = self.next[from.index() * self.transitions + t.index()];
        (cell != NOT_APPLICABLE).then_some(StateId(cell))
    }

    /// Attaches an observability recorder; events are identical to the
    /// reference store's. Machine and transition names are interned here,
    /// once, so the per-event path records dense ids with zero
    /// allocations.
    pub fn set_recorder(&mut self, recorder: Recorder) {
        self.machine_label = recorder.intern(self.machine.name());
        self.transition_labels = self
            .machine
            .spec()
            .transitions()
            .iter()
            .map(|t| recorder.intern(t.name()))
            .collect();
        self.slab_labels.clear();
        self.spill_labels.clear();
        self.recorder = recorder;
    }

    /// The interned label for `entity`, computed on first recorded use:
    /// a slab-parallel slot for dense keys (no hashing on repeat events),
    /// a hash probe for spilled keys. The label text is the entity's
    /// `Debug` rendering, matching
    /// [`EntityTag::of_debug`](jinn_obs::EntityTag::of_debug).
    fn entity_label(&mut self, entity: &K) -> LabelId {
        match Self::slab_index(entity) {
            Some(i) => {
                if i >= self.slab_labels.len() {
                    self.slab_labels.resize(i + 1, NO_ENTITY_LABEL);
                }
                if self.slab_labels[i] == NO_ENTITY_LABEL {
                    self.slab_labels[i] = self.recorder.intern(&format!("{entity:?}")).0;
                }
                LabelId(self.slab_labels[i])
            }
            None => {
                if let Some(&label) = self.spill_labels.get(entity) {
                    return label;
                }
                let label = self.recorder.intern(&format!("{entity:?}"));
                self.spill_labels.insert(entity.clone(), label);
                label
            }
        }
    }

    /// The compiled machine this store dispatches through.
    pub fn compiled(&self) -> &CompiledMachine {
        &self.machine
    }

    /// The machine spec this store tracks.
    pub fn machine(&self) -> &MachineSpec {
        self.machine.spec()
    }

    /// Number of tracked entities.
    pub fn len(&self) -> usize {
        self.slab_len + self.spill.len()
    }

    /// Returns `true` if no entities are tracked.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    #[inline]
    fn slab_index(entity: &K) -> Option<usize> {
        entity.dense_index().filter(|&i| i < DENSE_LIMIT)
    }

    /// Current state of `entity`, or the initial state if never seen.
    #[inline]
    pub fn state_of(&self, entity: &K) -> StateId {
        match Self::slab_index(entity) {
            Some(i) => match self.slab.get(i) {
                Some(&slot) if slot != VACANT => StateId(slot),
                _ => self.initial,
            },
            None => self.spill.get(entity).copied().unwrap_or(self.initial),
        }
    }

    /// Returns `true` if the entity has been attached (transitioned at
    /// least once).
    pub fn contains(&self, entity: &K) -> bool {
        match Self::slab_index(entity) {
            Some(i) => matches!(self.slab.get(i), Some(&slot) if slot != VACANT),
            None => self.spill.contains_key(entity),
        }
    }

    /// Applies `transition` to `entity`; semantics identical to
    /// [`StateStore::apply`](crate::StateStore::apply).
    ///
    /// The dense-key steady state is one slab read, one matrix read, and
    /// one slab write — no hashing, no key clone, no allocation (error
    /// hits clone the pre-formatted `Arc` prototype).
    ///
    /// # Panics
    ///
    /// Panics if `transition` does not belong to the store's machine.
    pub fn apply(&mut self, entity: &K, transition: TransitionId) -> TransitionOutcome {
        let outcome = match Self::slab_index(entity) {
            Some(i) => {
                // Growing on a miss even when the transition ends up
                // NotApplicable is deliberate: the slot stays VACANT, so
                // semantics are unchanged, and the hot path below needs
                // exactly one bounds check.
                if i >= self.slab.len() {
                    self.slab.resize(i + 1, VACANT);
                }
                let slot = &mut self.slab[i];
                let current = if *slot == VACANT {
                    self.initial
                } else {
                    StateId(*slot)
                };
                let cell = self.next[current.index() * self.transitions + transition.index()];
                match (cell != NOT_APPLICABLE).then_some(StateId(cell)) {
                    None => TransitionOutcome::NotApplicable { current },
                    Some(to) => {
                        if *slot == VACANT {
                            self.slab_len += 1;
                        }
                        *slot = to.0;
                        match self.machine.error_proto(transition) {
                            Some(proto) => TransitionOutcome::Error(Arc::clone(proto)),
                            None => TransitionOutcome::Moved { from: current, to },
                        }
                    }
                }
            }
            None => {
                let current = self.spill.get(entity).copied().unwrap_or(self.initial);
                match self.next_state(current, transition) {
                    None => TransitionOutcome::NotApplicable { current },
                    Some(to) => {
                        self.spill.insert(entity.clone(), to);
                        match self.machine.error_proto(transition) {
                            Some(proto) => TransitionOutcome::Error(Arc::clone(proto)),
                            None => TransitionOutcome::Moved { from: current, to },
                        }
                    }
                }
            }
        };
        if self.recorder.is_enabled() {
            let obs_outcome = match &outcome {
                TransitionOutcome::Moved { .. } => FsmOutcome::Moved,
                TransitionOutcome::Error(_) => FsmOutcome::Error,
                TransitionOutcome::NotApplicable { .. } => FsmOutcome::NotApplicable,
            };
            let entity_label = self.entity_label(entity);
            self.recorder.fsm_transition_id(
                jinn_obs::event::NO_THREAD,
                self.machine_label,
                self.transition_labels[transition.index()],
                obs_outcome,
                Some(entity_label),
            );
        }
        outcome
    }

    /// Applies the transition named `name`; unknown names degrade to
    /// `NotApplicable` exactly as
    /// [`StateStore::apply_named`](crate::StateStore::apply_named).
    pub fn apply_named(&mut self, entity: &K, name: &str) -> TransitionOutcome {
        match self.try_apply_named(entity, name) {
            Ok(outcome) => outcome,
            Err(_) => {
                if self.recorder.is_enabled() {
                    // Cold checker-misuse path, mirroring the reference
                    // store exactly.
                    let machine = self.recorder.intern("checker-internal");
                    let transition = self.recorder.intern(name);
                    let entity_label = self.entity_label(entity);
                    self.recorder.fsm_transition_id(
                        jinn_obs::event::NO_THREAD,
                        machine,
                        transition,
                        FsmOutcome::NotApplicable,
                        Some(entity_label),
                    );
                }
                TransitionOutcome::NotApplicable {
                    current: self.state_of(entity),
                }
            }
        }
    }

    /// Applies the transition named `name`, reporting unknown names as
    /// [`UnknownTransition`]. The name resolves through the compiled
    /// hash index (the reference store scans the spec linearly).
    ///
    /// # Errors
    ///
    /// Returns [`UnknownTransition`] when the machine has no transition
    /// of that name; the entity's state is untouched.
    pub fn try_apply_named(
        &mut self,
        entity: &K,
        name: &str,
    ) -> Result<TransitionOutcome, UnknownTransition> {
        let id = self
            .machine
            .transition_id(name)
            .ok_or_else(|| UnknownTransition {
                machine: self.machine.name().to_string(),
                name: name.to_string(),
            })?;
        Ok(self.apply(entity, id))
    }

    /// Removes an entity from the store (e.g. after its resource dies).
    pub fn evict(&mut self, entity: &K) -> Option<EntityState> {
        match Self::slab_index(entity) {
            Some(i) => match self.slab.get_mut(i) {
                Some(slot) if *slot != VACANT => {
                    let state = StateId(*slot);
                    *slot = VACANT;
                    self.slab_len -= 1;
                    Some(EntityState::of(state))
                }
                _ => None,
            },
            None => self.spill.remove(entity).map(EntityState::of),
        }
    }

    fn sweep(&self, pred: impl Fn(StateId) -> bool) -> Vec<K>
    where
        K: Ord,
    {
        let mut out: Vec<K> = self
            .slab
            .iter()
            .enumerate()
            .filter(|&(_, &slot)| slot != VACANT && pred(StateId(slot)))
            .map(|(i, _)| K::from_dense_index(i).expect("slab index came from dense_index"))
            .collect();
        out.extend(
            self.spill
                .iter()
                .filter(|&(_, &state)| pred(state))
                .map(|(k, _)| k.clone()),
        );
        out.sort_unstable();
        out
    }

    /// Entities currently in the given state, sorted by entity key.
    pub fn entities_in(&self, state: StateId) -> Vec<K>
    where
        K: Ord,
    {
        self.sweep(|s| s == state)
    }

    /// Entities whose current state is *not* the given state, sorted by
    /// entity key: the deterministic program-termination leak sweep.
    pub fn entities_not_in(&self, state: StateId) -> Vec<K>
    where
        K: Ord,
    {
        self.sweep(|s| s != state)
    }

    /// Clears all tracked entities (the slab's capacity is kept).
    pub fn clear(&mut self) {
        self.slab.clear();
        self.slab_len = 0;
        self.spill.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::{ConstraintClass, Direction, EntityKind};
    use crate::runtime::StateStore;

    fn machine() -> MachineSpec {
        MachineSpec::builder("local-ref", ConstraintClass::Resource)
            .entity(EntityKind::Reference)
            .state("BeforeAcquire")
            .state("Acquired")
            .state("Released")
            .error_state("Dangling", "use of dangling reference in {function}")
            .transition("Acquire", "BeforeAcquire", "Acquired", |t| {
                t.on(Direction::CallJavaToC, "native method taking reference")
            })
            .transition("Release", "Acquired", "Released", |t| {
                t.on(Direction::ReturnCToJava, "any native method")
            })
            .transition("UseAfterRelease", "Released", "Dangling", |t| {
                t.on(Direction::CallCToJava, "JNI function taking reference")
            })
            .build()
            .unwrap()
    }

    #[test]
    fn matrix_matches_spec() {
        let spec = machine();
        let compiled = CompiledMachine::compile(spec.clone());
        for (si, _) in spec.states().iter().enumerate() {
            let from = StateId(si as u16);
            for (ti, t) in spec.transitions().iter().enumerate() {
                let id = TransitionId(ti as u16);
                let expect = (t.from() == from).then_some(t.to());
                assert_eq!(compiled.next_state(from, id), expect);
            }
        }
    }

    #[test]
    fn error_protos_are_preformatted() {
        let compiled = CompiledMachine::compile(machine());
        let use_after = compiled.transition_id("UseAfterRelease").unwrap();
        let proto = compiled.error_proto(use_after).expect("error transition");
        assert_eq!(proto.machine, "local-ref");
        assert_eq!(proto.state, "Dangling");
        assert!(compiled
            .error_proto(compiled.transition_id("Acquire").unwrap())
            .is_none());
    }

    #[test]
    fn lifecycle_matches_reference() {
        let mut compact: CompactStore<u32> = CompactStore::new(machine());
        let mut reference: StateStore<u32> = StateStore::new(machine());
        for key in [7u32, 9, 7] {
            for name in ["Acquire", "Release", "UseAfterRelease", "Release"] {
                assert_eq!(
                    compact.apply_named(&key, name),
                    reference.apply_named(&key, name),
                    "key {key}, transition {name}"
                );
            }
        }
        assert_eq!(compact.len(), reference.len());
    }

    #[test]
    fn sparse_keys_spill_to_the_hash_map() {
        let mut store: CompactStore<u64> = CompactStore::new(machine());
        let dense = 42u64;
        let sparse = (DENSE_LIMIT as u64) + 99; // beyond the slab cap
        store.apply_named(&dense, "Acquire");
        store.apply_named(&sparse, "Acquire");
        assert_eq!(store.len(), 2);
        assert!(store.contains(&dense));
        assert!(store.contains(&sparse));
        let acquired = store.machine().state_id("Acquired").unwrap();
        assert_eq!(store.entities_in(acquired), vec![dense, sparse]);
        assert!(store.evict(&sparse).is_some());
        assert!(store.evict(&sparse).is_none());
        assert_eq!(store.len(), 1);
    }

    #[test]
    fn evict_and_clear_maintain_len() {
        let mut store: CompactStore<u32> = CompactStore::new(machine());
        store.apply_named(&1, "Acquire");
        store.apply_named(&2, "Acquire");
        assert_eq!(store.len(), 2);
        let evicted = store.evict(&1).expect("tracked");
        assert_eq!(
            evicted.state(),
            store.machine().state_id("Acquired").unwrap()
        );
        assert_eq!(store.len(), 1);
        store.clear();
        assert!(store.is_empty());
        assert_eq!(store.state_of(&2), store.machine().initial());
    }

    #[test]
    fn unknown_transition_is_reported_not_a_panic() {
        let mut store: CompactStore<u32> = CompactStore::new(machine());
        store.apply_named(&1, "Acquire");
        let err = store.try_apply_named(&1, "NoSuchTransition").unwrap_err();
        assert_eq!(err.machine, "local-ref");
        assert_eq!(err.name, "NoSuchTransition");
        let out = store.apply_named(&1, "NoSuchTransition");
        assert!(!out.applied());
    }
}
