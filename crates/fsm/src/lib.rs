//! Generic state-machine specification framework for synthesizing dynamic
//! FFI bug detectors.
//!
//! This crate implements the specification formalism of Section 4 of
//! *Jinn: Synthesizing Dynamic Bug Detectors for Foreign Language
//! Interfaces* (PLDI 2010). A foreign-function-interface constraint is
//! written as a small state machine ([`MachineSpec`]) whose transitions are
//! triggered at *language transitions* — calls and returns that cross the
//! boundary between a managed language and C ([`Direction`]). At runtime a
//! checker attaches machine instances to program *entities* (threads,
//! references, IDs, resources) and transitions them; entering an error state
//! is a detected FFI bug.
//!
//! The crate is deliberately independent of any particular FFI: the JNI and
//! Python/C checkers in the sibling crates both build on it. A machine
//! specification here carries:
//!
//! * named states, some of which are flagged as error states with a
//!   diagnosis template,
//! * named transitions between states,
//! * for each transition, the set of [`TriggerSpec`]s — the
//!   `languageTransitionsFor` mapping of the paper — resolved against a
//!   concrete function registry by the downstream synthesizer.
//!
//! # Example
//!
//! ```
//! use jinn_fsm::{ConstraintClass, Direction, EntityKind, MachineSpec};
//!
//! // The local-reference machine of Figure 2, abridged.
//! let machine = MachineSpec::builder("local-reference", ConstraintClass::Resource)
//!     .entity(EntityKind::Reference)
//!     .state("BeforeAcquire")
//!     .state("Acquired")
//!     .state("Released")
//!     .error_state("Error:Dangling", "use of dangling local reference in {function}")
//!     .transition("Acquire", "BeforeAcquire", "Acquired", |t| {
//!         t.on(Direction::CallJavaToC, "native method taking reference")
//!          .on(Direction::ReturnJavaToC, "JNI function returning reference")
//!     })
//!     .transition("Release", "Acquired", "Released", |t| {
//!         t.on(Direction::ReturnCToJava, "return from any native method")
//!     })
//!     .transition("UseAfterRelease", "Released", "Error:Dangling", |t| {
//!         t.on(Direction::CallCToJava, "JNI function taking reference")
//!     })
//!     .build()
//!     .expect("well-formed machine");
//!
//! assert_eq!(machine.states().len(), 4);
//! assert!(machine.state_by_name("Error:Dangling").unwrap().is_error());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod atomic;
mod compiled;
mod diagram;
mod engine;
mod machine;
mod pool;
mod runtime;
mod sharded;

pub use atomic::{AtomicStore, NO_OWNER};
pub use compiled::{CompactStore, CompiledMachine, DenseKey, DENSE_LIMIT, NOT_APPLICABLE};
pub use diagram::{ascii_table, dot};
pub use engine::{DiffStore, Engine};
pub use machine::{
    ConstraintClass, Direction, EntityKind, MachineBuilder, MachineError, MachineSpec, StateId,
    StateSpec, TransitionBuilder, TransitionId, TransitionSpec, TriggerSpec,
};
pub use pool::{AtomicEnginePool, CompactEnginePool, EngineLease, EnginePool, PoolStats};
pub use runtime::{EntityState, ErrorEntered, StateStore, TransitionOutcome, UnknownTransition};
pub use sharded::{
    CrossThreadUse, ShardedCompactStore, ShardedOutcome, ShardedStateStore, DEFAULT_SHARDS,
};
