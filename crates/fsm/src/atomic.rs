//! Lock-free concurrent entity-state tracking: [`AtomicStore`] keeps
//! per-entity state in `AtomicU16` cells and applies transitions with a
//! CAS loop against the compiled `states × transitions` matrix.
//!
//! This is the successor to the `Mutex<Engine>`-per-shard design of
//! [`ShardedStateStore`](crate::ShardedStateStore): instead of locking a
//! shard to mutate a `u16`, the store's dense path *is* the `u16` — a
//! lazily allocated slab of atomic cells indexed by the key's
//! [`DenseKey::dense_index`], exactly [`CompactStore`]'s layout with the
//! `VACANT` sentinel preserved. A transition is:
//!
//! 1. load the cell (Acquire); `VACANT` reads as the initial state,
//! 2. one matrix read answers "does it apply, and where does it go"
//!    ([`NOT_APPLICABLE`] → return `NotApplicable`, no write at all),
//! 3. `compare_exchange_weak` the cell to the destination (AcqRel); on
//!    contention the loop re-reads and re-decides from the current
//!    state, so every apply is linearizable per entity.
//!
//! Threads therefore never block each other on the hot path — there is
//! no lock to convoy on and no poisoning to recover from. Entity
//! ownership (the paper's thread-locality constraint, surfaced as
//! [`CrossThreadUse`]) is tracked the same way: an `AtomicU16` owner
//! cell per entity, claimed by CAS at first touch, so a foreign-thread
//! touch still reports the violation without rehoming the entity.
//!
//! Keys at or past [`DENSE_LIMIT`] (or with no dense index) spill to a
//! small sharded `RwLock<HashMap>` of reference-counted atomic slots:
//! lookups take a shard read lock (shared, so concurrent spill appliers
//! still proceed in parallel), and only first-insert and evict take the
//! write lock. The CAS on a spill slot runs under the read lock so a
//! racing evict cannot orphan an in-flight transition.
//!
//! Sweeps ([`AtomicStore::entities_in`] / `entities_not_in`) collect
//! dense and spilled keys and sort them, identical to the serialized
//! stores — callers that need a *stable* sweep against concurrent
//! writers quiesce first (see `minijvm::EpochParticipants`), which keeps
//! replayed `.jtrace` output byte-identical.

use std::collections::HashMap;
use std::fmt;
use std::hash::Hasher;
use std::sync::atomic::{AtomicU16, AtomicUsize, Ordering};
use std::sync::{Arc, OnceLock, PoisonError, RwLock};

use jinn_obs::{FsmOutcome, LabelId, Recorder};

use crate::compiled::{CompiledMachine, DenseKey, DENSE_LIMIT, NOT_APPLICABLE, VACANT};
use crate::machine::{MachineSpec, StateId, TransitionId};
use crate::runtime::{EntityState, TransitionOutcome, UnknownTransition};
use crate::sharded::{CrossThreadUse, ShardedOutcome};

/// Owner-cell sentinel: no thread has touched the entity yet. Thread id
/// `u16::MAX` is reserved (it is also `jinn_obs`'s `NO_THREAD`).
pub const NO_OWNER: u16 = u16::MAX;

/// Dense cells per lazily-allocated segment (2^14 = 16,384 entities,
/// 64 KiB of state + owner cells). [`DENSE_LIMIT`] / `SEGMENT_SIZE`
/// segments cover the whole dense range without eagerly allocating
/// megabytes per machine.
const SEGMENT_BITS: usize = 14;
const SEGMENT_SIZE: usize = 1 << SEGMENT_BITS;
const SEGMENTS: usize = DENSE_LIMIT >> SEGMENT_BITS;

/// Shard count of the spill map (cold path: huge or non-integer keys).
const SPILL_SHARDS: usize = 16;

/// One lazily-allocated run of dense cells.
struct Segment {
    states: Box<[AtomicU16]>,
    owners: Box<[AtomicU16]>,
}

impl Segment {
    fn new() -> Segment {
        Segment {
            states: (0..SEGMENT_SIZE).map(|_| AtomicU16::new(VACANT)).collect(),
            owners: (0..SEGMENT_SIZE)
                .map(|_| AtomicU16::new(NO_OWNER))
                .collect(),
        }
    }
}

/// A spilled entity's cells, shared between the map and in-flight
/// appliers.
struct SpillSlot {
    state: AtomicU16,
    owner: AtomicU16,
}

impl SpillSlot {
    fn new() -> Arc<SpillSlot> {
        Arc::new(SpillSlot {
            state: AtomicU16::new(VACANT),
            owner: AtomicU16::new(NO_OWNER),
        })
    }
}

/// One spill shard: reader-parallel map from entity key to its slot.
type SpillShard<K> = RwLock<HashMap<K, Arc<SpillSlot>>>;

/// A lock-free concurrent entity-state store dispatching through a
/// [`CompiledMachine`].
///
/// Semantics match [`ShardedStateStore`](crate::ShardedStateStore)
/// operation-for-operation — same first-touch ownership, same
/// [`CrossThreadUse`] reporting, same sorted sweeps — with the shard
/// mutexes replaced by per-entity CAS (see the module docs). The store
/// also implements [`Engine`](crate::Engine) (single-thread view, owner
/// thread 0), so it can be pooled by
/// [`EnginePool`](crate::EnginePool) and driven by the equivalence
/// proptests.
///
/// Concurrent `evict` against `apply` on the *same* entity linearizes
/// in either order (an apply that loses the race re-attaches the entity
/// as a fresh first touch); ownership after such a race is best-effort,
/// matching the sharded store's rehome-on-next-touch behavior.
pub struct AtomicStore<K> {
    machine: Arc<CompiledMachine>,
    /// Store-local copy of the next-state matrix (tiny), one pointer
    /// chase from `self` on the hot path.
    next: Box<[u16]>,
    transitions: usize,
    initial: StateId,
    segments: Box<[OnceLock<Segment>]>,
    /// Tracked entities (dense + spill); maintained by CAS outcomes.
    len: AtomicUsize,
    spill: Box<[SpillShard<K>]>,
    recorder: Recorder,
    machine_label: LabelId,
    transition_labels: Box<[LabelId]>,
}

impl<K> fmt::Debug for AtomicStore<K> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("AtomicStore")
            .field("machine", &self.machine.name())
            .field("len", &self.len.load(Ordering::Relaxed))
            .finish_non_exhaustive()
    }
}

fn read_shard<T>(l: &RwLock<T>) -> std::sync::RwLockReadGuard<'_, T> {
    l.read().unwrap_or_else(PoisonError::into_inner)
}

fn write_shard<T>(l: &RwLock<T>) -> std::sync::RwLockWriteGuard<'_, T> {
    l.write().unwrap_or_else(PoisonError::into_inner)
}

/// Claims the owner cell at first touch; returns the owning thread.
fn claim_owner(cell: &AtomicU16, thread: u16) -> u16 {
    match cell.compare_exchange(NO_OWNER, thread, Ordering::AcqRel, Ordering::Acquire) {
        Ok(_) => thread,
        Err(existing) => existing,
    }
}

impl<K: DenseKey> AtomicStore<K> {
    /// Compiles `machine` and creates an empty store.
    pub fn new(machine: MachineSpec) -> Self {
        Self::with_compiled(Arc::new(CompiledMachine::compile(machine)))
    }

    /// Creates an empty store over an already compiled machine (lets a
    /// fleet share one set of tables — including a discharged one, see
    /// [`CompiledMachine::compile_discharged`]).
    pub fn with_compiled(machine: Arc<CompiledMachine>) -> Self {
        AtomicStore {
            next: machine.matrix().to_vec().into_boxed_slice(),
            transitions: machine.transition_count(),
            initial: machine.initial(),
            segments: (0..SEGMENTS).map(|_| OnceLock::new()).collect(),
            len: AtomicUsize::new(0),
            spill: (0..SPILL_SHARDS)
                .map(|_| RwLock::new(HashMap::new()))
                .collect(),
            recorder: Recorder::disabled(),
            machine_label: LabelId(0),
            transition_labels: Box::new([]),
            machine,
        }
    }

    /// The compiled machine this store dispatches through.
    pub fn compiled(&self) -> &CompiledMachine {
        &self.machine
    }

    /// The machine spec this store tracks.
    pub fn machine(&self) -> &MachineSpec {
        self.machine.spec()
    }

    /// Attaches an observability recorder; machine and transition names
    /// are interned once so the per-event path records ids only.
    pub fn set_recorder(&mut self, recorder: Recorder) {
        self.machine_label = recorder.intern(self.machine.name());
        self.transition_labels = self
            .machine
            .spec()
            .transitions()
            .iter()
            .map(|t| recorder.intern(t.name()))
            .collect();
        self.recorder = recorder;
    }

    /// Number of tracked entities.
    pub fn len(&self) -> usize {
        self.len.load(Ordering::Relaxed)
    }

    /// Returns `true` if no entities are tracked.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    #[inline]
    fn slab_index(entity: &K) -> Option<usize> {
        entity.dense_index().filter(|&i| i < DENSE_LIMIT)
    }

    #[inline]
    fn segment(&self, index: usize) -> &Segment {
        self.segments[index >> SEGMENT_BITS].get_or_init(Segment::new)
    }

    fn spill_shard(&self, entity: &K) -> &RwLock<HashMap<K, Arc<SpillSlot>>> {
        let mut h = std::collections::hash_map::DefaultHasher::new();
        entity.hash(&mut h);
        &self.spill[(h.finish() as usize) % self.spill.len()]
    }

    /// The spilled entity's slot, inserting an untracked (`VACANT`) one
    /// on first touch.
    fn spill_slot(&self, entity: &K) -> Arc<SpillSlot> {
        if let Some(slot) = read_shard(self.spill_shard(entity)).get(entity) {
            return Arc::clone(slot);
        }
        let mut map = write_shard(self.spill_shard(entity));
        Arc::clone(map.entry(entity.clone()).or_insert_with(SpillSlot::new))
    }

    /// The CAS loop shared by the dense and spill paths: decides the
    /// outcome from the *current* cell value, retrying on contention.
    #[inline]
    fn transition_cell(&self, cell: &AtomicU16, transition: TransitionId) -> TransitionOutcome {
        let mut seen = cell.load(Ordering::Acquire);
        loop {
            let current = if seen == VACANT {
                self.initial
            } else {
                StateId(seen)
            };
            let dest = self.next[current.index() * self.transitions + transition.index()];
            if dest == NOT_APPLICABLE {
                return TransitionOutcome::NotApplicable { current };
            }
            match cell.compare_exchange_weak(seen, dest, Ordering::AcqRel, Ordering::Acquire) {
                Ok(_) => {
                    if seen == VACANT {
                        self.len.fetch_add(1, Ordering::Relaxed);
                    }
                    return match self.machine.error_proto(transition) {
                        Some(proto) => TransitionOutcome::Error(Arc::clone(proto)),
                        None => TransitionOutcome::Moved {
                            from: current,
                            to: StateId(dest),
                        },
                    };
                }
                Err(actual) => seen = actual,
            }
        }
    }

    fn record(
        &self,
        thread: u16,
        entity: &K,
        transition: TransitionId,
        outcome: &TransitionOutcome,
    ) {
        if !self.recorder.is_enabled() {
            return;
        }
        let obs_outcome = match outcome {
            TransitionOutcome::Moved { .. } => FsmOutcome::Moved,
            TransitionOutcome::Error(_) => FsmOutcome::Error,
            TransitionOutcome::NotApplicable { .. } => FsmOutcome::NotApplicable,
        };
        match Self::slab_index(entity) {
            Some(i) => self.recorder.fsm_transition_keyed(
                thread,
                self.machine_label,
                self.transition_labels[transition.index()],
                obs_outcome,
                i as u64,
            ),
            None => {
                // Cold path: spilled keys intern their debug rendering
                // per event (the recorder's intern table dedupes).
                let label = self.recorder.intern(&format!("{entity:?}"));
                self.recorder.fsm_transition_id(
                    thread,
                    self.machine_label,
                    self.transition_labels[transition.index()],
                    obs_outcome,
                    Some(label),
                );
            }
        }
    }

    /// Applies `transition` to `entity` on behalf of `thread` — the
    /// lock-free counterpart of
    /// [`ShardedStateStore::apply`](crate::ShardedStateStore::apply).
    ///
    /// # Panics
    ///
    /// Panics if `transition` does not belong to the store's machine.
    pub fn apply(&self, thread: u16, entity: &K, transition: TransitionId) -> ShardedOutcome {
        assert!(
            transition.index() < self.transitions,
            "transition id {} out of range for machine `{}`",
            transition.index(),
            self.machine.name()
        );
        let (outcome, owner) = match Self::slab_index(entity) {
            Some(i) => {
                let seg = self.segment(i);
                let cell = i & (SEGMENT_SIZE - 1);
                let owner = claim_owner(&seg.owners[cell], thread);
                (self.transition_cell(&seg.states[cell], transition), owner)
            }
            None => {
                let slot = self.spill_slot(entity);
                // Hold the shard read lock across the CAS so a racing
                // evict (write lock) cannot orphan this transition.
                let _guard = read_shard(self.spill_shard(entity));
                let owner = claim_owner(&slot.owner, thread);
                (self.transition_cell(&slot.state, transition), owner)
            }
        };
        self.record(thread, entity, transition, &outcome);
        ShardedOutcome {
            outcome,
            cross_thread: (owner != thread).then_some(CrossThreadUse {
                owner,
                user: thread,
            }),
        }
    }

    /// Applies the transition named `name`; unknown names degrade to
    /// `NotApplicable` exactly as the other stores.
    pub fn apply_named(&self, thread: u16, entity: &K, name: &str) -> ShardedOutcome {
        match self.try_apply_named(thread, entity, name) {
            Ok(out) => out,
            Err(_) => {
                if self.recorder.is_enabled() {
                    // Cold checker-misuse path, mirroring the reference
                    // store exactly.
                    let machine = self.recorder.intern("checker-internal");
                    let transition = self.recorder.intern(name);
                    let label = self.recorder.intern(&format!("{entity:?}"));
                    self.recorder.fsm_transition_id(
                        thread,
                        machine,
                        transition,
                        FsmOutcome::NotApplicable,
                        Some(label),
                    );
                }
                // An unknown name is still a touch: ownership is claimed
                // (and cross-thread use reported) exactly as the sharded
                // store's placement-then-apply does.
                let owner = self.touch(thread, entity);
                let current = self.state_of(thread, entity);
                ShardedOutcome {
                    outcome: TransitionOutcome::NotApplicable { current },
                    cross_thread: (owner != thread).then_some(CrossThreadUse {
                        owner,
                        user: thread,
                    }),
                }
            }
        }
    }

    /// Fallible variant of [`AtomicStore::apply_named`].
    ///
    /// # Errors
    ///
    /// Returns [`UnknownTransition`] when the machine has no transition
    /// of that name; the entity's state is untouched.
    pub fn try_apply_named(
        &self,
        thread: u16,
        entity: &K,
        name: &str,
    ) -> Result<ShardedOutcome, UnknownTransition> {
        let id = self
            .machine
            .transition_id(name)
            .ok_or_else(|| UnknownTransition {
                machine: self.machine.name().to_string(),
                name: name.to_string(),
            })?;
        Ok(self.apply(thread, entity, id))
    }

    /// Claims (or reads) the entity's owner: the first-touch homing of
    /// the sharded store's directory, one CAS instead of a lock.
    fn touch(&self, thread: u16, entity: &K) -> u16 {
        match Self::slab_index(entity) {
            Some(i) => claim_owner(&self.segment(i).owners[i & (SEGMENT_SIZE - 1)], thread),
            None => claim_owner(&self.spill_slot(entity).owner, thread),
        }
    }

    /// Current state of `entity` as seen from `thread`, or the initial
    /// state if never seen. Like the sharded store, a read is a touch:
    /// it fixes the entity's owner if unowned.
    pub fn state_of(&self, thread: u16, entity: &K) -> StateId {
        match Self::slab_index(entity) {
            Some(i) => {
                let seg = self.segment(i);
                let cell = i & (SEGMENT_SIZE - 1);
                claim_owner(&seg.owners[cell], thread);
                match seg.states[cell].load(Ordering::Acquire) {
                    VACANT => self.initial,
                    s => StateId(s),
                }
            }
            None => {
                let slot = self.spill_slot(entity);
                claim_owner(&slot.owner, thread);
                match slot.state.load(Ordering::Acquire) {
                    VACANT => self.initial,
                    s => StateId(s),
                }
            }
        }
    }

    /// Returns `true` if the entity has been attached (transitioned at
    /// least once). Unlike [`AtomicStore::state_of`] this is a pure
    /// read: it claims no ownership and allocates nothing.
    pub fn contains(&self, entity: &K) -> bool {
        match Self::slab_index(entity) {
            Some(i) => match self.segments[i >> SEGMENT_BITS].get() {
                Some(seg) => seg.states[i & (SEGMENT_SIZE - 1)].load(Ordering::Acquire) != VACANT,
                None => false,
            },
            None => match read_shard(self.spill_shard(entity)).get(entity) {
                Some(slot) => slot.state.load(Ordering::Acquire) != VACANT,
                None => false,
            },
        }
    }

    /// Removes an entity; its owner is released so the next toucher
    /// rehomes it (matching the sharded store's evict).
    pub fn evict(&self, entity: &K) -> Option<EntityState> {
        match Self::slab_index(entity) {
            Some(i) => {
                let seg = self.segments[i >> SEGMENT_BITS].get()?;
                let cell = i & (SEGMENT_SIZE - 1);
                let prev = seg.states[cell].swap(VACANT, Ordering::AcqRel);
                seg.owners[cell].store(NO_OWNER, Ordering::Release);
                if prev == VACANT {
                    None
                } else {
                    self.len.fetch_sub(1, Ordering::Relaxed);
                    Some(EntityState::of(StateId(prev)))
                }
            }
            None => {
                let mut map = write_shard(self.spill_shard(entity));
                let slot = map.remove(entity)?;
                let prev = slot.state.swap(VACANT, Ordering::AcqRel);
                if prev == VACANT {
                    None
                } else {
                    self.len.fetch_sub(1, Ordering::Relaxed);
                    Some(EntityState::of(StateId(prev)))
                }
            }
        }
    }

    fn sweep(&self, pred: impl Fn(StateId) -> bool) -> Vec<K>
    where
        K: Ord,
    {
        let mut out: Vec<K> = Vec::new();
        for (s, segment) in self.segments.iter().enumerate() {
            let Some(seg) = segment.get() else { continue };
            for (c, cell) in seg.states.iter().enumerate() {
                let state = cell.load(Ordering::Acquire);
                if state != VACANT && pred(StateId(state)) {
                    let index = (s << SEGMENT_BITS) | c;
                    out.push(K::from_dense_index(index).expect("slab index came from dense_index"));
                }
            }
        }
        for shard in self.spill.iter() {
            for (k, slot) in read_shard(shard).iter() {
                let state = slot.state.load(Ordering::Acquire);
                if state != VACANT && pred(StateId(state)) {
                    out.push(k.clone());
                }
            }
        }
        out.sort_unstable();
        out
    }

    /// Entities currently in `state`, sorted by entity key.
    pub fn entities_in(&self, state: StateId) -> Vec<K>
    where
        K: Ord,
    {
        self.sweep(|s| s == state)
    }

    /// Entities whose current state is *not* `state`, sorted by entity
    /// key: the deterministic program-termination leak sweep. Run it
    /// against a quiesced epoch for a stable answer under concurrency.
    pub fn entities_not_in(&self, state: StateId) -> Vec<K>
    where
        K: Ord,
    {
        self.sweep(|s| s != state)
    }

    /// Clears all tracked entities and ownership (allocated segments are
    /// kept and reset).
    pub fn clear(&self) {
        for segment in self.segments.iter() {
            let Some(seg) = segment.get() else { continue };
            for cell in seg.states.iter() {
                cell.store(VACANT, Ordering::Release);
            }
            for cell in seg.owners.iter() {
                cell.store(NO_OWNER, Ordering::Release);
            }
        }
        for shard in self.spill.iter() {
            write_shard(shard).clear();
        }
        self.len.store(0, Ordering::Release);
    }
}

impl<K: DenseKey> crate::engine::Engine<K> for AtomicStore<K> {
    fn for_machine(machine: MachineSpec) -> Self {
        AtomicStore::new(machine)
    }

    fn set_recorder(&mut self, recorder: Recorder) {
        AtomicStore::set_recorder(self, recorder);
    }

    fn spec(&self) -> &MachineSpec {
        self.machine()
    }

    fn len(&self) -> usize {
        AtomicStore::len(self)
    }

    fn state_of(&self, entity: &K) -> StateId {
        AtomicStore::state_of(self, 0, entity)
    }

    fn contains(&self, entity: &K) -> bool {
        AtomicStore::contains(self, entity)
    }

    fn apply(&mut self, entity: &K, transition: TransitionId) -> TransitionOutcome {
        AtomicStore::apply(self, 0, entity, transition).outcome
    }

    fn apply_named(&mut self, entity: &K, name: &str) -> TransitionOutcome {
        AtomicStore::apply_named(self, 0, entity, name).outcome
    }

    fn try_apply_named(
        &mut self,
        entity: &K,
        name: &str,
    ) -> Result<TransitionOutcome, UnknownTransition> {
        AtomicStore::try_apply_named(self, 0, entity, name).map(|o| o.outcome)
    }

    fn evict(&mut self, entity: &K) -> Option<EntityState> {
        AtomicStore::evict(self, entity)
    }

    fn entities_in(&self, state: StateId) -> Vec<K>
    where
        K: Ord,
    {
        AtomicStore::entities_in(self, state)
    }

    fn entities_not_in(&self, state: StateId) -> Vec<K>
    where
        K: Ord,
    {
        AtomicStore::entities_not_in(self, state)
    }

    fn clear(&mut self) {
        AtomicStore::clear(self);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::{ConstraintClass, Direction, EntityKind};
    use crate::runtime::StateStore;
    use crate::sharded::ShardedStateStore;

    const _: fn() = || {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<AtomicStore<u64>>();
    };

    fn machine() -> MachineSpec {
        MachineSpec::builder("local-ref", ConstraintClass::Resource)
            .entity(EntityKind::Reference)
            .state("BeforeAcquire")
            .state("Acquired")
            .state("Released")
            .error_state("Dangling", "use of dangling reference in {function}")
            .transition("Acquire", "BeforeAcquire", "Acquired", |t| {
                t.on(Direction::CallJavaToC, "native method taking reference")
            })
            .transition("Release", "Acquired", "Released", |t| {
                t.on(Direction::ReturnCToJava, "any native method")
            })
            .transition("UseAfterRelease", "Released", "Dangling", |t| {
                t.on(Direction::CallCToJava, "JNI function taking reference")
            })
            .build()
            .unwrap()
    }

    #[test]
    fn same_thread_lifecycle_matches_sharded_store() {
        let atomic: AtomicStore<u32> = AtomicStore::new(machine());
        let sharded: ShardedStateStore<u32> = ShardedStateStore::new(machine());
        for (thread, key) in [(0u16, 7u32), (1, 9), (0, 7), (3, 7)] {
            for name in ["Acquire", "Release", "UseAfterRelease", "Nope"] {
                assert_eq!(
                    atomic.apply_named(thread, &key, name),
                    sharded.apply_named(thread, &key, name),
                    "thread {thread}, key {key}, transition {name}"
                );
            }
        }
        assert_eq!(atomic.len(), sharded.len());
        let released = atomic.machine().state_id("Released").unwrap();
        assert_eq!(
            atomic.entities_not_in(released),
            sharded.entities_not_in(released)
        );
    }

    #[test]
    fn foreign_thread_use_raises_cross_thread_and_still_transitions() {
        let store: AtomicStore<u32> = AtomicStore::new(machine());
        store.apply_named(3, &42, "Acquire");
        let out = store.apply_named(9, &42, "Release");
        assert!(out.outcome.applied());
        assert_eq!(out.cross_thread, Some(CrossThreadUse { owner: 3, user: 9 }));
        let released = store.machine().state_id("Released").unwrap();
        assert_eq!(store.state_of(3, &42), released);
    }

    #[test]
    fn eviction_rehomes_on_next_touch() {
        let store: AtomicStore<u32> = AtomicStore::new(machine());
        store.apply_named(1, &5, "Acquire");
        assert!(store.evict(&5).is_some());
        assert!(store.evict(&5).is_none(), "second evict is a no-op");
        let out = store.apply_named(2, &5, "Acquire");
        assert!(out.cross_thread.is_none(), "entity rehomed after evict");
    }

    #[test]
    fn spill_keys_work_and_sweep_sorted() {
        let store: AtomicStore<u64> = AtomicStore::new(machine());
        let dense = 42u64;
        let sparse = (DENSE_LIMIT as u64) + 99;
        store.apply_named(0, &dense, "Acquire");
        store.apply_named(0, &sparse, "Acquire");
        assert_eq!(store.len(), 2);
        assert!(store.contains(&dense));
        assert!(store.contains(&sparse));
        let acquired = store.machine().state_id("Acquired").unwrap();
        assert_eq!(store.entities_in(acquired), vec![dense, sparse]);
        assert!(store.evict(&sparse).is_some());
        assert!(store.evict(&sparse).is_none());
        assert_eq!(store.len(), 1);
        store.clear();
        assert!(store.is_empty());
        assert_eq!(store.state_of(0, &dense), store.machine().initial());
    }

    #[test]
    fn not_applicable_first_touch_leaves_entity_untracked() {
        let store: AtomicStore<u32> = AtomicStore::new(machine());
        let out = store.apply_named(0, &7, "Release");
        assert!(!out.outcome.applied());
        assert_eq!(store.len(), 0);
        assert!(!store.contains(&7));
    }

    #[test]
    fn parallel_disjoint_threads_match_serial_multiset() {
        let store: AtomicStore<u64> = AtomicStore::new(machine());
        std::thread::scope(|scope| {
            for t in 0..8u16 {
                let store = &store;
                scope.spawn(move || {
                    for i in 0..200u64 {
                        let key = u64::from(t) * 1000 + i;
                        let out = store.apply_named(t, &key, "Acquire");
                        assert!(out.outcome.applied());
                        assert!(out.cross_thread.is_none());
                        if i % 2 == 0 {
                            assert!(store.apply_named(t, &key, "Release").outcome.applied());
                        }
                    }
                });
            }
        });
        let mut serial: StateStore<u64> = StateStore::new(machine());
        for t in 0..8u16 {
            for i in 0..200u64 {
                let key = u64::from(t) * 1000 + i;
                serial.apply_named(&key, "Acquire");
                if i % 2 == 0 {
                    serial.apply_named(&key, "Release");
                }
            }
        }
        let released = store.machine().state_id("Released").unwrap();
        assert_eq!(
            store.entities_not_in(released),
            serial.entities_not_in(released),
            "lock-free leak sweep must equal the serialized sweep"
        );
        assert_eq!(store.len(), serial.len());
    }

    #[test]
    fn contended_same_entity_applies_linearize() {
        // 8 threads hammer one entity with Acquire; exactly one can win
        // the BeforeAcquire->Acquired edge, everyone else must see
        // NotApplicable{Acquired} — never a torn or duplicated Move.
        let store: AtomicStore<u32> = AtomicStore::new(machine());
        let id = store.compiled().transition_id("Acquire").unwrap();
        let moved = std::sync::atomic::AtomicUsize::new(0);
        std::thread::scope(|scope| {
            for t in 0..8u16 {
                let store = &store;
                let moved = &moved;
                scope.spawn(move || {
                    for _ in 0..100 {
                        if store.apply(t, &1, id).outcome.applied() {
                            moved.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                });
            }
        });
        assert_eq!(moved.load(Ordering::Relaxed), 1, "one winner exactly");
        assert_eq!(store.len(), 1);
    }

    #[test]
    fn discharged_transition_is_not_applicable_everywhere() {
        let use_after = TransitionId(2); // UseAfterRelease
        let compiled = Arc::new(CompiledMachine::compile_discharged(machine(), &[use_after]));
        assert!(compiled.is_elided(use_after));
        assert_eq!(compiled.elided_transitions(), vec!["UseAfterRelease"]);
        let store: AtomicStore<u32> = AtomicStore::with_compiled(compiled);
        store.apply_named(0, &1, "Acquire");
        store.apply_named(0, &1, "Release");
        let out = store.apply_named(0, &1, "UseAfterRelease");
        assert!(
            !out.outcome.applied(),
            "elided transition must be NotApplicable, got {out:?}"
        );
    }
}
