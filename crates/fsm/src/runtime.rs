//! Runtime state tracking: attaching machine instances to entities and
//! applying transitions.

use std::collections::HashMap;
use std::fmt;
use std::hash::Hash;
use std::sync::Arc;

use jinn_obs::{FsmOutcome, LabelId, Recorder};

use crate::machine::{MachineSpec, StateId, TransitionId};

/// Current state of one machine instance attached to one entity.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EntityState {
    state: StateId,
}

impl EntityState {
    /// An entity sitting in `state` (shared with the compiled engine so
    /// both encodings hand back the same eviction record).
    pub(crate) fn of(state: StateId) -> EntityState {
        EntityState { state }
    }

    /// The current state.
    pub fn state(self) -> StateId {
        self.state
    }
}

/// Result of applying a transition to an entity.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TransitionOutcome {
    /// The transition applied and the destination is a non-error state.
    Moved {
        /// State before the transition.
        from: StateId,
        /// State after the transition.
        to: StateId,
    },
    /// The transition applied and the destination is an error state: a
    /// bug. The record is behind an `Arc` so the outcome stays two words
    /// and an error hit in the compiled engine is a pointer clone, not
    /// four string allocations.
    Error(Arc<ErrorEntered>),
    /// The transition's source state did not match the entity's current
    /// state; nothing changed. (Transition checks in the paper's wrappers
    /// are conditional: `if e satisfies the transition check …`.)
    NotApplicable {
        /// The entity's current state, which differs from the transition's
        /// source.
        current: StateId,
    },
}

impl TransitionOutcome {
    /// Returns the error record if the outcome entered an error state.
    pub fn error(&self) -> Option<&ErrorEntered> {
        match self {
            TransitionOutcome::Error(e) => Some(e.as_ref()),
            _ => None,
        }
    }

    /// Returns `true` if the transition actually moved the entity.
    pub fn applied(&self) -> bool {
        !matches!(self, TransitionOutcome::NotApplicable { .. })
    }
}

/// Record of an entity entering an error state: a detected FFI bug.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ErrorEntered {
    /// Machine name.
    pub machine: String,
    /// Transition that moved the entity into the error state.
    pub transition: String,
    /// The error state's name.
    pub state: String,
    /// The diagnosis template from the state spec.
    pub diagnosis: String,
}

impl fmt::Display for ErrorEntered {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: entered `{}` via `{}`: {}",
            self.machine, self.state, self.transition, self.diagnosis
        )
    }
}

/// Checker misuse: a transition name that does not exist in the store's
/// machine. Returned by [`StateStore::try_apply_named`] so the caller
/// can convert the misuse into a `checker-internal` report instead of
/// crashing the checked process.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UnknownTransition {
    /// The machine that was asked.
    pub machine: String,
    /// The unknown transition name.
    pub name: String,
}

impl fmt::Display for UnknownTransition {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "no transition `{}` in machine `{}`",
            self.name, self.machine
        )
    }
}

impl std::error::Error for UnknownTransition {}

/// A store mapping entities (of key type `K`) to their machine state.
///
/// This is the "state machine encoding" of the paper, in its most generic
/// form: a map from entity to current state. Concrete checkers use richer
/// encodings (frame stacks, tallies) built from the same machine specs;
/// `StateStore` is the reference encoding used by tests, the generic
/// runtime, and the Python/C checker.
#[derive(Debug, Clone)]
pub struct StateStore<K> {
    machine: MachineSpec,
    states: HashMap<K, EntityState>,
    recorder: Recorder,
    /// Interned machine/transition label ids, built when the recorder is
    /// attached, so an enabled recorder records a `u32` per event instead
    /// of allocating or cloning a label.
    machine_label: LabelId,
    transition_labels: Box<[LabelId]>,
    /// Per-entity label ids, interned on each entity's first recorded
    /// event.
    entity_labels: HashMap<K, LabelId>,
}

impl<K: Eq + Hash + Clone + fmt::Debug> StateStore<K> {
    /// Creates an empty store for instances of `machine`.
    pub fn new(machine: MachineSpec) -> Self {
        StateStore {
            machine_label: LabelId(0),
            transition_labels: Box::new([]),
            entity_labels: HashMap::new(),
            machine,
            states: HashMap::new(),
            recorder: Recorder::disabled(),
        }
    }

    /// Attaches an observability recorder: every [`StateStore::apply`]
    /// from then on emits an `FsmTransition` trace event (including
    /// `NotApplicable` non-matches) and feeds the per-machine metrics.
    /// Machine and transition names are interned here, once, so the
    /// per-event path carries only dense ids.
    pub fn set_recorder(&mut self, recorder: Recorder) {
        self.machine_label = recorder.intern(self.machine.name());
        self.transition_labels = self
            .machine
            .transitions()
            .iter()
            .map(|t| recorder.intern(t.name()))
            .collect();
        self.entity_labels.clear();
        self.recorder = recorder;
    }

    /// The interned label for `entity`, computed on first recorded use
    /// (the label text is the entity's `Debug` rendering, matching
    /// [`EntityTag::of_debug`](jinn_obs::EntityTag::of_debug)).
    fn entity_label(&mut self, entity: &K) -> LabelId {
        if let Some(&label) = self.entity_labels.get(entity) {
            return label;
        }
        let label = self.recorder.intern(&format!("{entity:?}"));
        self.entity_labels.insert(entity.clone(), label);
        label
    }

    /// The machine this store tracks.
    pub fn machine(&self) -> &MachineSpec {
        &self.machine
    }

    /// Number of tracked entities.
    pub fn len(&self) -> usize {
        self.states.len()
    }

    /// Returns `true` if no entities are tracked.
    pub fn is_empty(&self) -> bool {
        self.states.is_empty()
    }

    /// Current state of `entity`, or the initial state if never seen.
    pub fn state_of(&self, entity: &K) -> StateId {
        self.states
            .get(entity)
            .map(|e| e.state)
            .unwrap_or_else(|| self.machine.initial())
    }

    /// Returns `true` if the entity has been attached (transitioned at
    /// least once).
    pub fn contains(&self, entity: &K) -> bool {
        self.states.contains_key(entity)
    }

    /// Applies the named transition to `entity` if its current state
    /// matches the transition's source; returns what happened.
    ///
    /// # Panics
    ///
    /// Panics if `transition` does not belong to the store's machine.
    pub fn apply(&mut self, entity: &K, transition: TransitionId) -> TransitionOutcome {
        let t = self.machine.transition(transition);
        // One probe on the steady-state path: an already-tracked entity
        // is read and updated through the same `get_mut` slot, and the
        // key is only cloned (and re-probed for insertion) on first
        // touch.
        let slot = self.states.get_mut(entity);
        let current = slot
            .as_ref()
            .map(|e| e.state)
            .unwrap_or_else(|| self.machine.initial());
        let outcome = if current != t.from() {
            TransitionOutcome::NotApplicable { current }
        } else {
            let to = t.to();
            match slot {
                Some(e) => e.state = to,
                None => {
                    self.states
                        .insert(entity.clone(), EntityState { state: to });
                }
            }
            let dest = self.machine.state(to);
            if let Some(diag) = dest.diagnosis() {
                TransitionOutcome::Error(Arc::new(ErrorEntered {
                    machine: self.machine.name().to_string(),
                    transition: t.name().to_string(),
                    state: dest.name().to_string(),
                    diagnosis: diag.to_string(),
                }))
            } else {
                TransitionOutcome::Moved { from: current, to }
            }
        };
        if self.recorder.is_enabled() {
            let obs_outcome = match &outcome {
                TransitionOutcome::Moved { .. } => FsmOutcome::Moved,
                TransitionOutcome::Error(_) => FsmOutcome::Error,
                TransitionOutcome::NotApplicable { .. } => FsmOutcome::NotApplicable,
            };
            let entity_label = self.entity_label(entity);
            self.recorder.fsm_transition_id(
                jinn_obs::event::NO_THREAD,
                self.machine_label,
                self.transition_labels[transition.index()],
                obs_outcome,
                Some(entity_label),
            );
        }
        outcome
    }

    /// Applies the transition named `name`; see [`StateStore::apply`].
    ///
    /// An unknown transition name is checker misuse, not a program bug:
    /// it resolves to [`TransitionOutcome::NotApplicable`] (the entity is
    /// untouched) and is recorded as a `checker-internal` transition so
    /// the misuse is visible in traces instead of crashing the process.
    /// Callers that want to surface the misuse as a report should use
    /// [`StateStore::try_apply_named`] and route the error through the
    /// interposition layer's `guard_hook`/checker-internal seam.
    pub fn apply_named(&mut self, entity: &K, name: &str) -> TransitionOutcome {
        match self.try_apply_named(entity, name) {
            Ok(outcome) => outcome,
            Err(_) => {
                if self.recorder.is_enabled() {
                    // Cold checker-misuse path: interning per miss is
                    // fine (repeat misses hit the intern cache).
                    let machine = self.recorder.intern("checker-internal");
                    let transition = self.recorder.intern(name);
                    let entity_label = self.entity_label(entity);
                    self.recorder.fsm_transition_id(
                        jinn_obs::event::NO_THREAD,
                        machine,
                        transition,
                        FsmOutcome::NotApplicable,
                        Some(entity_label),
                    );
                }
                TransitionOutcome::NotApplicable {
                    current: self.state_of(entity),
                }
            }
        }
    }

    /// Applies the transition named `name`, reporting an unknown name as
    /// an [`UnknownTransition`] error instead of panicking or silently
    /// ignoring it.
    ///
    /// # Errors
    ///
    /// Returns [`UnknownTransition`] when the machine has no transition
    /// of that name; the entity's state is untouched.
    pub fn try_apply_named(
        &mut self,
        entity: &K,
        name: &str,
    ) -> Result<TransitionOutcome, UnknownTransition> {
        let id = self
            .machine
            .transition_id(name)
            .ok_or_else(|| UnknownTransition {
                machine: self.machine.name().to_string(),
                name: name.to_string(),
            })?;
        Ok(self.apply(entity, id))
    }

    /// Removes an entity from the store (e.g. after its resource dies).
    pub fn evict(&mut self, entity: &K) -> Option<EntityState> {
        self.states.remove(entity)
    }

    /// Entities currently in the given state, sorted by entity key.
    ///
    /// The underlying map iterates in randomized order per process run;
    /// sorting keeps leak-sweep report order (and therefore verdict
    /// sequences) stable across runs.
    pub fn entities_in(&self, state: StateId) -> Vec<K>
    where
        K: Ord,
    {
        let mut out: Vec<K> = self
            .states
            .iter()
            .filter(|(_, v)| v.state == state)
            .map(|(k, _)| k.clone())
            .collect();
        out.sort_unstable();
        out
    }

    /// Entities whose current state is *not* the given state, sorted by
    /// entity key; used for program-termination leak sweeps ("Jinn
    /// reports a leak for any resource that has not been released at
    /// program termination"). Sorted for run-to-run determinism.
    pub fn entities_not_in(&self, state: StateId) -> Vec<K>
    where
        K: Ord,
    {
        let mut out: Vec<K> = self
            .states
            .iter()
            .filter(|(_, v)| v.state != state)
            .map(|(k, _)| k.clone())
            .collect();
        out.sort_unstable();
        out
    }

    /// Clears all tracked entities.
    pub fn clear(&mut self) {
        self.states.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::{ConstraintClass, Direction, EntityKind};

    fn machine() -> MachineSpec {
        MachineSpec::builder("local-ref", ConstraintClass::Resource)
            .entity(EntityKind::Reference)
            .state("BeforeAcquire")
            .state("Acquired")
            .state("Released")
            .error_state("Dangling", "use of dangling reference in {function}")
            .transition("Acquire", "BeforeAcquire", "Acquired", |t| {
                t.on(Direction::CallJavaToC, "native method taking reference")
            })
            .transition("Release", "Acquired", "Released", |t| {
                t.on(Direction::ReturnCToJava, "any native method")
            })
            .transition("UseAfterRelease", "Released", "Dangling", |t| {
                t.on(Direction::CallCToJava, "JNI function taking reference")
            })
            .build()
            .unwrap()
    }

    #[test]
    fn lifecycle_detects_dangling_use() {
        let mut store: StateStore<u32> = StateStore::new(machine());
        let r = 7;
        assert_eq!(store.state_of(&r), StateId(0));
        assert!(store.apply_named(&r, "Acquire").applied());
        assert!(store.apply_named(&r, "Release").applied());
        let out = store.apply_named(&r, "UseAfterRelease");
        let err = out.error().expect("should be an error");
        assert_eq!(err.machine, "local-ref");
        assert_eq!(err.state, "Dangling");
        assert!(err.diagnosis.contains("dangling"));
    }

    #[test]
    fn not_applicable_leaves_state_unchanged() {
        let mut store: StateStore<u32> = StateStore::new(machine());
        let r = 1;
        // Release before Acquire: source state doesn't match.
        let out = store.apply_named(&r, "Release");
        assert!(!out.applied());
        assert_eq!(store.state_of(&r), StateId(0));
    }

    #[test]
    fn use_in_acquired_state_is_fine() {
        let mut store: StateStore<u32> = StateStore::new(machine());
        let r = 1;
        store.apply_named(&r, "Acquire");
        // A "use" trigger in Acquired doesn't match UseAfterRelease's source.
        let out = store.apply_named(&r, "UseAfterRelease");
        assert!(!out.applied());
        assert_eq!(store.state_of(&r), StateId(1));
    }

    #[test]
    fn leak_sweep_finds_unreleased() {
        let mut store: StateStore<u32> = StateStore::new(machine());
        store.apply_named(&1, "Acquire");
        store.apply_named(&2, "Acquire");
        store.apply_named(&2, "Release");
        let released = store.machine().state_id("Released").unwrap();
        let leaked = store.entities_not_in(released);
        assert_eq!(leaked, vec![1]);
    }

    #[test]
    fn unknown_transition_is_reported_not_a_panic() {
        let mut store: StateStore<u32> = StateStore::new(machine());
        store.apply_named(&1, "Acquire");
        let err = store.try_apply_named(&1, "NoSuchTransition").unwrap_err();
        assert_eq!(err.machine, "local-ref");
        assert_eq!(err.name, "NoSuchTransition");
        assert!(err.to_string().contains("NoSuchTransition"));
        // The infallible entry point degrades to NotApplicable.
        let out = store.apply_named(&1, "NoSuchTransition");
        assert!(!out.applied());
        assert_eq!(store.state_of(&1), StateId(1), "state untouched");
    }

    #[test]
    fn leak_sweep_order_is_sorted() {
        let mut store: StateStore<u32> = StateStore::new(machine());
        // Insert in shuffled order; the sweep must come back sorted no
        // matter the map's iteration order.
        for k in [9u32, 3, 7, 1, 5] {
            store.apply_named(&k, "Acquire");
        }
        let released = store.machine().state_id("Released").unwrap();
        assert_eq!(store.entities_not_in(released), vec![1, 3, 5, 7, 9]);
        let acquired = store.machine().state_id("Acquired").unwrap();
        assert_eq!(store.entities_in(acquired), vec![1, 3, 5, 7, 9]);
    }

    #[test]
    fn evict_and_clear() {
        let mut store: StateStore<u32> = StateStore::new(machine());
        store.apply_named(&1, "Acquire");
        assert!(store.contains(&1));
        assert!(store.evict(&1).is_some());
        assert!(!store.contains(&1));
        store.apply_named(&2, "Acquire");
        store.clear();
        assert!(store.is_empty());
    }
}
