//! Rendering machine specifications as diagrams and tables, in the style
//! of the paper's Figures 2, 6, 7 and 8.

use std::fmt::Write as _;

use crate::machine::MachineSpec;

/// Renders the machine as a Graphviz `dot` digraph.
///
/// Error states are drawn as double octagons, the initial state with a bold
/// border, and every edge is labelled with the transition name.
pub fn dot(machine: &MachineSpec) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "digraph \"{}\" {{", machine.name());
    let _ = writeln!(out, "  rankdir=LR;");
    for (i, s) in machine.states().iter().enumerate() {
        let shape = if s.is_error() {
            "doubleoctagon"
        } else {
            "ellipse"
        };
        let style = if i == 0 { ", style=bold" } else { "" };
        let _ = writeln!(out, "  \"{}\" [shape={shape}{style}];", s.name());
    }
    for t in machine.transitions() {
        let from = machine.state(t.from()).name();
        let to = machine.state(t.to()).name();
        let _ = writeln!(out, "  \"{from}\" -> \"{to}\" [label=\"{}\"];", t.name());
    }
    out.push_str("}\n");
    out
}

/// Renders the `languageTransitionsFor` mapping as an ASCII table,
/// mirroring the "State transition / Language transition / Triggering
/// functions" tables of Figures 2, 6, 7 and 8.
pub fn ascii_table(machine: &MachineSpec) -> String {
    let mut rows: Vec<[String; 3]> = Vec::new();
    for t in machine.transitions() {
        for trig in t.triggers() {
            rows.push([
                t.name().to_string(),
                trig.direction().to_string(),
                trig.selector().to_string(),
            ]);
        }
    }
    let headers = [
        "State transition",
        "Language transition",
        "Triggering functions",
    ];
    let mut widths = [headers[0].len(), headers[1].len(), headers[2].len()];
    for row in &rows {
        for (w, cell) in widths.iter_mut().zip(row.iter()) {
            *w = (*w).max(cell.len());
        }
    }
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{} ({} machine over {})",
        machine.name(),
        machine.class(),
        machine.entity()
    );
    let mut line = String::new();
    for (h, w) in headers.iter().zip(widths.iter()) {
        let _ = write!(line, "| {h:w$} ");
    }
    line.push('|');
    let sep: String = line
        .chars()
        .map(|c| if c == '|' { '+' } else { '-' })
        .collect();
    let _ = writeln!(out, "{sep}");
    let _ = writeln!(out, "{line}");
    let _ = writeln!(out, "{sep}");
    for row in &rows {
        let mut line = String::new();
        for (cell, w) in row.iter().zip(widths.iter()) {
            let _ = write!(line, "| {cell:w$} ");
        }
        line.push('|');
        let _ = writeln!(out, "{line}");
    }
    let _ = writeln!(out, "{sep}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::{ConstraintClass, Direction, EntityKind, MachineSpec};

    fn machine() -> MachineSpec {
        MachineSpec::builder("demo", ConstraintClass::Resource)
            .entity(EntityKind::Reference)
            .state("A")
            .error_state("E", "boom")
            .transition("fail", "A", "E", |t| t.on(Direction::CallCToJava, "AnyFn"))
            .build()
            .unwrap()
    }

    #[test]
    fn dot_contains_states_and_edges() {
        let d = dot(&machine());
        assert!(d.contains("digraph \"demo\""));
        assert!(d.contains("doubleoctagon"));
        assert!(d.contains("\"A\" -> \"E\""));
        assert!(d.contains("label=\"fail\""));
    }

    #[test]
    fn ascii_table_lists_triggers() {
        let t = ascii_table(&machine());
        assert!(t.contains("State transition"));
        assert!(t.contains("Call:C->Java"));
        assert!(t.contains("AnyFn"));
    }
}
