//! A reusable pool of per-machine engines for fleet-scale re-judging.
//!
//! The serving daemon (`jinn-serve`) rolls every ingested session's
//! transition stream through one engine per state machine. Building
//! those engines per session is pure waste — the machine specifications
//! never change, only the entity maps do — so the pool keeps finished
//! engine sets, clears them, and hands them to the next session.
//! [`Engine::clear`] is what makes this sound: a cleared engine is
//! observationally identical to a freshly built one (the equivalence
//! proptests in this crate cover both encodings).
//!
//! The pool is sharded-agnostic and encoding-agnostic: anything
//! implementing [`Engine`] can be pooled, and
//! [`EnginePool::with_builder`] lets a caller construct the engines
//! itself — the serving daemon uses that to build *specialized* pools
//! whose engines share pre-compiled discharged transition tables
//! (`CompiledMachine::compile_discharged`) instead of recompiling per
//! set.
//!
//! ## Idle high-water
//!
//! Parked sets are capped. By default the cap adapts to observed
//! concurrency: a lease dropped while `n` leases are still out parks
//! only if fewer than `n + 1` sets are already idle, so a one-time
//! burst of N concurrent sessions does not leave N engine sets parked
//! forever — the surplus is freed as the burst subsides. A fixed cap
//! can be set with [`EnginePool::set_max_idle`]. Dropped-instead-of-
//! parked sets are counted in [`PoolStats::dropped`].

use std::marker::PhantomData;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};

use crate::engine::Engine;
use crate::machine::MachineSpec;

type BuildFn<E> = Box<dyn Fn(usize, &MachineSpec) -> E + Send + Sync>;

/// A pool of engine *sets*: each lease is one engine per machine, in
/// the machine order the pool was built with.
pub struct EnginePool<K, E: Engine<K>> {
    specs: Vec<MachineSpec>,
    build: BuildFn<E>,
    idle: Mutex<Vec<Vec<E>>>,
    built: AtomicU64,
    leased: AtomicU64,
    in_flight: AtomicU64,
    /// Most leases ever out at once. A streaming daemon holds one lease
    /// per live session from `Open` to `Seal`, so this is its session
    /// concurrency high-water — capacity planning reads it off
    /// [`PoolStats::lease_high_water`].
    high_water: AtomicU64,
    dropped: AtomicU64,
    /// Fixed idle cap; 0 means adaptive (observed concurrency + 1).
    max_idle: AtomicUsize,
    _key: PhantomData<fn(K)>,
}

/// Point-in-time pool counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PoolStats {
    /// Machines per engine set.
    pub machines: usize,
    /// Engine sets currently parked in the pool.
    pub idle: usize,
    /// Engine sets ever constructed (cache misses).
    pub built: u64,
    /// Leases ever handed out (hits = `leases - built`).
    pub leases: u64,
    /// Most leases simultaneously out over the pool's lifetime.
    pub lease_high_water: u64,
    /// Engine sets freed at the idle high-water instead of parked.
    pub dropped: u64,
}

impl<K, E: Engine<K>> EnginePool<K, E> {
    /// A pool whose leases carry one engine per spec, in `specs` order,
    /// each built with [`Engine::for_machine`].
    pub fn new(specs: Vec<MachineSpec>) -> Arc<EnginePool<K, E>> {
        Self::with_builder(specs, |_, spec| E::for_machine(spec.clone()))
    }

    /// A pool whose engines are constructed by `build` (called with the
    /// machine's index and spec on every cache miss). This is how a
    /// specialized pool shares one pre-compiled discharged table across
    /// every set it builds, instead of recompiling per lease.
    pub fn with_builder(
        specs: Vec<MachineSpec>,
        build: impl Fn(usize, &MachineSpec) -> E + Send + Sync + 'static,
    ) -> Arc<EnginePool<K, E>> {
        Arc::new(EnginePool {
            specs,
            build: Box::new(build),
            idle: Mutex::new(Vec::new()),
            built: AtomicU64::new(0),
            leased: AtomicU64::new(0),
            in_flight: AtomicU64::new(0),
            high_water: AtomicU64::new(0),
            dropped: AtomicU64::new(0),
            max_idle: AtomicUsize::new(0),
            _key: PhantomData,
        })
    }

    /// Fixes the idle high-water at `cap` parked sets (instead of the
    /// adaptive observed-concurrency default). `0` restores adaptive.
    pub fn set_max_idle(&self, cap: usize) {
        self.max_idle.store(cap, Ordering::Relaxed);
    }

    /// The machine specifications each lease tracks.
    pub fn specs(&self) -> &[MachineSpec] {
        &self.specs
    }

    /// Takes an engine set — a parked one when available, else freshly
    /// built. Dropping the lease clears the engines and parks them
    /// (or frees them, past the idle high-water).
    pub fn lease(self: &Arc<Self>) -> EngineLease<K, E> {
        self.leased.fetch_add(1, Ordering::Relaxed);
        let now_out = self.in_flight.fetch_add(1, Ordering::Relaxed) + 1;
        self.high_water.fetch_max(now_out, Ordering::Relaxed);
        let parked = lock(&self.idle).pop();
        let engines = parked.unwrap_or_else(|| {
            self.built.fetch_add(1, Ordering::Relaxed);
            self.specs
                .iter()
                .enumerate()
                .map(|(i, s)| (self.build)(i, s))
                .collect()
        });
        EngineLease {
            engines,
            pool: Arc::clone(self),
        }
    }

    /// Current counters.
    pub fn stats(&self) -> PoolStats {
        PoolStats {
            machines: self.specs.len(),
            idle: lock(&self.idle).len(),
            built: self.built.load(Ordering::Relaxed),
            leases: self.leased.load(Ordering::Relaxed),
            lease_high_water: self.high_water.load(Ordering::Relaxed),
            dropped: self.dropped.load(Ordering::Relaxed),
        }
    }
}

/// One leased engine set. Derefs to `[E]` in spec order; cleared and
/// returned to the pool on drop.
pub struct EngineLease<K, E: Engine<K>> {
    engines: Vec<E>,
    pool: Arc<EnginePool<K, E>>,
}

impl<K, E: Engine<K>> EngineLease<K, E> {
    /// The engine tracking `machine`, if the pool was built with it.
    pub fn by_machine(&mut self, machine: &str) -> Option<&mut E> {
        self.engines.iter_mut().find(|e| e.spec().name() == machine)
    }
}

impl<K, E: Engine<K>> std::ops::Deref for EngineLease<K, E> {
    type Target = [E];

    fn deref(&self) -> &[E] {
        &self.engines
    }
}

impl<K, E: Engine<K>> std::ops::DerefMut for EngineLease<K, E> {
    fn deref_mut(&mut self) -> &mut [E] {
        &mut self.engines
    }
}

impl<K, E: Engine<K>> Drop for EngineLease<K, E> {
    fn drop(&mut self) {
        for e in &mut self.engines {
            e.clear();
        }
        let engines = std::mem::take(&mut self.engines);
        // `fetch_sub` returns the pre-decrement value, so `still_out`
        // is the number of leases other holders still have.
        let still_out = self.pool.in_flight.fetch_sub(1, Ordering::Relaxed) - 1;
        let cap = match self.pool.max_idle.load(Ordering::Relaxed) {
            0 => (still_out as usize).saturating_add(1),
            fixed => fixed,
        };
        let mut idle = lock(&self.pool.idle);
        if idle.len() < cap {
            idle.push(engines);
        } else {
            drop(idle);
            self.pool.dropped.fetch_add(1, Ordering::Relaxed);
        }
    }
}

/// Poison-recovering lock: a panic on another thread (e.g. a worker
/// that died mid-judge) must not cascade into every future lease. The
/// idle list is a `Vec` of fully-owned engine sets, so the inner guard
/// is always structurally sound.
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// The daemon's pool: compiled dense-table engines.
pub type CompactEnginePool<K> = EnginePool<K, crate::compiled::CompactStore<K>>;

/// A pool of lock-free [`AtomicStore`](crate::AtomicStore) engines —
/// same compiled dispatch tables as [`CompactEnginePool`], shareable
/// across worker threads without per-shard mutexes.
pub type AtomicEnginePool<K> = EnginePool<K, crate::atomic::AtomicStore<K>>;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::{ConstraintClass, Direction, EntityKind};
    use crate::runtime::TransitionOutcome;

    fn toy_machine(name: &'static str) -> MachineSpec {
        MachineSpec::builder(name, ConstraintClass::Resource)
            .entity(EntityKind::Reference)
            .state("Idle")
            .state("Held")
            .error_state("Error:Twice", "double acquire in {function}")
            .transition("Acquire", "Idle", "Held", |t| {
                t.on(Direction::CallCToJava, "acquire")
            })
            .transition("AcquireAgain", "Held", "Error:Twice", |t| {
                t.on(Direction::CallCToJava, "reacquire")
            })
            .build()
            .expect("toy machine")
    }

    #[test]
    fn leases_reuse_cleared_engines() {
        let pool: Arc<CompactEnginePool<u64>> =
            EnginePool::new(vec![toy_machine("a"), toy_machine("b")]);
        {
            let mut lease = pool.lease();
            assert_eq!(lease.len(), 2);
            let a = lease.by_machine("a").expect("machine a");
            assert!(matches!(
                a.apply_named(&7, "Acquire"),
                TransitionOutcome::Moved { .. }
            ));
            assert_eq!(Engine::<u64>::len(a), 1);
        }
        // Second lease gets the same (cleared) set back: no new build.
        let mut lease = pool.lease();
        let a = lease.by_machine("a").expect("machine a");
        assert_eq!(Engine::<u64>::len(a), 0, "engines return cleared");
        drop(lease);
        let stats = pool.stats();
        assert_eq!(stats.built, 1);
        assert_eq!(stats.leases, 2);
        assert_eq!(stats.idle, 1);
        assert_eq!(stats.machines, 2);
    }

    #[test]
    fn concurrent_leases_build_independent_sets() {
        let pool: Arc<CompactEnginePool<u64>> = EnginePool::new(vec![toy_machine("a")]);
        let l1 = pool.lease();
        let l2 = pool.lease();
        assert_eq!(pool.stats().built, 2);
        drop(l1); // one lease still out: parks (idle 0 < cap 2)
        drop(l2); // nothing out: cap is 1, idle already 1 — freed
        let stats = pool.stats();
        assert_eq!(stats.idle, 1, "idle adapts down to current demand");
        assert_eq!(stats.dropped, 1);
        let _l3 = pool.lease();
        assert_eq!(pool.stats().built, 2, "third lease is a pool hit");
    }

    #[test]
    fn idle_high_water_sheds_a_burst() {
        // Satellite regression: a burst of 8 concurrent leases must not
        // park 8 engine sets forever once the burst subsides.
        let pool: Arc<CompactEnginePool<u64>> = EnginePool::new(vec![toy_machine("a")]);
        let leases: Vec<_> = (0..8).map(|_| pool.lease()).collect();
        assert_eq!(pool.stats().built, 8);
        // Drop sequentially: the adaptive cap (in-flight + 1) parks
        // while demand is still high and frees once it is not.
        for lease in leases {
            drop(lease);
        }
        let stats = pool.stats();
        assert_eq!(stats.idle, 4, "half the burst parks, half is freed");
        assert_eq!(stats.dropped, 4);
        // Reuse still works: no rebuild while sets are parked.
        drop(pool.lease());
        assert_eq!(pool.stats().built, 8);
    }

    #[test]
    fn lease_high_water_tracks_peak_concurrency() {
        let pool: Arc<CompactEnginePool<u64>> = EnginePool::new(vec![toy_machine("a")]);
        assert_eq!(pool.stats().lease_high_water, 0);
        let l1 = pool.lease();
        let l2 = pool.lease();
        let l3 = pool.lease();
        assert_eq!(pool.stats().lease_high_water, 3);
        drop(l1);
        drop(l2);
        drop(l3);
        // High water is a lifetime maximum, not a gauge.
        drop(pool.lease());
        assert_eq!(pool.stats().lease_high_water, 3);
    }

    #[test]
    fn fixed_max_idle_overrides_the_adaptive_cap() {
        let pool: Arc<CompactEnginePool<u64>> = EnginePool::new(vec![toy_machine("a")]);
        pool.set_max_idle(2);
        let leases: Vec<_> = (0..8).map(|_| pool.lease()).collect();
        for lease in leases {
            drop(lease);
        }
        let stats = pool.stats();
        assert_eq!(stats.idle, 2);
        assert_eq!(stats.dropped, 6);
    }

    #[test]
    fn single_lease_cycle_always_reuses() {
        // The adaptive cap must keep at least one parked set when the
        // pool is quiet, or sequential sessions would rebuild per lease.
        let pool: Arc<CompactEnginePool<u64>> = EnginePool::new(vec![toy_machine("a")]);
        for i in 0..10u64 {
            let mut lease = pool.lease();
            let e = lease.by_machine("a").unwrap();
            assert!(matches!(
                e.apply_named(&i, "Acquire"),
                TransitionOutcome::Moved { .. }
            ));
        }
        let stats = pool.stats();
        assert_eq!(stats.built, 1, "sequential leases reuse one set");
        assert_eq!(stats.idle, 1);
        assert_eq!(stats.dropped, 0);
    }

    #[test]
    fn custom_builder_constructs_the_engines() {
        let pool: Arc<CompactEnginePool<u64>> =
            EnginePool::with_builder(vec![toy_machine("a"), toy_machine("b")], |_, spec| {
                crate::compiled::CompactStore::for_machine(spec.clone())
            });
        let mut lease = pool.lease();
        assert_eq!(lease.len(), 2);
        assert!(lease.by_machine("b").is_some());
        assert_eq!(pool.stats().built, 1);
    }

    #[test]
    fn pool_is_shareable_across_threads() {
        let pool: Arc<CompactEnginePool<u64>> = EnginePool::new(vec![toy_machine("a")]);
        let mut handles = Vec::new();
        for t in 0..4u64 {
            let pool = Arc::clone(&pool);
            handles.push(std::thread::spawn(move || {
                for i in 0..50 {
                    let mut lease = pool.lease();
                    let e = lease.by_machine("a").unwrap();
                    assert!(matches!(
                        e.apply_named(&(t * 1000 + i), "Acquire"),
                        TransitionOutcome::Moved { .. }
                    ));
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let stats = pool.stats();
        assert_eq!(stats.leases, 200);
        // Sets in existence never exceed peak concurrency; every build
        // past that replaces a set freed at the idle high-water.
        assert!(
            stats.built <= 4 + stats.dropped,
            "unexpected build churn: {stats:?}"
        );
    }
}
