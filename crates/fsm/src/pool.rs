//! A reusable pool of per-machine engines for fleet-scale re-judging.
//!
//! The serving daemon (`jinn-serve`) rolls every ingested session's
//! transition stream through one engine per state machine. Building
//! those engines per session is pure waste — the machine specifications
//! never change, only the entity maps do — so the pool keeps finished
//! engine sets, clears them, and hands them to the next session.
//! [`Engine::clear`] is what makes this sound: a cleared engine is
//! observationally identical to a freshly built one (the equivalence
//! proptests in this crate cover both encodings).
//!
//! The pool is sharded-agnostic and encoding-agnostic: anything
//! implementing [`Engine`] can be pooled. The daemon uses
//! [`CompactEnginePool`], the compiled dense-table encoding, because the
//! ingest hot loop is exactly the dispatch microbench's shape.

use std::marker::PhantomData;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};

use crate::engine::Engine;
use crate::machine::MachineSpec;

/// A pool of engine *sets*: each lease is one engine per machine, in
/// the machine order the pool was built with.
pub struct EnginePool<K, E: Engine<K>> {
    specs: Vec<MachineSpec>,
    idle: Mutex<Vec<Vec<E>>>,
    built: AtomicU64,
    leased: AtomicU64,
    _key: PhantomData<fn(K)>,
}

/// Point-in-time pool counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PoolStats {
    /// Machines per engine set.
    pub machines: usize,
    /// Engine sets currently parked in the pool.
    pub idle: usize,
    /// Engine sets ever constructed (cache misses).
    pub built: u64,
    /// Leases ever handed out (hits = `leases - built`).
    pub leases: u64,
}

impl<K, E: Engine<K>> EnginePool<K, E> {
    /// A pool whose leases carry one engine per spec, in `specs` order.
    pub fn new(specs: Vec<MachineSpec>) -> Arc<EnginePool<K, E>> {
        Arc::new(EnginePool {
            specs,
            idle: Mutex::new(Vec::new()),
            built: AtomicU64::new(0),
            leased: AtomicU64::new(0),
            _key: PhantomData,
        })
    }

    /// The machine specifications each lease tracks.
    pub fn specs(&self) -> &[MachineSpec] {
        &self.specs
    }

    /// Takes an engine set — a parked one when available, else freshly
    /// built. Dropping the lease clears the engines and parks them.
    pub fn lease(self: &Arc<Self>) -> EngineLease<K, E> {
        self.leased.fetch_add(1, Ordering::Relaxed);
        let parked = lock(&self.idle).pop();
        let engines = parked.unwrap_or_else(|| {
            self.built.fetch_add(1, Ordering::Relaxed);
            self.specs
                .iter()
                .map(|s| E::for_machine(s.clone()))
                .collect()
        });
        EngineLease {
            engines,
            pool: Arc::clone(self),
        }
    }

    /// Current counters.
    pub fn stats(&self) -> PoolStats {
        PoolStats {
            machines: self.specs.len(),
            idle: lock(&self.idle).len(),
            built: self.built.load(Ordering::Relaxed),
            leases: self.leased.load(Ordering::Relaxed),
        }
    }
}

/// One leased engine set. Derefs to `[E]` in spec order; cleared and
/// returned to the pool on drop.
pub struct EngineLease<K, E: Engine<K>> {
    engines: Vec<E>,
    pool: Arc<EnginePool<K, E>>,
}

impl<K, E: Engine<K>> EngineLease<K, E> {
    /// The engine tracking `machine`, if the pool was built with it.
    pub fn by_machine(&mut self, machine: &str) -> Option<&mut E> {
        self.engines.iter_mut().find(|e| e.spec().name() == machine)
    }
}

impl<K, E: Engine<K>> std::ops::Deref for EngineLease<K, E> {
    type Target = [E];

    fn deref(&self) -> &[E] {
        &self.engines
    }
}

impl<K, E: Engine<K>> std::ops::DerefMut for EngineLease<K, E> {
    fn deref_mut(&mut self) -> &mut [E] {
        &mut self.engines
    }
}

impl<K, E: Engine<K>> Drop for EngineLease<K, E> {
    fn drop(&mut self) {
        for e in &mut self.engines {
            e.clear();
        }
        let engines = std::mem::take(&mut self.engines);
        lock(&self.pool.idle).push(engines);
    }
}

/// Poison-recovering lock: a panic on another thread (e.g. a worker
/// that died mid-judge) must not cascade into every future lease. The
/// idle list is a `Vec` of fully-owned engine sets, so the inner guard
/// is always structurally sound.
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// The daemon's pool: compiled dense-table engines.
pub type CompactEnginePool<K> = EnginePool<K, crate::compiled::CompactStore<K>>;

/// A pool of lock-free [`AtomicStore`](crate::AtomicStore) engines —
/// same compiled dispatch tables as [`CompactEnginePool`], shareable
/// across worker threads without per-shard mutexes.
pub type AtomicEnginePool<K> = EnginePool<K, crate::atomic::AtomicStore<K>>;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::{ConstraintClass, Direction, EntityKind};
    use crate::runtime::TransitionOutcome;

    fn toy_machine(name: &'static str) -> MachineSpec {
        MachineSpec::builder(name, ConstraintClass::Resource)
            .entity(EntityKind::Reference)
            .state("Idle")
            .state("Held")
            .error_state("Error:Twice", "double acquire in {function}")
            .transition("Acquire", "Idle", "Held", |t| {
                t.on(Direction::CallCToJava, "acquire")
            })
            .transition("AcquireAgain", "Held", "Error:Twice", |t| {
                t.on(Direction::CallCToJava, "reacquire")
            })
            .build()
            .expect("toy machine")
    }

    #[test]
    fn leases_reuse_cleared_engines() {
        let pool: Arc<CompactEnginePool<u64>> =
            EnginePool::new(vec![toy_machine("a"), toy_machine("b")]);
        {
            let mut lease = pool.lease();
            assert_eq!(lease.len(), 2);
            let a = lease.by_machine("a").expect("machine a");
            assert!(matches!(
                a.apply_named(&7, "Acquire"),
                TransitionOutcome::Moved { .. }
            ));
            assert_eq!(Engine::<u64>::len(a), 1);
        }
        // Second lease gets the same (cleared) set back: no new build.
        let mut lease = pool.lease();
        let a = lease.by_machine("a").expect("machine a");
        assert_eq!(Engine::<u64>::len(a), 0, "engines return cleared");
        drop(lease);
        let stats = pool.stats();
        assert_eq!(stats.built, 1);
        assert_eq!(stats.leases, 2);
        assert_eq!(stats.idle, 1);
        assert_eq!(stats.machines, 2);
    }

    #[test]
    fn concurrent_leases_build_independent_sets() {
        let pool: Arc<CompactEnginePool<u64>> = EnginePool::new(vec![toy_machine("a")]);
        let l1 = pool.lease();
        let l2 = pool.lease();
        assert_eq!(pool.stats().built, 2);
        drop(l1);
        drop(l2);
        assert_eq!(pool.stats().idle, 2);
        let _l3 = pool.lease();
        assert_eq!(pool.stats().built, 2, "third lease is a pool hit");
    }

    #[test]
    fn pool_is_shareable_across_threads() {
        let pool: Arc<CompactEnginePool<u64>> = EnginePool::new(vec![toy_machine("a")]);
        let mut handles = Vec::new();
        for t in 0..4u64 {
            let pool = Arc::clone(&pool);
            handles.push(std::thread::spawn(move || {
                for i in 0..50 {
                    let mut lease = pool.lease();
                    let e = lease.by_machine("a").unwrap();
                    assert!(matches!(
                        e.apply_named(&(t * 1000 + i), "Acquire"),
                        TransitionOutcome::Moved { .. }
                    ));
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let stats = pool.stats();
        assert_eq!(stats.leases, 200);
        assert!(stats.built <= 4, "at most one build per thread: {stats:?}");
    }
}
