//! Differential property tests: the compiled engine ([`CompactStore`])
//! must agree with the reference [`StateStore`] outcome-for-outcome on
//! arbitrary machines and arbitrary event scripts — including
//! `NotApplicable` non-matches, error entries, unknown transition names,
//! evictions, and the sorted leak-sweep order. [`DiffStore`] runs both
//! in lockstep and panics on any divergence, so simply driving it over
//! the same scripts is itself an assertion.

use jinn_fsm::{
    CompactStore, ConstraintClass, DiffStore, Direction, Engine, EntityKind, MachineSpec,
    StateStore, TransitionOutcome, DENSE_LIMIT,
};
use proptest::prelude::*;

/// Decodes a shape word into a random-but-well-formed machine: a linear
/// ladder `S0 → … → Sn` (the shape of every Jinn machine), optionally
/// with an error tail and a reset edge back to `S0` (making the graph
/// non-linear so the transition matrix has off-ladder entries).
fn machine_from(shape: u64) -> MachineSpec {
    let states = 2 + (shape % 7) as usize;
    let with_error = shape & (1 << 8) != 0;
    let with_reset = shape & (1 << 9) != 0;
    let mut b =
        MachineSpec::builder("diff", ConstraintClass::Resource).entity(EntityKind::Reference);
    for i in 0..states {
        b = b.state(format!("S{i}"));
    }
    if with_error {
        b = b.error_state("E", "boom in {function}");
    }
    for i in 1..states {
        b = b.transition(
            format!("t{i}"),
            format!("S{}", i - 1),
            format!("S{i}"),
            |t| t.on(Direction::CallCToJava, "any"),
        );
    }
    if with_error {
        b = b.transition("fail", format!("S{}", states - 1), "E", |t| {
            t.on(Direction::ReturnJavaToC, "any")
        });
    }
    if with_reset {
        b = b.transition("reset", format!("S{}", states - 1), "S0", |t| {
            t.on(Direction::CallJavaToC, "any")
        });
    }
    b.build().expect("generated machines are well-formed")
}

/// One decoded script step, interpreted identically by every engine.
#[derive(Debug)]
enum Op {
    Apply(u64, usize),
    /// Apply by name, including names the machine does not have (the
    /// unknown-transition path must degrade identically).
    ApplyNamed(u64, String),
    Evict(u64),
    StateOf(u64),
}

/// Decodes raw proptest words into keys and operations. Keys mix the
/// dense slab range with values past [`DENSE_LIMIT`], so the script
/// exercises the compiled store's hash-spill path alongside the slab.
fn decode(words: &[u64], transitions: usize) -> Vec<Op> {
    words
        .iter()
        .map(|&w| {
            let small = (w >> 8) % 24;
            let key = if w & (1 << 40) != 0 {
                DENSE_LIMIT as u64 + small
            } else {
                small
            };
            match w % 8 {
                0..=3 => Op::Apply(key, ((w >> 16) as usize) % transitions),
                4 | 5 => {
                    let name = match (w >> 16) % 4 {
                        0 => "t1".to_string(),
                        1 => "fail".to_string(),
                        2 => "reset".to_string(),
                        _ => "NoSuchTransition".to_string(),
                    };
                    Op::ApplyNamed(key, name)
                }
                6 => Op::Evict(key),
                _ => Op::StateOf(key),
            }
        })
        .collect()
}

/// What one engine observed over a whole script — every comparable fact,
/// so engine disagreement cannot hide in an unchecked channel.
#[derive(Debug, PartialEq)]
struct Observed {
    outcomes: Vec<TransitionOutcome>,
    states: Vec<usize>,
    evictions: Vec<bool>,
    len: usize,
    leak_sweep: Vec<u64>,
    in_initial: Vec<u64>,
}

fn drive<E: Engine<u64>>(machine: MachineSpec, ops: &[Op]) -> Observed {
    let mut engine = E::for_machine(machine);
    let mut observed = Observed {
        outcomes: Vec::new(),
        states: Vec::new(),
        evictions: Vec::new(),
        len: 0,
        leak_sweep: Vec::new(),
        in_initial: Vec::new(),
    };
    for op in ops {
        match op {
            Op::Apply(key, t) => {
                let id = {
                    let spec = engine.spec();
                    spec.transition_id(spec.transitions()[*t].name())
                        .expect("decoded index is in range")
                };
                observed.outcomes.push(engine.apply(key, id));
            }
            Op::ApplyNamed(key, name) => observed.outcomes.push(engine.apply_named(key, name)),
            Op::Evict(key) => observed.evictions.push(engine.evict(key).is_some()),
            Op::StateOf(key) => observed.states.push(engine.state_of(key).index()),
        }
    }
    let initial = engine.spec().initial();
    observed.len = engine.len();
    observed.leak_sweep = engine.entities_not_in(initial);
    observed.in_initial = engine.entities_in(initial);
    observed
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn compiled_engine_matches_reference(
        shape in any::<u64>(),
        words in proptest::collection::vec(any::<u64>(), 0..120),
    ) {
        let machine = machine_from(shape);
        let ops = decode(&words, machine.transitions().len());
        let reference = drive::<StateStore<u64>>(machine.clone(), &ops);
        let compiled = drive::<CompactStore<u64>>(machine.clone(), &ops);
        prop_assert_eq!(&reference, &compiled);
        // The differential adapter re-checks every step internally (it
        // panics on divergence) and must land on the same transcript.
        let differential = drive::<DiffStore<u64>>(machine, &ops);
        prop_assert_eq!(&reference, &differential);
    }

    #[test]
    fn not_applicable_preserves_state_in_both_engines(
        shape in any::<u64>(),
        key in any::<u64>(),
    ) {
        let machine = machine_from(shape);
        let mut diff: DiffStore<u64> = DiffStore::new(machine.clone());
        // t2 from the initial state never applies (its source is S1).
        let out = diff.apply_named(&key, "t2");
        prop_assert!(!out.applied());
        prop_assert_eq!(diff.state_of(&key), machine.initial());
        prop_assert!(!diff.contains(&key));
    }
}
