//! Differential property tests: the compiled engine ([`CompactStore`])
//! and the lock-free engine ([`AtomicStore`]) must agree with the
//! reference [`StateStore`] outcome-for-outcome on arbitrary machines
//! and arbitrary event scripts — including `NotApplicable` non-matches,
//! error entries, unknown transition names, evictions, and the sorted
//! leak-sweep order. [`DiffStore`] runs both classic engines in
//! lockstep and panics on any divergence, so simply driving it over
//! the same scripts is itself an assertion. A separate concurrent
//! property pins the [`AtomicStore`] under real thread interleavings
//! against a serialized reference replay.

use std::sync::Arc;

use jinn_fsm::{
    AtomicStore, CompactStore, ConstraintClass, DiffStore, Direction, Engine, EntityKind,
    MachineSpec, StateStore, TransitionOutcome, DENSE_LIMIT,
};
use proptest::prelude::*;

/// Decodes a shape word into a random-but-well-formed machine: a linear
/// ladder `S0 → … → Sn` (the shape of every Jinn machine), optionally
/// with an error tail and a reset edge back to `S0` (making the graph
/// non-linear so the transition matrix has off-ladder entries).
fn machine_from(shape: u64) -> MachineSpec {
    let states = 2 + (shape % 7) as usize;
    let with_error = shape & (1 << 8) != 0;
    let with_reset = shape & (1 << 9) != 0;
    let mut b =
        MachineSpec::builder("diff", ConstraintClass::Resource).entity(EntityKind::Reference);
    for i in 0..states {
        b = b.state(format!("S{i}"));
    }
    if with_error {
        b = b.error_state("E", "boom in {function}");
    }
    for i in 1..states {
        b = b.transition(
            format!("t{i}"),
            format!("S{}", i - 1),
            format!("S{i}"),
            |t| t.on(Direction::CallCToJava, "any"),
        );
    }
    if with_error {
        b = b.transition("fail", format!("S{}", states - 1), "E", |t| {
            t.on(Direction::ReturnJavaToC, "any")
        });
    }
    if with_reset {
        b = b.transition("reset", format!("S{}", states - 1), "S0", |t| {
            t.on(Direction::CallJavaToC, "any")
        });
    }
    b.build().expect("generated machines are well-formed")
}

/// One decoded script step, interpreted identically by every engine.
#[derive(Debug)]
enum Op {
    Apply(u64, usize),
    /// Apply by name, including names the machine does not have (the
    /// unknown-transition path must degrade identically).
    ApplyNamed(u64, String),
    Evict(u64),
    StateOf(u64),
}

/// Decodes raw proptest words into keys and operations. Keys mix the
/// dense slab range with values past [`DENSE_LIMIT`], so the script
/// exercises the compiled store's hash-spill path alongside the slab.
fn decode(words: &[u64], transitions: usize) -> Vec<Op> {
    words
        .iter()
        .map(|&w| {
            let small = (w >> 8) % 24;
            let key = if w & (1 << 40) != 0 {
                DENSE_LIMIT as u64 + small
            } else {
                small
            };
            match w % 8 {
                0..=3 => Op::Apply(key, ((w >> 16) as usize) % transitions),
                4 | 5 => {
                    let name = match (w >> 16) % 4 {
                        0 => "t1".to_string(),
                        1 => "fail".to_string(),
                        2 => "reset".to_string(),
                        _ => "NoSuchTransition".to_string(),
                    };
                    Op::ApplyNamed(key, name)
                }
                6 => Op::Evict(key),
                _ => Op::StateOf(key),
            }
        })
        .collect()
}

/// What one engine observed over a whole script — every comparable fact,
/// so engine disagreement cannot hide in an unchecked channel.
#[derive(Debug, PartialEq)]
struct Observed {
    outcomes: Vec<TransitionOutcome>,
    states: Vec<usize>,
    evictions: Vec<bool>,
    len: usize,
    leak_sweep: Vec<u64>,
    in_initial: Vec<u64>,
}

fn drive<E: Engine<u64>>(machine: MachineSpec, ops: &[Op]) -> Observed {
    let mut engine = E::for_machine(machine);
    let mut observed = Observed {
        outcomes: Vec::new(),
        states: Vec::new(),
        evictions: Vec::new(),
        len: 0,
        leak_sweep: Vec::new(),
        in_initial: Vec::new(),
    };
    for op in ops {
        match op {
            Op::Apply(key, t) => {
                let id = {
                    let spec = engine.spec();
                    spec.transition_id(spec.transitions()[*t].name())
                        .expect("decoded index is in range")
                };
                observed.outcomes.push(engine.apply(key, id));
            }
            Op::ApplyNamed(key, name) => observed.outcomes.push(engine.apply_named(key, name)),
            Op::Evict(key) => observed.evictions.push(engine.evict(key).is_some()),
            Op::StateOf(key) => observed.states.push(engine.state_of(key).index()),
        }
    }
    let initial = engine.spec().initial();
    observed.len = engine.len();
    observed.leak_sweep = engine.entities_not_in(initial);
    observed.in_initial = engine.entities_in(initial);
    observed
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn compiled_engine_matches_reference(
        shape in any::<u64>(),
        words in proptest::collection::vec(any::<u64>(), 0..120),
    ) {
        let machine = machine_from(shape);
        let ops = decode(&words, machine.transitions().len());
        let reference = drive::<StateStore<u64>>(machine.clone(), &ops);
        let compiled = drive::<CompactStore<u64>>(machine.clone(), &ops);
        prop_assert_eq!(&reference, &compiled);
        // The lock-free store must match through its Engine face too —
        // same slab/spill split, CAS instead of locks.
        let atomic = drive::<AtomicStore<u64>>(machine.clone(), &ops);
        prop_assert_eq!(&reference, &atomic);
        // The differential adapter re-checks every step internally (it
        // panics on divergence) and must land on the same transcript.
        let differential = drive::<DiffStore<u64>>(machine, &ops);
        prop_assert_eq!(&reference, &differential);
    }

    /// Concurrency equivalence: N threads drive one shared
    /// [`AtomicStore`] over *disjoint* key ranges (the checker's
    /// ownership discipline — each entity is homed to the thread that
    /// first touches it, exactly how the parallel bench partitions
    /// work). Whatever the OS interleaving, every thread's outcome
    /// transcript and the final sweep must equal a serialized replay of
    /// the same per-thread scripts through the reference store: the
    /// CAS slab, the shared length counter, and the spill shards may
    /// not leak effects across keys.
    #[test]
    fn concurrent_atomic_store_matches_serialized_reference(
        shape in any::<u64>(),
        scripts in proptest::collection::vec(
            proptest::collection::vec(any::<u64>(), 0..60),
            2..5,
        ),
    ) {
        let machine = machine_from(shape);
        let transitions = machine.transitions().len();
        // Rebase each thread's keys into a private window (dense and
        // spill halves both), so threads never share an entity.
        let per_thread: Vec<Vec<Op>> = scripts
            .iter()
            .enumerate()
            .map(|(t, words)| {
                decode(words, transitions)
                    .into_iter()
                    .map(|op| {
                        // Decoded keys sit in [0, 24) or
                        // [DENSE_LIMIT, DENSE_LIMIT + 24); a +64·t
                        // offset keeps each window private to its
                        // thread without crossing the dense/spill split.
                        let rebase = |k: u64| k + 64 * t as u64;
                        match op {
                            Op::Apply(k, i) => Op::Apply(rebase(k), i),
                            Op::ApplyNamed(k, n) => Op::ApplyNamed(rebase(k), n),
                            Op::Evict(k) => Op::Evict(rebase(k)),
                            Op::StateOf(k) => Op::StateOf(rebase(k)),
                        }
                    })
                    .collect()
            })
            .collect();

        // Concurrent run: one shared lock-free store, one real thread
        // per script, outcomes collected per thread.
        let store: Arc<AtomicStore<u64>> = Arc::new(AtomicStore::new(machine.clone()));
        let concurrent: Vec<Observed> = std::thread::scope(|scope| {
            let handles: Vec<_> = per_thread
                .iter()
                .enumerate()
                .map(|(t, ops)| {
                    let store = Arc::clone(&store);
                    scope.spawn(move || {
                        let mut observed = Observed {
                            outcomes: Vec::new(),
                            states: Vec::new(),
                            evictions: Vec::new(),
                            len: 0,
                            leak_sweep: Vec::new(),
                            in_initial: Vec::new(),
                        };
                        let thread = t as u16;
                        for op in ops {
                            match op {
                                Op::Apply(key, i) => {
                                    let id = {
                                        let spec = store.machine();
                                        spec.transition_id(spec.transitions()[*i].name())
                                            .expect("decoded index is in range")
                                    };
                                    let out = store.apply(thread, key, id);
                                    assert!(
                                        out.cross_thread.is_none(),
                                        "disjoint keys must never report cross-thread use"
                                    );
                                    observed.outcomes.push(out.outcome);
                                }
                                Op::ApplyNamed(key, name) => {
                                    let out = store.apply_named(thread, key, name);
                                    assert!(out.cross_thread.is_none());
                                    observed.outcomes.push(out.outcome);
                                }
                                Op::Evict(key) => {
                                    observed.evictions.push(store.evict(key).is_some());
                                }
                                Op::StateOf(key) => {
                                    observed.states.push(store.state_of(thread, key).index());
                                }
                            }
                        }
                        observed
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("worker must not panic"))
                .collect()
        });

        // Serialized reference: the same scripts, one after another,
        // through a single reference store. Disjoint keys make any
        // serialization order equivalent.
        let mut reference = StateStore::<u64>::for_machine(machine.clone());
        let serial: Vec<Observed> = per_thread
            .iter()
            .map(|ops| {
                let mut observed = Observed {
                    outcomes: Vec::new(),
                    states: Vec::new(),
                    evictions: Vec::new(),
                    len: 0,
                    leak_sweep: Vec::new(),
                    in_initial: Vec::new(),
                };
                for op in ops {
                    match op {
                        Op::Apply(key, i) => {
                            let id = {
                                let spec = reference.spec();
                                spec.transition_id(spec.transitions()[*i].name())
                                    .expect("decoded index is in range")
                            };
                            observed.outcomes.push(reference.apply(key, id));
                        }
                        Op::ApplyNamed(key, name) => {
                            observed.outcomes.push(reference.apply_named(key, name));
                        }
                        Op::Evict(key) => observed.evictions.push(reference.evict(key).is_some()),
                        Op::StateOf(key) => {
                            observed.states.push(reference.state_of(key).index());
                        }
                    }
                }
                observed
            })
            .collect();
        for (got, want) in concurrent.iter().zip(serial.iter()) {
            prop_assert_eq!(&got.outcomes, &want.outcomes);
            prop_assert_eq!(&got.states, &want.states);
            prop_assert_eq!(&got.evictions, &want.evictions);
        }

        // Final population and sweeps — the verdict-bearing reads —
        // must agree exactly, in sorted order.
        let initial = machine.initial();
        prop_assert_eq!(store.len(), reference.len());
        prop_assert_eq!(store.entities_not_in(initial), reference.entities_not_in(initial));
        prop_assert_eq!(store.entities_in(initial), reference.entities_in(initial));
    }

    #[test]
    fn not_applicable_preserves_state_in_both_engines(
        shape in any::<u64>(),
        key in any::<u64>(),
    ) {
        let machine = machine_from(shape);
        let mut diff: DiffStore<u64> = DiffStore::new(machine.clone());
        // t2 from the initial state never applies (its source is S1).
        let out = diff.apply_named(&key, "t2");
        prop_assert!(!out.applied());
        prop_assert_eq!(diff.state_of(&key), machine.initial());
        prop_assert!(!diff.contains(&key));
    }
}
