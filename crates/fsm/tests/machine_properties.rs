//! Property tests of the specification framework: arbitrary well-formed
//! machines behave deterministically and render cleanly.

use jinn_fsm::{ConstraintClass, Direction, EntityKind, MachineSpec, StateStore};
use proptest::prelude::*;

/// Builds a random linear machine A0 → A1 → … → An (→ Error), which is the
/// shape every Jinn machine has (acquire/use/release ladders).
fn linear_machine(states: usize, with_error: bool) -> MachineSpec {
    let mut b =
        MachineSpec::builder("linear", ConstraintClass::Resource).entity(EntityKind::Reference);
    for i in 0..states {
        b = b.state(format!("S{i}"));
    }
    if with_error {
        b = b.error_state("E", "boom in {function}");
    }
    for i in 1..states {
        b = b.transition(
            format!("t{i}"),
            format!("S{}", i - 1),
            format!("S{i}"),
            |t| t.on(Direction::CallCToJava, "any"),
        );
    }
    if with_error && states > 0 {
        b = b.transition("fail", format!("S{}", states - 1), "E", |t| {
            t.on(Direction::ReturnJavaToC, "any")
        });
    }
    b.build().expect("linear machines are well-formed")
}

proptest! {
    #[test]
    fn linear_machines_walk_their_ladder(n in 1usize..12, error in any::<bool>()) {
        let m = linear_machine(n, error);
        prop_assert_eq!(m.states().len(), n + usize::from(error));
        prop_assert_eq!(m.reachable_states().len(), m.states().len());

        let mut store: StateStore<u8> = StateStore::new(m);
        let entity = 1u8;
        for i in 1..n {
            let out = store.apply_named(&entity, &format!("t{i}"));
            prop_assert!(out.applied(), "step {i}");
            prop_assert!(out.error().is_none());
        }
        if error {
            let out = store.apply_named(&entity, "fail");
            prop_assert!(out.error().is_some());
        }
    }

    #[test]
    fn out_of_order_transitions_never_apply(n in 3usize..10) {
        let m = linear_machine(n, false);
        let mut store: StateStore<u8> = StateStore::new(m);
        let entity = 9u8;
        // Jumping ahead (t2 before t1) is NotApplicable and state-preserving.
        let out = store.apply_named(&entity, "t2");
        prop_assert!(!out.applied());
        prop_assert_eq!(store.state_of(&entity).index(), 0);
        // The proper first step still works afterwards.
        prop_assert!(store.apply_named(&entity, "t1").applied());
    }

    #[test]
    fn entities_are_independent(n in 2usize..8, entities in proptest::collection::vec(0u8..32, 1..10)) {
        let m = linear_machine(n, false);
        let mut store: StateStore<u8> = StateStore::new(m);
        let mut unique = entities.clone();
        unique.sort_unstable();
        unique.dedup();
        // March each entity a distinct number of steps.
        for (k, e) in unique.iter().enumerate() {
            for i in 1..=(k % n) {
                store.apply_named(e, &format!("t{i}"));
            }
        }
        for (k, e) in unique.iter().enumerate() {
            prop_assert_eq!(store.state_of(e).index(), k % n, "entity {}", e);
        }
    }

    #[test]
    fn diagrams_render_for_any_machine(n in 1usize..10, error in any::<bool>()) {
        let m = linear_machine(n, error);
        let dot = jinn_fsm::dot(&m);
        prop_assert!(dot.starts_with("digraph"));
        prop_assert!(dot.matches("->").count() >= m.transitions().len());
        let table = jinn_fsm::ascii_table(&m);
        // Every line of the table body has the same width.
        let widths: Vec<usize> = table.lines().skip(1).map(str::len).collect();
        prop_assert!(widths.windows(2).all(|w| w[0] == w[1]));
    }
}
