//! Exporters: Chrome `chrome://tracing` JSON and a plain-text dump.
//!
//! The Chrome format is the Trace Event Format's JSON-object flavour:
//! `{"traceEvents": [...]}` where paired `"ph":"B"`/`"ph":"E"` events
//! form duration slices and `"ph":"i"` events are instants. Load the
//! output in `chrome://tracing` or Perfetto. JSON is assembled by hand —
//! this crate has no dependencies — with full string escaping.

use std::fmt::Write as _;

use crate::event::{EventKind, TraceEvent, NO_THREAD};
use crate::metrics::{Coverage, Snapshot};

/// Escapes `s` as the body of a JSON string literal.
fn escape_json(s: &str, out: &mut String) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
}

/// `"name":"value",` with escaping.
fn push_str_field(out: &mut String, name: &str, value: &str) {
    out.push('"');
    out.push_str(name);
    out.push_str("\":\"");
    escape_json(value, out);
    out.push_str("\",");
}

fn tid_of(event: &TraceEvent) -> u64 {
    if event.thread == NO_THREAD {
        // Park unattributed events on a high lane so they don't mix with
        // real threads in the timeline.
        9999
    } else {
        u64::from(event.thread)
    }
}

/// One event row. `ph` is the Chrome phase; `args` is pre-rendered JSON
/// (without braces) or empty.
fn push_event(out: &mut String, event: &TraceEvent, name: &str, cat: &str, ph: char, args: &str) {
    out.push('{');
    push_str_field(out, "name", name);
    push_str_field(out, "cat", cat);
    let _ = write!(
        out,
        "\"ph\":\"{ph}\",\"ts\":{},\"pid\":1,\"tid\":{}",
        event.micros,
        tid_of(event)
    );
    if ph == 'i' {
        // Thread-scoped instant.
        out.push_str(",\"s\":\"t\"");
    }
    if !args.is_empty() {
        let _ = write!(out, ",\"args\":{{{args}}}");
    }
    out.push_str("},");
}

/// Renders events as Chrome Trace Event Format JSON.
pub fn chrome_trace(events: &[TraceEvent]) -> String {
    chrome_trace_with_drops(events, 0)
}

/// Renders events as Chrome Trace Event Format JSON, prefixed with a
/// `dropped-events` instant when the source ring evicted events — so a
/// truncated trace is visibly truncated in the timeline.
pub fn chrome_trace_with_drops(events: &[TraceEvent], dropped: u64) -> String {
    chrome_trace_with_coverage(
        events,
        Coverage {
            ring_dropped: dropped,
            ..Coverage::default()
        },
    )
}

/// Renders events as Chrome Trace Event Format JSON with full coverage
/// metadata: a `dropped-events` instant when the ring evicted events,
/// and a `trace-sampling` instant whenever the trace policy suppressed
/// events — a sampled timeline is never presented as complete. With
/// default (complete) coverage the output is byte-identical to
/// [`chrome_trace`].
pub fn chrome_trace_with_coverage(events: &[TraceEvent], coverage: Coverage) -> String {
    let mut out = String::with_capacity(events.len() * 96 + 64);
    out.push_str("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[");
    if coverage.ring_dropped > 0 {
        let _ = write!(
            out,
            "{{\"name\":\"dropped-events\",\"cat\":\"meta\",\"ph\":\"i\",\"ts\":0,\
             \"pid\":1,\"tid\":9999,\"s\":\"t\",\"args\":{{\"dropped\":{}}}}},",
            coverage.ring_dropped
        );
    }
    if coverage.sampled() {
        let _ = write!(
            out,
            "{{\"name\":\"trace-sampling\",\"cat\":\"meta\",\"ph\":\"i\",\"ts\":0,\
             \"pid\":1,\"tid\":9999,\"s\":\"t\",\"args\":{{\"sampled\":true,\
             \"suppressed_sampled\":{},\"auto_downsampled\":{},\"suppressed_disabled\":{},\
             \"policy_epoch\":{}}}}},",
            coverage.suppressed_sampled,
            coverage.auto_downsampled,
            coverage.suppressed_disabled,
            coverage.policy_epoch
        );
    }
    for event in events {
        match &event.kind {
            EventKind::JniEnter { func } => push_event(&mut out, event, func, "jni", 'B', ""),
            EventKind::JniExit {
                func,
                nanos,
                failed,
            } => {
                let args = format!("\"nanos\":{nanos},\"failed\":{failed}");
                push_event(&mut out, event, func, "jni", 'E', &args);
            }
            EventKind::NativeEnter { method } => {
                push_event(&mut out, event, method, "native", 'B', "");
            }
            EventKind::NativeExit {
                method,
                nanos,
                failed,
            } => {
                let args = format!("\"nanos\":{nanos},\"failed\":{failed}");
                push_event(&mut out, event, method, "native", 'E', &args);
            }
            EventKind::FsmTransition {
                machine,
                transition,
                outcome,
                entity,
            } => {
                let mut args = String::new();
                push_str_field(&mut args, "transition", transition);
                push_str_field(&mut args, "outcome", &outcome.to_string());
                if let Some(e) = entity {
                    push_str_field(&mut args, "entity", e.label());
                }
                args.pop(); // trailing comma
                push_event(&mut out, event, machine, "fsm", 'i', &args);
            }
            EventKind::GcSafepoint { collected } => {
                let args = format!("\"collected\":{collected}");
                push_event(&mut out, event, "safepoint", "gc", 'i', &args);
            }
            EventKind::Gc { live, freed } => {
                let args = format!("\"live\":{live},\"freed\":{freed}");
                push_event(&mut out, event, "collection", "gc", 'i', &args);
            }
            EventKind::PinAcquire { pin } => {
                let args = format!("\"pin\":{pin}");
                push_event(&mut out, event, "pin-acquire", "pin", 'i', &args);
            }
            EventKind::PinRelease { pin, ok } => {
                let args = format!("\"pin\":{pin},\"ok\":{ok}");
                push_event(&mut out, event, "pin-release", "pin", 'i', &args);
            }
            EventKind::Verdict {
                machine,
                function,
                action,
            } => {
                let mut args = String::new();
                push_str_field(&mut args, "function", function);
                push_str_field(&mut args, "action", &action.to_string());
                args.pop();
                push_event(&mut out, event, machine, "verdict", 'i', &args);
            }
        }
    }
    if out.ends_with(',') {
        out.pop();
    }
    out.push_str("]}");
    out
}

/// Renders events and a metrics snapshot as plain text.
pub fn text_dump(events: &[TraceEvent], snapshot: &Snapshot) -> String {
    text_dump_with_drops(events, snapshot, 0)
}

/// Renders events and a metrics snapshot as plain text, annotating the
/// header with the number of evicted (dropped) events when non-zero.
pub fn text_dump_with_drops(events: &[TraceEvent], snapshot: &Snapshot, dropped: u64) -> String {
    text_dump_with_coverage(
        events,
        snapshot,
        Coverage {
            ring_dropped: dropped,
            ..Coverage::default()
        },
    )
}

/// Renders events and a metrics snapshot as plain text with full
/// coverage accounting in the header: evicted events and, when the
/// policy suppressed anything, an explicit `SAMPLED` marker. With
/// default (complete) coverage the output is byte-identical to
/// [`text_dump`].
pub fn text_dump_with_coverage(
    events: &[TraceEvent],
    snapshot: &Snapshot,
    coverage: Coverage,
) -> String {
    let mut out = String::new();
    let _ = write!(out, "trace ({} events held", events.len());
    if coverage.ring_dropped > 0 {
        let _ = write!(out, ", {} dropped", coverage.ring_dropped);
    }
    if coverage.sampled() {
        let _ = write!(
            out,
            ", {} suppressed by policy, SAMPLED",
            coverage.suppressed_total()
        );
    }
    let _ = writeln!(out, "):");
    for event in events {
        let _ = writeln!(out, "  {event}");
    }
    out.push('\n');
    out.push_str(&snapshot.render());
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{EntityTag, FsmOutcome, VerdictAction};
    use crate::metrics::MetricsRegistry;
    use std::sync::Arc;

    fn ev(seq: u64, thread: u16, kind: EventKind) -> TraceEvent {
        TraceEvent {
            seq,
            micros: seq * 100,
            thread,
            kind,
        }
    }

    #[test]
    fn escaping_covers_quotes_backslashes_and_controls() {
        let mut out = String::new();
        escape_json("a\"b\\c\nd\te\u{1}", &mut out);
        assert_eq!(out, "a\\\"b\\\\c\\nd\\te\\u0001");
    }

    #[test]
    fn empty_trace_is_valid_json() {
        assert_eq!(
            chrome_trace(&[]),
            "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[]}"
        );
    }

    #[test]
    fn golden_chrome_trace() {
        let events = vec![
            ev(
                0,
                1,
                EventKind::JniEnter {
                    func: "GetObjectClass".into(),
                },
            ),
            ev(
                1,
                1,
                EventKind::FsmTransition {
                    machine: Arc::from("local-reference"),
                    transition: Arc::from("Use"),
                    outcome: FsmOutcome::Error,
                    entity: Some(EntityTag::new("r#2")),
                },
            ),
            ev(
                2,
                1,
                EventKind::Verdict {
                    machine: Arc::from("local-reference"),
                    function: Arc::from("GetObjectClass"),
                    action: VerdictAction::ThrowException,
                },
            ),
            ev(
                3,
                1,
                EventKind::JniExit {
                    func: "GetObjectClass".into(),
                    nanos: 4200,
                    failed: true,
                },
            ),
            ev(4, NO_THREAD, EventKind::Gc { live: 7, freed: 3 }),
        ];
        let expected = concat!(
            "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[",
            "{\"name\":\"GetObjectClass\",\"cat\":\"jni\",\"ph\":\"B\",\"ts\":0,\"pid\":1,\"tid\":1},",
            "{\"name\":\"local-reference\",\"cat\":\"fsm\",\"ph\":\"i\",\"ts\":100,\"pid\":1,\"tid\":1,\"s\":\"t\",",
            "\"args\":{\"transition\":\"Use\",\"outcome\":\"ERROR\",\"entity\":\"r#2\"}},",
            "{\"name\":\"local-reference\",\"cat\":\"verdict\",\"ph\":\"i\",\"ts\":200,\"pid\":1,\"tid\":1,\"s\":\"t\",",
            "\"args\":{\"function\":\"GetObjectClass\",\"action\":\"throw\"}},",
            "{\"name\":\"GetObjectClass\",\"cat\":\"jni\",\"ph\":\"E\",\"ts\":300,\"pid\":1,\"tid\":1,",
            "\"args\":{\"nanos\":4200,\"failed\":true}},",
            "{\"name\":\"collection\",\"cat\":\"gc\",\"ph\":\"i\",\"ts\":400,\"pid\":1,\"tid\":9999,\"s\":\"t\",",
            "\"args\":{\"live\":7,\"freed\":3}}",
            "]}"
        );
        assert_eq!(chrome_trace(&events), expected);
    }

    #[test]
    fn text_dump_includes_events_and_metrics() {
        let events = vec![ev(
            0,
            2,
            EventKind::JniEnter {
                func: "NewStringUTF".into(),
            },
        )];
        let mut metrics = MetricsRegistry::new();
        metrics.jni_call("NewStringUTF", 77, false);
        let snapshot = Snapshot {
            taken_at_micros: 5,
            metrics,
            coverage: Coverage::default(),
        };
        let text = text_dump(&events, &snapshot);
        assert!(text.contains("trace (1 events held):"));
        assert!(text.contains("jni  > NewStringUTF"));
        assert!(text.contains("metrics snapshot at +5us"));
    }

    #[test]
    fn drops_are_surfaced_in_both_exporters() {
        let events = vec![ev(
            9,
            1,
            EventKind::JniEnter {
                func: "NewStringUTF".into(),
            },
        )];
        let json = chrome_trace_with_drops(&events, 42);
        assert!(json.starts_with(concat!(
            "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[",
            "{\"name\":\"dropped-events\",\"cat\":\"meta\",\"ph\":\"i\",\"ts\":0,",
            "\"pid\":1,\"tid\":9999,\"s\":\"t\",\"args\":{\"dropped\":42}},"
        )));
        // Zero drops must render byte-identically to the plain exporter.
        assert_eq!(chrome_trace_with_drops(&events, 0), chrome_trace(&events));

        let snapshot = Snapshot {
            taken_at_micros: 5,
            metrics: MetricsRegistry::new(),
            coverage: Coverage::default(),
        };
        let text = text_dump_with_drops(&events, &snapshot, 42);
        assert!(text.contains("trace (1 events held, 42 dropped):"));
        assert_eq!(
            text_dump_with_drops(&events, &snapshot, 0),
            text_dump(&events, &snapshot)
        );
    }

    #[test]
    fn sampling_is_flagged_in_both_exporters() {
        let events = vec![ev(
            3,
            1,
            EventKind::JniEnter {
                func: "NewStringUTF".into(),
            },
        )];
        let coverage = Coverage {
            recorded: 1,
            suppressed_sampled: 7,
            auto_downsampled: 2,
            policy_epoch: 3,
            ..Coverage::default()
        };
        let json = chrome_trace_with_coverage(&events, coverage);
        assert!(
            json.contains(concat!(
                "{\"name\":\"trace-sampling\",\"cat\":\"meta\",\"ph\":\"i\",\"ts\":0,",
                "\"pid\":1,\"tid\":9999,\"s\":\"t\",\"args\":{\"sampled\":true,",
                "\"suppressed_sampled\":7,\"auto_downsampled\":2,\"suppressed_disabled\":0,",
                "\"policy_epoch\":3}},"
            )),
            "{json}"
        );
        // Complete coverage renders byte-identically to the plain form.
        assert_eq!(
            chrome_trace_with_coverage(&events, Coverage::default()),
            chrome_trace(&events)
        );

        let snapshot = Snapshot {
            taken_at_micros: 5,
            metrics: MetricsRegistry::new(),
            coverage,
        };
        let text = text_dump_with_coverage(&events, &snapshot, coverage);
        assert!(
            text.contains("trace (1 events held, 9 suppressed by policy, SAMPLED):"),
            "{text}"
        );
        assert_eq!(
            text_dump_with_coverage(&events, &snapshot, Coverage::default()),
            text_dump(&events, &snapshot)
        );
    }
}
