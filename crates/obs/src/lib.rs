//! `jinn-obs` — the observability layer of the Jinn reproduction.
//!
//! Jinn's value is *diagnosis at the moment of the bug*: the checkers in
//! `jinn-core` name the violated machine the instant an entity enters an
//! error state. This crate supplies the surrounding context that a
//! production deployment needs on top of the verdict:
//!
//! * [`spsc`] — per-writer-thread SPSC rings of fixed-width binary
//!   [`raw::RawEvent`] records, one per language transition (the
//!   paper's Figure 2 arrows), FSM transition, GC event, pin event, and
//!   checker verdict — a wait-free record path cheap enough to leave on
//!   in production;
//! * [`policy`] — a runtime-swappable [`TracePolicy`]: per-function /
//!   per-machine enable, disable, and 1-in-N sampling, with hot labels
//!   auto-downsampled and all suppression flagged in exports;
//! * [`metrics`] — monotonic counters and log₂-bucketed latency
//!   histograms keyed per JNI function and per state machine, with a
//!   cheap [`Snapshot`];
//! * [`forensics`] — "what led up to this?" reports: the last-N events
//!   for a failing entity/thread, rendered as structured data (the
//!   paper's Figure 9 debugger experience);
//! * [`export`] — Chrome `chrome://tracing` JSON and plain-text dumps.
//!
//! The entry point is [`Recorder`]: a cheaply clonable handle that every
//! substrate crate (the JNI driver, the FSM runtime, the mini-JVM heap)
//! carries. A disabled recorder is a single `Option` check per event —
//! the Table 3 overhead numbers stay honest.
//!
//! This crate deliberately has **no dependencies**, in-workspace or
//! external, so every layer of the stack can call into it.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod event;
pub mod export;
pub mod forensics;
pub mod metrics;
pub mod policy;
pub mod raw;
pub mod recorder;
pub mod ring;
pub mod spsc;

pub use event::{EntityTag, EventKind, FsmOutcome, TraceEvent, VerdictAction};
pub use forensics::{BugReport, ForensicsConfig};
pub use metrics::{Coverage, Histogram, MetricsRegistry, Snapshot};
pub use policy::TracePolicy;
pub use raw::{LabelId, RawEvent};
pub use recorder::{Recorder, DEFAULT_RING_CAPACITY, MAX_WRITERS};
pub use ring::TraceRing;
pub use spsc::SpscRing;
