//! Monotonic counters and log₂-bucketed latency histograms.
//!
//! The registry is keyed three ways: per JNI function (call counts and
//! latency), per state machine (applied / not-applicable / error
//! transition counts), and by free-form named counters for everything
//! else (GC runs, safepoints, pins, checker invocations). Everything is
//! plain integer arithmetic — snapshotting is a clone.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Number of histogram buckets: one per power of two a `u64` value can
/// fall into, plus a zero bucket.
pub const BUCKETS: usize = 65;

/// A power-of-two latency histogram.
///
/// Bucket 0 holds zero values; bucket `i` (1-based) holds values `v` with
/// `2^(i-1) <= v < 2^i`, i.e. `i = 64 - v.leading_zeros()`. Recording is
/// one `leading_zeros` and an increment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    buckets: [u64; BUCKETS],
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Histogram {
        Histogram {
            buckets: [0; BUCKETS],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Histogram {
        Histogram::default()
    }

    /// The bucket index a value falls into.
    pub fn bucket_of(value: u64) -> usize {
        (64 - value.leading_zeros()) as usize
    }

    /// The half-open value range `[lo, hi)` bucket `i` covers.
    ///
    /// Bucket 0 covers only zero; the last bucket's upper bound saturates
    /// at `u64::MAX`.
    pub fn bucket_bounds(index: usize) -> (u64, u64) {
        match index {
            0 => (0, 1),
            i if i >= BUCKETS - 1 => (1 << 63, u64::MAX),
            i => (1 << (i - 1), 1 << i),
        }
    }

    /// Records one value.
    pub fn record(&mut self, value: u64) {
        self.buckets[Histogram::bucket_of(value)] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(value);
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Number of recorded values.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of recorded values (saturating).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Smallest recorded value, or `None` if empty.
    pub fn min(&self) -> Option<u64> {
        (self.count > 0).then_some(self.min)
    }

    /// Largest recorded value, or `None` if empty.
    pub fn max(&self) -> Option<u64> {
        (self.count > 0).then_some(self.max)
    }

    /// Mean of recorded values, or `None` if empty.
    pub fn mean(&self) -> Option<f64> {
        (self.count > 0).then(|| self.sum as f64 / self.count as f64)
    }

    /// Raw bucket counts.
    pub fn buckets(&self) -> &[u64; BUCKETS] {
        &self.buckets
    }

    /// `(bucket_index, count)` for every non-empty bucket, ascending.
    pub fn nonzero_buckets(&self) -> impl Iterator<Item = (usize, u64)> + '_ {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| (i, c))
    }

    /// The upper bound of the bucket containing the `q`-quantile
    /// (`0.0..=1.0`) of recorded values, or `None` if empty.
    pub fn quantile_upper_bound(&self, q: f64) -> Option<u64> {
        if self.count == 0 {
            return None;
        }
        let rank = ((self.count as f64) * q.clamp(0.0, 1.0)).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return Some(Histogram::bucket_bounds(i).1);
            }
        }
        Some(u64::MAX)
    }

    /// Folds another histogram into this one.
    pub fn merge(&mut self, other: &Histogram) {
        for (b, o) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *b += o;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

/// Per-JNI-function metrics: call count, failure count, latency.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FuncMetrics {
    /// Completed calls.
    pub calls: u64,
    /// Calls that ended in an error.
    pub failures: u64,
    /// Call latency in nanoseconds.
    pub latency: Histogram,
}

impl FuncMetrics {
    /// Folds another function's worth of metrics into this one (used
    /// when flushing thread-local batches into the shared store).
    pub fn merge(&mut self, other: &FuncMetrics) {
        self.calls += other.calls;
        self.failures += other.failures;
        self.latency.merge(&other.latency);
    }
}

/// Per-state-machine metrics: transition outcome counts.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MachineMetrics {
    /// Transitions that moved an entity to a non-error state.
    pub applied: u64,
    /// Transitions whose source state did not match.
    pub not_applicable: u64,
    /// Transitions that entered an error state (detected bugs).
    pub errors: u64,
}

impl MachineMetrics {
    /// All transition attempts.
    pub fn total(&self) -> u64 {
        self.applied + self.not_applicable + self.errors
    }

    /// Folds another machine's worth of counts into this one.
    pub fn merge(&mut self, other: &MachineMetrics) {
        self.applied += other.applied;
        self.not_applicable += other.not_applicable;
        self.errors += other.errors;
    }
}

/// The live registry behind a recorder. Mutated in place; snapshot by
/// cloning.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MetricsRegistry {
    jni: BTreeMap<String, FuncMetrics>,
    machines: BTreeMap<String, MachineMetrics>,
    counters: BTreeMap<String, u64>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> MetricsRegistry {
        MetricsRegistry::default()
    }

    /// Records one completed JNI call.
    pub fn jni_call(&mut self, func: &str, nanos: u64, failed: bool) {
        let m = match self.jni.get_mut(func) {
            Some(m) => m,
            None => self.jni.entry(func.to_owned()).or_default(),
        };
        m.calls += 1;
        if failed {
            m.failures += 1;
        }
        m.latency.record(nanos);
    }

    /// Merges a pre-aggregated block of per-function metrics under
    /// `func` (used when draining thread-local batches).
    pub fn merge_jni(&mut self, func: &str, block: &FuncMetrics) {
        match self.jni.get_mut(func) {
            Some(m) => m.merge(block),
            None => {
                self.jni.insert(func.to_owned(), block.clone());
            }
        }
    }

    /// Merges a pre-aggregated block of per-machine metrics.
    pub fn merge_machine(&mut self, machine: &str, block: &MachineMetrics) {
        match self.machines.get_mut(machine) {
            Some(m) => m.merge(block),
            None => {
                self.machines.insert(machine.to_owned(), *block);
            }
        }
    }

    /// Records one FSM transition outcome for `machine`.
    pub fn fsm(&mut self, machine: &str, outcome: crate::event::FsmOutcome) {
        let m = match self.machines.get_mut(machine) {
            Some(m) => m,
            None => self.machines.entry(machine.to_owned()).or_default(),
        };
        match outcome {
            crate::event::FsmOutcome::Moved => m.applied += 1,
            crate::event::FsmOutcome::NotApplicable => m.not_applicable += 1,
            crate::event::FsmOutcome::Error => m.errors += 1,
        }
    }

    /// Bumps a named counter by `delta`.
    pub fn add(&mut self, name: &str, delta: u64) {
        match self.counters.get_mut(name) {
            Some(c) => *c += delta,
            None => {
                self.counters.insert(name.to_owned(), delta);
            }
        }
    }

    /// Per-function metrics, sorted by function name.
    pub fn jni_functions(&self) -> impl Iterator<Item = (&str, &FuncMetrics)> {
        self.jni.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// Per-machine metrics, sorted by machine name.
    pub fn machines(&self) -> impl Iterator<Item = (&str, &MachineMetrics)> {
        self.machines.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// Named counters, sorted by name.
    pub fn counters(&self) -> impl Iterator<Item = (&str, u64)> + '_ {
        self.counters.iter().map(|(k, v)| (k.as_str(), *v))
    }

    /// A named counter's value (0 if never bumped).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Total JNI calls across all functions.
    pub fn total_jni_calls(&self) -> u64 {
        self.jni.values().map(|m| m.calls).sum()
    }

    /// Total FSM transition attempts across all machines.
    pub fn total_fsm_transitions(&self) -> u64 {
        self.machines.values().map(|m| m.total()).sum()
    }
}

/// How complete the trace ring's view of the workload is.
///
/// `recorded` counts events that reached a ring; the `suppressed_*`
/// fields count events the [`TracePolicy`](crate::TracePolicy) kept out
/// of the ring (metrics and verdicts still saw them); `ring_dropped`
/// counts recorded events later evicted by wraparound. Downstream
/// consumers must treat a timeline with [`sampled`](Coverage::sampled)
/// set as partial.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Coverage {
    /// Events written into the trace rings (including later-evicted).
    pub recorded: u64,
    /// Recorded events since evicted by ring wraparound.
    pub ring_dropped: u64,
    /// Events suppressed because their label's rate was 0 (disabled).
    pub suppressed_disabled: u64,
    /// Events suppressed by 1-in-N sampling.
    pub suppressed_sampled: u64,
    /// Events suppressed by hot-label auto-downsampling.
    pub auto_downsampled: u64,
    /// The policy epoch at snapshot time (bumped by every
    /// [`set_policy`](crate::Recorder::set_policy)).
    pub policy_epoch: u64,
}

impl Coverage {
    /// True when the policy suppressed at least one event: the timeline
    /// is an explicit sample, not a complete record.
    pub fn sampled(&self) -> bool {
        self.suppressed_disabled > 0 || self.suppressed_sampled > 0 || self.auto_downsampled > 0
    }

    /// Total events the policy kept out of the ring.
    pub fn suppressed_total(&self) -> u64 {
        self.suppressed_disabled + self.suppressed_sampled + self.auto_downsampled
    }

    /// True when every observed event is still in the ring: nothing
    /// sampled out, nothing evicted.
    pub fn complete(&self) -> bool {
        !self.sampled() && self.ring_dropped == 0
    }
}

/// A point-in-time copy of the registry, taken by [`crate::Recorder::snapshot`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Snapshot {
    /// Microseconds since the recorder was created.
    pub taken_at_micros: u64,
    /// The copied registry.
    pub metrics: MetricsRegistry,
    /// Trace-ring coverage accounting, including the sampling flag.
    pub coverage: Coverage,
}

impl Snapshot {
    /// Renders the snapshot as an aligned plain-text table.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "metrics snapshot at +{}us", self.taken_at_micros);
        let _ = writeln!(
            out,
            "\njni functions ({} total calls):",
            self.metrics.total_jni_calls()
        );
        let _ = writeln!(
            out,
            "  {:<32} {:>9} {:>9} {:>12} {:>12} {:>12}",
            "function", "calls", "failures", "p50<=ns", "p99<=ns", "max ns"
        );
        for (name, m) in self.metrics.jni_functions() {
            let _ = writeln!(
                out,
                "  {:<32} {:>9} {:>9} {:>12} {:>12} {:>12}",
                name,
                m.calls,
                m.failures,
                m.latency.quantile_upper_bound(0.5).unwrap_or(0),
                m.latency.quantile_upper_bound(0.99).unwrap_or(0),
                m.latency.max().unwrap_or(0),
            );
        }
        let _ = writeln!(
            out,
            "\nstate machines ({} total transitions):",
            self.metrics.total_fsm_transitions()
        );
        let _ = writeln!(
            out,
            "  {:<32} {:>9} {:>9} {:>9}",
            "machine", "applied", "n/a", "errors"
        );
        for (name, m) in self.metrics.machines() {
            let _ = writeln!(
                out,
                "  {:<32} {:>9} {:>9} {:>9}",
                name, m.applied, m.not_applicable, m.errors
            );
        }
        let _ = writeln!(out, "\ncounters:");
        for (name, value) in self.metrics.counters() {
            let _ = writeln!(out, "  {name:<42} {value:>9}");
        }
        let c = &self.coverage;
        let _ = writeln!(
            out,
            "\ntrace coverage{}: {} recorded, {} ring-dropped, {} sampled-out, \
             {} auto-downsampled, {} disabled-out (policy epoch {})",
            if c.sampled() { " [SAMPLED]" } else { "" },
            c.recorded,
            c.ring_dropped,
            c.suppressed_sampled,
            c.auto_downsampled,
            c.suppressed_disabled,
            c.policy_epoch,
        );
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::FsmOutcome;

    #[test]
    fn bucket_boundaries_are_exact_powers_of_two() {
        assert_eq!(Histogram::bucket_of(0), 0);
        assert_eq!(Histogram::bucket_of(1), 1);
        assert_eq!(Histogram::bucket_of(2), 2);
        assert_eq!(Histogram::bucket_of(3), 2);
        assert_eq!(Histogram::bucket_of(4), 3);
        assert_eq!(Histogram::bucket_of(1023), 10);
        assert_eq!(Histogram::bucket_of(1024), 11);
        assert_eq!(Histogram::bucket_of(1025), 11);
        assert_eq!(Histogram::bucket_of(u64::MAX), 64);
        // Every value v sits inside bucket_bounds(bucket_of(v)).
        for v in [0u64, 1, 2, 3, 7, 8, 255, 256, 1 << 40, u64::MAX] {
            let (lo, hi) = Histogram::bucket_bounds(Histogram::bucket_of(v));
            assert!(lo <= v, "lo {lo} > v {v}");
            assert!(v < hi || hi == u64::MAX, "v {v} >= hi {hi}");
        }
    }

    #[test]
    fn histogram_stats() {
        let mut h = Histogram::new();
        assert_eq!(h.mean(), None);
        assert_eq!(h.quantile_upper_bound(0.5), None);
        for v in [10u64, 20, 30, 40] {
            h.record(v);
        }
        assert_eq!(h.count(), 4);
        assert_eq!(h.sum(), 100);
        assert_eq!(h.min(), Some(10));
        assert_eq!(h.max(), Some(40));
        assert_eq!(h.mean(), Some(25.0));
        // p50 of {10,20,30,40}: rank 2 lands in bucket_of(20)=5 → bound 32.
        assert_eq!(h.quantile_upper_bound(0.5), Some(32));
        assert_eq!(h.quantile_upper_bound(1.0), Some(64));
    }

    #[test]
    fn histogram_merge() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        a.record(5);
        b.record(500);
        a.merge(&b);
        assert_eq!(a.count(), 2);
        assert_eq!(a.min(), Some(5));
        assert_eq!(a.max(), Some(500));
    }

    #[test]
    fn registry_keys_and_totals() {
        let mut r = MetricsRegistry::new();
        r.jni_call("GetObjectClass", 120, false);
        r.jni_call("GetObjectClass", 80, true);
        r.jni_call("NewStringUTF", 300, false);
        r.fsm("local-reference", FsmOutcome::Moved);
        r.fsm("local-reference", FsmOutcome::NotApplicable);
        r.fsm("pinning", FsmOutcome::Error);
        r.add("gc.collections", 2);
        r.add("gc.collections", 1);

        assert_eq!(r.total_jni_calls(), 3);
        assert_eq!(r.total_fsm_transitions(), 3);
        assert_eq!(r.counter("gc.collections"), 3);
        assert_eq!(r.counter("missing"), 0);
        let jni: Vec<_> = r.jni_functions().collect();
        assert_eq!(jni[0].0, "GetObjectClass");
        assert_eq!(jni[0].1.calls, 2);
        assert_eq!(jni[0].1.failures, 1);
        let machines: Vec<_> = r.machines().collect();
        assert_eq!(
            machines[0],
            (
                "local-reference",
                &MachineMetrics {
                    applied: 1,
                    not_applicable: 1,
                    errors: 0
                }
            )
        );
        assert_eq!(machines[1].1.errors, 1);
    }

    #[test]
    fn snapshot_renders_all_sections() {
        let mut r = MetricsRegistry::new();
        r.jni_call("DeleteLocalRef", 50, false);
        r.fsm("local-reference", FsmOutcome::Moved);
        r.add("checks.pre", 7);
        let snap = Snapshot {
            taken_at_micros: 42,
            metrics: r,
            coverage: Coverage::default(),
        };
        let text = snap.render();
        assert!(text.contains("DeleteLocalRef"));
        assert!(text.contains("local-reference"));
        assert!(text.contains("checks.pre"));
        assert!(text.contains("+42us"));
        assert!(text.contains("trace coverage:"), "{text}");
        assert!(!text.contains("[SAMPLED]"), "{text}");
    }

    #[test]
    fn sampled_coverage_is_flagged_in_renders() {
        let snap = Snapshot {
            taken_at_micros: 1,
            metrics: MetricsRegistry::new(),
            coverage: Coverage {
                recorded: 10,
                suppressed_sampled: 5,
                ..Coverage::default()
            },
        };
        assert!(snap.coverage.sampled());
        assert!(!snap.coverage.complete());
        assert!(snap.render().contains("trace coverage [SAMPLED]"));
    }
}
