//! The [`Recorder`]: the cheaply clonable handle every substrate crate
//! carries.
//!
//! A recorder is either *enabled* — backed by per-thread ring shards + a
//! metrics registry — or *disabled*, in which case every recording call
//! is a single `Option` discriminant check and an immediate return.
//!
//! The backend is thread-safe: the handle is `Send + Sync`, event
//! sequence numbers come from one atomic counter, and the trace ring is
//! *sharded by recording thread* so concurrent checkers never contend on
//! a single ring lock. Export ([`Recorder::events`]) is the merge point:
//! it locks each shard once, splices the per-thread rings together, and
//! re-establishes global order by sequence number.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

use crate::event::{EventKind, FsmOutcome, TraceEvent};
use crate::metrics::{MetricsRegistry, Snapshot};
use crate::ring::TraceRing;

/// Default trace-ring capacity for [`Recorder::enabled`].
pub const DEFAULT_RING_CAPACITY: usize = 4096;

/// Number of per-thread ring shards an enabled recorder keeps. Events
/// recorded by thread `t` land in shard `t % RING_SHARDS`; merging back
/// into one timeline happens on export.
pub const RING_SHARDS: usize = 16;

#[derive(Debug)]
struct Inner {
    start: Instant,
    /// Global event sequence: total events ever recorded.
    seq: AtomicU64,
    /// Per-thread ring shards (each of the configured capacity).
    rings: Box<[Mutex<TraceRing>]>,
    metrics: Mutex<MetricsRegistry>,
    /// Interned event labels ([`Recorder::label`]): each distinct
    /// machine/transition name is allocated once for the recorder's
    /// lifetime, however many events carry it.
    labels: Mutex<HashMap<Box<str>, Arc<str>>>,
}

fn lock<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    // A panicking recorder user must not cascade into every other
    // thread's recording path: recover the data under the poison.
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

impl Inner {
    fn shard(&self, thread: u16) -> &Mutex<TraceRing> {
        &self.rings[thread as usize % self.rings.len()]
    }
}

/// Handle to the observability backend. Cloning shares the backend;
/// clones may be moved freely across threads.
///
/// The default recorder is disabled: every call is a no-op after one
/// branch. Construct with [`Recorder::enabled`] to start recording.
#[derive(Debug, Clone, Default)]
pub struct Recorder {
    inner: Option<Arc<Inner>>,
}

impl Recorder {
    /// A recorder that drops everything (the default).
    pub fn disabled() -> Recorder {
        Recorder { inner: None }
    }

    /// A recorder backed by [`RING_SHARDS`] per-thread rings of
    /// `ring_capacity` events each and an empty metrics registry.
    ///
    /// # Panics
    ///
    /// Panics if `ring_capacity` is zero.
    pub fn enabled(ring_capacity: usize) -> Recorder {
        let rings: Vec<Mutex<TraceRing>> = (0..RING_SHARDS)
            .map(|_| Mutex::new(TraceRing::new(ring_capacity)))
            .collect();
        Recorder {
            inner: Some(Arc::new(Inner {
                start: Instant::now(),
                seq: AtomicU64::new(0),
                rings: rings.into_boxed_slice(),
                metrics: Mutex::new(MetricsRegistry::new()),
                labels: Mutex::new(HashMap::new()),
            })),
        }
    }

    /// Whether this recorder is actually recording.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Starts a timer — `None` when disabled, so a disabled recorder
    /// never touches the clock.
    #[inline]
    pub fn timer(&self) -> Option<Instant> {
        self.inner.as_ref().map(|_| Instant::now())
    }

    /// Microseconds since the recorder was created (0 when disabled).
    pub fn elapsed_micros(&self) -> u64 {
        match &self.inner {
            Some(inner) => inner.start.elapsed().as_micros() as u64,
            None => 0,
        }
    }

    /// Records an event into the recording thread's ring shard.
    #[inline]
    pub fn event(&self, thread: u16, kind: EventKind) {
        if let Some(inner) = &self.inner {
            let micros = inner.start.elapsed().as_micros() as u64;
            let seq = inner.seq.fetch_add(1, Ordering::Relaxed);
            lock(inner.shard(thread)).push(TraceEvent {
                seq,
                micros,
                thread,
                kind,
            });
        }
    }

    /// Records a completed JNI call into the metrics registry.
    #[inline]
    pub fn jni_call(&self, func: &'static str, nanos: u64, failed: bool) {
        if let Some(inner) = &self.inner {
            lock(&inner.metrics).jni_call(func, nanos, failed);
        }
    }

    /// Records an FSM transition outcome into the metrics registry.
    #[inline]
    pub fn fsm(&self, machine: &str, outcome: FsmOutcome) {
        if let Some(inner) = &self.inner {
            lock(&inner.metrics).fsm(machine, outcome);
        }
    }

    /// Bumps a named counter.
    #[inline]
    pub fn count(&self, name: &'static str, delta: u64) {
        if let Some(inner) = &self.inner {
            lock(&inner.metrics).add(name, delta);
        }
    }

    /// Interns an event label: the first occurrence of a name allocates
    /// a shared `Arc<str>`, every later occurrence clones it. Callers
    /// that record a hot label per event (machine names, transition
    /// names) should route it through here — or better, pre-intern it at
    /// construction time — so an enabled ring does zero label
    /// allocations per event.
    ///
    /// A disabled recorder has no cache and falls back to a plain
    /// allocation; its callers are behind `is_enabled` checks anyway.
    pub fn label(&self, label: &str) -> Arc<str> {
        match &self.inner {
            Some(inner) => {
                let mut cache = lock(&inner.labels);
                match cache.get(label) {
                    Some(interned) => Arc::clone(interned),
                    None => {
                        let interned: Arc<str> = Arc::from(label);
                        cache.insert(Box::from(label), Arc::clone(&interned));
                        interned
                    }
                }
            }
            None => Arc::from(label),
        }
    }

    /// A point-in-time copy of the metrics, or `None` when disabled.
    pub fn snapshot(&self) -> Option<Snapshot> {
        self.inner.as_ref().map(|inner| Snapshot {
            taken_at_micros: inner.start.elapsed().as_micros() as u64,
            metrics: lock(&inner.metrics).clone(),
        })
    }

    /// The events currently held, merged across the per-thread ring
    /// shards into one sequence-ordered timeline (empty when disabled).
    ///
    /// This is the merge-on-export step: each shard is locked exactly
    /// once, so a concurrent recorder stalls at most one shard at a time.
    pub fn events(&self) -> Vec<TraceEvent> {
        match &self.inner {
            Some(inner) => {
                let mut merged: Vec<TraceEvent> = Vec::new();
                for ring in inner.rings.iter() {
                    merged.extend(lock(ring).iter().cloned());
                }
                merged.sort_unstable_by_key(|e| e.seq);
                merged
            }
            None => Vec::new(),
        }
    }

    /// Total events ever recorded, including evicted ones.
    pub fn total_events(&self) -> u64 {
        match &self.inner {
            Some(inner) => inner.seq.load(Ordering::Relaxed),
            None => 0,
        }
    }

    /// Events recorded but evicted from their shard (0 when disabled).
    /// When non-zero, [`Recorder::events`] is a truncated view of the
    /// run.
    pub fn dropped_events(&self) -> u64 {
        match &self.inner {
            Some(inner) => inner.rings.iter().map(|r| lock(r).dropped_events()).sum(),
            None => 0,
        }
    }

    /// The events as Chrome `chrome://tracing` JSON, or `None` when
    /// disabled. Evicted events are surfaced as a `dropped-events`
    /// metadata instant.
    pub fn chrome_trace(&self) -> Option<String> {
        self.inner
            .as_ref()
            .map(|_| crate::export::chrome_trace_with_drops(&self.events(), self.dropped_events()))
    }

    /// A plain-text dump of events + metrics, or `None` when disabled.
    /// Evicted events are counted in the header.
    pub fn text_dump(&self) -> Option<String> {
        let snapshot = self.snapshot()?;
        Some(crate::export::text_dump_with_drops(
            &self.events(),
            &snapshot,
            self.dropped_events(),
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::NO_THREAD;

    // The whole point of the Arc/atomic backend: handles cross threads.
    const _: fn() = || {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Recorder>();
    };

    #[test]
    fn disabled_recorder_drops_everything() {
        let r = Recorder::disabled();
        assert!(!r.is_enabled());
        assert!(r.timer().is_none());
        r.event(0, EventKind::GcSafepoint { collected: true });
        r.jni_call("NewStringUTF", 10, false);
        r.fsm("pinning", FsmOutcome::Moved);
        r.count("x", 1);
        assert!(r.snapshot().is_none());
        assert!(r.events().is_empty());
        assert_eq!(r.total_events(), 0);
        assert!(r.chrome_trace().is_none());
        assert!(r.text_dump().is_none());
    }

    #[test]
    fn clones_share_the_backend() {
        let a = Recorder::enabled(16);
        let b = a.clone();
        a.event(
            1,
            EventKind::JniEnter {
                func: "GetObjectClass",
            },
        );
        b.jni_call("GetObjectClass", 99, false);
        assert_eq!(a.total_events(), 1);
        assert_eq!(b.events().len(), 1);
        let snap = a.snapshot().unwrap();
        assert_eq!(snap.metrics.total_jni_calls(), 1);
    }

    #[test]
    fn labels_are_interned_per_recorder() {
        let r = Recorder::enabled(4);
        let first = r.label("local-reference");
        let second = r.label("local-reference");
        assert!(
            Arc::ptr_eq(&first, &second),
            "repeated labels share one allocation"
        );
        assert_eq!(&*r.label("other"), "other");
        // Disabled recorders have no cache but still hand back the text.
        assert_eq!(&*Recorder::disabled().label("x"), "x");
    }

    #[test]
    fn events_carry_monotonic_seq() {
        let r = Recorder::enabled(4);
        for _ in 0..6 {
            r.event(NO_THREAD, EventKind::GcSafepoint { collected: false });
        }
        let seqs: Vec<u64> = r.events().iter().map(|e| e.seq).collect();
        assert_eq!(seqs, vec![2, 3, 4, 5]);
        assert_eq!(r.total_events(), 6);
    }

    #[test]
    fn dropped_events_surface_in_dumps() {
        let r = Recorder::enabled(2);
        for _ in 0..5 {
            r.event(0, EventKind::GcSafepoint { collected: false });
        }
        assert_eq!(r.dropped_events(), 3);
        assert!(r.text_dump().unwrap().contains("2 events held, 3 dropped"));
        assert!(r.chrome_trace().unwrap().contains("\"dropped\":3"));
        assert_eq!(Recorder::disabled().dropped_events(), 0);
    }

    #[test]
    fn timer_works_when_enabled() {
        let r = Recorder::enabled(4);
        let t = r.timer().expect("enabled recorder must hand out timers");
        let nanos = t.elapsed().as_nanos() as u64;
        r.jni_call("NewGlobalRef", nanos, false);
        let snap = r.snapshot().unwrap();
        let (_, m) = snap.metrics.jni_functions().next().unwrap();
        assert_eq!(m.calls, 1);
    }

    #[test]
    fn export_merges_thread_shards_in_seq_order() {
        let r = Recorder::enabled(8);
        // Interleave three threads; each lands in a different shard.
        for i in 0..9u16 {
            r.event(i % 3, EventKind::GcSafepoint { collected: false });
        }
        let events = r.events();
        let seqs: Vec<u64> = events.iter().map(|e| e.seq).collect();
        assert_eq!(seqs, (0..9).collect::<Vec<u64>>(), "merged by seq");
        let threads: Vec<u16> = events.iter().map(|e| e.thread).collect();
        assert_eq!(threads, vec![0, 1, 2, 0, 1, 2, 0, 1, 2]);
    }

    #[test]
    fn shard_eviction_is_per_thread() {
        let r = Recorder::enabled(2);
        // Thread 0 overflows its own shard; thread 1 must keep its events.
        for _ in 0..5 {
            r.event(0, EventKind::GcSafepoint { collected: false });
        }
        r.event(1, EventKind::GcSafepoint { collected: true });
        assert_eq!(r.dropped_events(), 3);
        let held: Vec<u16> = r.events().iter().map(|e| e.thread).collect();
        assert_eq!(held, vec![0, 0, 1]);
    }

    #[test]
    fn concurrent_recording_from_spawned_threads() {
        let r = Recorder::enabled(1024);
        std::thread::scope(|scope| {
            for t in 0..4u16 {
                let r = r.clone();
                scope.spawn(move || {
                    for _ in 0..100 {
                        r.event(t, EventKind::GcSafepoint { collected: false });
                        r.count("gc.safepoints", 1);
                    }
                });
            }
        });
        assert_eq!(r.total_events(), 400);
        assert_eq!(r.dropped_events(), 0);
        let events = r.events();
        assert_eq!(events.len(), 400);
        // Seqs are unique and the export is sorted.
        assert!(events.windows(2).all(|w| w[0].seq < w[1].seq));
        assert_eq!(r.snapshot().unwrap().metrics.counter("gc.safepoints"), 400);
    }
}
