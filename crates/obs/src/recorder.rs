//! The [`Recorder`]: the cheaply clonable handle every substrate crate
//! carries.
//!
//! A recorder is either *enabled* — backed by per-thread SPSC rings, an
//! intern table, a metrics store, and a trace policy — or *disabled*, in
//! which case every recording call is a single `Option` discriminant
//! check and an immediate return.
//!
//! ## The fast path
//!
//! The first event a thread records against a backend registers the
//! thread as a *writer*: it claims a private [`SpscRing`] slot, after
//! which the record path is wait-free — no lock, no shared-cacheline
//! read-modify-write:
//!
//! * **events** are encoded as fixed-width [`RawEvent`] words straight
//!   into the thread's own ring (labels are intern-table ids, not
//!   strings);
//! * **sequence numbers** are claimed from the global counter in blocks
//!   of [`SEQ_BLOCK`], so the shared atomic is touched once per block;
//! * **timestamps** are batched: one clock read per [`STAMP_BATCH`]
//!   events, monotone within a ring;
//! * **metrics** accumulate in thread-local batches and are folded into
//!   the shared store every [`FLUSH_EVERY`] operations, at thread exit,
//!   and before a same-thread snapshot.
//!
//! Export ([`Recorder::events`]) is the merge point: it snapshots each
//! ring without stopping writers and k-way merges by sequence number.
//!
//! ## Trace policy
//!
//! A [`TracePolicy`] can disable or 1-in-N-sample tracing per label
//! (function or machine), swappable mid-workload via
//! [`Recorder::set_policy`]. The policy governs the *ring only*:
//! metrics and checker verdicts always see every operation, so verdict
//! streams are identical across policy configurations. Suppression is
//! accounted in [`Coverage`] and flagged in every export.

use std::cell::RefCell;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock, Weak};
use std::time::Instant;

use crate::event::{EventKind, FsmOutcome, TraceEvent, VerdictAction};
use crate::metrics::{Coverage, FuncMetrics, MachineMetrics, MetricsRegistry, Snapshot};
use crate::policy::{PolicyTable, TracePolicy, POLICY_LABEL_SLOTS};
use crate::raw::{op, LabelId, RawEvent, ENTITY_KEY_BIT, RAW_WORDS};
use crate::spsc::SpscRing;

/// Default per-writer ring capacity for [`Recorder::enabled`].
pub const DEFAULT_RING_CAPACITY: usize = 4096;

/// Maximum registered writer threads per backend. The last slot is a
/// shared overflow ring (mutex-serialised) for threads beyond the limit,
/// so recording never fails — it just stops being wait-free for the
/// overflow crowd.
pub const MAX_WRITERS: usize = 64;

const OVERFLOW_SLOT: usize = MAX_WRITERS - 1;

/// Reserved intern ids, installed by [`Recorder::enabled`] before any
/// caller-supplied label so their values are fixed.
const GC_LABEL: u32 = 0;
const PIN_LABEL: u32 = 1;

/// One call in this many (per thread) gets a latency timer when timers
/// are enabled; see [`Recorder::timer`].
const TIMER_SAMPLE: u32 = 8;

/// Sequence numbers are claimed from the shared counter in blocks of
/// this size: one `fetch_add` per block instead of per event. Cross-
/// thread interleaving in the merged timeline is therefore approximate
/// at block granularity; within a thread, order is exact.
pub const SEQ_BLOCK: u64 = 64;

/// Events per wall-clock read: timestamps within a batch share one
/// reading, so timelines are coarse to roughly this granularity.
pub const STAMP_BATCH: u32 = 32;

/// Thread-local metric batches are folded into the shared store every
/// this many recording operations (plus at thread exit and before a
/// same-thread snapshot).
pub const FLUSH_EVERY: u32 = 256;

fn lock<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    // A panicking recorder user must not cascade into every other
    // thread's recording path: recover the data under the poison.
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// Label interning state plus the current policy spec. One mutex guards
/// both so label registration can consult the spec for the new label's
/// sampling rate without lock-ordering hazards.
#[derive(Debug)]
struct InternState {
    ids: HashMap<Box<str>, u32>,
    names: Vec<Arc<str>>,
    spec: TracePolicy,
}

fn intern_locked(st: &mut InternState, table: &PolicyTable, label: &str) -> u32 {
    if let Some(&id) = st.ids.get(label) {
        return id;
    }
    let id = st.names.len() as u32;
    st.ids.insert(Box::from(label), id);
    st.names.push(Arc::from(label));
    if (id as usize) < POLICY_LABEL_SLOTS {
        table.rates[id as usize].store(st.spec.rate_for_name(label), Ordering::Relaxed);
    }
    id
}

/// Thread-local, id-keyed metric batches (and their shared aggregate).
#[derive(Debug, Default)]
struct IdMetrics {
    jni: Vec<FuncMetrics>,
    machines: Vec<MachineMetrics>,
    counters: Vec<u64>,
}

fn at<T: Default + Clone>(v: &mut Vec<T>, id: u32) -> &mut T {
    let id = id as usize;
    if id >= v.len() {
        v.resize(id + 1, T::default());
    }
    &mut v[id]
}

impl IdMetrics {
    /// Folds this batch into `global` and resets it (capacity kept).
    fn drain_into(&mut self, global: &mut IdMetrics) {
        for (id, m) in self.jni.iter_mut().enumerate() {
            if m.calls > 0 {
                at(&mut global.jni, id as u32).merge(m);
                *m = FuncMetrics::default();
            }
        }
        for (id, m) in self.machines.iter_mut().enumerate() {
            if m.total() > 0 {
                at(&mut global.machines, id as u32).merge(m);
                *m = MachineMetrics::default();
            }
        }
        for (id, c) in self.counters.iter_mut().enumerate() {
            if *c > 0 {
                *at(&mut global.counters, id as u32) += *c;
                *c = 0;
            }
        }
    }
}

#[derive(Debug)]
struct Inner {
    /// Globally unique backend id, the thread-local producer key.
    id: u64,
    start: Instant,
    ring_capacity: usize,
    /// Global sequence counter, claimed in [`SEQ_BLOCK`] blocks.
    seq: AtomicU64,
    /// Next writer slot to hand out (never reused).
    next_slot: AtomicUsize,
    /// Per-writer rings, allocated lazily at registration.
    slots: Box<[OnceLock<SpscRing>]>,
    /// Serialises producers that share the overflow slot.
    overflow_lock: Mutex<()>,
    intern: Mutex<InternState>,
    policy: PolicyTable,
    /// Flushed metric aggregates, id-keyed; resolved to names at
    /// snapshot time.
    store: Mutex<IdMetrics>,
    suppressed_disabled: AtomicU64,
    suppressed_sampled: AtomicU64,
    auto_downsampled: AtomicU64,
}

static NEXT_BACKEND_ID: AtomicU64 = AtomicU64::new(1);

/// One thread's registration with one backend: its ring slot, its
/// current sequence block and timestamp batch, its sampling counters,
/// and its unflushed metric batch. Lives in thread-local storage; the
/// `Drop` impl flushes at thread exit (before `join` returns).
#[derive(Debug)]
struct Producer {
    backend: u64,
    inner: Weak<Inner>,
    slot: usize,
    exclusive: bool,
    seq_next: u64,
    seq_end: u64,
    micros: u64,
    stamp_left: u32,
    /// Policy epoch the sampling counters belong to.
    epoch: u64,
    /// Per-label events seen this epoch (sampling phase + auto knee).
    seen: Vec<u32>,
    local: IdMetrics,
    supp_disabled: u64,
    supp_sampled: u64,
    supp_auto: u64,
    ops: u32,
    /// Calls until the next latency timer is handed out.
    timer_left: u32,
}

thread_local! {
    static PRODUCERS: RefCell<Vec<Producer>> = const { RefCell::new(Vec::new()) };
}

impl Producer {
    fn register(inner: &Arc<Inner>) -> Producer {
        let claimed = inner.next_slot.fetch_add(1, Ordering::Relaxed);
        let (slot, exclusive) = if claimed < OVERFLOW_SLOT {
            (claimed, true)
        } else {
            (OVERFLOW_SLOT, false)
        };
        inner.slots[slot].get_or_init(|| SpscRing::new(inner.ring_capacity));
        Producer {
            backend: inner.id,
            inner: Arc::downgrade(inner),
            slot,
            exclusive,
            seq_next: 0,
            seq_end: 0,
            micros: 0,
            stamp_left: 0,
            epoch: inner.policy.epoch.load(Ordering::Acquire),
            seen: Vec::new(),
            local: IdMetrics::default(),
            supp_disabled: 0,
            supp_sampled: 0,
            supp_auto: 0,
            ops: 0,
            timer_left: 0,
        }
    }

    /// Applies the trace policy and, if the event survives, encodes and
    /// pushes it into this thread's ring. Metrics are the caller's
    /// business — they are never sampled.
    #[inline]
    #[allow(clippy::too_many_arguments)] // the five record words plus routing
    fn trace(&mut self, inner: &Inner, thread: u16, op: u8, flags: u8, label: u32, x: u64, y: u64) {
        let epoch = inner.policy.epoch.load(Ordering::Acquire);
        if epoch != self.epoch {
            self.epoch = epoch;
            self.seen.iter_mut().for_each(|c| *c = 0);
        }
        let mut rate = inner.policy.rate_for(label);
        let auto_threshold = inner.policy.auto_threshold.load(Ordering::Relaxed);
        let mut auto_hit = false;
        let seen = if rate != 1 || auto_threshold > 0 {
            let c = at(&mut self.seen, label.min(POLICY_LABEL_SLOTS as u32));
            *c = c.saturating_add(1);
            *c
        } else {
            0
        };
        if auto_threshold > 0 && seen > auto_threshold && rate > 0 {
            let auto_rate = inner.policy.auto_rate.load(Ordering::Relaxed);
            if auto_rate > rate {
                rate = auto_rate;
                auto_hit = true;
            }
        }
        match rate {
            1 => {}
            0 => {
                self.supp_disabled += 1;
                return;
            }
            n => {
                if (seen - 1) % n != 0 {
                    if auto_hit {
                        self.supp_auto += 1;
                    } else {
                        self.supp_sampled += 1;
                    }
                    return;
                }
            }
        }
        let seq = self.next_seq(inner);
        let micros = self.stamp(inner);
        let words = RawEvent {
            seq,
            micros,
            thread,
            op,
            flags,
            label,
            x,
            y,
        }
        .to_words();
        let ring = inner.slots[self.slot].get().expect("registered slot");
        if self.exclusive {
            ring.push(words);
        } else {
            let _guard = lock(&inner.overflow_lock);
            ring.push(words);
        }
    }

    #[inline]
    fn next_seq(&mut self, inner: &Inner) -> u64 {
        if self.seq_next == self.seq_end {
            let base = inner.seq.fetch_add(SEQ_BLOCK, Ordering::Relaxed);
            self.seq_next = base;
            self.seq_end = base + SEQ_BLOCK;
            // A fresh block is a natural point to resynchronise the
            // batched clock.
            self.micros = inner.start.elapsed().as_micros() as u64;
            self.stamp_left = STAMP_BATCH;
        }
        let seq = self.seq_next;
        self.seq_next += 1;
        seq
    }

    #[inline]
    fn stamp(&mut self, inner: &Inner) -> u64 {
        if self.stamp_left == 0 {
            self.micros = inner.start.elapsed().as_micros() as u64;
            self.stamp_left = STAMP_BATCH;
        }
        self.stamp_left -= 1;
        self.micros
    }

    /// Bumps the op counter and flushes the metric batch if due.
    #[inline]
    fn tick(&mut self, inner: &Inner) {
        self.ops += 1;
        if self.ops >= FLUSH_EVERY {
            self.flush_with(inner);
        }
    }

    fn flush_with(&mut self, inner: &Inner) {
        self.ops = 0;
        self.local.drain_into(&mut lock(&inner.store));
        if self.supp_disabled > 0 {
            inner
                .suppressed_disabled
                .fetch_add(self.supp_disabled, Ordering::Relaxed);
            self.supp_disabled = 0;
        }
        if self.supp_sampled > 0 {
            inner
                .suppressed_sampled
                .fetch_add(self.supp_sampled, Ordering::Relaxed);
            self.supp_sampled = 0;
        }
        if self.supp_auto > 0 {
            inner
                .auto_downsampled
                .fetch_add(self.supp_auto, Ordering::Relaxed);
            self.supp_auto = 0;
        }
    }
}

impl Drop for Producer {
    fn drop(&mut self) {
        // Thread exit (TLS destructors run before `join` returns):
        // surface whatever this thread still holds locally. If the
        // backend is already gone there is nobody to tell.
        if let Some(inner) = self.inner.upgrade() {
            self.flush_with(&inner);
        }
    }
}

/// Handle to the observability backend. Cloning shares the backend;
/// clones may be moved freely across threads.
///
/// The default recorder is disabled: every call is a no-op after one
/// branch. Construct with [`Recorder::enabled`] to start recording.
#[derive(Debug, Clone, Default)]
pub struct Recorder {
    inner: Option<Arc<Inner>>,
}

impl Recorder {
    /// A recorder that drops everything (the default).
    pub fn disabled() -> Recorder {
        Recorder { inner: None }
    }

    /// A recorder backed by per-writer-thread SPSC rings of
    /// `ring_capacity` events each (allocated lazily as threads start
    /// recording), an empty metrics store, and the
    /// [`TracePolicy::full`] policy.
    pub fn enabled(ring_capacity: usize) -> Recorder {
        let slots: Vec<OnceLock<SpscRing>> = (0..MAX_WRITERS).map(|_| OnceLock::new()).collect();
        let inner = Inner {
            id: NEXT_BACKEND_ID.fetch_add(1, Ordering::Relaxed),
            start: Instant::now(),
            ring_capacity,
            seq: AtomicU64::new(0),
            next_slot: AtomicUsize::new(0),
            slots: slots.into_boxed_slice(),
            overflow_lock: Mutex::new(()),
            intern: Mutex::new(InternState {
                ids: HashMap::new(),
                names: Vec::new(),
                spec: TracePolicy::full(),
            }),
            policy: PolicyTable::new(),
            store: Mutex::new(IdMetrics::default()),
            suppressed_disabled: AtomicU64::new(0),
            suppressed_sampled: AtomicU64::new(0),
            auto_downsampled: AtomicU64::new(0),
        };
        let recorder = Recorder {
            inner: Some(Arc::new(inner)),
        };
        // Reserve labels for events that have no caller-supplied name,
        // so the policy can address them ("gc", "pin").
        debug_assert_eq!(recorder.intern("gc").0, GC_LABEL);
        debug_assert_eq!(recorder.intern("pin").0, PIN_LABEL);
        recorder
    }

    /// Whether this recorder is actually recording.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Runs `f` with this thread's producer for the backend,
    /// registering the thread as a writer on first use. Returns `None`
    /// (dropping the operation) only in teardown corner cases — TLS
    /// already destroyed, or a reentrant call from inside the producer.
    #[inline]
    fn with_producer<R>(
        inner: &Arc<Inner>,
        f: impl FnOnce(&mut Producer, &Inner) -> R,
    ) -> Option<R> {
        PRODUCERS
            .try_with(|cell| {
                let mut producers = cell.try_borrow_mut().ok()?;
                let idx = match producers.iter().position(|p| p.backend == inner.id) {
                    Some(idx) => idx,
                    None => {
                        // Drop registrations whose backend died so a
                        // thread outliving many recorders doesn't
                        // accumulate state without bound.
                        producers.retain(|p| p.inner.strong_count() > 0);
                        producers.push(Producer::register(inner));
                        producers.len() - 1
                    }
                };
                Some(f(&mut producers[idx], inner.as_ref()))
            })
            .ok()
            .flatten()
    }

    /// Flushes the calling thread's metric batch for this backend, if it
    /// has one, without registering a writer slot.
    fn flush_current(inner: &Arc<Inner>) {
        let _ = PRODUCERS.try_with(|cell| {
            if let Ok(mut producers) = cell.try_borrow_mut() {
                if let Some(p) = producers.iter_mut().find(|p| p.backend == inner.id) {
                    p.flush_with(inner);
                }
            }
        });
    }

    /// Flushes the calling thread's batched metrics into the shared
    /// store, making them visible to [`snapshot`](Self::snapshot) from
    /// other threads. Threads flush automatically every
    /// [`FLUSH_EVERY`] operations and when they exit; call this at the
    /// end of work on a *scoped* or pooled thread, where exit (and the
    /// TLS-destructor flush it triggers) may come after the coordinating
    /// thread has already resumed. No-op when disabled.
    pub fn flush(&self) {
        if let Some(inner) = &self.inner {
            Self::flush_current(inner);
        }
    }

    /// Starts a latency timer — `None` when disabled or when the current
    /// policy turned latency timers off, so those paths never touch the
    /// clock.
    ///
    /// Even with timers on, only one call in [`TIMER_SAMPLE`] (per
    /// thread) gets a timer: a clock read costs more than an entire ring
    /// write, and the latency *histograms* only need a representative
    /// sample, not a census. Call counts are exact regardless — only
    /// the histogram population is thinned.
    #[inline]
    pub fn timer(&self) -> Option<Instant> {
        let inner = self.inner.as_ref()?;
        if !inner.policy.latency_timers.load(Ordering::Relaxed) {
            return None;
        }
        let due = Self::with_producer(inner, |p, _| {
            if p.timer_left == 0 {
                p.timer_left = TIMER_SAMPLE - 1;
                true
            } else {
                p.timer_left -= 1;
                false
            }
        })
        // Teardown corner cases (no producer) lose nothing by timing.
        .unwrap_or(true);
        if due {
            Some(Instant::now())
        } else {
            None
        }
    }

    /// Microseconds since the recorder was created (0 when disabled).
    pub fn elapsed_micros(&self) -> u64 {
        match &self.inner {
            Some(inner) => inner.start.elapsed().as_micros() as u64,
            None => 0,
        }
    }

    /// Interns a label, returning its dense id. Hot instrumentation
    /// sites intern once (at wiring time) and record by id; the id is
    /// also the label's key in the policy rate table and metric store.
    /// Meaningless (always id 0) on a disabled recorder.
    pub fn intern(&self, label: &str) -> LabelId {
        match &self.inner {
            Some(inner) => LabelId(intern_locked(
                &mut lock(&inner.intern),
                &inner.policy,
                label,
            )),
            None => LabelId(0),
        }
    }

    /// Interns an event label and returns the shared text: the first
    /// occurrence allocates, every later occurrence clones the same
    /// `Arc`. A disabled recorder has no cache and falls back to a plain
    /// allocation.
    pub fn label(&self, label: &str) -> Arc<str> {
        match &self.inner {
            Some(inner) => {
                let mut st = lock(&inner.intern);
                let id = intern_locked(&mut st, &inner.policy, label);
                Arc::clone(&st.names[id as usize])
            }
            None => Arc::from(label),
        }
    }

    /// Installs a new trace policy, effective for every producer from
    /// its next event. In-flight events are never lost: producers
    /// observe the epoch bump at the next record and merely reset their
    /// sampling counters.
    pub fn set_policy(&self, policy: TracePolicy) {
        let Some(inner) = &self.inner else { return };
        let mut st = lock(&inner.intern);
        for (name, _) in policy.rules() {
            intern_locked(&mut st, &inner.policy, name);
        }
        st.spec = policy;
        let st = &*st;
        inner.policy.install(&st.spec, |id| match st.names.get(id) {
            Some(name) => st.spec.rate_for_name(name),
            None => st.spec.default_rate(),
        });
    }

    /// The currently installed policy spec (`None` when disabled).
    pub fn policy(&self) -> Option<TracePolicy> {
        self.inner
            .as_ref()
            .map(|inner| lock(&inner.intern).spec.clone())
    }

    /// The policy epoch: bumped by every [`set_policy`](Self::set_policy).
    pub fn policy_epoch(&self) -> u64 {
        match &self.inner {
            Some(inner) => inner.policy.epoch.load(Ordering::Acquire),
            None => 0,
        }
    }

    // ----- fast path: record by pre-interned label id -----

    /// `Call:C→Java` by label id.
    #[inline]
    pub fn jni_enter_id(&self, thread: u16, func: LabelId) {
        if let Some(inner) = &self.inner {
            Self::with_producer(inner, |p, inner| {
                p.trace(inner, thread, op::JNI_ENTER, 0, func.0, 0, 0);
                p.tick(inner);
            });
        }
    }

    /// `Return:Java→C` by label id: records the exit event *and* the
    /// per-function call metrics (latency only when a timer ran).
    #[inline]
    pub fn jni_exit_id(&self, thread: u16, func: LabelId, nanos: Option<u64>, failed: bool) {
        if let Some(inner) = &self.inner {
            Self::with_producer(inner, |p, inner| {
                let m = at(&mut p.local.jni, func.0);
                m.calls += 1;
                if failed {
                    m.failures += 1;
                }
                if let Some(ns) = nanos {
                    m.latency.record(ns);
                }
                p.trace(
                    inner,
                    thread,
                    op::JNI_EXIT,
                    u8::from(failed),
                    func.0,
                    nanos.unwrap_or(0),
                    0,
                );
                p.tick(inner);
            });
        }
    }

    /// `Call:Java→C` by label id.
    #[inline]
    pub fn native_enter_id(&self, thread: u16, method: LabelId) {
        if let Some(inner) = &self.inner {
            Self::with_producer(inner, |p, inner| {
                p.trace(inner, thread, op::NATIVE_ENTER, 0, method.0, 0, 0);
                p.tick(inner);
            });
        }
    }

    /// `Return:C→Java` by label id.
    #[inline]
    pub fn native_exit_id(&self, thread: u16, method: LabelId, nanos: u64, failed: bool) {
        if let Some(inner) = &self.inner {
            Self::with_producer(inner, |p, inner| {
                p.trace(
                    inner,
                    thread,
                    op::NATIVE_EXIT,
                    u8::from(failed),
                    method.0,
                    nanos,
                    0,
                );
                p.tick(inner);
            });
        }
    }

    /// An FSM transition by label ids: records the event *and* the
    /// per-machine transition metrics in one pass.
    #[inline]
    pub fn fsm_transition_id(
        &self,
        thread: u16,
        machine: LabelId,
        transition: LabelId,
        outcome: FsmOutcome,
        entity: Option<LabelId>,
    ) {
        if let Some(inner) = &self.inner {
            Self::with_producer(inner, |p, inner| {
                let m = at(&mut p.local.machines, machine.0);
                let flags = match outcome {
                    FsmOutcome::Moved => {
                        m.applied += 1;
                        0
                    }
                    FsmOutcome::Error => {
                        m.errors += 1;
                        1
                    }
                    FsmOutcome::NotApplicable => {
                        m.not_applicable += 1;
                        2
                    }
                };
                p.trace(
                    inner,
                    thread,
                    op::FSM_TRANSITION,
                    flags,
                    machine.0,
                    u64::from(transition.0),
                    entity.map(|e| u64::from(e.0) + 1).unwrap_or(0),
                );
                p.tick(inner);
            });
        }
    }

    /// An FSM transition whose entity is an opaque numeric key rather
    /// than an interned label. This is the hot-path variant for
    /// instrumentation sites whose entities are short-lived (every new
    /// reference is a fresh entity, so a label cache never hits): the
    /// key is packed by the caller from the entity's identity bits and
    /// costs nothing to produce. Exports render it as `entity#<hex>`;
    /// equal keys render equally, which is all forensics matching
    /// needs.
    #[inline]
    pub fn fsm_transition_keyed(
        &self,
        thread: u16,
        machine: LabelId,
        transition: LabelId,
        outcome: FsmOutcome,
        key: u64,
    ) {
        if let Some(inner) = &self.inner {
            Self::with_producer(inner, |p, inner| {
                let m = at(&mut p.local.machines, machine.0);
                let flags = match outcome {
                    FsmOutcome::Moved => {
                        m.applied += 1;
                        0
                    }
                    FsmOutcome::Error => {
                        m.errors += 1;
                        1
                    }
                    FsmOutcome::NotApplicable => {
                        m.not_applicable += 1;
                        2
                    }
                };
                p.trace(
                    inner,
                    thread,
                    op::FSM_TRANSITION,
                    flags,
                    machine.0,
                    u64::from(transition.0),
                    ENTITY_KEY_BIT | (key & !ENTITY_KEY_BIT),
                );
                p.tick(inner);
            });
        }
    }

    /// A checker verdict by label ids.
    #[inline]
    pub fn verdict_id(
        &self,
        thread: u16,
        machine: LabelId,
        function: LabelId,
        action: VerdictAction,
    ) {
        if let Some(inner) = &self.inner {
            Self::with_producer(inner, |p, inner| {
                let flags = match action {
                    VerdictAction::Warn => 0,
                    VerdictAction::AbortVm => 1,
                    VerdictAction::ThrowException => 2,
                };
                p.trace(
                    inner,
                    thread,
                    op::VERDICT,
                    flags,
                    machine.0,
                    u64::from(function.0),
                    0,
                );
                p.tick(inner);
            });
        }
    }

    /// Bumps a counter by pre-interned id.
    #[inline]
    pub fn count_id(&self, counter: LabelId, delta: u64) {
        if let Some(inner) = &self.inner {
            Self::with_producer(inner, |p, inner| {
                *at(&mut p.local.counters, counter.0) += delta;
                p.tick(inner);
            });
        }
    }

    /// A GC safepoint. Traced under the reserved `"gc"` policy label.
    #[inline]
    pub fn gc_safepoint_id(&self, thread: u16, collected: bool) {
        if let Some(inner) = &self.inner {
            Self::with_producer(inner, |p, inner| {
                p.trace(
                    inner,
                    thread,
                    op::GC_SAFEPOINT,
                    u8::from(collected),
                    GC_LABEL,
                    0,
                    0,
                );
                p.tick(inner);
            });
        }
    }

    /// A completed GC cycle. Traced under the reserved `"gc"` policy
    /// label.
    #[inline]
    pub fn gc_id(&self, thread: u16, live: u64, freed: u64) {
        if let Some(inner) = &self.inner {
            Self::with_producer(inner, |p, inner| {
                p.trace(inner, thread, op::GC, 0, GC_LABEL, live, freed);
                p.tick(inner);
            });
        }
    }

    /// A pin acquisition. Traced under the reserved `"pin"` policy
    /// label.
    #[inline]
    pub fn pin_acquire_id(&self, thread: u16, pin: u32) {
        if let Some(inner) = &self.inner {
            Self::with_producer(inner, |p, inner| {
                p.trace(
                    inner,
                    thread,
                    op::PIN_ACQUIRE,
                    0,
                    PIN_LABEL,
                    u64::from(pin),
                    0,
                );
                p.tick(inner);
            });
        }
    }

    /// A pin release. Traced under the reserved `"pin"` policy label.
    #[inline]
    pub fn pin_release_id(&self, thread: u16, pin: u32, ok: bool) {
        if let Some(inner) = &self.inner {
            Self::with_producer(inner, |p, inner| {
                p.trace(
                    inner,
                    thread,
                    op::PIN_RELEASE,
                    u8::from(ok),
                    PIN_LABEL,
                    u64::from(pin),
                    0,
                );
                p.tick(inner);
            });
        }
    }

    // ----- compatibility path: record by enum / name -----

    /// Records an event given in enum form. This is the cold path: each
    /// label is resolved through the intern table per call. Hot sites
    /// should pre-intern and use the `*_id` methods.
    pub fn event(&self, thread: u16, kind: EventKind) {
        let Some(inner) = &self.inner else { return };
        let raw = {
            let mut st = lock(&inner.intern);
            RawEvent::encode(0, 0, thread, &kind, |s| {
                intern_locked(&mut st, &inner.policy, s)
            })
        };
        // Events without a caller-supplied name borrow a reserved label
        // so the policy can still address them.
        let label = match raw.op {
            op::GC_SAFEPOINT | op::GC => GC_LABEL,
            op::PIN_ACQUIRE | op::PIN_RELEASE => PIN_LABEL,
            _ => raw.label,
        };
        Self::with_producer(inner, |p, inner| {
            p.trace(inner, thread, raw.op, raw.flags, label, raw.x, raw.y);
            p.tick(inner);
        });
    }

    /// Records a completed JNI call into the metrics store (by name;
    /// cold path).
    pub fn jni_call(&self, func: &str, nanos: u64, failed: bool) {
        if self.inner.is_some() {
            let id = self.intern(func);
            let Some(inner) = &self.inner else { return };
            Self::with_producer(inner, |p, inner| {
                let m = at(&mut p.local.jni, id.0);
                m.calls += 1;
                if failed {
                    m.failures += 1;
                }
                m.latency.record(nanos);
                p.tick(inner);
            });
        }
    }

    /// Records an FSM transition outcome into the metrics store (by
    /// name; cold path).
    pub fn fsm(&self, machine: &str, outcome: FsmOutcome) {
        if self.inner.is_some() {
            let id = self.intern(machine);
            let Some(inner) = &self.inner else { return };
            Self::with_producer(inner, |p, inner| {
                let m = at(&mut p.local.machines, id.0);
                match outcome {
                    FsmOutcome::Moved => m.applied += 1,
                    FsmOutcome::Error => m.errors += 1,
                    FsmOutcome::NotApplicable => m.not_applicable += 1,
                }
                p.tick(inner);
            });
        }
    }

    /// Bumps a named counter (by name; cold path).
    pub fn count(&self, name: &str, delta: u64) {
        if self.inner.is_some() {
            let id = self.intern(name);
            self.count_id(id, delta);
        }
    }

    // ----- export -----

    /// A point-in-time copy of the metrics plus coverage accounting, or
    /// `None` when disabled. Flushes the calling thread's batch first;
    /// other threads' unflushed tails (at most [`FLUSH_EVERY`] - 1
    /// operations each) appear after their next flush or exit.
    pub fn snapshot(&self) -> Option<Snapshot> {
        let inner = self.inner.as_ref()?;
        Self::flush_current(inner);
        let mut metrics = MetricsRegistry::new();
        {
            let st = lock(&inner.intern);
            let store = lock(&inner.store);
            let name = |id: usize| st.names.get(id).map(|n| &**n).unwrap_or("label#?");
            for (id, m) in store.jni.iter().enumerate() {
                if m.calls > 0 {
                    metrics.merge_jni(name(id), m);
                }
            }
            for (id, m) in store.machines.iter().enumerate() {
                if m.total() > 0 {
                    metrics.merge_machine(name(id), m);
                }
            }
            for (id, &c) in store.counters.iter().enumerate() {
                if c > 0 {
                    metrics.add(name(id), c);
                }
            }
        }
        Some(Snapshot {
            taken_at_micros: inner.start.elapsed().as_micros() as u64,
            metrics,
            coverage: self.coverage(),
        })
    }

    /// Trace-ring coverage accounting: events recorded, evicted, and
    /// policy-suppressed (zeroed when disabled). The calling thread's
    /// unflushed suppression counts are folded in first.
    pub fn coverage(&self) -> Coverage {
        let Some(inner) = &self.inner else {
            return Coverage::default();
        };
        Self::flush_current(inner);
        Coverage {
            recorded: self.total_events(),
            ring_dropped: self.dropped_events(),
            suppressed_disabled: inner.suppressed_disabled.load(Ordering::Relaxed),
            suppressed_sampled: inner.suppressed_sampled.load(Ordering::Relaxed),
            auto_downsampled: inner.auto_downsampled.load(Ordering::Relaxed),
            policy_epoch: inner.policy.epoch.load(Ordering::Acquire),
        }
    }

    /// The events currently held, merged across the per-writer rings
    /// into one sequence-ordered timeline (empty when disabled).
    ///
    /// Each ring is snapshotted without stopping its writer, then the
    /// per-ring streams — already sequence-ascending — are k-way merged
    /// by `(seq, slot index)`.
    pub fn events(&self) -> Vec<TraceEvent> {
        use std::cmp::Reverse;
        use std::collections::BinaryHeap;

        let Some(inner) = &self.inner else {
            return Vec::new();
        };
        let names: Vec<Arc<str>> = lock(&inner.intern).names.clone();
        let mut streams: Vec<Vec<[u64; RAW_WORDS]>> = inner
            .slots
            .iter()
            .filter_map(|slot| slot.get())
            .map(|ring| ring.snapshot())
            .collect();
        for stream in &mut streams {
            // Exclusive rings are seq-sorted by construction; the shared
            // overflow ring interleaves several producers' blocks.
            if stream.windows(2).any(|w| w[0][0] > w[1][0]) {
                stream.sort_unstable_by_key(|words| words[0]);
            }
        }
        let mut heap: BinaryHeap<Reverse<(u64, usize)>> = streams
            .iter()
            .enumerate()
            .filter(|(_, s)| !s.is_empty())
            .map(|(i, s)| Reverse((s[0][0], i)))
            .collect();
        let mut cursors = vec![0usize; streams.len()];
        let mut out = Vec::with_capacity(streams.iter().map(Vec::len).sum());
        while let Some(Reverse((_, i))) = heap.pop() {
            let words = streams[i][cursors[i]];
            cursors[i] += 1;
            out.push(RawEvent::from_words(words).decode(&names));
            if let Some(next) = streams[i].get(cursors[i]) {
                heap.push(Reverse((next[0], i)));
            }
        }
        out
    }

    /// Total events ever recorded into the rings, including evicted ones
    /// (policy-suppressed events are not recorded; see
    /// [`coverage`](Self::coverage)).
    pub fn total_events(&self) -> u64 {
        match &self.inner {
            Some(inner) => inner
                .slots
                .iter()
                .filter_map(|slot| slot.get())
                .map(SpscRing::total_pushed)
                .sum(),
            None => 0,
        }
    }

    /// Events recorded but evicted from their ring (0 when disabled).
    /// When non-zero, [`Recorder::events`] is a truncated view of the
    /// run.
    pub fn dropped_events(&self) -> u64 {
        match &self.inner {
            Some(inner) => inner
                .slots
                .iter()
                .filter_map(|slot| slot.get())
                .map(SpscRing::dropped)
                .sum(),
            None => 0,
        }
    }

    /// The events as Chrome `chrome://tracing` JSON, or `None` when
    /// disabled. Evicted events surface as a `dropped-events` metadata
    /// instant; policy suppression as a `trace-sampling` instant.
    pub fn chrome_trace(&self) -> Option<String> {
        self.inner
            .as_ref()
            .map(|_| crate::export::chrome_trace_with_coverage(&self.events(), self.coverage()))
    }

    /// A plain-text dump of events + metrics, or `None` when disabled.
    /// Evicted and suppressed events are counted in the header.
    pub fn text_dump(&self) -> Option<String> {
        let snapshot = self.snapshot()?;
        Some(crate::export::text_dump_with_coverage(
            &self.events(),
            &snapshot,
            snapshot.coverage,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::NO_THREAD;

    // The whole point of the Arc/atomic backend: handles cross threads.
    const _: fn() = || {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Recorder>();
    };

    fn safepoint(r: &Recorder, thread: u16) {
        r.event(thread, EventKind::GcSafepoint { collected: false });
    }

    #[test]
    fn disabled_recorder_drops_everything() {
        let r = Recorder::disabled();
        assert!(!r.is_enabled());
        assert!(r.timer().is_none());
        r.event(0, EventKind::GcSafepoint { collected: true });
        r.jni_call("NewStringUTF", 10, false);
        r.fsm("pinning", FsmOutcome::Moved);
        r.count("x", 1);
        assert!(r.snapshot().is_none());
        assert!(r.events().is_empty());
        assert_eq!(r.total_events(), 0);
        assert!(r.chrome_trace().is_none());
        assert!(r.text_dump().is_none());
        assert_eq!(r.coverage(), Coverage::default());
        assert!(r.policy().is_none());
    }

    #[test]
    fn clones_share_the_backend() {
        let a = Recorder::enabled(16);
        let b = a.clone();
        a.event(
            1,
            EventKind::JniEnter {
                func: "GetObjectClass".into(),
            },
        );
        b.jni_call("GetObjectClass", 99, false);
        assert_eq!(a.total_events(), 1);
        assert_eq!(b.events().len(), 1);
        let snap = a.snapshot().unwrap();
        assert_eq!(snap.metrics.total_jni_calls(), 1);
    }

    #[test]
    fn labels_are_interned_per_recorder() {
        let r = Recorder::enabled(4);
        let first = r.label("local-reference");
        let second = r.label("local-reference");
        assert!(
            Arc::ptr_eq(&first, &second),
            "repeated labels share one allocation"
        );
        assert_eq!(&*r.label("other"), "other");
        // Ids are stable and dense.
        assert_eq!(r.intern("local-reference"), r.intern("local-reference"));
        assert_ne!(r.intern("local-reference"), r.intern("other"));
        // Disabled recorders have no cache but still hand back the text.
        assert_eq!(&*Recorder::disabled().label("x"), "x");
    }

    #[test]
    fn events_carry_monotonic_seq() {
        let r = Recorder::enabled(4);
        for _ in 0..6 {
            safepoint(&r, NO_THREAD);
        }
        let seqs: Vec<u64> = r.events().iter().map(|e| e.seq).collect();
        assert_eq!(seqs, vec![2, 3, 4, 5]);
        assert_eq!(r.total_events(), 6);
    }

    #[test]
    fn dropped_events_surface_in_dumps() {
        let r = Recorder::enabled(2);
        for _ in 0..5 {
            safepoint(&r, 0);
        }
        assert_eq!(r.dropped_events(), 3);
        assert!(r.text_dump().unwrap().contains("2 events held, 3 dropped"));
        assert!(r.chrome_trace().unwrap().contains("\"dropped\":3"));
        assert_eq!(Recorder::disabled().dropped_events(), 0);
    }

    #[test]
    fn timer_works_when_enabled() {
        let r = Recorder::enabled(4);
        let t = r.timer().expect("enabled recorder must hand out timers");
        let nanos = t.elapsed().as_nanos() as u64;
        r.jni_call("NewGlobalRef", nanos, false);
        let snap = r.snapshot().unwrap();
        let (_, m) = snap.metrics.jni_functions().next().unwrap();
        assert_eq!(m.calls, 1);
    }

    #[test]
    fn export_merges_interleaved_thread_tags_in_seq_order() {
        // All nine events come from this one OS thread, so they share a
        // single ring — it must hold all of them.
        let r = Recorder::enabled(16);
        for i in 0..9u16 {
            safepoint(&r, i % 3);
        }
        let events = r.events();
        let seqs: Vec<u64> = events.iter().map(|e| e.seq).collect();
        assert_eq!(seqs, (0..9).collect::<Vec<u64>>(), "merged by seq");
        let threads: Vec<u16> = events.iter().map(|e| e.thread).collect();
        assert_eq!(threads, vec![0, 1, 2, 0, 1, 2, 0, 1, 2]);
    }

    #[test]
    fn ring_eviction_is_per_writer_thread() {
        let r = Recorder::enabled(2);
        std::thread::scope(|scope| {
            let busy = r.clone();
            let quiet = r.clone();
            scope.spawn(move || {
                for _ in 0..5 {
                    safepoint(&busy, 0);
                }
            });
            scope.spawn(move || safepoint(&quiet, 1));
        });
        // The busy writer overflowed its own ring; the quiet writer's
        // event survived in its separate ring.
        assert_eq!(r.dropped_events(), 3);
        let held: Vec<u16> = r.events().iter().map(|e| e.thread).collect();
        assert_eq!(held.len(), 3);
        assert!(held.contains(&1), "{held:?}");
    }

    #[test]
    fn concurrent_recording_from_spawned_threads() {
        let r = Recorder::enabled(1024);
        // `thread::spawn` + `join`, not `thread::scope`: join waits for
        // the thread's TLS destructors (which flush the metric batch),
        // while a scope can return before they have run. Scoped threads
        // that need exact metrics call `Recorder::flush` — see the
        // `scoped_threads_flush_explicitly` test below.
        let handles: Vec<_> = (0..4u16)
            .map(|t| {
                let r = r.clone();
                std::thread::spawn(move || {
                    for _ in 0..100 {
                        safepoint(&r, t);
                        r.count("gc.safepoints", 1);
                    }
                })
            })
            .collect();
        for handle in handles {
            handle.join().unwrap();
        }
        assert_eq!(r.total_events(), 400);
        assert_eq!(r.dropped_events(), 0);
        let events = r.events();
        assert_eq!(events.len(), 400);
        assert!(events.windows(2).all(|w| w[0].seq < w[1].seq));
        assert_eq!(r.snapshot().unwrap().metrics.counter("gc.safepoints"), 400);
    }

    #[test]
    fn scoped_threads_flush_explicitly() {
        let r = Recorder::enabled(1024);
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let r = r.clone();
                scope.spawn(move || {
                    for _ in 0..100 {
                        r.count("gc.safepoints", 1);
                    }
                    // A scope may resume the parent before this thread's
                    // TLS destructors run, so flush before returning.
                    r.flush();
                });
            }
        });
        assert_eq!(r.snapshot().unwrap().metrics.counter("gc.safepoints"), 400);
    }

    /// The satellite-2 acceptance test: 32 concurrent writers, one
    /// strictly ordered, duplicate-free merged timeline with nothing
    /// lost.
    #[test]
    fn merge_of_32_concurrent_writers_is_strictly_ordered_and_complete() {
        const THREADS: u16 = 32;
        const PER_THREAD: u32 = 200;
        let r = Recorder::enabled(4096);
        std::thread::scope(|scope| {
            for t in 0..THREADS {
                let r = r.clone();
                scope.spawn(move || {
                    for i in 0..PER_THREAD {
                        r.event(
                            t,
                            EventKind::Gc {
                                live: u64::from(t),
                                freed: u64::from(i),
                            },
                        );
                    }
                });
            }
        });
        let events = r.events();
        assert_eq!(events.len(), (u32::from(THREADS) * PER_THREAD) as usize);
        assert_eq!(r.dropped_events(), 0);
        // Strictly ordered: no duplicates, no inversions.
        assert!(
            events.windows(2).all(|w| w[0].seq < w[1].seq),
            "timeline must be strictly seq-ordered and duplicate-free"
        );
        // Per-thread order is preserved exactly (freed counts ascend).
        let mut last: HashMap<u16, u64> = HashMap::new();
        for e in &events {
            if let EventKind::Gc { freed, .. } = e.kind {
                if let Some(prev) = last.insert(e.thread, freed) {
                    assert!(freed > prev, "thread {}: {prev} then {freed}", e.thread);
                }
            }
        }
    }

    #[test]
    fn policy_sampling_suppresses_and_flags() {
        let r = Recorder::enabled(4096);
        let func = r.intern("NewStringUTF");
        r.set_policy(TracePolicy::sample_all(4));
        for _ in 0..100 {
            r.jni_enter_id(0, func);
        }
        assert_eq!(r.total_events(), 25, "1-in-4 sampling");
        let cov = r.coverage();
        assert_eq!(cov.suppressed_sampled, 75);
        assert!(cov.sampled());
        assert!(!cov.complete());
        assert_eq!(cov.policy_epoch, 1);
        // Metrics are never sampled: only the ring is.
        for _ in 0..10 {
            r.jni_exit_id(0, func, Some(5), false);
        }
        let snap = r.snapshot().unwrap();
        assert_eq!(snap.metrics.total_jni_calls(), 10);
        assert!(snap.coverage.sampled());
        assert!(snap.render().contains("[SAMPLED]"));
    }

    #[test]
    fn policy_disable_by_label_is_selective() {
        let r = Recorder::enabled(256);
        let hot = r.intern("HotFunc");
        let cold = r.intern("ColdFunc");
        r.set_policy(TracePolicy::full().disable("HotFunc"));
        for _ in 0..10 {
            r.jni_enter_id(0, hot);
            r.jni_enter_id(0, cold);
        }
        assert_eq!(r.total_events(), 10, "only ColdFunc recorded");
        let cov = r.coverage();
        assert_eq!(cov.suppressed_disabled, 10);
        let events = r.events();
        assert!(events.iter().all(|e| matches!(
            &e.kind,
            EventKind::JniEnter { func } if &**func == "ColdFunc"
        )));
    }

    #[test]
    fn policy_swap_mid_workload_takes_effect_without_losing_events() {
        let r = Recorder::enabled(4096);
        let func = r.intern("F");
        for _ in 0..50 {
            r.jni_enter_id(0, func);
        }
        assert_eq!(r.total_events(), 50);
        r.set_policy(TracePolicy::off());
        for _ in 0..50 {
            r.jni_enter_id(0, func);
        }
        assert_eq!(r.total_events(), 50, "second batch suppressed");
        r.set_policy(TracePolicy::full());
        for _ in 0..50 {
            r.jni_enter_id(0, func);
        }
        // Everything recorded before and after the off-window is intact.
        assert_eq!(r.total_events(), 100);
        assert_eq!(r.events().len(), 100);
        let cov = r.coverage();
        assert_eq!(cov.suppressed_disabled, 50);
        assert_eq!(cov.policy_epoch, 2);
    }

    #[test]
    fn hot_labels_are_auto_downsampled() {
        let r = Recorder::enabled(1 << 14);
        let hot = r.intern("HotFunc");
        r.set_policy(TracePolicy::full().auto_downsample(100, 10));
        for _ in 0..1100 {
            r.jni_enter_id(0, hot);
        }
        // First 100 recorded 1:1; the next 1000 at 1-in-10.
        assert_eq!(r.total_events(), 200);
        let cov = r.coverage();
        assert_eq!(cov.auto_downsampled, 900);
        assert!(cov.sampled());
    }

    #[test]
    fn policy_rules_apply_to_labels_interned_later() {
        let r = Recorder::enabled(256);
        r.set_policy(TracePolicy::full().disable("LateFunc"));
        // The rule's label was interned by set_policy itself; a site
        // interning it afterwards gets the same id and rate.
        let late = r.intern("LateFunc");
        r.jni_enter_id(0, late);
        assert_eq!(r.total_events(), 0);
        // A brand-new label after the swap follows the default rate.
        let fresh = r.intern("FreshFunc");
        r.jni_enter_id(0, fresh);
        assert_eq!(r.total_events(), 1);
    }

    #[test]
    fn timers_can_be_policy_disabled() {
        let r = Recorder::enabled(16);
        assert!(r.timer().is_some(), "first call of a sample window times");
        r.set_policy(TracePolicy::full().without_latency_timers());
        let timed = (0..TIMER_SAMPLE).filter(|_| r.timer().is_some()).count();
        assert_eq!(timed, 0, "policy-disabled timers never touch the clock");
        r.set_policy(TracePolicy::full());
        let timed = (0..TIMER_SAMPLE).filter(|_| r.timer().is_some()).count();
        assert_eq!(timed, 1, "one call per sample window gets a timer");
    }
}
