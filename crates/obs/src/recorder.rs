//! The [`Recorder`]: the cheaply clonable handle every substrate crate
//! carries.
//!
//! A recorder is either *enabled* — backed by a shared ring + metrics
//! registry — or *disabled*, in which case every recording call is a
//! single `Option` discriminant check and an immediate return. The
//! workspace is single-threaded by design (`Rc`-based object graph), so
//! interior mutability is `RefCell`, not locks.

use std::cell::RefCell;
use std::rc::Rc;
use std::time::Instant;

use crate::event::{EventKind, FsmOutcome, TraceEvent};
use crate::metrics::{MetricsRegistry, Snapshot};
use crate::ring::TraceRing;

/// Default trace-ring capacity for [`Recorder::enabled`].
pub const DEFAULT_RING_CAPACITY: usize = 4096;

#[derive(Debug)]
struct Inner {
    start: Instant,
    ring: RefCell<TraceRing>,
    metrics: RefCell<MetricsRegistry>,
}

/// Handle to the observability backend. Cloning shares the backend.
///
/// The default recorder is disabled: every call is a no-op after one
/// branch. Construct with [`Recorder::enabled`] to start recording.
#[derive(Debug, Clone, Default)]
pub struct Recorder {
    inner: Option<Rc<Inner>>,
}

impl Recorder {
    /// A recorder that drops everything (the default).
    pub fn disabled() -> Recorder {
        Recorder { inner: None }
    }

    /// A recorder backed by a fresh ring of `ring_capacity` events and an
    /// empty metrics registry.
    pub fn enabled(ring_capacity: usize) -> Recorder {
        Recorder {
            inner: Some(Rc::new(Inner {
                start: Instant::now(),
                ring: RefCell::new(TraceRing::new(ring_capacity)),
                metrics: RefCell::new(MetricsRegistry::new()),
            })),
        }
    }

    /// Whether this recorder is actually recording.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Starts a timer — `None` when disabled, so a disabled recorder
    /// never touches the clock.
    #[inline]
    pub fn timer(&self) -> Option<Instant> {
        self.inner.as_ref().map(|_| Instant::now())
    }

    /// Microseconds since the recorder was created (0 when disabled).
    pub fn elapsed_micros(&self) -> u64 {
        match &self.inner {
            Some(inner) => inner.start.elapsed().as_micros() as u64,
            None => 0,
        }
    }

    /// Records an event into the ring.
    #[inline]
    pub fn event(&self, thread: u16, kind: EventKind) {
        if let Some(inner) = &self.inner {
            let micros = inner.start.elapsed().as_micros() as u64;
            let mut ring = inner.ring.borrow_mut();
            let seq = ring.total_recorded();
            ring.push(TraceEvent {
                seq,
                micros,
                thread,
                kind,
            });
        }
    }

    /// Records a completed JNI call into the metrics registry.
    #[inline]
    pub fn jni_call(&self, func: &'static str, nanos: u64, failed: bool) {
        if let Some(inner) = &self.inner {
            inner.metrics.borrow_mut().jni_call(func, nanos, failed);
        }
    }

    /// Records an FSM transition outcome into the metrics registry.
    #[inline]
    pub fn fsm(&self, machine: &str, outcome: FsmOutcome) {
        if let Some(inner) = &self.inner {
            inner.metrics.borrow_mut().fsm(machine, outcome);
        }
    }

    /// Bumps a named counter.
    #[inline]
    pub fn count(&self, name: &'static str, delta: u64) {
        if let Some(inner) = &self.inner {
            inner.metrics.borrow_mut().add(name, delta);
        }
    }

    /// A point-in-time copy of the metrics, or `None` when disabled.
    pub fn snapshot(&self) -> Option<Snapshot> {
        self.inner.as_ref().map(|inner| Snapshot {
            taken_at_micros: inner.start.elapsed().as_micros() as u64,
            metrics: inner.metrics.borrow().clone(),
        })
    }

    /// The events currently held by the ring, oldest-first (empty when
    /// disabled).
    pub fn events(&self) -> Vec<TraceEvent> {
        match &self.inner {
            Some(inner) => inner.ring.borrow().to_vec(),
            None => Vec::new(),
        }
    }

    /// Total events ever recorded, including evicted ones.
    pub fn total_events(&self) -> u64 {
        match &self.inner {
            Some(inner) => inner.ring.borrow().total_recorded(),
            None => 0,
        }
    }

    /// Events recorded but evicted from the ring (0 when disabled). When
    /// non-zero, [`Recorder::events`] is a truncated view of the run.
    pub fn dropped_events(&self) -> u64 {
        match &self.inner {
            Some(inner) => inner.ring.borrow().dropped_events(),
            None => 0,
        }
    }

    /// The events as Chrome `chrome://tracing` JSON, or `None` when
    /// disabled. Evicted events are surfaced as a `dropped-events`
    /// metadata instant.
    pub fn chrome_trace(&self) -> Option<String> {
        self.inner.as_ref().map(|inner| {
            let ring = inner.ring.borrow();
            crate::export::chrome_trace_with_drops(&ring.to_vec(), ring.dropped_events())
        })
    }

    /// A plain-text dump of events + metrics, or `None` when disabled.
    /// Evicted events are counted in the header.
    pub fn text_dump(&self) -> Option<String> {
        let snapshot = self.snapshot()?;
        Some(crate::export::text_dump_with_drops(
            &self.events(),
            &snapshot,
            self.dropped_events(),
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::NO_THREAD;

    #[test]
    fn disabled_recorder_drops_everything() {
        let r = Recorder::disabled();
        assert!(!r.is_enabled());
        assert!(r.timer().is_none());
        r.event(0, EventKind::GcSafepoint { collected: true });
        r.jni_call("NewStringUTF", 10, false);
        r.fsm("pinning", FsmOutcome::Moved);
        r.count("x", 1);
        assert!(r.snapshot().is_none());
        assert!(r.events().is_empty());
        assert_eq!(r.total_events(), 0);
        assert!(r.chrome_trace().is_none());
        assert!(r.text_dump().is_none());
    }

    #[test]
    fn clones_share_the_backend() {
        let a = Recorder::enabled(16);
        let b = a.clone();
        a.event(
            1,
            EventKind::JniEnter {
                func: "GetObjectClass",
            },
        );
        b.jni_call("GetObjectClass", 99, false);
        assert_eq!(a.total_events(), 1);
        assert_eq!(b.events().len(), 1);
        let snap = a.snapshot().unwrap();
        assert_eq!(snap.metrics.total_jni_calls(), 1);
    }

    #[test]
    fn events_carry_monotonic_seq() {
        let r = Recorder::enabled(4);
        for _ in 0..6 {
            r.event(NO_THREAD, EventKind::GcSafepoint { collected: false });
        }
        let seqs: Vec<u64> = r.events().iter().map(|e| e.seq).collect();
        assert_eq!(seqs, vec![2, 3, 4, 5]);
        assert_eq!(r.total_events(), 6);
    }

    #[test]
    fn dropped_events_surface_in_dumps() {
        let r = Recorder::enabled(2);
        for _ in 0..5 {
            r.event(0, EventKind::GcSafepoint { collected: false });
        }
        assert_eq!(r.dropped_events(), 3);
        assert!(r.text_dump().unwrap().contains("2 events held, 3 dropped"));
        assert!(r.chrome_trace().unwrap().contains("\"dropped\":3"));
        assert_eq!(Recorder::disabled().dropped_events(), 0);
    }

    #[test]
    fn timer_works_when_enabled() {
        let r = Recorder::enabled(4);
        let t = r.timer().expect("enabled recorder must hand out timers");
        let nanos = t.elapsed().as_nanos() as u64;
        r.jni_call("NewGlobalRef", nanos, false);
        let snap = r.snapshot().unwrap();
        let (_, m) = snap.metrics.jni_functions().next().unwrap();
        assert_eq!(m.calls, 1);
    }
}
