//! Trace events: one record per boundary crossing, FSM transition, GC
//! event, pin event, or checker verdict.
//!
//! The four `Jni*`/`Native*` kinds are the paper's Figure 2 language
//! transitions (`Call:C→Java` / `Return:Java→C` around JNI functions and
//! `Call:Java→C` / `Return:C→Java` around native methods); the rest are
//! the VM- and checker-side happenings a bug forensics report needs for
//! context.

use std::fmt;
use std::sync::Arc;

/// Thread tag used when an event is not attributable to a thread (e.g. a
/// pin-table operation observed below the thread layer).
pub const NO_THREAD: u16 = u16::MAX;

/// A label identifying the entity (reference, buffer, monitor…) an FSM
/// transition acted on. Cheap to clone; compared by text.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EntityTag(pub Arc<str>);

impl EntityTag {
    /// Tags an entity by an explicit label.
    pub fn new(label: impl AsRef<str>) -> EntityTag {
        EntityTag(Arc::from(label.as_ref()))
    }

    /// Tags an entity by its `Debug` rendering.
    pub fn of_debug(value: &impl fmt::Debug) -> EntityTag {
        EntityTag(Arc::from(format!("{value:?}").as_str()))
    }

    /// The label text.
    pub fn label(&self) -> &str {
        &self.0
    }
}

impl fmt::Display for EntityTag {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

/// Outcome of one state-machine transition attempt (mirrors
/// `jinn_fsm::TransitionOutcome` without depending on it — this crate
/// sits below every other workspace crate).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FsmOutcome {
    /// The transition applied; destination is a non-error state.
    Moved,
    /// The transition applied and entered an error state: a detected bug.
    Error,
    /// The source state did not match; nothing changed.
    NotApplicable,
}

impl fmt::Display for FsmOutcome {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            FsmOutcome::Moved => "moved",
            FsmOutcome::Error => "ERROR",
            FsmOutcome::NotApplicable => "n/a",
        })
    }
}

/// How a checker responded to a violation (mirrors
/// `minijni::ReportAction`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VerdictAction {
    /// Diagnose and keep running.
    Warn,
    /// Diagnose and abort the VM.
    AbortVm,
    /// Throw a `JNIAssertionFailure` at the point of failure.
    ThrowException,
}

impl fmt::Display for VerdictAction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            VerdictAction::Warn => "warn",
            VerdictAction::AbortVm => "abort-vm",
            VerdictAction::ThrowException => "throw",
        })
    }
}

/// What happened.
#[derive(Debug, Clone, PartialEq)]
pub enum EventKind {
    /// `Call:C→Java`: a JNI function was entered.
    JniEnter {
        /// The function's `jni.h` name.
        func: Arc<str>,
    },
    /// `Return:Java→C`: a JNI function returned.
    JniExit {
        /// The function's `jni.h` name.
        func: Arc<str>,
        /// Wall-clock duration of the call.
        nanos: u64,
        /// Whether the call ended in an error (exception, death, or a
        /// checker throw).
        failed: bool,
    },
    /// `Call:Java→C`: managed code entered a native method.
    NativeEnter {
        /// `Class.method` of the native method.
        method: Arc<str>,
    },
    /// `Return:C→Java`: a native method returned.
    NativeExit {
        /// `Class.method` of the native method.
        method: Arc<str>,
        /// Wall-clock duration of the native body (hooks included).
        nanos: u64,
        /// Whether the method ended in an error.
        failed: bool,
    },
    /// A state-machine transition was attempted on an entity.
    FsmTransition {
        /// Machine name (e.g. `local-reference`).
        machine: Arc<str>,
        /// Transition name (e.g. `UseAfterRelease`).
        transition: Arc<str>,
        /// What happened.
        outcome: FsmOutcome,
        /// The entity acted on, when the caller knows it.
        entity: Option<EntityTag>,
    },
    /// A GC safepoint where a collection was due (period elapsed).
    GcSafepoint {
        /// Whether the collection ran (false: deferred by an active
        /// critical section).
        collected: bool,
    },
    /// A collection completed.
    Gc {
        /// Objects that survived.
        live: u64,
        /// Objects reclaimed.
        freed: u64,
    },
    /// A primitive-array/string buffer was pinned.
    PinAcquire {
        /// The pin's table index.
        pin: u32,
    },
    /// A pinned buffer was released.
    PinRelease {
        /// The pin's table index.
        pin: u32,
        /// Whether the release was valid (false: double free or kind
        /// mismatch).
        ok: bool,
    },
    /// A checker reported a violation.
    Verdict {
        /// The violated machine.
        machine: Arc<str>,
        /// The function at which it was detected.
        function: Arc<str>,
        /// The checker's response.
        action: VerdictAction,
    },
}

/// One recorded event.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceEvent {
    /// Monotonic sequence number (total events recorded before this one).
    pub seq: u64,
    /// Microseconds since the recorder was created.
    pub micros: u64,
    /// The thread the event happened on, or [`NO_THREAD`].
    pub thread: u16,
    /// What happened.
    pub kind: EventKind,
}

impl TraceEvent {
    /// The entity the event concerns, if any.
    pub fn entity(&self) -> Option<&EntityTag> {
        match &self.kind {
            EventKind::FsmTransition { entity, .. } => entity.as_ref(),
            _ => None,
        }
    }

    /// True for events that are process-global rather than per-thread
    /// (GC activity and checker verdicts).
    pub fn is_global(&self) -> bool {
        matches!(
            self.kind,
            EventKind::GcSafepoint { .. } | EventKind::Gc { .. } | EventKind::Verdict { .. }
        )
    }
}

impl fmt::Display for TraceEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "#{:<6} +{:>8}us ", self.seq, self.micros)?;
        if self.thread == NO_THREAD {
            write!(f, "t-    ")?;
        } else {
            write!(f, "t{:<4} ", self.thread)?;
        }
        match &self.kind {
            EventKind::JniEnter { func } => write!(f, "jni  > {func}"),
            EventKind::JniExit {
                func,
                nanos,
                failed,
            } => write!(
                f,
                "jni  < {func} ({nanos}ns{})",
                if *failed { ", FAILED" } else { "" }
            ),
            EventKind::NativeEnter { method } => write!(f, "nat  > {method}"),
            EventKind::NativeExit {
                method,
                nanos,
                failed,
            } => write!(
                f,
                "nat  < {method} ({nanos}ns{})",
                if *failed { ", FAILED" } else { "" }
            ),
            EventKind::FsmTransition {
                machine,
                transition,
                outcome,
                entity,
            } => {
                write!(f, "fsm    {machine}.{transition} [{outcome}]")?;
                if let Some(e) = entity {
                    write!(f, " entity={e}")?;
                }
                Ok(())
            }
            EventKind::GcSafepoint { collected } => write!(
                f,
                "gc     safepoint ({})",
                if *collected { "collected" } else { "deferred" }
            ),
            EventKind::Gc { live, freed } => {
                write!(f, "gc     collection live={live} freed={freed}")
            }
            EventKind::PinAcquire { pin } => write!(f, "pin  + #{pin}"),
            EventKind::PinRelease { pin, ok } => write!(
                f,
                "pin  - #{pin}{}",
                if *ok { "" } else { " (INVALID RELEASE)" }
            ),
            EventKind::Verdict {
                machine,
                function,
                action,
            } => write!(f, "chk  ! {machine} in {function} [{action}]"),
        }
    }
}
