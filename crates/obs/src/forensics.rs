//! Bug forensics: when a checker throws a `JNIAssertionFailure`, capture
//! the events that led up to it and render a report a developer can read
//! at the point of failure — the paper's Figure 9 experience, extended
//! with the trace ring's history.

use crate::event::{EventKind, FsmOutcome, TraceEvent};
use crate::recorder::Recorder;

/// How much history a report keeps.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ForensicsConfig {
    /// Maximum relevant events retained (most recent kept).
    pub last_n: usize,
}

impl Default for ForensicsConfig {
    fn default() -> ForensicsConfig {
        ForensicsConfig { last_n: 32 }
    }
}

/// A rendered-at-failure bug report: the verdict plus the recent history
/// relevant to the failing entity and thread.
#[derive(Debug, Clone, PartialEq)]
pub struct BugReport {
    /// The violated state machine (e.g. `local-reference`).
    pub machine: String,
    /// The error state the entity entered (e.g. `Dangling`).
    pub error_state: String,
    /// The JNI function (or call site) where the bug was detected.
    pub function: String,
    /// The checker's diagnostic message.
    pub message: String,
    /// The failing thread.
    pub thread: u16,
    /// The failing entity's label, when the trace identifies one.
    pub entity: Option<String>,
    /// Native/managed frames active at the failure, innermost first.
    pub backtrace: Vec<String>,
    /// The last-N relevant events, oldest-first.
    pub recent: Vec<TraceEvent>,
}

impl BugReport {
    /// Renders the report in the `JNIAssertionFailure` style of the
    /// paper's Figure 9, followed by the event history.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "JNIAssertionFailure: [{}/{}] {} in {}\n",
            self.machine, self.error_state, self.message, self.function
        ));
        for frame in &self.backtrace {
            out.push_str(&format!("    at {frame}\n"));
        }
        out.push_str(&format!("failing thread: t{}\n", self.thread));
        match &self.entity {
            Some(e) => out.push_str(&format!("failing entity: {e}\n")),
            None => out.push_str("failing entity: <not identified in trace>\n"),
        }
        if self.recent.is_empty() {
            out.push_str("no trace history (recorder disabled or ring empty)\n");
        } else {
            out.push_str(&format!(
                "last {} relevant events (oldest first):\n",
                self.recent.len()
            ));
            for event in &self.recent {
                out.push_str(&format!("  {event}\n"));
            }
        }
        out
    }
}

/// True when `event` belongs in a report about (`machine`, `entity`,
/// `thread`): same-thread boundary crossings and pin traffic, any
/// transition touching the failing entity or erroring in the failing
/// machine, and process-global events (GC, verdicts).
fn relevant(event: &TraceEvent, machine: &str, entity: Option<&str>, thread: u16) -> bool {
    if event.is_global() || event.thread == thread {
        return true;
    }
    match &event.kind {
        EventKind::FsmTransition {
            machine: m,
            outcome,
            entity: e,
            ..
        } => {
            if let (Some(want), Some(have)) = (entity, e) {
                if have.label() == want {
                    return true;
                }
            }
            *outcome == FsmOutcome::Error && **m == *machine
        }
        _ => false,
    }
}

/// Builds a report from the recorder's current ring contents.
///
/// The failing entity, if the caller does not know it, is recovered from
/// the trace: the most recent `FsmTransition` with an `Error` outcome in
/// the failing machine names it. Works on a disabled recorder too — the
/// report simply has no history.
#[allow(clippy::too_many_arguments)]
pub fn capture(
    recorder: &Recorder,
    config: ForensicsConfig,
    machine: &str,
    error_state: &str,
    function: &str,
    message: &str,
    thread: u16,
    backtrace: Vec<String>,
) -> BugReport {
    let events = recorder.events();
    // Recover the failing entity from the newest error transition of this
    // machine, scanning backwards.
    let entity: Option<String> = events.iter().rev().find_map(|e| match &e.kind {
        EventKind::FsmTransition {
            machine: m,
            outcome: FsmOutcome::Error,
            entity: Some(tag),
            ..
        } if **m == *machine => Some(tag.label().to_owned()),
        _ => None,
    });
    let mut recent: Vec<TraceEvent> = events
        .into_iter()
        .filter(|e| relevant(e, machine, entity.as_deref(), thread))
        .collect();
    if recent.len() > config.last_n {
        recent.drain(..recent.len() - config.last_n);
    }
    BugReport {
        machine: machine.to_owned(),
        error_state: error_state.to_owned(),
        function: function.to_owned(),
        message: message.to_owned(),
        thread,
        entity,
        backtrace,
        recent,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{EntityTag, NO_THREAD};
    use std::sync::Arc;

    fn transition(r: &Recorder, thread: u16, machine: &str, outcome: FsmOutcome, entity: &str) {
        r.event(
            thread,
            EventKind::FsmTransition {
                machine: Arc::from(machine),
                transition: Arc::from("t"),
                outcome,
                entity: Some(EntityTag::new(entity)),
            },
        );
    }

    #[test]
    fn recovers_entity_and_filters_by_it() {
        let r = Recorder::enabled(64);
        // Unrelated thread 9 traffic on a different entity.
        transition(&r, 9, "local-reference", FsmOutcome::Moved, "r#7");
        r.event(
            9,
            EventKind::JniEnter {
                func: "NewStringUTF".into(),
            },
        );
        // The failing entity's life, on thread 3.
        transition(&r, 3, "local-reference", FsmOutcome::Moved, "r#2");
        // Another thread touching the same failing entity: relevant.
        transition(&r, 5, "local-reference", FsmOutcome::Moved, "r#2");
        // Global event: relevant.
        r.event(NO_THREAD, EventKind::Gc { live: 10, freed: 4 });
        // The error itself.
        transition(&r, 3, "local-reference", FsmOutcome::Error, "r#2");

        let report = capture(
            &r,
            ForensicsConfig::default(),
            "local-reference",
            "Dangling",
            "GetObjectClass",
            "use of freed local reference",
            3,
            vec!["Native.useRef(Native.c:12)".into()],
        );
        assert_eq!(report.entity.as_deref(), Some("r#2"));
        // Thread-9 traffic on r#7 must be excluded; everything else kept.
        assert_eq!(report.recent.len(), 4);
        assert!(report.recent.iter().all(|e| e.is_global()
            || e.thread == 3
            || e.entity().map(|t| t.label()) == Some("r#2")));
    }

    #[test]
    fn last_n_truncates_oldest() {
        let r = Recorder::enabled(64);
        for i in 0..10 {
            transition(&r, 1, "pinning", FsmOutcome::Moved, &format!("pin#{i}"));
        }
        transition(&r, 1, "pinning", FsmOutcome::Error, "pin#9");
        let report = capture(
            &r,
            ForensicsConfig { last_n: 3 },
            "pinning",
            "DoubleFree",
            "ReleaseStringChars",
            "released twice",
            1,
            Vec::new(),
        );
        assert_eq!(report.recent.len(), 3);
        // Newest survives.
        assert!(matches!(
            report.recent.last().unwrap().kind,
            EventKind::FsmTransition {
                outcome: FsmOutcome::Error,
                ..
            }
        ));
    }

    #[test]
    fn disabled_recorder_yields_historyless_report() {
        let r = Recorder::disabled();
        let report = capture(
            &r,
            ForensicsConfig::default(),
            "monitor",
            "Unlocked",
            "MonitorExit",
            "exit without enter",
            0,
            Vec::new(),
        );
        assert!(report.recent.is_empty());
        assert_eq!(report.entity, None);
        let text = report.render();
        assert!(text.contains("JNIAssertionFailure: [monitor/Unlocked]"));
        assert!(text.contains("recorder disabled"));
    }

    #[test]
    fn render_has_figure9_shape() {
        let r = Recorder::enabled(8);
        transition(&r, 2, "local-reference", FsmOutcome::Error, "r#1");
        let report = capture(
            &r,
            ForensicsConfig::default(),
            "local-reference",
            "Dangling",
            "GetObjectClass",
            "use of freed local reference",
            2,
            vec![
                "Buggy.nativeUse(Buggy.c:33)".into(),
                "Buggy.main(Buggy.java:5)".into(),
            ],
        );
        let text = report.render();
        assert!(text.starts_with(
            "JNIAssertionFailure: [local-reference/Dangling] use of freed local reference in GetObjectClass\n"
        ));
        assert!(text.contains("    at Buggy.nativeUse(Buggy.c:33)"));
        assert!(text.contains("failing entity: r#1"));
        assert!(text.contains("last 1 relevant events"));
    }
}
