//! Runtime-adjustable trace policy: per-label enable / disable / 1-in-N
//! sampling, swappable while the workload runs.
//!
//! A [`TracePolicy`] is a declarative spec. The recorder compiles it
//! into a flat table of per-label atomic rates plus an epoch counter;
//! swapping policies rewrites the table and bumps the epoch, so in-
//! flight producers pick up the new rates on their very next event —
//! no locks on the record path, no restart, no lost in-flight events.
//!
//! The policy governs **tracing only**: metrics aggregation and checker
//! verdicts are never sampled, so verdict streams are byte-identical
//! across all policy configurations. Whenever a policy suppressed at
//! least one event, every export and metrics snapshot carries an
//! explicit sampling flag (see [`Coverage`](crate::Coverage)).

use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, Ordering};

/// Number of label ids with a dedicated per-label rate slot. Labels
/// interned beyond this (pathological cardinality) fall back to the
/// policy's default rate.
pub const POLICY_LABEL_SLOTS: usize = 1024;

/// Sampling rate for one label: `0` = disabled, `1` = record every
/// event, `n` = record 1 in `n`.
pub type SampleRate = u32;

/// A declarative trace policy.
///
/// Build one with the constructors and builder methods, then install it
/// with [`Recorder::set_policy`](crate::Recorder::set_policy). Rules
/// match label text exactly — a JNI function name (`NewStringUTF`), a
/// native method (`bench/Churn.churn`), or a machine name
/// (`local-reference`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TracePolicy {
    default_rate: SampleRate,
    rules: Vec<(String, SampleRate)>,
    auto_threshold: u32,
    auto_rate: SampleRate,
    latency_timers: bool,
}

impl Default for TracePolicy {
    fn default() -> TracePolicy {
        TracePolicy::full()
    }
}

impl TracePolicy {
    /// Record every event (the recorder's initial policy).
    pub fn full() -> TracePolicy {
        TracePolicy {
            default_rate: 1,
            rules: Vec::new(),
            auto_threshold: 0,
            auto_rate: 16,
            latency_timers: true,
        }
    }

    /// Trace nothing (metrics and verdicts still flow).
    pub fn off() -> TracePolicy {
        TracePolicy {
            default_rate: 0,
            ..TracePolicy::full()
        }
    }

    /// Record 1 in `n` events for every label (`0` disables, `1` is
    /// equivalent to [`full`](Self::full)).
    pub fn sample_all(n: SampleRate) -> TracePolicy {
        TracePolicy {
            default_rate: n,
            ..TracePolicy::full()
        }
    }

    /// Overrides the rate for one label: `0` disables it, `1` records
    /// every event, `n` records 1 in `n`. Later rules for the same
    /// label win.
    pub fn rate(mut self, label: impl Into<String>, rate: SampleRate) -> TracePolicy {
        self.rules.push((label.into(), rate));
        self
    }

    /// Shorthand for `rate(label, 1)`.
    pub fn enable(self, label: impl Into<String>) -> TracePolicy {
        self.rate(label, 1)
    }

    /// Shorthand for `rate(label, 0)`.
    pub fn disable(self, label: impl Into<String>) -> TracePolicy {
        self.rate(label, 0)
    }

    /// Auto-downsample hot labels: once a producer thread has seen more
    /// than `threshold` events for a label, that label's effective rate
    /// drops to at least 1-in-`rate`. `threshold == 0` disables the
    /// mechanism. Counts are per producer thread, so the knee is
    /// approximate across threads — by design, to keep the record path
    /// free of shared counters.
    pub fn auto_downsample(mut self, threshold: u32, rate: SampleRate) -> TracePolicy {
        self.auto_threshold = threshold;
        self.auto_rate = rate.max(2);
        self
    }

    /// Disables the per-call latency timers (two extra clock reads per
    /// JNI call). Latencies report as zero in events and are skipped in
    /// histograms while off.
    pub fn without_latency_timers(mut self) -> TracePolicy {
        self.latency_timers = false;
        self
    }

    /// The rate applied to labels with no matching rule.
    pub fn default_rate(&self) -> SampleRate {
        self.default_rate
    }

    /// The per-label overrides, in insertion order.
    pub fn rules(&self) -> &[(String, SampleRate)] {
        &self.rules
    }

    /// The auto-downsample knee, if enabled.
    pub fn auto_downsample_config(&self) -> Option<(u32, SampleRate)> {
        (self.auto_threshold > 0).then_some((self.auto_threshold, self.auto_rate))
    }

    /// Whether per-call latency timers run.
    pub fn latency_timers(&self) -> bool {
        self.latency_timers
    }

    /// The effective rate this spec assigns to `label` (rule lookup;
    /// used when compiling and when interning new labels).
    pub(crate) fn rate_for_name(&self, label: &str) -> SampleRate {
        self.rules
            .iter()
            .rev()
            .find(|(name, _)| name == label)
            .map(|&(_, rate)| rate)
            .unwrap_or(self.default_rate)
    }
}

/// The compiled, atomically-swappable form of a [`TracePolicy`] held by
/// the recorder backend.
#[derive(Debug)]
pub(crate) struct PolicyTable {
    /// Bumped on every [`set_policy`](crate::Recorder::set_policy);
    /// producers compare it against their cached epoch to reset local
    /// sampling counters.
    pub epoch: AtomicU64,
    pub default_rate: AtomicU32,
    /// Per-label rates, indexed by label id, for ids below
    /// [`POLICY_LABEL_SLOTS`].
    pub rates: Box<[AtomicU32]>,
    pub auto_threshold: AtomicU32,
    pub auto_rate: AtomicU32,
    pub latency_timers: AtomicBool,
}

impl PolicyTable {
    pub fn new() -> PolicyTable {
        let rates: Vec<AtomicU32> = (0..POLICY_LABEL_SLOTS).map(|_| AtomicU32::new(1)).collect();
        PolicyTable {
            epoch: AtomicU64::new(0),
            default_rate: AtomicU32::new(1),
            rates: rates.into_boxed_slice(),
            auto_threshold: AtomicU32::new(0),
            auto_rate: AtomicU32::new(16),
            latency_timers: AtomicBool::new(true),
        }
    }

    /// Installs a new spec. `rate_of` resolves the rate for each label
    /// id currently interned (the caller maps ids to names). The epoch
    /// bump is the last store, with release ordering, so a producer that
    /// observes the new epoch also observes the new rates.
    pub fn install(&self, spec: &TracePolicy, rate_of: impl Fn(usize) -> SampleRate) {
        self.default_rate
            .store(spec.default_rate(), Ordering::Relaxed);
        self.auto_threshold
            .store(spec.auto_threshold, Ordering::Relaxed);
        self.auto_rate.store(spec.auto_rate, Ordering::Relaxed);
        self.latency_timers
            .store(spec.latency_timers, Ordering::Relaxed);
        for (id, slot) in self.rates.iter().enumerate() {
            slot.store(rate_of(id), Ordering::Relaxed);
        }
        self.epoch.fetch_add(1, Ordering::Release);
    }

    /// The sampling rate for a label id: one relaxed load on the record
    /// path.
    #[inline]
    pub fn rate_for(&self, label: u32) -> SampleRate {
        match self.rates.get(label as usize) {
            Some(slot) => slot.load(Ordering::Relaxed),
            None => self.default_rate.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rules_resolve_latest_wins() {
        let p = TracePolicy::sample_all(8)
            .rate("NewStringUTF", 2)
            .disable("GetVersion")
            .rate("NewStringUTF", 4);
        assert_eq!(p.rate_for_name("NewStringUTF"), 4);
        assert_eq!(p.rate_for_name("GetVersion"), 0);
        assert_eq!(p.rate_for_name("DeleteLocalRef"), 8);
    }

    #[test]
    fn install_rewrites_rates_and_bumps_epoch() {
        let table = PolicyTable::new();
        assert_eq!(table.rate_for(3), 1);
        let spec = TracePolicy::off().enable("keep");
        // Pretend label 3 is "keep".
        table.install(&spec, |id| if id == 3 { 1 } else { 0 });
        assert_eq!(table.epoch.load(Ordering::Acquire), 1);
        assert_eq!(table.rate_for(3), 1);
        assert_eq!(table.rate_for(7), 0);
        assert_eq!(table.rate_for(999_999), 0, "overflow ids use default");
    }

    #[test]
    fn auto_downsample_floors_the_rate_at_two() {
        let p = TracePolicy::full().auto_downsample(100, 1);
        assert_eq!(p.auto_downsample_config(), Some((100, 2)));
        assert!(TracePolicy::full().auto_downsample_config().is_none());
    }
}
