//! A wait-free single-producer ring of fixed-width trace records,
//! readable by any thread at any time.
//!
//! Each registered writer thread owns one [`SpscRing`]; the record path
//! is two relaxed stores per word plus two release stores — no lock, no
//! read-modify-write, and no shared cache line with other producers.
//! Readers (export/merge) never block the producer: each slot carries a
//! seqlock version word, and a slot whose version changes mid-read is
//! simply discarded as overwritten.
//!
//! The crate forbids `unsafe`, so slots are arrays of `AtomicU64` rather
//! than raw memory; the seqlock protocol below is the classic Boehm
//! recipe ("Can seqlocks get along with programming language memory
//! models?"), with all fences free on x86.

use std::sync::atomic::{fence, AtomicU64, Ordering};

use crate::raw::RAW_WORDS;

/// One ring slot: a version word plus the record payload.
///
/// Version protocol, for slot position `p` (the `p`-th record ever
/// written that mapped to this slot's index):
/// * writer: store `2p+1` (odd: in progress), release fence, store the
///   words, store `2p+2` with release (even: position `p` complete);
/// * reader: load version with acquire, load the words, acquire fence,
///   re-load version; accept iff both loads returned `2p+2`.
#[derive(Debug)]
struct Slot {
    version: AtomicU64,
    words: [AtomicU64; RAW_WORDS],
}

impl Slot {
    fn new() -> Slot {
        Slot {
            version: AtomicU64::new(0),
            words: [const { AtomicU64::new(0) }; RAW_WORDS],
        }
    }
}

/// A bounded single-producer ring holding the newest `capacity` records.
///
/// The single-producer contract is upheld by the recorder: every slot is
/// owned by exactly one OS thread (the shared overflow slot serialises
/// its producers behind a mutex before calling [`push`](Self::push)).
/// A contract violation cannot corrupt memory — every word is an atomic
/// — but concurrent pushes may garble or drop records.
#[derive(Debug)]
pub struct SpscRing {
    /// `capacity - 1`; capacity is rounded up to a power of two so the
    /// hot path wraps with a mask instead of a 64-bit modulo.
    mask: u64,
    slots: Box<[Slot]>,
    /// Total records ever pushed; `head & mask` is the next write index.
    head: AtomicU64,
}

impl SpscRing {
    /// Creates a ring holding at least `capacity` records (rounded up to
    /// the next power of two, minimum 2).
    pub fn new(capacity: usize) -> SpscRing {
        let cap = capacity.max(2).next_power_of_two();
        let slots: Vec<Slot> = (0..cap).map(|_| Slot::new()).collect();
        SpscRing {
            mask: (cap - 1) as u64,
            slots: slots.into_boxed_slice(),
            head: AtomicU64::new(0),
        }
    }

    /// Number of records the ring can hold.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Appends a record, evicting the oldest if full. Single producer
    /// only (see the type-level contract).
    #[inline]
    pub fn push(&self, words: [u64; RAW_WORDS]) {
        let pos = self.head.load(Ordering::Relaxed);
        let slot = &self.slots[(pos & self.mask) as usize];
        slot.version.store(2 * pos + 1, Ordering::Relaxed);
        fence(Ordering::Release);
        for (cell, word) in slot.words.iter().zip(words) {
            cell.store(word, Ordering::Relaxed);
        }
        slot.version.store(2 * pos + 2, Ordering::Release);
        self.head.store(pos + 1, Ordering::Release);
    }

    /// Total records ever pushed, including evicted ones.
    pub fn total_pushed(&self) -> u64 {
        self.head.load(Ordering::Acquire)
    }

    /// Records evicted by ring wraparound.
    pub fn dropped(&self) -> u64 {
        self.total_pushed().saturating_sub(self.slots.len() as u64)
    }

    /// Copies out the currently held records, oldest first. Runs
    /// concurrently with the producer; records overwritten or in flight
    /// during the read are skipped (they are accounted as dropped by a
    /// later call's `dropped()` once the head advances past them).
    pub fn snapshot(&self) -> Vec<[u64; RAW_WORDS]> {
        let head = self.head.load(Ordering::Acquire);
        let cap = self.slots.len() as u64;
        let start = head.saturating_sub(cap);
        let mut out = Vec::with_capacity((head - start) as usize);
        for pos in start..head {
            let slot = &self.slots[(pos & self.mask) as usize];
            let expect = 2 * pos + 2;
            if slot.version.load(Ordering::Acquire) != expect {
                continue;
            }
            let mut words = [0u64; RAW_WORDS];
            for (word, cell) in words.iter_mut().zip(&slot.words) {
                *word = cell.load(Ordering::Relaxed);
            }
            fence(Ordering::Acquire);
            if slot.version.load(Ordering::Relaxed) == expect {
                out.push(words);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    fn rec(n: u64) -> [u64; RAW_WORDS] {
        [n, n + 1, n + 2, n + 3, n + 4]
    }

    #[test]
    fn capacity_rounds_up_to_a_power_of_two() {
        assert_eq!(SpscRing::new(0).capacity(), 2);
        assert_eq!(SpscRing::new(5).capacity(), 8);
        assert_eq!(SpscRing::new(8).capacity(), 8);
    }

    #[test]
    fn holds_the_newest_records_oldest_first() {
        let ring = SpscRing::new(4);
        for n in 0..7 {
            ring.push(rec(n));
        }
        assert_eq!(ring.total_pushed(), 7);
        assert_eq!(ring.dropped(), 3);
        let held: Vec<u64> = ring.snapshot().iter().map(|w| w[0]).collect();
        assert_eq!(held, vec![3, 4, 5, 6]);
    }

    #[test]
    fn concurrent_reader_sees_only_intact_records() {
        let ring = Arc::new(SpscRing::new(8));
        let writer = {
            let ring = Arc::clone(&ring);
            std::thread::spawn(move || {
                for n in 0..20_000u64 {
                    ring.push(rec(n));
                }
            })
        };
        // Hammer snapshots while the writer runs; every surviving record
        // must be internally consistent (words derived from word 0).
        for _ in 0..200 {
            for words in ring.snapshot() {
                let n = words[0];
                assert_eq!(words, rec(n), "torn record escaped the seqlock");
            }
        }
        writer.join().unwrap();
        let held: Vec<u64> = ring.snapshot().iter().map(|w| w[0]).collect();
        assert_eq!(held, (19_992..20_000).collect::<Vec<u64>>());
    }
}
