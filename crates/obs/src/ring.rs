//! A fixed-capacity ring buffer of [`TraceEvent`]s.
//!
//! The ring keeps the most recent `capacity` events; older events are
//! overwritten in place. Pushing never allocates once the ring is full,
//! so steady-state recording cost is an index bump and a slot write.

use crate::event::TraceEvent;

/// Fixed-capacity wraparound buffer of trace events, oldest-first on
/// iteration.
#[derive(Debug, Clone)]
pub struct TraceRing {
    capacity: usize,
    buf: Vec<TraceEvent>,
    /// Index of the slot the next push writes to (only meaningful once
    /// the ring has wrapped).
    head: usize,
    /// Total events ever pushed, including overwritten ones.
    total: u64,
}

impl TraceRing {
    /// Creates a ring holding at most `capacity` events.
    ///
    /// # Panics
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> TraceRing {
        assert!(capacity > 0, "TraceRing capacity must be non-zero");
        TraceRing {
            capacity,
            buf: Vec::with_capacity(capacity),
            head: 0,
            total: 0,
        }
    }

    /// Appends an event, evicting the oldest if the ring is full.
    pub fn push(&mut self, event: TraceEvent) {
        if self.buf.len() < self.capacity {
            self.buf.push(event);
        } else {
            self.buf[self.head] = event;
            self.head = (self.head + 1) % self.capacity;
        }
        self.total += 1;
    }

    /// Number of events currently held (≤ capacity).
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True when no events have been recorded.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// The configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Total events ever pushed, including ones the ring has evicted.
    pub fn total_recorded(&self) -> u64 {
        self.total
    }

    /// Events recorded but no longer held: overwritten by wraparound or
    /// removed by [`TraceRing::clear`]. A non-zero value means any dump of
    /// this ring is a truncated view of the run.
    pub fn dropped_events(&self) -> u64 {
        self.total - self.buf.len() as u64
    }

    /// Iterates the held events oldest-first.
    pub fn iter(&self) -> impl Iterator<Item = &TraceEvent> {
        let (wrapped, fresh) = self.buf.split_at(self.head.min(self.buf.len()));
        fresh.iter().chain(wrapped.iter())
    }

    /// Copies the held events out, oldest-first.
    pub fn to_vec(&self) -> Vec<TraceEvent> {
        self.iter().cloned().collect()
    }

    /// Drops all held events (the total count is preserved).
    pub fn clear(&mut self) {
        self.buf.clear();
        self.head = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{EventKind, NO_THREAD};

    fn ev(seq: u64) -> TraceEvent {
        TraceEvent {
            seq,
            micros: seq * 10,
            thread: NO_THREAD,
            kind: EventKind::GcSafepoint { collected: false },
        }
    }

    #[test]
    fn fills_then_wraps_keeping_newest() {
        let mut ring = TraceRing::new(4);
        for i in 0..10 {
            ring.push(ev(i));
        }
        assert_eq!(ring.len(), 4);
        assert_eq!(ring.total_recorded(), 10);
        let seqs: Vec<u64> = ring.iter().map(|e| e.seq).collect();
        assert_eq!(seqs, vec![6, 7, 8, 9]);
    }

    #[test]
    fn partial_fill_iterates_in_order() {
        let mut ring = TraceRing::new(8);
        for i in 0..3 {
            ring.push(ev(i));
        }
        let seqs: Vec<u64> = ring.iter().map(|e| e.seq).collect();
        assert_eq!(seqs, vec![0, 1, 2]);
        assert!(!ring.is_empty());
        assert_eq!(ring.capacity(), 8);
    }

    #[test]
    fn wrap_boundary_exact_capacity() {
        let mut ring = TraceRing::new(3);
        for i in 0..3 {
            ring.push(ev(i));
        }
        // Exactly full, not yet wrapped: head still 0, order preserved.
        let seqs: Vec<u64> = ring.iter().map(|e| e.seq).collect();
        assert_eq!(seqs, vec![0, 1, 2]);
        // One more push evicts the oldest.
        ring.push(ev(3));
        let seqs: Vec<u64> = ring.iter().map(|e| e.seq).collect();
        assert_eq!(seqs, vec![1, 2, 3]);
    }

    #[test]
    fn clear_resets_contents_not_total() {
        let mut ring = TraceRing::new(2);
        ring.push(ev(0));
        ring.push(ev(1));
        ring.push(ev(2));
        ring.clear();
        assert!(ring.is_empty());
        assert_eq!(ring.total_recorded(), 3);
        assert_eq!(ring.dropped_events(), 3);
        ring.push(ev(3));
        assert_eq!(ring.to_vec().len(), 1);
    }

    #[test]
    fn dropped_events_counts_evictions() {
        let mut ring = TraceRing::new(4);
        for i in 0..3 {
            ring.push(ev(i));
        }
        assert_eq!(ring.dropped_events(), 0);
        for i in 3..10 {
            ring.push(ev(i));
        }
        assert_eq!(ring.len(), 4);
        assert_eq!(ring.dropped_events(), 6);
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_capacity_panics() {
        TraceRing::new(0);
    }
}
