//! The binary on-the-wire record written by the recorder fast path.
//!
//! Instrumentation sites encode events directly into a fixed-width
//! [`RawEvent`] — five `u64` words — instead of materialising an
//! [`EventKind`](crate::EventKind) enum with `Arc<str>` labels. Strings
//! appear only as [`LabelId`] indices into the recorder's intern table;
//! the enum form is reconstructed lazily at export time.

use std::sync::Arc;

use crate::event::{EntityTag, EventKind, FsmOutcome, TraceEvent, VerdictAction};

/// Number of `u64` words in one encoded record.
pub const RAW_WORDS: usize = 5;

/// A string interned by a [`Recorder`](crate::Recorder) backend.
///
/// Ids are dense, starting at zero, and are only meaningful for the
/// backend that produced them. They are cheap to copy and compare and
/// index both the trace-policy rate table and the metrics store.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct LabelId(pub u32);

/// Sentinel label meaning "no label" in optional payload positions.
pub(crate) const NO_LABEL: u32 = 0;

/// High bit of the entity payload word: set when the entity is an
/// opaque numeric key supplied by the instrumentation site (no intern
/// table round-trip on the hot path) rather than an interned label.
pub(crate) const ENTITY_KEY_BIT: u64 = 1 << 63;

/// Operation discriminants for [`RawEvent::op`].
pub(crate) mod op {
    pub const JNI_ENTER: u8 = 0;
    pub const JNI_EXIT: u8 = 1;
    pub const NATIVE_ENTER: u8 = 2;
    pub const NATIVE_EXIT: u8 = 3;
    pub const FSM_TRANSITION: u8 = 4;
    pub const GC_SAFEPOINT: u8 = 5;
    pub const GC: u8 = 6;
    pub const PIN_ACQUIRE: u8 = 7;
    pub const PIN_RELEASE: u8 = 8;
    pub const VERDICT: u8 = 9;
}

/// A decoded fixed-width trace record.
///
/// Word layout:
///
/// | word | contents |
/// |------|----------|
/// | 0    | sequence number |
/// | 1    | microseconds since recorder start (batched, coarse) |
/// | 2    | `thread:16 \| op:8 \| flags:8 \| label:32` |
/// | 3    | payload `x` (nanos, pin id, live count, transition label) |
/// | 4    | payload `y` (freed count, entity: 0 = none, high bit set = |
/// |      | opaque numeric key, else intern label + 1) |
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RawEvent {
    /// Globally unique (per backend) sequence number.
    pub seq: u64,
    /// Coarse batched timestamp, microseconds since recorder start.
    pub micros: u64,
    /// Logical thread tag.
    pub thread: u16,
    /// Operation discriminant (see [`op`]).
    pub op: u8,
    /// Per-op flag bits (failure, outcome, verdict action, ...).
    pub flags: u8,
    /// Primary label (function or machine name), as an intern-table id.
    pub label: u32,
    /// First payload word.
    pub x: u64,
    /// Second payload word.
    pub y: u64,
}

impl RawEvent {
    /// Packs the record into its five-word wire form.
    #[inline]
    pub fn to_words(self) -> [u64; RAW_WORDS] {
        let meta = (u64::from(self.thread) << 48)
            | (u64::from(self.op) << 40)
            | (u64::from(self.flags) << 32)
            | u64::from(self.label);
        [self.seq, self.micros, meta, self.x, self.y]
    }

    /// Unpacks a five-word wire record.
    #[inline]
    pub fn from_words(words: [u64; RAW_WORDS]) -> RawEvent {
        let meta = words[2];
        RawEvent {
            seq: words[0],
            micros: words[1],
            thread: (meta >> 48) as u16,
            op: (meta >> 40) as u8,
            flags: (meta >> 32) as u8,
            label: meta as u32,
            x: words[3],
            y: words[4],
        }
    }

    /// Reconstructs the enum event form, resolving labels through
    /// `names` (the backend's intern table snapshot). Unknown ids —
    /// possible only if the caller passes a stale snapshot — render as
    /// `label#N` rather than panicking.
    pub fn decode(self, names: &[Arc<str>]) -> TraceEvent {
        let name = |id: u32| -> Arc<str> {
            names
                .get(id as usize)
                .cloned()
                .unwrap_or_else(|| Arc::from(format!("label#{id}")))
        };
        let kind = match self.op {
            op::JNI_ENTER => EventKind::JniEnter {
                func: name(self.label),
            },
            op::JNI_EXIT => EventKind::JniExit {
                func: name(self.label),
                nanos: self.x,
                failed: self.flags & 1 != 0,
            },
            op::NATIVE_ENTER => EventKind::NativeEnter {
                method: name(self.label),
            },
            op::NATIVE_EXIT => EventKind::NativeExit {
                method: name(self.label),
                nanos: self.x,
                failed: self.flags & 1 != 0,
            },
            op::FSM_TRANSITION => EventKind::FsmTransition {
                machine: name(self.label),
                transition: name(self.x as u32),
                outcome: match self.flags & 0b11 {
                    0 => FsmOutcome::Moved,
                    1 => FsmOutcome::Error,
                    _ => FsmOutcome::NotApplicable,
                },
                entity: match self.y {
                    0 => None,
                    key if key & ENTITY_KEY_BIT != 0 => Some(EntityTag(Arc::from(format!(
                        "entity#{:x}",
                        key & !ENTITY_KEY_BIT
                    )))),
                    id => Some(EntityTag(name((id - 1) as u32))),
                },
            },
            op::GC_SAFEPOINT => EventKind::GcSafepoint {
                collected: self.flags & 1 != 0,
            },
            op::GC => EventKind::Gc {
                live: self.x,
                freed: self.y,
            },
            op::PIN_ACQUIRE => EventKind::PinAcquire { pin: self.x as u32 },
            op::PIN_RELEASE => EventKind::PinRelease {
                pin: self.x as u32,
                ok: self.flags & 1 != 0,
            },
            _ => EventKind::Verdict {
                machine: name(self.label),
                function: name(self.x as u32),
                action: match self.flags & 0b11 {
                    0 => VerdictAction::Warn,
                    1 => VerdictAction::AbortVm,
                    _ => VerdictAction::ThrowException,
                },
            },
        };
        TraceEvent {
            seq: self.seq,
            micros: self.micros,
            thread: self.thread,
            kind,
        }
    }

    /// Encodes the enum event form. The `intern` callback maps label
    /// text to ids in the owning backend's table. This is the cold
    /// compatibility path for callers still constructing [`EventKind`].
    pub fn encode(
        seq: u64,
        micros: u64,
        thread: u16,
        kind: &EventKind,
        mut intern: impl FnMut(&str) -> u32,
    ) -> RawEvent {
        let mut raw = RawEvent {
            seq,
            micros,
            thread,
            op: 0,
            flags: 0,
            label: NO_LABEL,
            x: 0,
            y: 0,
        };
        match kind {
            EventKind::JniEnter { func } => {
                raw.op = op::JNI_ENTER;
                raw.label = intern(func);
            }
            EventKind::JniExit {
                func,
                nanos,
                failed,
            } => {
                raw.op = op::JNI_EXIT;
                raw.label = intern(func);
                raw.x = *nanos;
                raw.flags = u8::from(*failed);
            }
            EventKind::NativeEnter { method } => {
                raw.op = op::NATIVE_ENTER;
                raw.label = intern(method);
            }
            EventKind::NativeExit {
                method,
                nanos,
                failed,
            } => {
                raw.op = op::NATIVE_EXIT;
                raw.label = intern(method);
                raw.x = *nanos;
                raw.flags = u8::from(*failed);
            }
            EventKind::FsmTransition {
                machine,
                transition,
                outcome,
                entity,
            } => {
                raw.op = op::FSM_TRANSITION;
                raw.label = intern(machine);
                raw.x = u64::from(intern(transition));
                raw.flags = match outcome {
                    FsmOutcome::Moved => 0,
                    FsmOutcome::Error => 1,
                    FsmOutcome::NotApplicable => 2,
                };
                raw.y = match entity {
                    Some(tag) => u64::from(intern(&tag.0)) + 1,
                    None => 0,
                };
            }
            EventKind::GcSafepoint { collected } => {
                raw.op = op::GC_SAFEPOINT;
                raw.flags = u8::from(*collected);
            }
            EventKind::Gc { live, freed } => {
                raw.op = op::GC;
                raw.x = *live;
                raw.y = *freed;
            }
            EventKind::PinAcquire { pin } => {
                raw.op = op::PIN_ACQUIRE;
                raw.x = u64::from(*pin);
            }
            EventKind::PinRelease { pin, ok } => {
                raw.op = op::PIN_RELEASE;
                raw.x = u64::from(*pin);
                raw.flags = u8::from(*ok);
            }
            EventKind::Verdict {
                machine,
                function,
                action,
            } => {
                raw.op = op::VERDICT;
                raw.label = intern(machine);
                raw.x = u64::from(intern(function));
                raw.flags = match action {
                    VerdictAction::Warn => 0,
                    VerdictAction::AbortVm => 1,
                    VerdictAction::ThrowException => 2,
                };
            }
        }
        raw
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    fn roundtrip(kind: EventKind) {
        let mut ids: HashMap<String, u32> = HashMap::new();
        let mut names: Vec<Arc<str>> = Vec::new();
        let raw = RawEvent::encode(7, 42, 3, &kind, |s| {
            if let Some(&id) = ids.get(s) {
                id
            } else {
                let id = names.len() as u32;
                ids.insert(s.to_string(), id);
                names.push(Arc::from(s));
                id
            }
        });
        let back = RawEvent::from_words(raw.to_words()).decode(&names);
        assert_eq!(back.seq, 7);
        assert_eq!(back.micros, 42);
        assert_eq!(back.thread, 3);
        assert_eq!(back.kind, kind);
    }

    #[test]
    fn every_event_kind_survives_the_wire_form() {
        roundtrip(EventKind::JniEnter {
            func: "GetVersion".into(),
        });
        roundtrip(EventKind::JniExit {
            func: "GetVersion".into(),
            nanos: 1234,
            failed: true,
        });
        roundtrip(EventKind::NativeEnter {
            method: "A.b".into(),
        });
        roundtrip(EventKind::NativeExit {
            method: "A.b".into(),
            nanos: 9,
            failed: true,
        });
        roundtrip(EventKind::FsmTransition {
            machine: "local-reference".into(),
            transition: "DeleteLocalRef".into(),
            outcome: FsmOutcome::Error,
            entity: Some(EntityTag("JRef { slot: 3 }".into())),
        });
        roundtrip(EventKind::FsmTransition {
            machine: "pin".into(),
            transition: "Release".into(),
            outcome: FsmOutcome::NotApplicable,
            entity: None,
        });
        roundtrip(EventKind::GcSafepoint { collected: true });
        roundtrip(EventKind::Gc { live: 10, freed: 3 });
        roundtrip(EventKind::PinAcquire { pin: 77 });
        roundtrip(EventKind::PinRelease { pin: 77, ok: false });
        roundtrip(EventKind::Verdict {
            machine: "local-reference".into(),
            function: "IsSameObject".into(),
            action: VerdictAction::ThrowException,
        });
    }

    #[test]
    fn unknown_labels_render_as_placeholders() {
        let raw = RawEvent {
            seq: 0,
            micros: 0,
            thread: 0,
            op: op::JNI_ENTER,
            flags: 0,
            label: 99,
            x: 0,
            y: 0,
        };
        let event = raw.decode(&[]);
        match event.kind {
            EventKind::JniEnter { func } => assert_eq!(&*func, "label#99"),
            other => panic!("{other:?}"),
        }
    }
}
