//! Consistency between the declarative machine specifications and their
//! resolved instrumentation: the `languageTransitionsFor` mapping must
//! only mention machines that exist, fire in directions the machine
//! declares, and cover every machine.

use std::collections::HashSet;

use jinn_fsm::Direction;
use jinn_spec::{instrumentation, machines, Check, Phase};

#[test]
fn every_instrumented_machine_is_specified() {
    let specified: HashSet<String> = machines().iter().map(|m| m.name().to_string()).collect();
    for p in instrumentation() {
        assert!(
            specified.contains(p.machine),
            "instrumentation references unspecified machine `{}`",
            p.machine
        );
    }
}

#[test]
fn every_machine_is_instrumented() {
    let used: HashSet<&'static str> = instrumentation().iter().map(|p| p.machine).collect();
    for m in machines() {
        assert!(
            used.iter().any(|u| *u == m.name()),
            "machine `{}` resolves to no instrumentation points",
            m.name()
        );
    }
}

#[test]
fn phases_match_declared_trigger_directions() {
    // Pre checks correspond to Call:C→Java triggers; post checks to
    // Return:Java→C triggers. Every machine with a pre-phase check must
    // declare at least one CallCToJava trigger, and vice versa.
    let all = machines();
    let machine = |name: &str| {
        all.iter()
            .find(|m| m.name() == name)
            .expect("specified machine")
    };
    for p in instrumentation() {
        let m = machine(p.machine);
        let wanted = match p.phase {
            Phase::Pre => Direction::CallCToJava,
            Phase::Post => Direction::ReturnJavaToC,
        };
        let declares = m
            .transitions()
            .iter()
            .flat_map(|t| t.triggers())
            .any(|t| t.direction() == wanted);
        assert!(
            declares,
            "machine `{}` has a {:?}-phase check at {} but declares no {} trigger",
            p.machine,
            p.phase,
            p.func.name(),
            wanted
        );
    }
}

#[test]
fn per_machine_check_inventory_is_stable() {
    // Pin the per-machine instrumentation counts; drift means either the
    // registry or the mapping changed and EXPERIMENTS.md needs a refresh.
    let mut counts: Vec<(&'static str, usize)> = Vec::new();
    for m in machines() {
        let n = instrumentation()
            .iter()
            .filter(|p| p.machine == m.name())
            .count();
        counts.push((Box::leak(m.name().to_string().into_boxed_str()), n));
    }
    let get = |name: &str| {
        counts
            .iter()
            .find(|(n, _)| *n == name)
            .map(|(_, c)| *c)
            .unwrap_or(0)
    };
    assert_eq!(get("jnienv-state"), 229);
    assert_eq!(get("exception-state"), 209);
    assert_eq!(
        get("critical-section"),
        225 + 2 + 2,
        "sensitive + acquire + release"
    );
    assert_eq!(get("fixed-typing"), 147);
    assert_eq!(get("access-control"), 18);
    // The nullness *machine* checks reference parameters (232 of them);
    // Table 2's 409 additionally counts C-pointer parameters (names,
    // buffers) whose nullness the C compiler can express but the checker
    // cannot observe as references.
    assert_eq!(get("nullness"), 232);
    assert_eq!(get("monitor"), 2, "enter + exit");
    assert!(get("pinned-buffer") >= 24, "12 acquires + 12 releases");
    assert!(get("entity-typing") > 130);
    assert!(get("global-reference") > 200);
    assert!(get("local-reference") > 250);
}

#[test]
fn record_checks_cover_every_id_producer() {
    // Every function returning a method/field ID must have a Record check,
    // or forged-ID detection would false-positive on legitimate IDs.
    let points = instrumentation();
    for (func, spec) in minijni::registry().iter() {
        let produces_id = matches!(
            spec.ret,
            minijni::RetKind::MethodId | minijni::RetKind::FieldId
        );
        if produces_id {
            let recorded = points.iter().any(|p| {
                p.func == func && matches!(p.check, Check::RecordMethodId | Check::RecordFieldId)
            });
            assert!(recorded, "{} returns an ID but is not recorded", spec.name);
        }
    }
}
