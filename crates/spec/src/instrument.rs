//! Resolution of the `languageTransitionsFor` mapping against the JNI
//! function registry.
//!
//! Each state machine's trigger selectors ("any JNI function taking a
//! reference", "`Get<Type>ArrayElements` and similar getter functions", …)
//! are prose in the machine specifications; this module resolves them into
//! concrete *instrumentation points*: (function, pre/post, machine, check)
//! tuples. The synthesizer (crate `jinn-core`) consumes these to build the
//! per-function check tables — the paper's Algorithm 1 cross product of
//! `Mi.stateTransitions` and FFI functions.

use minijni::registry::{CallMode, Op, RetKind};
use minijni::{registry, FuncId};

/// Whether a check runs before the function body (`Call:C→Java`) or after
/// it returns (`Return:Java→C`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Phase {
    /// Before the JNI function executes.
    Pre,
    /// After the JNI function returns.
    Post,
}

/// How a `Call…Method…`-family function relates to its entity ID.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EntityCallMode {
    /// `Call<T>Method…`: receiver at 0, method at 1, args at 2.
    Virtual,
    /// `CallNonvirtual<T>Method…`: receiver 0, class 1, method 2, args 3.
    Nonvirtual,
    /// `CallStatic<T>Method…`: class 0, method 1, args 2.
    Static,
    /// `NewObject…`: class 0, constructor 1, args 2.
    Constructor,
}

/// One synthesized check, parameterized by the entity it observes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Check {
    /// Machine 1: the presented `JNIEnv*` must belong to the current
    /// thread.
    EnvMatches,
    /// Machine 2: no exception may be pending (exception-sensitive
    /// functions).
    NoPendingException,
    /// Machine 3: the thread must not be inside a critical section.
    CriticalSensitive,
    /// Machine 3 encoding: record a critical acquisition.
    CriticalAcquire,
    /// Machine 3: a critical release must match an acquisition.
    CriticalRelease,
    /// Machine 4: the reference parameter must conform to its fixed type.
    FixedType {
        /// Parameter index.
        param: u8,
    },
    /// Machine 5: full signature check of a method call.
    EntityCall {
        /// Call flavour.
        mode: EntityCallMode,
    },
    /// Machine 5 (+6 for writes): field access conformance.
    EntityFieldAccess {
        /// Static access?
        stat: bool,
        /// Is this a write?
        write: bool,
    },
    /// Machine 5: a method-ID parameter must be one the JVM issued.
    KnownMethodId {
        /// Parameter index.
        param: u8,
    },
    /// Machine 5: a field-ID parameter must be one the JVM issued.
    KnownFieldId {
        /// Parameter index.
        param: u8,
    },
    /// Machine 5 encoding: record the signature of a returned method ID.
    RecordMethodId,
    /// Machine 5 encoding: record the signature of a returned field ID.
    RecordFieldId,
    /// Machine 6: the written field must not be final.
    FinalFieldGuard,
    /// Machine 7: the parameter must not be null.
    NonNull {
        /// Parameter index.
        param: u8,
    },
    /// Machine 8 encoding: record an acquired pinned buffer.
    PinAcquire,
    /// Machine 8: a release must target a live buffer of the right kind.
    PinRelease {
        /// Parameter index of the buffer.
        param: u8,
    },
    /// Machine 9 encoding: record a monitor acquisition.
    MonitorAcquire,
    /// Machine 9 encoding: record a monitor release.
    MonitorRelease,
    /// Machines 10/11: a reference parameter is *used*; it must be live.
    RefUse {
        /// Parameter index.
        param: u8,
    },
    /// Machine 10 encoding: record an acquired global/weak reference.
    GlobalAcquire,
    /// Machine 10: a delete must target a live global/weak reference.
    GlobalRelease {
        /// Parameter index.
        param: u8,
    },
    /// Machine 11: record (and overflow-check) a local reference acquired
    /// from a JNI return.
    LocalAcquireFromReturn,
    /// Machine 11: `DeleteLocalRef` must target a live local reference of
    /// this thread.
    LocalDelete {
        /// Parameter index.
        param: u8,
    },
    /// Machine 11 encoding: a frame was pushed.
    FramePush,
    /// Machine 11: a frame pop must have a matching push.
    FramePop,
    /// Machine 11 encoding: the current frame's capacity was raised.
    EnsureCapacity,
}

/// One instrumentation point produced by resolving a machine's triggers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InstrPoint {
    /// The instrumented JNI function.
    pub func: FuncId,
    /// Pre or post.
    pub phase: Phase,
    /// Name of the owning state machine.
    pub machine: &'static str,
    /// The check to synthesize.
    pub check: Check,
}

/// Checks synthesized at the native-method boundary (the `Call:Java→C` /
/// `Return:C→Java` directions), which are not tied to any one JNI
/// function.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BoundaryCheck {
    /// Machine 11: acquire a frame and its argument references on entry.
    AcquireArgsOnEntry,
    /// Machines 10/11: the reference a native method returns is a Use.
    CheckReturnedRef,
    /// Machine 11: release the frame's references on return.
    ReleaseFrameOnExit,
    /// Machine 11: frames pushed with `PushLocalFrame` must be popped
    /// before returning.
    FrameBalanceOnExit,
    /// Machine 2: returning to Java consumes the pending-exception
    /// obligation.
    ExceptionStateReturn,
    /// Machines 8, 9, 10: leak sweeps at program termination.
    TerminationSweep,
}

/// All boundary checks, in driver order.
pub const BOUNDARY_CHECKS: [BoundaryCheck; 6] = [
    BoundaryCheck::AcquireArgsOnEntry,
    BoundaryCheck::CheckReturnedRef,
    BoundaryCheck::ReleaseFrameOnExit,
    BoundaryCheck::FrameBalanceOnExit,
    BoundaryCheck::ExceptionStateReturn,
    BoundaryCheck::TerminationSweep,
];

/// Resolves every machine's triggers against the 229-function registry.
///
/// The result is deterministic and ordered by function, then phase, then
/// machine (the order the synthesized wrapper executes them in).
pub fn instrumentation() -> Vec<InstrPoint> {
    let reg = registry();
    let mut out = Vec::new();
    for (func, spec) in reg.iter() {
        let mut push = |phase, machine, check| {
            out.push(InstrPoint {
                func,
                phase,
                machine,
                check,
            })
        };

        // Machine 1: every JNI function validates the env pointer.
        push(Phase::Pre, "jnienv-state", Check::EnvMatches);
        // Machine 2: exception-sensitive functions.
        if !spec.exception_oblivious {
            push(Phase::Pre, "exception-state", Check::NoPendingException);
        }
        // Machine 3: critical-section-sensitive functions.
        if !spec.critical_ok {
            push(Phase::Pre, "critical-section", Check::CriticalSensitive);
        }

        // Per-parameter checks (machines 4, 7, 10, 11).
        let is_delete = matches!(
            spec.op,
            Op::DeleteLocalRef | Op::DeleteGlobalRef | Op::DeleteWeakGlobalRef
        );
        for (i, p) in spec.params.iter().enumerate() {
            let i = i as u8;
            if p.is_ref() {
                if !p.nullable {
                    push(Phase::Pre, "nullness", Check::NonNull { param: i });
                }
                if !p.fixed_types.is_empty() {
                    push(Phase::Pre, "fixed-typing", Check::FixedType { param: i });
                }
                // Deleting is a Release, not a Use.
                if !(is_delete && i == 0) {
                    push(Phase::Pre, "global-reference", Check::RefUse { param: i });
                    push(Phase::Pre, "local-reference", Check::RefUse { param: i });
                }
            }
        }

        // Op-specific checks (machines 3, 5, 6, 8, 9, 10, 11).
        match spec.op {
            Op::Call { mode, .. } => {
                let mode = match mode {
                    CallMode::Virtual => EntityCallMode::Virtual,
                    CallMode::Nonvirtual => EntityCallMode::Nonvirtual,
                    CallMode::Static => EntityCallMode::Static,
                };
                push(Phase::Pre, "entity-typing", Check::EntityCall { mode });
            }
            Op::NewObject => {
                push(
                    Phase::Pre,
                    "entity-typing",
                    Check::EntityCall {
                        mode: EntityCallMode::Constructor,
                    },
                );
            }
            Op::GetField { stat, .. } => {
                push(
                    Phase::Pre,
                    "entity-typing",
                    Check::EntityFieldAccess { stat, write: false },
                );
            }
            Op::SetField { stat, .. } => {
                push(
                    Phase::Pre,
                    "entity-typing",
                    Check::EntityFieldAccess { stat, write: true },
                );
                push(Phase::Pre, "access-control", Check::FinalFieldGuard);
            }
            Op::GetMethodId { .. } => push(Phase::Post, "entity-typing", Check::RecordMethodId),
            Op::GetFieldId { .. } => push(Phase::Post, "entity-typing", Check::RecordFieldId),
            Op::ToReflectedMethod => {
                push(
                    Phase::Pre,
                    "entity-typing",
                    Check::KnownMethodId { param: 1 },
                );
            }
            Op::ToReflectedField => {
                push(
                    Phase::Pre,
                    "entity-typing",
                    Check::KnownFieldId { param: 1 },
                );
            }
            Op::FromReflectedMethod => push(Phase::Post, "entity-typing", Check::RecordMethodId),
            Op::FromReflectedField => push(Phase::Post, "entity-typing", Check::RecordFieldId),
            Op::GetStringCritical | Op::GetPrimitiveArrayCritical => {
                push(Phase::Post, "critical-section", Check::CriticalAcquire);
                push(Phase::Post, "pinned-buffer", Check::PinAcquire);
            }
            Op::ReleaseStringCritical | Op::ReleasePrimitiveArrayCritical => {
                push(Phase::Pre, "critical-section", Check::CriticalRelease);
                push(Phase::Pre, "pinned-buffer", Check::PinRelease { param: 1 });
            }
            Op::GetStringChars | Op::GetStringUtfChars | Op::GetArrayElements(_) => {
                push(Phase::Post, "pinned-buffer", Check::PinAcquire);
            }
            Op::ReleaseStringChars | Op::ReleaseStringUtfChars | Op::ReleaseArrayElements(_) => {
                push(Phase::Pre, "pinned-buffer", Check::PinRelease { param: 1 });
            }
            Op::MonitorEnter => push(Phase::Post, "monitor", Check::MonitorAcquire),
            Op::MonitorExit => push(Phase::Post, "monitor", Check::MonitorRelease),
            Op::NewGlobalRef | Op::NewWeakGlobalRef => {
                push(Phase::Post, "global-reference", Check::GlobalAcquire);
            }
            Op::DeleteGlobalRef | Op::DeleteWeakGlobalRef => {
                push(
                    Phase::Pre,
                    "global-reference",
                    Check::GlobalRelease { param: 0 },
                );
            }
            Op::DeleteLocalRef => {
                push(
                    Phase::Pre,
                    "local-reference",
                    Check::LocalDelete { param: 0 },
                );
            }
            Op::PushLocalFrame => push(Phase::Post, "local-reference", Check::FramePush),
            // FramePop validates *before* the raw pop so a violation
            // (nothing left to pop) is thrown instead of executed.
            Op::PopLocalFrame => push(Phase::Pre, "local-reference", Check::FramePop),
            Op::EnsureLocalCapacity => {
                push(Phase::Post, "local-reference", Check::EnsureCapacity);
            }
            _ => {}
        }

        // Machine 11: every function returning a local reference is an
        // Acquire (with overflow check).
        if spec.ret == RetKind::LocalRef {
            push(
                Phase::Post,
                "local-reference",
                Check::LocalAcquireFromReturn,
            );
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cross_product_yields_thousands_of_checks() {
        let points = instrumentation();
        // Paper Section 4: "Their cross-product yields thousands of checks
        // in the dynamic analysis."
        assert!(
            points.len() > 1500,
            "only {} instrumentation points",
            points.len()
        );
    }

    #[test]
    fn every_function_gets_env_check() {
        let points = instrumentation();
        let env_checks = points
            .iter()
            .filter(|p| p.check == Check::EnvMatches)
            .count();
        assert_eq!(env_checks, 229);
    }

    #[test]
    fn exception_checks_match_sensitive_count() {
        let points = instrumentation();
        let n = points
            .iter()
            .filter(|p| p.check == Check::NoPendingException)
            .count();
        assert_eq!(n, 209);
        let n = points
            .iter()
            .filter(|p| p.check == Check::CriticalSensitive)
            .count();
        assert_eq!(n, 225);
    }

    #[test]
    fn pin_acquires_match_table_2() {
        let points = instrumentation();
        let n = points
            .iter()
            .filter(|p| p.check == Check::PinAcquire)
            .count();
        assert_eq!(n, 12);
    }

    #[test]
    fn call_static_void_method_a_is_figure_4() {
        // The paper's Figure 4 wrapper checks the clazz parameter before
        // the call; our instrumentation must include the same checks.
        let id = FuncId::of("CallStaticVoidMethodA");
        let points: Vec<_> = instrumentation()
            .into_iter()
            .filter(|p| p.func == id)
            .collect();
        assert!(points.iter().any(|p| p.check == Check::EnvMatches));
        assert!(points.iter().any(|p| p.check == Check::NoPendingException));
        assert!(points
            .iter()
            .any(|p| p.check == Check::NonNull { param: 0 }));
        assert!(points
            .iter()
            .any(|p| p.check == Check::FixedType { param: 0 }));
        assert!(points
            .iter()
            .any(|p| p.check == Check::RefUse { param: 0 } && p.machine == "local-reference"));
        assert!(points.iter().any(|p| p.check
            == Check::EntityCall {
                mode: EntityCallMode::Static
            }));
    }

    #[test]
    fn delete_is_release_not_use() {
        let id = FuncId::of("DeleteLocalRef");
        let points: Vec<_> = instrumentation()
            .into_iter()
            .filter(|p| p.func == id)
            .collect();
        assert!(points
            .iter()
            .any(|p| p.check == Check::LocalDelete { param: 0 }));
        assert!(!points
            .iter()
            .any(|p| matches!(p.check, Check::RefUse { .. })));
    }

    #[test]
    fn release_string_chars_checks_its_string_use() {
        // The Subversion destructor bug (Section 6.4.1) is a dangling
        // jstring passed to ReleaseStringUTFChars: it must be a Use.
        let id = FuncId::of("ReleaseStringUTFChars");
        let points: Vec<_> = instrumentation()
            .into_iter()
            .filter(|p| p.func == id)
            .collect();
        assert!(points
            .iter()
            .any(|p| p.check == Check::RefUse { param: 0 } && p.machine == "local-reference"));
        assert!(points
            .iter()
            .any(|p| p.check == Check::PinRelease { param: 1 }));
    }

    #[test]
    fn deterministic() {
        assert_eq!(instrumentation(), instrumentation());
    }

    #[test]
    fn machine_trigger_function_lists_match_instrumentation() {
        // The crisp per-transition function lists in `machines.rs` (the
        // input to the static discharge pass) must agree with the
        // machine-readable resolution here — a function missing from a
        // list would make discharge unsound.
        use std::collections::BTreeSet;
        let points = instrumentation();
        let with_check = |check: fn(&Check) -> bool| -> BTreeSet<String> {
            points
                .iter()
                .filter(|p| check(&p.check))
                .map(|p| p.func.name().to_string())
                .collect()
        };
        let pin_acquire = with_check(|c| *c == Check::PinAcquire);
        let expected: BTreeSet<String> = crate::PIN_ACQUIRE_FUNCS
            .iter()
            .map(|s| s.to_string())
            .collect();
        assert_eq!(pin_acquire, expected);
        let pin_release = with_check(|c| matches!(c, Check::PinRelease { .. }));
        let expected: BTreeSet<String> = crate::PIN_RELEASE_FUNCS
            .iter()
            .map(|s| s.to_string())
            .collect();
        assert_eq!(pin_release, expected);
    }

    #[test]
    fn every_trigger_function_exists_in_the_registry() {
        for machine in crate::machines() {
            for t in machine.transitions() {
                for trig in t.triggers() {
                    for f in trig.functions() {
                        assert!(
                            minijni::registry().iter().any(|(_, s)| s.name == *f),
                            "{}::{} names unknown function {f:?}",
                            machine.name(),
                            t.name(),
                        );
                    }
                }
            }
        }
    }
}
