//! The eleven state machines of the Jinn JNI specification.
//!
//! These are the paper's Figures 2, 6, 7 and 8, written in the
//! [`jinn_fsm`] specification language. Together with the function
//! registry of `minijni`, they encode the 1,500+ usage rules of the JNI
//! manual. The prose trigger selectors here are the human-readable face of
//! the `languageTransitionsFor` mapping; the machine-readable resolution
//! against the registry lives in [`crate::instrument`].

use jinn_fsm::{ConstraintClass, Direction, EntityKind, MachineSpec};

/// Every JNI function whose successful return pins a string or array
/// buffer (machine 8's `Acquire`). Mirrors the `PinAcquire` resolution
/// in [`crate::instrument`] — kept in sync by a test there.
pub const PIN_ACQUIRE_FUNCS: [&str; 12] = [
    "GetStringChars",
    "GetStringUTFChars",
    "GetBooleanArrayElements",
    "GetByteArrayElements",
    "GetCharArrayElements",
    "GetShortArrayElements",
    "GetIntArrayElements",
    "GetLongArrayElements",
    "GetFloatArrayElements",
    "GetDoubleArrayElements",
    "GetStringCritical",
    "GetPrimitiveArrayCritical",
];

/// Every JNI function that releases a pinned buffer (machine 8's
/// `Release`, and the double-free trigger `ReleaseAgain`).
pub const PIN_RELEASE_FUNCS: [&str; 12] = [
    "ReleaseStringChars",
    "ReleaseStringUTFChars",
    "ReleaseBooleanArrayElements",
    "ReleaseByteArrayElements",
    "ReleaseCharArrayElements",
    "ReleaseShortArrayElements",
    "ReleaseIntArrayElements",
    "ReleaseLongArrayElements",
    "ReleaseFloatArrayElements",
    "ReleaseDoubleArrayElements",
    "ReleaseStringCritical",
    "ReleasePrimitiveArrayCritical",
];

/// Machine 1 (Figure 6): the `JNIEnv*` state constraint.
///
/// Every call from C must pass the `JNIEnv*` of the current thread.
pub fn jnienv_state() -> MachineSpec {
    MachineSpec::builder("jnienv-state", ConstraintClass::RuntimeState)
        .entity(EntityKind::Thread)
        .state("Matched")
        .error_state(
            "Error:EnvMismatch",
            "JNIEnv* does not belong to the current thread in {function}",
        )
        .transition("MismatchedCall", "Matched", "Error:EnvMismatch", |t| {
            t.on(Direction::CallCToJava, "any JNI function")
        })
        .build()
        .expect("jnienv-state is well-formed")
}

/// Machine 2 (Figure 6): the exception state constraint.
///
/// After a JNI call returns with an exception pending, only the 20
/// exception-oblivious functions may be called until the exception is
/// consumed or the native method returns.
pub fn exception_state() -> MachineSpec {
    MachineSpec::builder("exception-state", ConstraintClass::RuntimeState)
        .entity(EntityKind::Thread)
        .state("NoException")
        .state("ExceptionPending")
        .error_state(
            "Error:SensitiveCallWithPending",
            "an exception is pending in {function}",
        )
        .transition(
            "JniReturnWithException",
            "NoException",
            "ExceptionPending",
            |t| {
                t.on(
                    Direction::ReturnJavaToC,
                    "any JNI function, e.g. CallVoidMethod",
                )
            },
        )
        .transition(
            "ClearOrReturnToJava",
            "ExceptionPending",
            "NoException",
            |t| {
                t.on(Direction::ReturnJavaToC, "ExceptionClear")
                    .on(Direction::ReturnCToJava, "return from any native method")
            },
        )
        .transition(
            "ObliviousCall",
            "ExceptionPending",
            "ExceptionPending",
            |t| {
                t.on(
                    Direction::CallCToJava,
                    "small set of clean-up functions, e.g. ReleaseStringChars",
                )
            },
        )
        .transition(
            "SensitiveCall",
            "ExceptionPending",
            "Error:SensitiveCallWithPending",
            |t| {
                t.on(
                    Direction::CallCToJava,
                    "all other JNI functions, e.g. GetStringChars",
                )
            },
        )
        .build()
        .expect("exception-state is well-formed")
}

/// Machine 3 (Figure 6): the critical-section state constraint.
///
/// Between `Get*Critical` and the matching `Release*Critical`, C code may
/// only call the four critical-section-insensitive functions.
pub fn critical_section() -> MachineSpec {
    MachineSpec::builder("critical-section", ConstraintClass::RuntimeState)
        .entity(EntityKind::CriticalResource)
        .state("NotCritical")
        .state("InCritical")
        .error_state(
            "Error:SensitiveCallInCritical",
            "JNI critical section violation in {function}",
        )
        .error_state(
            "Error:UnmatchedRelease",
            "unmatched critical release in {function}",
        )
        .transition("Acquire", "NotCritical", "InCritical", |t| {
            t.on_funcs(
                Direction::ReturnJavaToC,
                "GetStringCritical or GetPrimitiveArrayCritical",
                ["GetStringCritical", "GetPrimitiveArrayCritical"],
            )
        })
        .transition("Release", "InCritical", "NotCritical", |t| {
            t.on_funcs(
                Direction::ReturnJavaToC,
                "ReleaseStringCritical or ReleasePrimitiveArrayCritical",
                ["ReleaseStringCritical", "ReleasePrimitiveArrayCritical"],
            )
        })
        .transition(
            "SensitiveCall",
            "InCritical",
            "Error:SensitiveCallInCritical",
            |t| {
                t.on(
                    Direction::CallCToJava,
                    "all other JNI functions, e.g. CallVoidMethod",
                )
            },
        )
        .transition("BadRelease", "NotCritical", "Error:UnmatchedRelease", |t| {
            t.on_funcs(
                Direction::CallCToJava,
                "Release*Critical without matching acquire",
                ["ReleaseStringCritical", "ReleasePrimitiveArrayCritical"],
            )
        })
        .build()
        .expect("critical-section is well-formed")
}

/// Machine 4 (Figure 7): fixed typing constraints.
///
/// Parameters whose Java type is fixed by the function itself (the
/// `clazz` of `CallStaticVoidMethod` must be a `java.lang.Class`, the
/// `str` of `GetStringLength` a `java.lang.String`, …).
pub fn fixed_typing() -> MachineSpec {
    MachineSpec::builder("fixed-typing", ConstraintClass::Type)
        .entity(EntityKind::Reference)
        .state("Unchecked")
        .error_state(
            "Error:FixedTypeMismatch",
            "actual does not conform to the fixed formal type in {function}",
        )
        .transition("MistypedCall", "Unchecked", "Error:FixedTypeMismatch", |t| {
            t.on(
                Direction::CallCToJava,
                "JNI function defining a parameter with a fixed type, e.g. clazz of CallStaticVoidMethod",
            )
        })
        .build()
        .expect("fixed-typing is well-formed")
}

/// Machine 5 (Figure 7): entity-specific typing constraints.
///
/// Method and field IDs constrain the other parameters: the receiver must
/// conform to the declaring class, actuals to the formals, staticness must
/// match, and the ID itself must be one the JVM issued.
pub fn entity_typing() -> MachineSpec {
    MachineSpec::builder("entity-typing", ConstraintClass::Type)
        .entity(EntityKind::EntityId)
        .state("Unknown")
        .state("Recorded")
        .error_state(
            "Error:EntityTypeMismatch",
            "parameters do not conform to the entity signature in {function}",
        )
        .transition("Record", "Unknown", "Recorded", |t| {
            t.on(Direction::ReturnJavaToC, "JNI function returning an entity ID, e.g. GetMethodID")
        })
        .transition("MistypedUse", "Recorded", "Error:EntityTypeMismatch", |t| {
            t.on(
                Direction::CallCToJava,
                "JNI function defining parameters with interrelated types, e.g. clazz and method of CallStaticVoidMethod",
            )
        })
        .transition("ForgedUse", "Unknown", "Error:EntityTypeMismatch", |t| {
            t.on(Direction::CallCToJava, "JNI function taking an entity ID the JVM never issued")
        })
        .build()
        .expect("entity-typing is well-formed")
}

/// Machine 6 (Figure 7): access-control constraints.
///
/// Writes through `Set<Type>Field`/`SetStatic<Type>Field` must not target
/// final fields (visibility is deliberately not checked — Section 6.5's
/// "correctness gray zone").
pub fn access_control() -> MachineSpec {
    MachineSpec::builder("access-control", ConstraintClass::Type)
        .entity(EntityKind::EntityId)
        .state("Writable")
        .error_state(
            "Error:FinalFieldWrite",
            "assignment to final field in {function}",
        )
        .transition("FinalWrite", "Writable", "Error:FinalFieldWrite", |t| {
            t.on(
                Direction::CallCToJava,
                "Set<Type>Field or SetStatic<Type>Field",
            )
        })
        .build()
        .expect("access-control is well-formed")
}

/// Machine 7 (Figure 7): nullness constraints.
pub fn nullness() -> MachineSpec {
    MachineSpec::builder("nullness", ConstraintClass::Type)
        .entity(EntityKind::Reference)
        .state("Unchecked")
        .error_state("Error:Null", "unexpected null value passed to {function}")
        .transition("NullArgument", "Unchecked", "Error:Null", |t| {
            t.on(
                Direction::CallCToJava,
                "JNI function defining a parameter that must not be null, e.g. method of CallStaticVoidMethod",
            )
        })
        .build()
        .expect("nullness is well-formed")
}

/// Machine 8 (Figure 8): pinned-or-copied string or array constraints.
pub fn pinned_buffer() -> MachineSpec {
    MachineSpec::builder("pinned-buffer", ConstraintClass::Resource)
        .entity(EntityKind::PinnedBuffer)
        .state("BeforeAcquire")
        .state("Acquired")
        .state("Released")
        .error_state(
            "Error:DoubleFree",
            "string or array buffer released twice in {function}",
        )
        .error_state(
            "Error:Leak",
            "string or array buffer never released (program termination)",
        )
        .transition("Acquire", "BeforeAcquire", "Acquired", |t| {
            t.on_funcs(
                Direction::ReturnJavaToC,
                "Get<Type>ArrayElements and similar getter functions",
                PIN_ACQUIRE_FUNCS,
            )
        })
        .transition("Release", "Acquired", "Released", |t| {
            t.on_funcs(
                Direction::ReturnJavaToC,
                "Release<Type>ArrayElements and similar release functions",
                PIN_RELEASE_FUNCS,
            )
        })
        .transition("ReleaseAgain", "Released", "Error:DoubleFree", |t| {
            t.on_funcs(
                Direction::CallCToJava,
                "second release of the same buffer",
                PIN_RELEASE_FUNCS,
            )
        })
        .transition("LeakAtExit", "Acquired", "Error:Leak", |t| {
            t.on(
                Direction::ReturnCToJava,
                "program termination (JVMTI callback)",
            )
        })
        .build()
        .expect("pinned-buffer is well-formed")
}

/// Machine 9 (Figure 8): monitor constraints.
pub fn monitor() -> MachineSpec {
    MachineSpec::builder("monitor", ConstraintClass::Resource)
        .entity(EntityKind::Monitor)
        .state("Free")
        .state("Held")
        .error_state(
            "Error:Leak",
            "monitor still held at program termination (deadlock risk)",
        )
        .transition("Acquire", "Free", "Held", |t| {
            // The paper's figure lists the call; the encoding commits on
            // the successful return.
            t.on_funcs(Direction::CallCToJava, "MonitorEnter", ["MonitorEnter"])
                .on_funcs(
                    Direction::ReturnJavaToC,
                    "MonitorEnter returns successfully",
                    ["MonitorEnter"],
                )
        })
        .transition("Release", "Held", "Free", |t| {
            t.on_funcs(Direction::CallCToJava, "MonitorExit", ["MonitorExit"])
                .on_funcs(
                    Direction::ReturnJavaToC,
                    "MonitorExit returns successfully",
                    ["MonitorExit"],
                )
        })
        .transition("LeakAtExit", "Held", "Error:Leak", |t| {
            t.on(
                Direction::ReturnCToJava,
                "program termination (JVMTI callback)",
            )
        })
        .build()
        .expect("monitor is well-formed")
}

/// Machine 10 (Figure 8): global and weak-global reference constraints.
pub fn global_ref() -> MachineSpec {
    MachineSpec::builder("global-reference", ConstraintClass::Resource)
        .entity(EntityKind::Reference)
        .state("BeforeAcquire")
        .state("Acquired")
        .state("Released")
        .error_state(
            "Error:Dangling",
            "use of deleted global reference in {function}",
        )
        .error_state(
            "Error:Leak",
            "global reference never deleted (program termination)",
        )
        .transition("Acquire", "BeforeAcquire", "Acquired", |t| {
            t.on_funcs(
                Direction::ReturnJavaToC,
                "NewGlobalRef and NewWeakGlobalRef",
                ["NewGlobalRef", "NewWeakGlobalRef"],
            )
        })
        .transition("Release", "Acquired", "Released", |t| {
            t.on_funcs(
                Direction::ReturnJavaToC,
                "DeleteGlobalRef and DeleteWeakGlobalRef",
                ["DeleteGlobalRef", "DeleteWeakGlobalRef"],
            )
        })
        .transition("UseAfterRelease", "Released", "Error:Dangling", |t| {
            t.on(
                Direction::CallCToJava,
                "JNI function taking reference, e.g. CallVoidMethod",
            )
            .on(
                Direction::ReturnCToJava,
                "native method returning reference",
            )
        })
        .transition("LeakAtExit", "Acquired", "Error:Leak", |t| {
            t.on(
                Direction::ReturnCToJava,
                "program termination (JVMTI callback)",
            )
        })
        .build()
        .expect("global-reference is well-formed")
}

/// Machine 11 (Figures 2 and 8): local reference constraints.
pub fn local_ref() -> MachineSpec {
    MachineSpec::builder("local-reference", ConstraintClass::Resource)
        .entity(EntityKind::Reference)
        .state("BeforeAcquire")
        .state("Acquired")
        .state("Released")
        .error_state(
            "Error:Dangling",
            "use of dangling local reference in {function}",
        )
        .error_state(
            "Error:DoubleFree",
            "local reference deleted twice in {function}",
        )
        .error_state(
            "Error:Overflow",
            "local reference frame exceeds its capacity in {function}",
        )
        .error_state(
            "Error:FrameLeak",
            "local frame pushed but never popped before return",
        )
        .transition("Acquire", "BeforeAcquire", "Acquired", |t| {
            t.on(
                Direction::CallJavaToC,
                "native method taking reference, e.g. Java_Callback_bind",
            )
            .on(
                Direction::ReturnJavaToC,
                "JNI function returning reference, e.g. GetObjectField",
            )
        })
        .transition("Release", "Acquired", "Released", |t| {
            t.on(Direction::ReturnJavaToC, "DeleteLocalRef or PopLocalFrame")
                .on(Direction::ReturnCToJava, "return from any native method")
        })
        .transition("UseAfterRelease", "Released", "Error:Dangling", |t| {
            t.on(
                Direction::CallCToJava,
                "JNI function taking reference, e.g. CallStaticVoidMethodA",
            )
            .on(
                Direction::ReturnCToJava,
                "native method returning reference, e.g. Class.getClassContext",
            )
        })
        .transition("DeleteAgain", "Released", "Error:DoubleFree", |t| {
            t.on(
                Direction::CallCToJava,
                "DeleteLocalRef of an already-released reference",
            )
        })
        .transition("AcquireBeyondCapacity", "Acquired", "Error:Overflow", |t| {
            t.on(
                Direction::ReturnJavaToC,
                "JNI function returning reference into a full frame",
            )
        })
        .transition(
            "UnpoppedFrameAtReturn",
            "Acquired",
            "Error:FrameLeak",
            |t| {
                t.on(
                    Direction::ReturnCToJava,
                    "native method returns with frames still pushed",
                )
            },
        )
        .build()
        .expect("local-reference is well-formed")
}

/// All eleven machines, in the paper's presentation order.
pub fn machines() -> Vec<MachineSpec> {
    vec![
        jnienv_state(),
        exception_state(),
        critical_section(),
        fixed_typing(),
        entity_typing(),
        access_control(),
        nullness(),
        pinned_buffer(),
        monitor(),
        global_ref(),
        local_ref(),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exactly_eleven_machines() {
        assert_eq!(
            machines().len(),
            11,
            "the paper specifies eleven state machines"
        );
    }

    #[test]
    fn three_constraint_classes_partition_the_machines() {
        let ms = machines();
        let runtime = ms
            .iter()
            .filter(|m| m.class() == ConstraintClass::RuntimeState)
            .count();
        let ty = ms
            .iter()
            .filter(|m| m.class() == ConstraintClass::Type)
            .count();
        let res = ms
            .iter()
            .filter(|m| m.class() == ConstraintClass::Resource)
            .count();
        assert_eq!(
            (runtime, ty, res),
            (3, 4, 4),
            "3 JVM-state + 4 type + 4 resource"
        );
    }

    #[test]
    fn every_machine_has_an_error_state() {
        for m in machines() {
            assert!(
                m.error_states().count() >= 1,
                "{} lacks an error state",
                m.name()
            );
        }
    }

    #[test]
    fn every_state_is_reachable() {
        for m in machines() {
            let reach = m.reachable_states();
            assert_eq!(
                reach.len(),
                m.states().len(),
                "{} has unreachable states",
                m.name()
            );
        }
    }

    #[test]
    fn names_are_unique() {
        let ms = machines();
        let mut names: Vec<_> = ms.iter().map(|m| m.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), ms.len());
    }

    #[test]
    fn local_ref_machine_matches_figure_2() {
        let m = local_ref();
        let acq = m.transition_by_name("Acquire").expect("Acquire exists");
        assert_eq!(
            acq.triggers().len(),
            2,
            "Figure 2: acquire at two language transitions"
        );
        let use_after = m.transition_by_name("UseAfterRelease").expect("exists");
        assert_eq!(m.state(use_after.to()).name(), "Error:Dangling");
    }

    #[test]
    fn diagrams_render() {
        for m in machines() {
            let dot = jinn_fsm::dot(&m);
            assert!(dot.contains(m.name()));
            let table = jinn_fsm::ascii_table(&m);
            assert!(table.contains("State transition"));
        }
    }
}
