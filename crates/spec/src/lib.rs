//! `jinn-spec` — the state-machine specification of the JNI.
//!
//! This crate is the reproduction of the paper's *specification input*:
//! the roughly 1,400 hand-written lines from which the 22,000+ lines of
//! checker are synthesized. It contains exactly two things:
//!
//! * [`machines`]: the **eleven state machines** of Figures 2, 6, 7 and 8,
//!   written in the `jinn-fsm` formalism — three JVM-state machines, four
//!   type machines, four resource machines;
//! * [`instrumentation`]: the `languageTransitionsFor` mapping resolved
//!   against `minijni`'s 229-function registry, yielding the thousands of
//!   concrete (function, phase, machine, check) instrumentation points the
//!   synthesizer expands into wrappers.
//!
//! # Example
//!
//! ```
//! // Render the paper's Figure 2 table for the local-reference machine.
//! let machine = jinn_spec::local_ref();
//! let table = jinn_fsm::ascii_table(&machine);
//! assert!(table.contains("Acquire"));
//! assert!(table.contains("Return:C->Java"));
//!
//! // Count the synthesized checks, Algorithm 1's cross product.
//! let points = jinn_spec::instrumentation();
//! assert!(points.len() > 1500);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod instrument;
mod machines;

pub use instrument::{
    instrumentation, BoundaryCheck, Check, EntityCallMode, InstrPoint, Phase, BOUNDARY_CHECKS,
};
pub use machines::{
    access_control, critical_section, entity_typing, exception_state, fixed_typing, global_ref,
    jnienv_state, local_ref, machines, monitor, nullness, pinned_buffer, PIN_ACQUIRE_FUNCS,
    PIN_RELEASE_FUNCS,
};

/// Non-comment source lines of this crate — the paper compares its ~1,400
/// lines of state machine and mapping code against the 22,000+ generated
/// lines; the `codegen_stats` experiment reports the analogous ratio.
pub fn spec_source_lines() -> usize {
    let sources = [
        include_str!("lib.rs"),
        include_str!("machines.rs"),
        include_str!("instrument.rs"),
    ];
    sources
        .iter()
        .flat_map(|s| s.lines())
        .map(str::trim)
        .filter(|l| {
            !l.is_empty() && !l.starts_with("//") && !l.starts_with("//!") && !l.starts_with("///")
        })
        .count()
}

#[cfg(test)]
mod tests {
    #[test]
    fn spec_is_concise() {
        let lines = super::spec_source_lines();
        // The paper wrote ~1,400 non-comment lines of spec; ours is of the
        // same order (well under the size of the generated checker).
        assert!(lines > 200, "suspiciously small spec: {lines}");
        assert!(lines < 2500, "spec has grown beyond 'concise': {lines}");
    }
}
