//! Adversarial-input hardening for the `.jtrace` reader: every way of
//! mangling a trace must come back as a typed [`TraceError`] — never a
//! panic, never an attacker-controlled allocation.
//!
//! The mutations are deterministic (no RNG): exhaustive truncation,
//! exhaustive single-byte corruption under a handful of XOR masks,
//! forged intern/array lengths, overlong varints, and checksum/record
//! splices.

use jinn_replay::format::fnv1a;
use jinn_replay::{
    check_version, decode_stream, encode_ingest, program_by_name, record_program, Frame,
    FrameDecoder, FrameError, StreamDecoder, Trace, TraceError, FORMAT_VERSION, MAGIC,
};

// Record tags, mirrored from the (crate-private) format module; the
// `end_tag_position` assertion below keeps them honest.
const TAG_INTERN: u8 = 0x01;
const TAG_END: u8 = 0xFF;

fn small_trace() -> Vec<u8> {
    record_program(&program_by_name("LocalRefDangling").expect("corpus program"))
}

/// Position of the END tag: total length minus the end record
/// (1 tag byte + count varint + 8 checksum bytes). Recovered by
/// scanning back for the byte whose prefix checksum matches.
fn end_tag_position(bytes: &[u8]) -> usize {
    for pos in (0..bytes.len().saturating_sub(9)).rev() {
        if bytes[pos] == TAG_END {
            let expected = u64::from_le_bytes(bytes[bytes.len() - 8..].try_into().unwrap());
            if fnv1a(&bytes[..pos]) == expected {
                return pos;
            }
        }
    }
    panic!("no END record found");
}

#[test]
fn every_truncation_is_a_typed_error() {
    let bytes = small_trace();
    assert!(Trace::parse(&bytes).is_ok(), "baseline parses");
    for len in 0..bytes.len() {
        let err = Trace::parse(&bytes[..len])
            .expect_err(&format!("prefix of {len} bytes must not parse"));
        match err {
            TraceError::Truncated
            | TraceError::BadMagic
            | TraceError::UnsupportedVersion(_)
            | TraceError::Corrupt(_)
            | TraceError::ChecksumMismatch { .. }
            | TraceError::RecordCountMismatch { .. } => {}
        }
    }
}

#[test]
fn every_single_byte_corruption_is_caught() {
    let bytes = small_trace();
    for mask in [0x01u8, 0x10, 0x80, 0xFF] {
        for pos in 0..bytes.len() {
            let mut bad = bytes.clone();
            bad[pos] ^= mask;
            assert!(
                Trace::parse(&bad).is_err(),
                "flip {mask:#04x} at byte {pos} must not parse"
            );
        }
    }
}

#[test]
fn truncated_varints_do_not_panic() {
    // A header followed by continuation bytes that never terminate.
    let mut bytes = Vec::new();
    bytes.extend_from_slice(&MAGIC);
    bytes.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
    bytes.push(TAG_INTERN);
    bytes.extend_from_slice(&[0x80; 32]); // unterminated varint
    match Trace::parse(&bytes) {
        Err(TraceError::Corrupt(msg)) => assert!(msg.contains("varint"), "{msg}"),
        other => panic!("expected varint overflow, got {other:?}"),
    }

    // The same, cut off mid-varint instead of overlong.
    let mut bytes = Vec::new();
    bytes.extend_from_slice(&MAGIC);
    bytes.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
    bytes.push(TAG_INTERN);
    bytes.extend_from_slice(&[0x80, 0x80]);
    assert!(matches!(Trace::parse(&bytes), Err(TraceError::Truncated)));
}

#[test]
fn oversized_intern_length_fails_without_allocating() {
    // INTERN id 0 declaring u64::MAX content bytes. The reader must
    // bounds-check against the real buffer, not trust the length.
    let mut bytes = Vec::new();
    bytes.extend_from_slice(&MAGIC);
    bytes.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
    bytes.push(TAG_INTERN);
    bytes.push(0x00); // intern id 0
    bytes.extend_from_slice(&[0xFF; 9]); // varint: u64::MAX-ish length
    bytes.push(0x01); // terminate the varint
    bytes.extend_from_slice(b"tiny");
    assert!(matches!(Trace::parse(&bytes), Err(TraceError::Truncated)));

    // And a large-but-plausible forged length (1 GiB) with 4 real bytes.
    let mut bytes = Vec::new();
    bytes.extend_from_slice(&MAGIC);
    bytes.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
    bytes.push(TAG_INTERN);
    bytes.push(0x00);
    bytes.extend_from_slice(&[0x80, 0x80, 0x80, 0x80, 0x04]); // varint 2^30
    bytes.extend_from_slice(b"tiny");
    assert!(matches!(Trace::parse(&bytes), Err(TraceError::Truncated)));
}

#[test]
fn bad_header_variants() {
    assert!(matches!(Trace::parse(b""), Err(TraceError::Truncated)));
    assert!(matches!(Trace::parse(b"JT"), Err(TraceError::Truncated)));
    assert!(matches!(
        Trace::parse(b"NOPE\x01\x00"),
        Err(TraceError::BadMagic)
    ));
    let mut wrong_version = Vec::new();
    wrong_version.extend_from_slice(&MAGIC);
    wrong_version.extend_from_slice(&999u16.to_le_bytes());
    assert!(matches!(
        Trace::parse(&wrong_version),
        Err(TraceError::UnsupportedVersion(999))
    ));
    assert!(matches!(
        check_version(&wrong_version),
        Err(TraceError::UnsupportedVersion(999))
    ));
}

#[test]
fn forged_record_count_is_a_count_mismatch() {
    // The end record's count varint sits outside the checksummed region,
    // so an attacker can rewrite it freely — the reader must still
    // object.
    let bytes = small_trace();
    let end = end_tag_position(&bytes);
    let mut bad = bytes.clone();
    // One-byte count varint (every corpus trace has < 128 records).
    assert!(bad[end + 1] & 0x80 == 0, "count fits one varint byte");
    bad[end + 1] = (bad[end + 1] + 1) & 0x7F;
    match Trace::parse(&bad) {
        Err(TraceError::RecordCountMismatch { expected, actual }) => {
            assert_ne!(expected, actual);
        }
        other => panic!("expected RecordCountMismatch, got {other:?}"),
    }
}

#[test]
fn forged_checksum_is_a_checksum_mismatch() {
    let bytes = small_trace();
    let mut bad = bytes.clone();
    let n = bad.len();
    bad[n - 1] ^= 0xFF;
    match Trace::parse(&bad) {
        Err(TraceError::ChecksumMismatch { expected, actual }) => {
            assert_ne!(expected, actual);
        }
        other => panic!("expected ChecksumMismatch, got {other:?}"),
    }
}

#[test]
fn trailing_bytes_after_end_are_rejected() {
    // Data appended after a valid end record sits outside the checksum;
    // accepting it would let arbitrary bytes ride under a valid seal.
    let bytes = small_trace();
    for junk in [&[0x00u8][..], &[TAG_END], b"extra payload"] {
        let mut bad = bytes.clone();
        bad.extend_from_slice(junk);
        match Trace::parse(&bad) {
            Err(TraceError::Corrupt(msg)) => {
                assert!(msg.contains("trailing"), "{msg}");
            }
            other => panic!("expected trailing-bytes rejection, got {other:?}"),
        }
    }
    // A whole second trace glued on is rejected the same way.
    let mut doubled = bytes.clone();
    doubled.extend_from_slice(&bytes);
    assert!(Trace::parse(&doubled).is_err());
}

#[test]
fn unknown_record_tags_are_corrupt() {
    for tag in [0x10u8, 0x42, 0xFE] {
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&MAGIC);
        bytes.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
        bytes.push(tag);
        match Trace::parse(&bytes) {
            Err(TraceError::Corrupt(msg)) => assert!(msg.contains("tag"), "{msg}"),
            other => panic!("tag {tag:#04x}: expected Corrupt, got {other:?}"),
        }
    }
}

// ---------------------------------------------------------------------
// Chunk-boundary fuzz: feeding the incremental decoders one byte at a
// time, or at arbitrary split points, must be invisible — identical
// frames/records and identical poisoning versus a single whole-buffer
// feed. Deterministic LCG for the split points (no RNG dependency).

fn lcg(state: &mut u64) -> u64 {
    *state = state
        .wrapping_mul(6364136223846793005)
        .wrapping_add(1442695040888963407);
    *state >> 33
}

/// `len` split into chunks at `cuts` pseudo-random points (sorted,
/// deduplicated); always covers the whole buffer.
fn split_points(len: usize, cuts: usize, seed: u64) -> Vec<std::ops::Range<usize>> {
    let mut state = seed;
    let mut points: Vec<usize> = (0..cuts)
        .map(|_| lcg(&mut state) as usize % (len + 1))
        .collect();
    points.push(0);
    points.push(len);
    points.sort_unstable();
    points.dedup();
    points.windows(2).map(|w| w[0]..w[1]).collect()
}

/// Feeds `stream` to a fresh [`FrameDecoder`] in the given chunks and
/// drains it after every feed: the decoded frames plus the first error
/// (the decoder's error is sticky, so nothing decodes past it).
fn run_frame_decoder<'a>(
    chunks: impl Iterator<Item = &'a [u8]>,
) -> (Vec<Frame>, Option<FrameError>) {
    let mut dec = FrameDecoder::new();
    let mut frames = Vec::new();
    let mut err = None;
    for chunk in chunks {
        dec.feed(chunk);
        while err.is_none() {
            match dec.next_frame() {
                Ok(Some(f)) => frames.push(f),
                Ok(None) => break,
                Err(e) => err = Some(e),
            }
        }
    }
    (frames, err)
}

fn corpus_programs() -> Vec<jinn_replay::Program> {
    let mut programs = jinn_replay::microbench_programs();
    programs.extend(jinn_replay::case_studies());
    programs
}

#[test]
fn frame_decoder_chunking_is_invisible() {
    for (i, program) in corpus_programs().iter().enumerate() {
        let trace = record_program(program);
        let stream = encode_ingest(i as u64, "fuzz", "jinn", &trace, 512);
        let oneshot = decode_stream(&stream).expect("self-encoded stream decodes");
        let (whole, whole_err) = run_frame_decoder(std::iter::once(&stream[..]));
        assert_eq!(whole_err, None, "{}: whole-feed errored", program.name);
        assert_eq!(whole, oneshot, "{}: whole-feed diverges", program.name);

        // Byte at a time: every frame boundary is also a feed boundary.
        let (bytewise, err) = run_frame_decoder(stream.chunks(1));
        assert_eq!(err, None, "{}: byte-at-a-time errored", program.name);
        assert_eq!(
            bytewise, oneshot,
            "{}: byte-at-a-time diverges",
            program.name
        );

        // Pseudo-random split points, several shapes per stream.
        for round in 0..4u64 {
            let seed = 0x9E3779B97F4A7C15 ^ (i as u64) << 8 ^ round;
            let cuts = split_points(stream.len(), 3 + 8 * round as usize, seed);
            let (frames, err) = run_frame_decoder(cuts.iter().map(|r| &stream[r.clone()]));
            assert_eq!(err, None, "{}: split round {round} errored", program.name);
            assert_eq!(
                frames, oneshot,
                "{}: split round {round} diverges",
                program.name
            );
        }
    }
}

#[test]
fn frame_decoder_poisoning_is_chunking_invariant() {
    for (i, program) in corpus_programs().iter().enumerate() {
        let trace = record_program(program);
        let stream = encode_ingest(i as u64, "fuzz", "jinn", &trace, 512);
        let mut state = 0xC0FFEE ^ i as u64;
        for round in 0..8u64 {
            let mut bad = stream.clone();
            let at = lcg(&mut state) as usize % bad.len();
            bad[at] ^= 1 << (lcg(&mut state) % 8);
            let (ref_frames, ref_err) = run_frame_decoder(std::iter::once(&bad[..]));
            let cuts = split_points(bad.len(), 16, lcg(&mut state));
            let (frames, err) = run_frame_decoder(cuts.iter().map(|r| &bad[r.clone()]));
            assert_eq!(
                (frames, err),
                (ref_frames.clone(), ref_err.clone()),
                "{}: flip at {at} (round {round}): chunked poisoning diverges",
                program.name
            );
            // Byte-at-a-time on a sample of the rounds (quadratic-ish cost).
            if round < 2 {
                let (frames, err) = run_frame_decoder(bad.chunks(1));
                assert_eq!(
                    (frames, err),
                    (ref_frames, ref_err),
                    "{}: flip at {at}: byte-at-a-time poisoning diverges",
                    program.name
                );
            }
        }
    }
}

/// The trace-level incremental scanner gets the same treatment over the
/// whole corpus: record-for-record agreement with `Trace::parse`'s
/// decoder under arbitrary chunking, and identical first errors on
/// mutated bytes.
#[test]
fn stream_decoder_chunking_matches_batch_parse_across_corpus() {
    let run = |chunks: &mut dyn Iterator<Item = &[u8]>| -> (u64, Option<TraceError>, bool) {
        let mut dec = StreamDecoder::new();
        let mut err = None;
        for chunk in chunks {
            dec.feed(chunk);
            while err.is_none() {
                match dec.next_record() {
                    Ok(Some(_)) => {}
                    Ok(None) => break,
                    Err(e) => err = Some(e),
                }
            }
        }
        if err.is_none() {
            err = dec.finish().err();
        }
        (dec.records_decoded(), err, dec.is_finished())
    };

    for (i, program) in corpus_programs().iter().enumerate() {
        let bytes = record_program(program);
        assert!(Trace::parse(&bytes).is_ok(), "{} parses", program.name);
        let reference = run(&mut std::iter::once(&bytes[..]));
        assert_eq!(reference.1, None, "{}: clean trace errored", program.name);
        assert!(reference.2, "{}: clean trace must finish", program.name);
        assert_eq!(
            run(&mut bytes.chunks(1)),
            reference,
            "{}: byte-at-a-time diverges",
            program.name
        );

        let mut state = 0xDEADBEEF ^ i as u64;
        for _ in 0..6 {
            let mut bad = bytes.clone();
            let at = lcg(&mut state) as usize % bad.len();
            bad[at] ^= 1 << (lcg(&mut state) % 8);
            let batch_err = Trace::parse(&bad).expect_err("corruption must not parse");
            let cuts = split_points(bad.len(), 16, lcg(&mut state));
            let (_, stream_err, _) = run(&mut cuts.iter().map(|r| &bad[r.clone()]));
            assert_eq!(
                stream_err.map(|e| e.to_string()),
                Some(batch_err.to_string()),
                "{}: flip at {at}: streaming error diverges from batch parse",
                program.name
            );
        }
    }
}

#[test]
fn whole_corpus_survives_sampled_mutations() {
    // Broader sweep at lower density: every corpus program, truncations
    // and flips at stride 7.
    for program in jinn_replay::microbench_programs()
        .iter()
        .chain(jinn_replay::case_studies().iter())
    {
        let bytes = record_program(program);
        for len in (0..bytes.len()).step_by(7) {
            assert!(
                Trace::parse(&bytes[..len]).is_err(),
                "{}: truncation at {len}",
                program.name
            );
        }
        for pos in (0..bytes.len()).step_by(7) {
            let mut bad = bytes.clone();
            bad[pos] ^= 0x20;
            assert!(
                Trace::parse(&bad).is_err(),
                "{}: flip at {pos}",
                program.name
            );
        }
    }
}
