//! Replay determinism guard: for a randomly generated correct program
//! with a randomly seeded bug, (1) recording is byte-identical across
//! runs, (2) replaying one trace twice produces byte-identical verdict
//! sequences across the standard configurations, and (3) the reference
//! and compiled dispatch engines serialize byte-identical observability
//! traces for identical scripts.

use std::rc::Rc;

use jinn_fsm::{
    AtomicStore, CompactStore, ConstraintClass, DiffStore, Direction, Engine, EntityKind,
    MachineSpec, StateStore,
};
use jinn_obs::{EventKind, Recorder};
use jinn_replay::{record_program, replay_bytes, standard_configs, Program, Trace, TraceWriter};
use minijni::typed;
use minijvm::{EpochParticipants, JRef, JValue};
use proptest::prelude::*;

/// A tiny correct-by-construction op language (a subset of the soundness
/// property suite's), interpreted as a native method body.
#[derive(Debug, Clone)]
enum Op {
    NewString(u8),
    DupArg,
    DeleteLast,
    GlobalPair,
    PinAndRelease,
    GetVersion,
    FramedAllocs(u8),
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0u8..20).prop_map(Op::NewString),
        Just(Op::DupArg),
        Just(Op::DeleteLast),
        Just(Op::GlobalPair),
        Just(Op::PinAndRelease),
        Just(Op::GetVersion),
        (1u8..6).prop_map(Op::FramedAllocs),
    ]
}

/// Bugs seeded after the correct prefix.
#[derive(Debug, Clone, Copy)]
enum Seeded {
    UseAfterDelete,
    DoubleDelete,
    NullArgument,
}

fn seeded_strategy() -> impl Strategy<Value = Seeded> {
    prop_oneof![
        Just(Seeded::UseAfterDelete),
        Just(Seeded::DoubleDelete),
        Just(Seeded::NullArgument),
    ]
}

fn interpret(
    env: &mut minijni::JniEnv<'_>,
    args: &[JValue],
    ops: &[Op],
    seeded: Option<Seeded>,
) -> Result<JValue, minijni::JniError> {
    let anchor = args[0].as_ref().expect("anchor argument");
    typed::ensure_local_capacity(env, 4096)?;
    let mut locals: Vec<JRef> = vec![anchor];
    for op in ops {
        match op {
            Op::NewString(n) => locals.push(typed::new_string_utf(env, &format!("s{n}"))?),
            Op::DupArg => locals.push(typed::new_local_ref(env, anchor)?),
            Op::DeleteLast => {
                if locals.len() > 1 {
                    let r = locals.pop().expect("len checked");
                    typed::delete_local_ref(env, r)?;
                }
            }
            Op::GlobalPair => {
                let g = typed::new_global_ref(env, anchor)?;
                typed::delete_global_ref(env, g)?;
            }
            Op::PinAndRelease => {
                let arr = typed::new_int_array(env, 4)?;
                let pin = typed::get_int_array_elements(env, arr)?;
                typed::release_int_array_elements(env, arr, pin, 0)?;
                typed::delete_local_ref(env, arr)?;
            }
            Op::GetVersion => {
                typed::get_version(env)?;
            }
            Op::FramedAllocs(n) => {
                typed::push_local_frame(env, i64::from(*n) + 1)?;
                for _ in 0..*n {
                    typed::new_local_ref(env, anchor)?;
                }
                typed::pop_local_frame(env, JRef::NULL)?;
            }
        }
    }
    if let Some(bug) = seeded {
        match bug {
            Seeded::UseAfterDelete => {
                let r = typed::new_local_ref(env, anchor)?;
                typed::delete_local_ref(env, r)?;
                typed::get_object_class(env, r)?;
            }
            Seeded::DoubleDelete => {
                let r = typed::new_local_ref(env, anchor)?;
                typed::delete_local_ref(env, r)?;
                typed::delete_local_ref(env, r)?;
            }
            Seeded::NullArgument => {
                typed::get_object_class(env, JRef::NULL)?;
            }
        }
    }
    Ok(JValue::Void)
}

/// Wraps a generated op list as a recordable [`Program`].
fn generated_program(ops: Vec<Op>, seeded: Option<Seeded>) -> Program {
    let ops = Rc::new(ops);
    Program {
        name: "Generated".into(),
        pitfall: None,
        machine: "local-reference",
        error_state: "Error:Generated",
        leaks: false,
        gc_period: None,
        build: Box::new(move |vm| {
            let ops = Rc::clone(&ops);
            let (_c, entry) = vm.define_native_class(
                "gen/Program",
                "run",
                "(Ljava/lang/Object;)V",
                true,
                Rc::new(move |env, args| interpret(env, args, &ops, seeded)),
            );
            let class = vm
                .jvm()
                .find_class("java/lang/Object")
                .expect("bootstrapped");
            let oop = vm.jvm_mut().alloc_object(class);
            let thread = vm.jvm().main_thread();
            let anchor = vm.jvm_mut().new_local(thread, oop);
            jinn_microbench::Setup {
                entries: vec![entry],
                first_args: vec![JValue::Ref(anchor)],
            }
        }),
    }
}

/// The full verdict sequence of one replay pass, as comparable bytes.
fn verdict_sequence(bytes: &[u8]) -> Vec<u8> {
    let mut out = Vec::new();
    for config in standard_configs() {
        let outcome = replay_bytes(bytes, &config).expect("generated trace replays");
        out.extend_from_slice(outcome.label.as_bytes());
        out.push(b'=');
        out.extend_from_slice(outcome.verdict_signature().as_bytes());
        out.extend_from_slice(format!(";events={}", outcome.events_replayed).as_bytes());
        out.push(b'\n');
    }
    out
}

/// A program that leaks several globals and pinned buffers, so the
/// VMDeath leak sweep fires with multiple entities at once. The sweep
/// iterates hash maps internally; its report order must be sorted by
/// entity key, or verdict sequences differ between process runs.
fn leaky_program() -> Program {
    Program {
        name: "LeakSweep".into(),
        pitfall: None,
        machine: "global-reference",
        error_state: "Error:Leak",
        leaks: true,
        gc_period: None,
        build: Box::new(|vm| {
            let (_c, entry) = vm.define_native_class(
                "gen/LeakSweep",
                "run",
                "(Ljava/lang/Object;)V",
                true,
                Rc::new(|env, args| {
                    let anchor = args[0].as_ref().expect("anchor argument");
                    for _ in 0..5 {
                        typed::new_global_ref(env, anchor)?; // never deleted
                    }
                    for _ in 0..3 {
                        let arr = typed::new_int_array(env, 4)?;
                        typed::get_int_array_elements(env, arr)?; // never released
                        typed::delete_local_ref(env, arr)?;
                    }
                    Ok(JValue::Void)
                }),
            );
            let class = vm
                .jvm()
                .find_class("java/lang/Object")
                .expect("bootstrapped");
            let oop = vm.jvm_mut().alloc_object(class);
            let thread = vm.jvm().main_thread();
            let anchor = vm.jvm_mut().new_local(thread, oop);
            jinn_microbench::Setup {
                entries: vec![entry],
                first_args: vec![JValue::Ref(anchor)],
            }
        }),
    }
}

/// Leak-sweep coverage for the determinism guard: multiple simultaneous
/// leaks must record byte-identically and replay to identical verdict
/// sequences — this is what sorting `entities_in`/`entities_not_in` (and
/// the checker's own pin/monitor sweeps) buys.
#[test]
fn leak_sweep_trace_is_deterministic() {
    let first = record_program(&leaky_program());
    let second = record_program(&leaky_program());
    assert_eq!(first, second, "re-recording a leaky run is byte-identical");
    assert!(Trace::parse(&first).is_ok());

    let verdicts_a = verdict_sequence(&first);
    let verdicts_b = verdict_sequence(&first);
    assert!(!verdicts_a.is_empty());
    assert_eq!(
        verdicts_a, verdicts_b,
        "leak-sweep verdict sequences must agree verbatim across replays"
    );
}

/// The lifecycle machine the engine-trace tests run.
fn engine_machine() -> MachineSpec {
    MachineSpec::builder("trace-resource", ConstraintClass::Resource)
        .entity(EntityKind::Reference)
        .state("BeforeAcquire")
        .state("Acquired")
        .state("Released")
        .error_state("Error:Dangling", "dangling use in {function}")
        .transition("Acquire", "BeforeAcquire", "Acquired", |t| {
            t.on(Direction::CallJavaToC, "native call")
        })
        .transition("Release", "Acquired", "Released", |t| {
            t.on(Direction::ReturnCToJava, "native return")
        })
        .transition("UseAfterRelease", "Released", "Error:Dangling", |t| {
            t.on(Direction::CallCToJava, "JNI function taking reference")
        })
        .build()
        .expect("static spec")
}

/// Drives a decoded script through `E` with an enabled recorder and
/// serializes every recorded event — seq, thread, and rendered kind, no
/// wall-clock timestamps — through a [`TraceWriter`]. The recorder's
/// events carry wall-clock micros; only the deterministic fields go into
/// the bytes (matching the `.jtrace` format's philosophy of recording
/// logical order, not time), so identical scripts must produce identical
/// bytes whichever engine ran them.
fn engine_trace<E: Engine<u64>>(words: &[u64]) -> Vec<u8> {
    let recorder = Recorder::enabled(1 << 12);
    let mut engine = E::for_machine(engine_machine());
    engine.set_recorder(recorder.clone());
    for &w in words {
        let key = (w >> 8) % 16;
        match w % 8 {
            0 | 1 => {
                engine.apply_named(&key, "Acquire");
            }
            2 | 3 => {
                engine.apply_named(&key, "Release");
            }
            4 => {
                engine.apply_named(&key, "UseAfterRelease");
            }
            5 => {
                engine.apply_named(&key, "NoSuchTransition");
            }
            6 => {
                engine.evict(&key);
            }
            _ => {
                let _ = engine.try_apply_named(&key, "Acquire");
            }
        }
    }
    let mut writer = TraceWriter::new();
    for event in recorder.events() {
        let rendered = match &event.kind {
            EventKind::FsmTransition {
                machine,
                transition,
                outcome,
                entity,
            } => match entity {
                Some(e) => format!("fsm {machine}.{transition} [{outcome}] entity={e}"),
                None => format!("fsm {machine}.{transition} [{outcome}]"),
            },
            other => format!("{other:?}"),
        };
        writer.obs_event(event.thread, &format!("#{} {rendered}", event.seq));
    }
    writer.finish()
}

/// Identical scripts through the reference, compiled, and differential
/// engines must serialize byte-identical observability traces — label
/// interning and prototype cloning may not change what is recorded.
#[test]
fn engines_serialize_identical_traces_for_a_scripted_run() {
    let words: Vec<u64> = (0..200u64)
        .map(|i| i.wrapping_mul(0x9e37_79b9_7f4a_7c15))
        .collect();
    let reference = engine_trace::<StateStore<u64>>(&words);
    let compiled = engine_trace::<CompactStore<u64>>(&words);
    let differential = engine_trace::<DiffStore<u64>>(&words);
    assert!(!reference.is_empty());
    assert_eq!(reference, compiled, "reference vs compiled trace bytes");
    assert_eq!(
        reference, differential,
        "reference vs differential trace bytes"
    );
    // The lock-free store records *more* than the thread-less reference
    // (owner thread, dense entity labels), so its bytes differ by
    // design; what must hold is that two runs of the same script are
    // byte-identical — interning order and slab layout may not inject
    // nondeterminism.
    let atomic_a = engine_trace::<AtomicStore<u64>>(&words);
    let atomic_b = engine_trace::<AtomicStore<u64>>(&words);
    assert!(!atomic_a.is_empty());
    assert_eq!(atomic_a, atomic_b, "lock-free trace bytes are reproducible");
}

/// Like [`engine_trace`] but through the lock-free store's sharded API,
/// with an epoch participant pinning between ops and quiescing for a
/// leak sweep every 16 ops — the parallel checker's actual shape.
fn atomic_trace_with_epoch_sweeps(words: &[u64]) -> Vec<u8> {
    let recorder = Recorder::enabled(1 << 12);
    let mut store: AtomicStore<u64> = AtomicStore::new(engine_machine());
    jinn_fsm::Engine::set_recorder(&mut store, recorder.clone());
    let epochs = EpochParticipants::new();
    let epoch = epochs.register();
    let initial = store.machine().initial();
    for (i, &w) in words.iter().enumerate() {
        epoch.pin();
        let key = (w >> 8) % 16;
        match w % 8 {
            0 | 1 => {
                store.apply_named(0, &key, "Acquire");
            }
            2 | 3 => {
                store.apply_named(0, &key, "Release");
            }
            4 => {
                store.apply_named(0, &key, "UseAfterRelease");
            }
            5 => {
                store.apply_named(0, &key, "NoSuchTransition");
            }
            6 => {
                store.evict(&key);
            }
            _ => {
                let _ = store.try_apply_named(0, &key, "Acquire");
            }
        }
        if i % 16 == 15 {
            // The sweep reads the quiesced cut; reads never record, so
            // the trace must come out byte-identical to a sweep-free run.
            epoch.quiesce(|| store.entities_not_in(initial).len());
        }
    }
    assert!(epochs.sweeps() > 0 || words.len() < 16);
    let mut writer = TraceWriter::new();
    for event in recorder.events() {
        let rendered = match &event.kind {
            EventKind::FsmTransition {
                machine,
                transition,
                outcome,
                entity,
            } => match entity {
                Some(e) => format!("fsm {machine}.{transition} [{outcome}] entity={e}"),
                None => format!("fsm {machine}.{transition} [{outcome}]"),
            },
            other => format!("{other:?}"),
        };
        writer.obs_event(event.thread, &format!("#{} {rendered}", event.seq));
    }
    writer.finish()
}

/// Epoch-based sweeps are trace-invisible: a run that pins every op and
/// quiesces for periodic leak sweeps serializes the exact bytes of a
/// plain single-threaded run — and of the reference engine. This is the
/// determinism half of the epoch protocol's contract (the sweep is a
/// consistent read cut, never a mutation).
#[test]
fn epoch_sweeps_leave_trace_bytes_identical() {
    let words: Vec<u64> = (0..200u64)
        .map(|i| i.wrapping_mul(0x9e37_79b9_7f4a_7c15))
        .collect();
    let with_sweeps = atomic_trace_with_epoch_sweeps(&words);
    let again = atomic_trace_with_epoch_sweeps(&words);
    let without = engine_trace::<AtomicStore<u64>>(&words);
    assert!(!with_sweeps.is_empty());
    assert_eq!(with_sweeps, without, "sweeps must not perturb the trace");
    assert_eq!(with_sweeps, again, "swept runs are reproducible");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Random scripts: every engine serializes the same trace bytes.
    #[test]
    fn engines_serialize_identical_traces(
        words in proptest::collection::vec(any::<u64>(), 0..120),
    ) {
        let reference = engine_trace::<StateStore<u64>>(&words);
        let compiled = engine_trace::<CompactStore<u64>>(&words);
        prop_assert_eq!(reference, compiled);
    }

    /// Recording a random correct program with a seeded bug twice yields
    /// byte-identical traces, and replaying one trace twice yields
    /// byte-identical verdict sequences.
    #[test]
    fn record_and_replay_are_deterministic(
        ops in proptest::collection::vec(op_strategy(), 0..24),
        bug in proptest::option::of(seeded_strategy()),
    ) {
        let first = record_program(&generated_program(ops.clone(), bug));
        let second = record_program(&generated_program(ops, bug));
        prop_assert_eq!(&first, &second, "re-recording must be byte-identical");
        prop_assert!(Trace::parse(&first).is_ok());

        let verdicts_a = verdict_sequence(&first);
        let verdicts_b = verdict_sequence(&first);
        prop_assert_eq!(
            verdicts_a,
            verdicts_b,
            "two replays of one trace must agree verbatim"
        );
    }
}
