//! The streaming frame envelope: how `.jtrace` bytes travel from a
//! client to the `jinn-serve` ingestion daemon.
//!
//! A `.jtrace` file is an artifact — self-contained, checksummed at the
//! end, rejected wholesale on any damage. A *service* cannot wait for
//! the end: traces arrive interleaved from many sessions over one byte
//! stream, and a single corrupt client must be quarantined without
//! disturbing its neighbours. The frame envelope adds exactly the
//! missing properties, and nothing else:
//!
//! * a **stream preamble** (`JFRM` + a little-endian `u16` version) so a
//!   server can distinguish an ingest stream from anything else by its
//!   first bytes;
//! * **length-prefixed frames**, each carrying a session id, so frames
//!   from many sessions interleave on one connection and a reader never
//!   needs lookahead;
//! * a **per-frame FNV-1a checksum**, so corruption is detected at the
//!   frame where it happened — the offending *session* is quarantined,
//!   the stream (and every other session on it) keeps going;
//! * a **frame-size cap** ([`MAX_FRAME_PAYLOAD`]), so a hostile length
//!   prefix cannot make the server allocate unbounded memory.
//!
//! The trace bytes inside `Append` frames are the unmodified `.jtrace`
//! wire format (`crate::format`) — the envelope frames a byte stream,
//! it does not reinterpret it. `Seal` repeats the total length and the
//! whole-trace FNV-1a checksum so reassembly errors (lost or reordered
//! chunks) are caught before the trace reaches a replay worker.
//!
//! See `TRACE_FORMAT.md` (appendix A) for the byte-level layout.

use std::fmt;

use crate::format::fnv1a;

/// Stream preamble magic: the first four bytes of every ingest stream.
pub const STREAM_MAGIC: [u8; 4] = *b"JFRM";

/// Current envelope version. Bump on any frame-layout change.
pub const STREAM_VERSION: u16 = 1;

/// Hard cap on one frame's payload. A length prefix above this is a
/// protocol error, not an allocation request.
pub const MAX_FRAME_PAYLOAD: u64 = 4 * 1024 * 1024;

/// Cap on tenant / config / reason strings inside control frames.
pub const MAX_CONTROL_STRING: u64 = 256;

/// Cap on the function count inside a `Manifest` frame. The JNI
/// registry holds a few hundred functions; a count beyond this is a
/// protocol error, not an allocation request.
pub const MAX_MANIFEST_FUNCTIONS: u64 = 512;

/// Frame kinds.
mod kind {
    pub const OPEN: u8 = 0x01;
    pub const APPEND: u8 = 0x02;
    pub const SEAL: u8 = 0x03;
    pub const ABORT: u8 = 0x04;
    pub const MANIFEST: u8 = 0x05;
}

/// Why a frame stream failed to decode. Every variant is a *typed*
/// error: adversarial bytes at the service boundary must never panic or
/// allocate unboundedly.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FrameError {
    /// The stream ended inside the preamble or a frame (only reported by
    /// [`decode_stream`]; the incremental decoder just waits for more).
    Truncated,
    /// The stream does not start with `JFRM`.
    BadMagic,
    /// The stream was written by an envelope version this reader rejects.
    UnsupportedVersion(u16),
    /// A frame declared a payload larger than [`MAX_FRAME_PAYLOAD`].
    Oversized {
        /// Declared payload length.
        len: u64,
        /// The cap it exceeded.
        max: u64,
    },
    /// The frame checksum does not match its payload bytes.
    ChecksumMismatch {
        /// Checksum stored in the frame.
        expected: u64,
        /// Checksum computed from the payload.
        actual: u64,
    },
    /// An unknown frame kind byte.
    BadKind(u8),
    /// A structurally invalid payload (bad varint, oversized string…).
    Corrupt(String),
}

impl fmt::Display for FrameError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FrameError::Truncated => f.write_str("frame stream truncated"),
            FrameError::BadMagic => f.write_str("not a jinn frame stream (bad magic)"),
            FrameError::UnsupportedVersion(v) => {
                write!(
                    f,
                    "unsupported frame-stream version {v} (reader speaks {STREAM_VERSION})"
                )
            }
            FrameError::Oversized { len, max } => {
                write!(f, "frame payload {len} bytes exceeds cap {max}")
            }
            FrameError::ChecksumMismatch { expected, actual } => {
                write!(
                    f,
                    "frame checksum mismatch: stored {expected:#018x}, computed {actual:#018x}"
                )
            }
            FrameError::BadKind(k) => write!(f, "unknown frame kind {k:#04x}"),
            FrameError::Corrupt(why) => write!(f, "corrupt frame: {why}"),
        }
    }
}

impl std::error::Error for FrameError {}

/// One decoded ingest frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Frame {
    /// Begin a session: subsequent `Append` frames with this id extend
    /// its trace.
    Open {
        /// Client-chosen session id (unique per daemon).
        session: u64,
        /// Tenant tag, for per-tenant queries and accounting.
        tenant: String,
        /// Checker-stack selection, `replay diff --config` syntax
        /// (comma-separated labels, e.g. `jinn` or `jinn,xcheck:j9`).
        config: String,
    },
    /// A chunk of `.jtrace` bytes for an open session.
    Append {
        /// Session the chunk belongs to.
        session: u64,
        /// Raw trace bytes (any chunking; reassembly is by arrival
        /// order within the session).
        chunk: Vec<u8>,
    },
    /// End of a session's trace: declares what the reassembled bytes
    /// must look like.
    Seal {
        /// Session being sealed.
        session: u64,
        /// Total `.jtrace` byte length the appends must sum to.
        total_len: u64,
        /// FNV-1a checksum of the complete trace bytes.
        checksum: u64,
    },
    /// Client-side cancellation of a session.
    Abort {
        /// Session being abandoned.
        session: u64,
        /// Client-supplied reason (quoted in the session's stats).
        reason: String,
    },
    /// Declares a tenant's call-site manifest: the JNI functions its
    /// native code can call. The daemon compiles a specialized engine
    /// pool with the provably-dead transitions discharged and serves
    /// the tenant's subsequent sessions from it. Tenant-scoped, not
    /// session-scoped; a repeat declaration replaces the previous one.
    Manifest {
        /// The tenant the manifest belongs to.
        tenant: String,
        /// Every JNI function the workload can call (names unknown to
        /// the registry are kept callable and reported, not fatal).
        functions: Vec<String>,
    },
}

impl Frame {
    /// The session id the frame addresses, or `None` for tenant-scoped
    /// frames (`Manifest`).
    pub fn session(&self) -> Option<u64> {
        match self {
            Frame::Open { session, .. }
            | Frame::Append { session, .. }
            | Frame::Seal { session, .. }
            | Frame::Abort { session, .. } => Some(*session),
            Frame::Manifest { .. } => None,
        }
    }
}

fn varint_into(buf: &mut Vec<u8>, mut v: u64) {
    loop {
        let b = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            buf.push(b);
            return;
        }
        buf.push(b | 0x80);
    }
}

fn push_string(buf: &mut Vec<u8>, s: &str) {
    varint_into(buf, s.len() as u64);
    buf.extend_from_slice(s.as_bytes());
}

/// The stream preamble bytes (send once, before the first frame).
pub fn stream_preamble() -> [u8; 6] {
    let v = STREAM_VERSION.to_le_bytes();
    [
        STREAM_MAGIC[0],
        STREAM_MAGIC[1],
        STREAM_MAGIC[2],
        STREAM_MAGIC[3],
        v[0],
        v[1],
    ]
}

/// Encodes one frame: `u32` LE payload length, payload, `u64` LE
/// FNV-1a of the payload.
pub fn encode_frame(frame: &Frame) -> Vec<u8> {
    let mut payload = Vec::new();
    match frame {
        Frame::Open {
            session,
            tenant,
            config,
        } => {
            payload.push(kind::OPEN);
            varint_into(&mut payload, *session);
            push_string(&mut payload, tenant);
            push_string(&mut payload, config);
        }
        Frame::Append { session, chunk } => {
            payload.push(kind::APPEND);
            varint_into(&mut payload, *session);
            payload.extend_from_slice(chunk);
        }
        Frame::Seal {
            session,
            total_len,
            checksum,
        } => {
            payload.push(kind::SEAL);
            varint_into(&mut payload, *session);
            varint_into(&mut payload, *total_len);
            payload.extend_from_slice(&checksum.to_le_bytes());
        }
        Frame::Abort { session, reason } => {
            payload.push(kind::ABORT);
            varint_into(&mut payload, *session);
            push_string(&mut payload, reason);
        }
        Frame::Manifest { tenant, functions } => {
            payload.push(kind::MANIFEST);
            push_string(&mut payload, tenant);
            varint_into(&mut payload, functions.len() as u64);
            for f in functions {
                push_string(&mut payload, f);
            }
        }
    }
    let mut out = Vec::with_capacity(payload.len() + 12);
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    let checksum = fnv1a(&payload);
    out.extend_from_slice(&payload);
    out.extend_from_slice(&checksum.to_le_bytes());
    out
}

/// Encodes a complete single-session ingest stream: preamble, `Open`,
/// `Append` chunks of at most `chunk_size` bytes, `Seal`. The
/// convenience constructor for clients, tests, and the fleet bench.
pub fn encode_ingest(
    session: u64,
    tenant: &str,
    config: &str,
    trace: &[u8],
    chunk_size: usize,
) -> Vec<u8> {
    let chunk_size = chunk_size.max(1);
    let mut out = Vec::with_capacity(trace.len() + 128);
    out.extend_from_slice(&stream_preamble());
    out.extend_from_slice(&encode_frame(&Frame::Open {
        session,
        tenant: tenant.to_string(),
        config: config.to_string(),
    }));
    for chunk in trace.chunks(chunk_size) {
        out.extend_from_slice(&encode_frame(&Frame::Append {
            session,
            chunk: chunk.to_vec(),
        }));
    }
    out.extend_from_slice(&encode_frame(&Frame::Seal {
        session,
        total_len: trace.len() as u64,
        checksum: fnv1a(trace),
    }));
    out
}

/// Why a `Seal` declaration failed against the bytes actually received.
/// The `Display` strings are quarantine reasons surfaced to clients and
/// pinned by tests — both the buffered and the streaming judge quote
/// them verbatim.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SealMismatch {
    /// The appends did not sum to the declared byte length.
    Length {
        /// Length the `Seal` frame declared.
        declared: u64,
        /// Bytes actually received.
        received: u64,
    },
    /// The received bytes hash to a different whole-trace checksum.
    Checksum {
        /// Checksum the `Seal` frame declared.
        declared: u64,
        /// Checksum computed over the received bytes.
        computed: u64,
    },
}

impl fmt::Display for SealMismatch {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SealMismatch::Length { declared, received } => {
                write!(f, "seal declared {declared} bytes, received {received}")
            }
            SealMismatch::Checksum { declared, computed } => {
                write!(
                    f,
                    "seal checksum mismatch: declared {declared:#018x}, computed {computed:#018x}"
                )
            }
        }
    }
}

impl std::error::Error for SealMismatch {}

/// Verifies a `Seal` frame's declaration (total length + whole-trace
/// FNV-1a) against what the session actually received. Length is checked
/// before checksum: a length mismatch means lost or duplicated chunks,
/// which makes the checksum comparison meaningless noise.
///
/// The single audited implementation shared by the buffered judge
/// (hashing its reassembled buffer) and the streaming judge (carrying
/// running totals) — the two paths must quarantine identically.
///
/// # Errors
///
/// The first [`SealMismatch`] found, in length-then-checksum order.
pub fn verify_seal_declaration(
    declared_len: u64,
    declared_sum: u64,
    received_len: u64,
    received_sum: u64,
) -> Result<(), SealMismatch> {
    if declared_len != received_len {
        return Err(SealMismatch::Length {
            declared: declared_len,
            received: received_len,
        });
    }
    if declared_sum != received_sum {
        return Err(SealMismatch::Checksum {
            declared: declared_sum,
            computed: received_sum,
        });
    }
    Ok(())
}

/// Payload cursor used while decoding one checks-passed frame.
struct Cursor<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn u8(&mut self) -> Result<u8, FrameError> {
        let b = *self
            .bytes
            .get(self.pos)
            .ok_or_else(|| FrameError::Corrupt("payload ends mid-field".into()))?;
        self.pos += 1;
        Ok(b)
    }

    fn varint(&mut self) -> Result<u64, FrameError> {
        let mut v: u64 = 0;
        let mut shift = 0u32;
        loop {
            let b = self.u8()?;
            if shift >= 64 {
                return Err(FrameError::Corrupt("varint overflow".into()));
            }
            v |= u64::from(b & 0x7f) << shift;
            if b & 0x80 == 0 {
                return Ok(v);
            }
            shift += 7;
        }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], FrameError> {
        let end = self
            .pos
            .checked_add(n)
            .ok_or_else(|| FrameError::Corrupt("length overflow".into()))?;
        let s = self
            .bytes
            .get(self.pos..end)
            .ok_or_else(|| FrameError::Corrupt("payload ends mid-field".into()))?;
        self.pos = end;
        Ok(s)
    }

    fn string(&mut self) -> Result<String, FrameError> {
        let len = self.varint()?;
        if len > MAX_CONTROL_STRING {
            return Err(FrameError::Corrupt(format!(
                "control string of {len} bytes exceeds cap {MAX_CONTROL_STRING}"
            )));
        }
        let bytes = self.take(len as usize)?;
        String::from_utf8(bytes.to_vec())
            .map_err(|_| FrameError::Corrupt("control string not UTF-8".into()))
    }

    fn rest(&mut self) -> &'a [u8] {
        let s = &self.bytes[self.pos..];
        self.pos = self.bytes.len();
        s
    }

    fn u64_le(&mut self) -> Result<u64, FrameError> {
        let b = self.take(8)?;
        Ok(u64::from_le_bytes(b.try_into().expect("8 bytes")))
    }
}

fn decode_payload(payload: &[u8]) -> Result<Frame, FrameError> {
    let mut c = Cursor {
        bytes: payload,
        pos: 0,
    };
    let frame = match c.u8()? {
        kind::OPEN => Frame::Open {
            session: c.varint()?,
            tenant: c.string()?,
            config: c.string()?,
        },
        kind::APPEND => Frame::Append {
            session: c.varint()?,
            chunk: c.rest().to_vec(),
        },
        kind::SEAL => Frame::Seal {
            session: c.varint()?,
            total_len: c.varint()?,
            checksum: c.u64_le()?,
        },
        kind::ABORT => Frame::Abort {
            session: c.varint()?,
            reason: c.string()?,
        },
        kind::MANIFEST => {
            let tenant = c.string()?;
            let count = c.varint()?;
            if count > MAX_MANIFEST_FUNCTIONS {
                return Err(FrameError::Corrupt(format!(
                    "manifest of {count} functions exceeds cap {MAX_MANIFEST_FUNCTIONS}"
                )));
            }
            let mut functions = Vec::with_capacity(count as usize);
            for _ in 0..count {
                functions.push(c.string()?);
            }
            Frame::Manifest { tenant, functions }
        }
        other => return Err(FrameError::BadKind(other)),
    };
    if c.pos != payload.len() {
        return Err(FrameError::Corrupt(format!(
            "{} trailing payload bytes",
            payload.len() - c.pos
        )));
    }
    Ok(frame)
}

/// Incremental frame decoder: feed bytes as they arrive, pull frames as
/// they complete. Errors are terminal — a stream that has lied about a
/// length or checksum has no trustworthy resynchronization point.
#[derive(Debug, Default)]
pub struct FrameDecoder {
    buf: Vec<u8>,
    pos: usize,
    preamble_done: bool,
    failed: bool,
}

impl FrameDecoder {
    /// An empty decoder expecting the stream preamble.
    pub fn new() -> FrameDecoder {
        FrameDecoder::default()
    }

    /// Appends newly-arrived bytes.
    pub fn feed(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Bytes buffered but not yet consumed by a decoded frame.
    pub fn pending(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn compact(&mut self) {
        // Reclaim consumed prefix once it dominates the buffer, so a
        // long-lived connection doesn't grow without bound.
        if self.pos > 64 * 1024 && self.pos * 2 >= self.buf.len() {
            self.buf.drain(..self.pos);
            self.pos = 0;
        }
    }

    /// Decodes the next complete frame, `Ok(None)` if more bytes are
    /// needed.
    ///
    /// # Errors
    ///
    /// Any [`FrameError`]; after an error the decoder refuses further
    /// frames (the stream is poisoned).
    pub fn next_frame(&mut self) -> Result<Option<Frame>, FrameError> {
        if self.failed {
            return Err(FrameError::Corrupt("stream already failed".into()));
        }
        let result = self.next_frame_inner();
        if result.is_err() {
            self.failed = true;
        }
        result
    }

    fn next_frame_inner(&mut self) -> Result<Option<Frame>, FrameError> {
        if !self.preamble_done {
            let avail = &self.buf[self.pos..];
            // Reject a wrong magic as early as the bytes allow.
            let probe = avail.len().min(4);
            if avail[..probe] != STREAM_MAGIC[..probe] {
                return Err(FrameError::BadMagic);
            }
            if avail.len() < 6 {
                return Ok(None);
            }
            let version = u16::from_le_bytes([avail[4], avail[5]]);
            if version != STREAM_VERSION {
                return Err(FrameError::UnsupportedVersion(version));
            }
            self.pos += 6;
            self.preamble_done = true;
        }
        let avail = &self.buf[self.pos..];
        if avail.len() < 4 {
            return Ok(None);
        }
        let len = u32::from_le_bytes(avail[..4].try_into().expect("4 bytes")) as u64;
        if len == 0 {
            return Err(FrameError::Corrupt("zero-length frame".into()));
        }
        if len > MAX_FRAME_PAYLOAD {
            return Err(FrameError::Oversized {
                len,
                max: MAX_FRAME_PAYLOAD,
            });
        }
        let need = 4 + len as usize + 8;
        if avail.len() < need {
            return Ok(None);
        }
        let payload = &avail[4..4 + len as usize];
        let stored = &avail[4 + len as usize..need];
        let expected = u64::from_le_bytes(stored.try_into().expect("8 bytes"));
        let actual = fnv1a(payload);
        if expected != actual {
            return Err(FrameError::ChecksumMismatch { expected, actual });
        }
        let frame = decode_payload(payload)?;
        self.pos += need;
        self.compact();
        Ok(Some(frame))
    }
}

/// Decodes a complete in-memory stream into its frames. A stream that
/// ends mid-frame is [`FrameError::Truncated`].
///
/// # Errors
///
/// Any [`FrameError`] raised by the incremental decoder.
pub fn decode_stream(bytes: &[u8]) -> Result<Vec<Frame>, FrameError> {
    let mut dec = FrameDecoder::new();
    dec.feed(bytes);
    let mut frames = Vec::new();
    while let Some(f) = dec.next_frame()? {
        frames.push(f);
    }
    if dec.pending() > 0 {
        return Err(FrameError::Truncated);
    }
    Ok(frames)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_frames() -> Vec<Frame> {
        vec![
            Frame::Open {
                session: 7,
                tenant: "acme".into(),
                config: "jinn".into(),
            },
            Frame::Append {
                session: 7,
                chunk: vec![1, 2, 3, 4, 5],
            },
            Frame::Seal {
                session: 7,
                total_len: 5,
                checksum: fnv1a(&[1, 2, 3, 4, 5]),
            },
            Frame::Abort {
                session: 8,
                reason: "client went away".into(),
            },
            Frame::Manifest {
                tenant: "acme".into(),
                functions: vec!["NewGlobalRef".into(), "DeleteGlobalRef".into()],
            },
        ]
    }

    #[test]
    fn frames_round_trip() {
        let frames = sample_frames();
        let mut bytes = stream_preamble().to_vec();
        for f in &frames {
            bytes.extend_from_slice(&encode_frame(f));
        }
        assert_eq!(decode_stream(&bytes).unwrap(), frames);
    }

    #[test]
    fn incremental_byte_at_a_time() {
        let frames = sample_frames();
        let mut bytes = stream_preamble().to_vec();
        for f in &frames {
            bytes.extend_from_slice(&encode_frame(f));
        }
        let mut dec = FrameDecoder::new();
        let mut got = Vec::new();
        for b in bytes {
            dec.feed(&[b]);
            while let Some(f) = dec.next_frame().unwrap() {
                got.push(f);
            }
        }
        assert_eq!(got, frames);
        assert_eq!(dec.pending(), 0);
    }

    #[test]
    fn encode_ingest_reassembles() {
        let trace = (0u16..1000).flat_map(u16::to_le_bytes).collect::<Vec<_>>();
        let stream = encode_ingest(3, "t", "jinn", &trace, 64);
        let frames = decode_stream(&stream).unwrap();
        assert!(matches!(frames[0], Frame::Open { session: 3, .. }));
        let mut rebuilt = Vec::new();
        for f in &frames[1..frames.len() - 1] {
            match f {
                Frame::Append { session: 3, chunk } => rebuilt.extend_from_slice(chunk),
                other => panic!("unexpected frame {other:?}"),
            }
        }
        assert_eq!(rebuilt, trace);
        match frames.last().unwrap() {
            Frame::Seal {
                total_len,
                checksum,
                ..
            } => {
                assert_eq!(*total_len, trace.len() as u64);
                assert_eq!(*checksum, fnv1a(&trace));
            }
            other => panic!("expected seal, got {other:?}"),
        }
    }

    #[test]
    fn corrupt_streams_yield_typed_errors() {
        // Bad magic, detected from the very first byte.
        assert_eq!(decode_stream(b"XFRM\x01\x00"), Err(FrameError::BadMagic));
        // Wrong version.
        assert_eq!(
            decode_stream(b"JFRM\x63\x00"),
            Err(FrameError::UnsupportedVersion(0x63))
        );
        // Oversized length prefix must not allocate.
        let mut bytes = stream_preamble().to_vec();
        bytes.extend_from_slice(&u32::MAX.to_le_bytes());
        assert!(matches!(
            decode_stream(&bytes),
            Err(FrameError::Oversized { .. })
        ));
        // Bit flip in the payload trips the frame checksum.
        let mut bytes = stream_preamble().to_vec();
        bytes.extend_from_slice(&encode_frame(&Frame::Append {
            session: 1,
            chunk: vec![9; 32],
        }));
        bytes[12] ^= 0x40;
        assert!(matches!(
            decode_stream(&bytes),
            Err(FrameError::ChecksumMismatch { .. })
        ));
        // Truncated mid-frame.
        let mut bytes = stream_preamble().to_vec();
        bytes.extend_from_slice(&encode_frame(&Frame::Open {
            session: 1,
            tenant: "t".into(),
            config: "jinn".into(),
        }));
        bytes.truncate(bytes.len() - 3);
        assert_eq!(decode_stream(&bytes), Err(FrameError::Truncated));
        // Unknown kind byte (re-checksum a forged payload).
        let payload = vec![0x77u8, 0x01];
        let mut bytes = stream_preamble().to_vec();
        bytes.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        let ck = fnv1a(&payload);
        bytes.extend_from_slice(&payload);
        bytes.extend_from_slice(&ck.to_le_bytes());
        assert_eq!(decode_stream(&bytes), Err(FrameError::BadKind(0x77)));
    }

    #[test]
    fn decoder_is_poisoned_after_an_error() {
        let mut dec = FrameDecoder::new();
        dec.feed(b"XXXXXX");
        assert!(dec.next_frame().is_err());
        dec.feed(&stream_preamble());
        assert!(dec.next_frame().is_err(), "no resync after a stream error");
    }

    #[test]
    fn manifest_function_count_cap_is_enforced() {
        // Forge a Manifest frame claiming 1<<20 functions: the decoder
        // must reject the count before allocating for it.
        let mut payload = vec![kind::MANIFEST, 0x01, b't'];
        varint_into(&mut payload, 1 << 20);
        let mut bytes = stream_preamble().to_vec();
        bytes.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        let ck = fnv1a(&payload);
        bytes.extend_from_slice(&payload);
        bytes.extend_from_slice(&ck.to_le_bytes());
        match decode_stream(&bytes) {
            Err(FrameError::Corrupt(msg)) => assert!(msg.contains("exceeds cap"), "{msg}"),
            other => panic!("expected Corrupt, got {other:?}"),
        }
        // At the cap with the payload truncated: typed error, no panic.
        let mut payload = vec![kind::MANIFEST, 0x01, b't'];
        varint_into(&mut payload, MAX_MANIFEST_FUNCTIONS);
        let mut bytes = stream_preamble().to_vec();
        bytes.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        let ck = fnv1a(&payload);
        bytes.extend_from_slice(&payload);
        bytes.extend_from_slice(&ck.to_le_bytes());
        assert!(matches!(decode_stream(&bytes), Err(FrameError::Corrupt(_))));
    }

    #[test]
    fn seal_declaration_verifier_orders_and_words_its_errors() {
        let trace = b"some trace bytes".to_vec();
        let sum = fnv1a(&trace);
        assert_eq!(
            verify_seal_declaration(trace.len() as u64, sum, trace.len() as u64, sum),
            Ok(())
        );
        // Length mismatch wins even when the checksum also differs.
        let err = verify_seal_declaration(trace.len() as u64, sum, 3, fnv1a(b"xyz")).unwrap_err();
        assert_eq!(
            err.to_string(),
            format!("seal declared {} bytes, received 3", trace.len())
        );
        // Same length, different bytes: checksum mismatch.
        let other = fnv1a(b"EVIL trace bytes");
        let err = verify_seal_declaration(trace.len() as u64, sum, trace.len() as u64, other)
            .unwrap_err();
        assert_eq!(
            err.to_string(),
            format!("seal checksum mismatch: declared {sum:#018x}, computed {other:#018x}")
        );
    }

    #[test]
    fn manifest_frames_are_tenant_scoped() {
        let f = Frame::Manifest {
            tenant: "t".into(),
            functions: vec![],
        };
        assert_eq!(f.session(), None);
        let f = Frame::Open {
            session: 9,
            tenant: "t".into(),
            config: String::new(),
        };
        assert_eq!(f.session(), Some(9));
    }

    #[test]
    fn control_string_cap_is_enforced() {
        // Forge an Open frame whose tenant length claims 100 KiB.
        let mut payload = vec![0x01u8, 0x01];
        // varint(100_000)
        payload.extend_from_slice(&[0xa0, 0x8d, 0x06]);
        let mut bytes = stream_preamble().to_vec();
        bytes.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        let ck = fnv1a(&payload);
        bytes.extend_from_slice(&payload);
        bytes.extend_from_slice(&ck.to_le_bytes());
        match decode_stream(&bytes) {
            Err(FrameError::Corrupt(msg)) => assert!(msg.contains("exceeds cap"), "{msg}"),
            other => panic!("expected Corrupt, got {other:?}"),
        }
    }
}
